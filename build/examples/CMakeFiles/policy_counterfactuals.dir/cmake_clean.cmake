file(REMOVE_RECURSE
  "CMakeFiles/policy_counterfactuals.dir/policy_counterfactuals.cpp.o"
  "CMakeFiles/policy_counterfactuals.dir/policy_counterfactuals.cpp.o.d"
  "policy_counterfactuals"
  "policy_counterfactuals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_counterfactuals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
