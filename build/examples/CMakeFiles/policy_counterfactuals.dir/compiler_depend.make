# Empty compiler generated dependencies file for policy_counterfactuals.
# This may be replaced when dependencies are built.
