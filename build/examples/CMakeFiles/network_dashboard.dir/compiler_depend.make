# Empty compiler generated dependencies file for network_dashboard.
# This may be replaced when dependencies are built.
