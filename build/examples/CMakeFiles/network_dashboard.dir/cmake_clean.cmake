file(REMOVE_RECURSE
  "CMakeFiles/network_dashboard.dir/network_dashboard.cpp.o"
  "CMakeFiles/network_dashboard.dir/network_dashboard.cpp.o.d"
  "network_dashboard"
  "network_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
