file(REMOVE_RECURSE
  "CMakeFiles/lockdown_study.dir/lockdown_study.cpp.o"
  "CMakeFiles/lockdown_study.dir/lockdown_study.cpp.o.d"
  "lockdown_study"
  "lockdown_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
