# Empty dependencies file for lockdown_study.
# This may be replaced when dependencies are built.
