# Empty compiler generated dependencies file for export_feeds.
# This may be replaced when dependencies are built.
