file(REMOVE_RECURSE
  "CMakeFiles/export_feeds.dir/export_feeds.cpp.o"
  "CMakeFiles/export_feeds.dir/export_feeds.cpp.o.d"
  "export_feeds"
  "export_feeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_feeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
