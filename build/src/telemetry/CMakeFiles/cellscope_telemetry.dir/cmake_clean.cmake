file(REMOVE_RECURSE
  "CMakeFiles/cellscope_telemetry.dir/kpi.cc.o"
  "CMakeFiles/cellscope_telemetry.dir/kpi.cc.o.d"
  "CMakeFiles/cellscope_telemetry.dir/probes.cc.o"
  "CMakeFiles/cellscope_telemetry.dir/probes.cc.o.d"
  "libcellscope_telemetry.a"
  "libcellscope_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellscope_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
