file(REMOVE_RECURSE
  "libcellscope_telemetry.a"
)
