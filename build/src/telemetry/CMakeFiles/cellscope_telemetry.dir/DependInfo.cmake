
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/kpi.cc" "src/telemetry/CMakeFiles/cellscope_telemetry.dir/kpi.cc.o" "gcc" "src/telemetry/CMakeFiles/cellscope_telemetry.dir/kpi.cc.o.d"
  "/root/repo/src/telemetry/probes.cc" "src/telemetry/CMakeFiles/cellscope_telemetry.dir/probes.cc.o" "gcc" "src/telemetry/CMakeFiles/cellscope_telemetry.dir/probes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cellscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/cellscope_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/cellscope_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/cellscope_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/cellscope_population.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cellscope_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
