# Empty compiler generated dependencies file for cellscope_telemetry.
# This may be replaced when dependencies are built.
