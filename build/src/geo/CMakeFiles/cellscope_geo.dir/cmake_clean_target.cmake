file(REMOVE_RECURSE
  "libcellscope_geo.a"
)
