# Empty compiler generated dependencies file for cellscope_geo.
# This may be replaced when dependencies are built.
