file(REMOVE_RECURSE
  "CMakeFiles/cellscope_geo.dir/census.cc.o"
  "CMakeFiles/cellscope_geo.dir/census.cc.o.d"
  "CMakeFiles/cellscope_geo.dir/oac.cc.o"
  "CMakeFiles/cellscope_geo.dir/oac.cc.o.d"
  "CMakeFiles/cellscope_geo.dir/uk_model.cc.o"
  "CMakeFiles/cellscope_geo.dir/uk_model.cc.o.d"
  "libcellscope_geo.a"
  "libcellscope_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellscope_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
