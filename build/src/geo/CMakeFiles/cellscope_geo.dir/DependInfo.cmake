
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/census.cc" "src/geo/CMakeFiles/cellscope_geo.dir/census.cc.o" "gcc" "src/geo/CMakeFiles/cellscope_geo.dir/census.cc.o.d"
  "/root/repo/src/geo/oac.cc" "src/geo/CMakeFiles/cellscope_geo.dir/oac.cc.o" "gcc" "src/geo/CMakeFiles/cellscope_geo.dir/oac.cc.o.d"
  "/root/repo/src/geo/uk_model.cc" "src/geo/CMakeFiles/cellscope_geo.dir/uk_model.cc.o" "gcc" "src/geo/CMakeFiles/cellscope_geo.dir/uk_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cellscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
