
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/place.cc" "src/mobility/CMakeFiles/cellscope_mobility.dir/place.cc.o" "gcc" "src/mobility/CMakeFiles/cellscope_mobility.dir/place.cc.o.d"
  "/root/repo/src/mobility/policy.cc" "src/mobility/CMakeFiles/cellscope_mobility.dir/policy.cc.o" "gcc" "src/mobility/CMakeFiles/cellscope_mobility.dir/policy.cc.o.d"
  "/root/repo/src/mobility/relocation.cc" "src/mobility/CMakeFiles/cellscope_mobility.dir/relocation.cc.o" "gcc" "src/mobility/CMakeFiles/cellscope_mobility.dir/relocation.cc.o.d"
  "/root/repo/src/mobility/trajectory.cc" "src/mobility/CMakeFiles/cellscope_mobility.dir/trajectory.cc.o" "gcc" "src/mobility/CMakeFiles/cellscope_mobility.dir/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cellscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cellscope_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/cellscope_population.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
