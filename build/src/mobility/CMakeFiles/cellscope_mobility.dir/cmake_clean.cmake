file(REMOVE_RECURSE
  "CMakeFiles/cellscope_mobility.dir/place.cc.o"
  "CMakeFiles/cellscope_mobility.dir/place.cc.o.d"
  "CMakeFiles/cellscope_mobility.dir/policy.cc.o"
  "CMakeFiles/cellscope_mobility.dir/policy.cc.o.d"
  "CMakeFiles/cellscope_mobility.dir/relocation.cc.o"
  "CMakeFiles/cellscope_mobility.dir/relocation.cc.o.d"
  "CMakeFiles/cellscope_mobility.dir/trajectory.cc.o"
  "CMakeFiles/cellscope_mobility.dir/trajectory.cc.o.d"
  "libcellscope_mobility.a"
  "libcellscope_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellscope_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
