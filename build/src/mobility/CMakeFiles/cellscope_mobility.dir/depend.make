# Empty dependencies file for cellscope_mobility.
# This may be replaced when dependencies are built.
