file(REMOVE_RECURSE
  "libcellscope_mobility.a"
)
