file(REMOVE_RECURSE
  "CMakeFiles/cellscope_sim.dir/scenario.cc.o"
  "CMakeFiles/cellscope_sim.dir/scenario.cc.o.d"
  "CMakeFiles/cellscope_sim.dir/simulator.cc.o"
  "CMakeFiles/cellscope_sim.dir/simulator.cc.o.d"
  "libcellscope_sim.a"
  "libcellscope_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellscope_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
