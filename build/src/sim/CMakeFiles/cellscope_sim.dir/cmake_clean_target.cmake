file(REMOVE_RECURSE
  "libcellscope_sim.a"
)
