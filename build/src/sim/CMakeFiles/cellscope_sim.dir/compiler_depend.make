# Empty compiler generated dependencies file for cellscope_sim.
# This may be replaced when dependencies are built.
