file(REMOVE_RECURSE
  "CMakeFiles/cellscope_traffic.dir/apps.cc.o"
  "CMakeFiles/cellscope_traffic.dir/apps.cc.o.d"
  "CMakeFiles/cellscope_traffic.dir/core_network.cc.o"
  "CMakeFiles/cellscope_traffic.dir/core_network.cc.o.d"
  "CMakeFiles/cellscope_traffic.dir/demand.cc.o"
  "CMakeFiles/cellscope_traffic.dir/demand.cc.o.d"
  "CMakeFiles/cellscope_traffic.dir/interconnect.cc.o"
  "CMakeFiles/cellscope_traffic.dir/interconnect.cc.o.d"
  "CMakeFiles/cellscope_traffic.dir/voice.cc.o"
  "CMakeFiles/cellscope_traffic.dir/voice.cc.o.d"
  "libcellscope_traffic.a"
  "libcellscope_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellscope_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
