# Empty dependencies file for cellscope_traffic.
# This may be replaced when dependencies are built.
