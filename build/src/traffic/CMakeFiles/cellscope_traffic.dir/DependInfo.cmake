
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/apps.cc" "src/traffic/CMakeFiles/cellscope_traffic.dir/apps.cc.o" "gcc" "src/traffic/CMakeFiles/cellscope_traffic.dir/apps.cc.o.d"
  "/root/repo/src/traffic/core_network.cc" "src/traffic/CMakeFiles/cellscope_traffic.dir/core_network.cc.o" "gcc" "src/traffic/CMakeFiles/cellscope_traffic.dir/core_network.cc.o.d"
  "/root/repo/src/traffic/demand.cc" "src/traffic/CMakeFiles/cellscope_traffic.dir/demand.cc.o" "gcc" "src/traffic/CMakeFiles/cellscope_traffic.dir/demand.cc.o.d"
  "/root/repo/src/traffic/interconnect.cc" "src/traffic/CMakeFiles/cellscope_traffic.dir/interconnect.cc.o" "gcc" "src/traffic/CMakeFiles/cellscope_traffic.dir/interconnect.cc.o.d"
  "/root/repo/src/traffic/voice.cc" "src/traffic/CMakeFiles/cellscope_traffic.dir/voice.cc.o" "gcc" "src/traffic/CMakeFiles/cellscope_traffic.dir/voice.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cellscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cellscope_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/cellscope_population.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/cellscope_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/cellscope_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
