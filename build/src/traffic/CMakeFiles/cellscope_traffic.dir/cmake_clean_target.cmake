file(REMOVE_RECURSE
  "libcellscope_traffic.a"
)
