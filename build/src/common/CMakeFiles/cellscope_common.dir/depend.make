# Empty dependencies file for cellscope_common.
# This may be replaced when dependencies are built.
