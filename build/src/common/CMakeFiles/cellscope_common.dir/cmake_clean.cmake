file(REMOVE_RECURSE
  "CMakeFiles/cellscope_common.dir/geodesy.cc.o"
  "CMakeFiles/cellscope_common.dir/geodesy.cc.o.d"
  "CMakeFiles/cellscope_common.dir/rng.cc.o"
  "CMakeFiles/cellscope_common.dir/rng.cc.o.d"
  "CMakeFiles/cellscope_common.dir/simtime.cc.o"
  "CMakeFiles/cellscope_common.dir/simtime.cc.o.d"
  "CMakeFiles/cellscope_common.dir/stats.cc.o"
  "CMakeFiles/cellscope_common.dir/stats.cc.o.d"
  "CMakeFiles/cellscope_common.dir/table.cc.o"
  "CMakeFiles/cellscope_common.dir/table.cc.o.d"
  "CMakeFiles/cellscope_common.dir/timeseries.cc.o"
  "CMakeFiles/cellscope_common.dir/timeseries.cc.o.d"
  "libcellscope_common.a"
  "libcellscope_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellscope_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
