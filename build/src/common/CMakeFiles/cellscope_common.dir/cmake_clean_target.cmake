file(REMOVE_RECURSE
  "libcellscope_common.a"
)
