# Empty dependencies file for cellscope_analysis.
# This may be replaced when dependencies are built.
