
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/aggregation.cc" "src/analysis/CMakeFiles/cellscope_analysis.dir/aggregation.cc.o" "gcc" "src/analysis/CMakeFiles/cellscope_analysis.dir/aggregation.cc.o.d"
  "/root/repo/src/analysis/correlation.cc" "src/analysis/CMakeFiles/cellscope_analysis.dir/correlation.cc.o" "gcc" "src/analysis/CMakeFiles/cellscope_analysis.dir/correlation.cc.o.d"
  "/root/repo/src/analysis/distribution.cc" "src/analysis/CMakeFiles/cellscope_analysis.dir/distribution.cc.o" "gcc" "src/analysis/CMakeFiles/cellscope_analysis.dir/distribution.cc.o.d"
  "/root/repo/src/analysis/export.cc" "src/analysis/CMakeFiles/cellscope_analysis.dir/export.cc.o" "gcc" "src/analysis/CMakeFiles/cellscope_analysis.dir/export.cc.o.d"
  "/root/repo/src/analysis/home_detection.cc" "src/analysis/CMakeFiles/cellscope_analysis.dir/home_detection.cc.o" "gcc" "src/analysis/CMakeFiles/cellscope_analysis.dir/home_detection.cc.o.d"
  "/root/repo/src/analysis/import.cc" "src/analysis/CMakeFiles/cellscope_analysis.dir/import.cc.o" "gcc" "src/analysis/CMakeFiles/cellscope_analysis.dir/import.cc.o.d"
  "/root/repo/src/analysis/mobility_matrix.cc" "src/analysis/CMakeFiles/cellscope_analysis.dir/mobility_matrix.cc.o" "gcc" "src/analysis/CMakeFiles/cellscope_analysis.dir/mobility_matrix.cc.o.d"
  "/root/repo/src/analysis/mobility_metrics.cc" "src/analysis/CMakeFiles/cellscope_analysis.dir/mobility_metrics.cc.o" "gcc" "src/analysis/CMakeFiles/cellscope_analysis.dir/mobility_metrics.cc.o.d"
  "/root/repo/src/analysis/network_metrics.cc" "src/analysis/CMakeFiles/cellscope_analysis.dir/network_metrics.cc.o" "gcc" "src/analysis/CMakeFiles/cellscope_analysis.dir/network_metrics.cc.o.d"
  "/root/repo/src/analysis/signaling_series.cc" "src/analysis/CMakeFiles/cellscope_analysis.dir/signaling_series.cc.o" "gcc" "src/analysis/CMakeFiles/cellscope_analysis.dir/signaling_series.cc.o.d"
  "/root/repo/src/analysis/validation.cc" "src/analysis/CMakeFiles/cellscope_analysis.dir/validation.cc.o" "gcc" "src/analysis/CMakeFiles/cellscope_analysis.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cellscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cellscope_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/cellscope_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/cellscope_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/cellscope_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/cellscope_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/cellscope_population.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
