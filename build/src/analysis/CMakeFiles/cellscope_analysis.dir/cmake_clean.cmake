file(REMOVE_RECURSE
  "CMakeFiles/cellscope_analysis.dir/aggregation.cc.o"
  "CMakeFiles/cellscope_analysis.dir/aggregation.cc.o.d"
  "CMakeFiles/cellscope_analysis.dir/correlation.cc.o"
  "CMakeFiles/cellscope_analysis.dir/correlation.cc.o.d"
  "CMakeFiles/cellscope_analysis.dir/distribution.cc.o"
  "CMakeFiles/cellscope_analysis.dir/distribution.cc.o.d"
  "CMakeFiles/cellscope_analysis.dir/export.cc.o"
  "CMakeFiles/cellscope_analysis.dir/export.cc.o.d"
  "CMakeFiles/cellscope_analysis.dir/home_detection.cc.o"
  "CMakeFiles/cellscope_analysis.dir/home_detection.cc.o.d"
  "CMakeFiles/cellscope_analysis.dir/import.cc.o"
  "CMakeFiles/cellscope_analysis.dir/import.cc.o.d"
  "CMakeFiles/cellscope_analysis.dir/mobility_matrix.cc.o"
  "CMakeFiles/cellscope_analysis.dir/mobility_matrix.cc.o.d"
  "CMakeFiles/cellscope_analysis.dir/mobility_metrics.cc.o"
  "CMakeFiles/cellscope_analysis.dir/mobility_metrics.cc.o.d"
  "CMakeFiles/cellscope_analysis.dir/network_metrics.cc.o"
  "CMakeFiles/cellscope_analysis.dir/network_metrics.cc.o.d"
  "CMakeFiles/cellscope_analysis.dir/signaling_series.cc.o"
  "CMakeFiles/cellscope_analysis.dir/signaling_series.cc.o.d"
  "CMakeFiles/cellscope_analysis.dir/validation.cc.o"
  "CMakeFiles/cellscope_analysis.dir/validation.cc.o.d"
  "libcellscope_analysis.a"
  "libcellscope_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellscope_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
