file(REMOVE_RECURSE
  "libcellscope_analysis.a"
)
