file(REMOVE_RECURSE
  "libcellscope_population.a"
)
