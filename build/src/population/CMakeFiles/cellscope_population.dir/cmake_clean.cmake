file(REMOVE_RECURSE
  "CMakeFiles/cellscope_population.dir/device.cc.o"
  "CMakeFiles/cellscope_population.dir/device.cc.o.d"
  "CMakeFiles/cellscope_population.dir/generator.cc.o"
  "CMakeFiles/cellscope_population.dir/generator.cc.o.d"
  "libcellscope_population.a"
  "libcellscope_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellscope_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
