
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/population/device.cc" "src/population/CMakeFiles/cellscope_population.dir/device.cc.o" "gcc" "src/population/CMakeFiles/cellscope_population.dir/device.cc.o.d"
  "/root/repo/src/population/generator.cc" "src/population/CMakeFiles/cellscope_population.dir/generator.cc.o" "gcc" "src/population/CMakeFiles/cellscope_population.dir/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cellscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cellscope_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
