# Empty compiler generated dependencies file for cellscope_population.
# This may be replaced when dependencies are built.
