file(REMOVE_RECURSE
  "libcellscope_radio.a"
)
