# Empty dependencies file for cellscope_radio.
# This may be replaced when dependencies are built.
