file(REMOVE_RECURSE
  "CMakeFiles/cellscope_radio.dir/scheduler.cc.o"
  "CMakeFiles/cellscope_radio.dir/scheduler.cc.o.d"
  "CMakeFiles/cellscope_radio.dir/topology.cc.o"
  "CMakeFiles/cellscope_radio.dir/topology.cc.o.d"
  "libcellscope_radio.a"
  "libcellscope_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellscope_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
