# Empty compiler generated dependencies file for test_oac.
# This may be replaced when dependencies are built.
