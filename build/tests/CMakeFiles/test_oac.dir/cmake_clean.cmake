file(REMOVE_RECURSE
  "CMakeFiles/test_oac.dir/test_oac.cc.o"
  "CMakeFiles/test_oac.dir/test_oac.cc.o.d"
  "test_oac"
  "test_oac.pdb"
  "test_oac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
