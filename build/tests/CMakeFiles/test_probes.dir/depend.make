# Empty dependencies file for test_probes.
# This may be replaced when dependencies are built.
