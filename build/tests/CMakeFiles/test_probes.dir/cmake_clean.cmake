file(REMOVE_RECURSE
  "CMakeFiles/test_probes.dir/test_probes.cc.o"
  "CMakeFiles/test_probes.dir/test_probes.cc.o.d"
  "test_probes"
  "test_probes.pdb"
  "test_probes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
