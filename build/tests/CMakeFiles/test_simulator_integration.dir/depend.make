# Empty dependencies file for test_simulator_integration.
# This may be replaced when dependencies are built.
