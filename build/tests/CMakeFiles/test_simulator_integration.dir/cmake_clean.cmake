file(REMOVE_RECURSE
  "CMakeFiles/test_simulator_integration.dir/test_simulator_integration.cc.o"
  "CMakeFiles/test_simulator_integration.dir/test_simulator_integration.cc.o.d"
  "test_simulator_integration"
  "test_simulator_integration.pdb"
  "test_simulator_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulator_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
