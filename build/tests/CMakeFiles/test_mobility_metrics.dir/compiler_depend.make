# Empty compiler generated dependencies file for test_mobility_metrics.
# This may be replaced when dependencies are built.
