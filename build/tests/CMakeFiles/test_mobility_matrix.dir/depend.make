# Empty dependencies file for test_mobility_matrix.
# This may be replaced when dependencies are built.
