file(REMOVE_RECURSE
  "CMakeFiles/test_mobility_matrix.dir/test_mobility_matrix.cc.o"
  "CMakeFiles/test_mobility_matrix.dir/test_mobility_matrix.cc.o.d"
  "test_mobility_matrix"
  "test_mobility_matrix.pdb"
  "test_mobility_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mobility_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
