# Empty dependencies file for test_uk_model.
# This may be replaced when dependencies are built.
