file(REMOVE_RECURSE
  "CMakeFiles/test_uk_model.dir/test_uk_model.cc.o"
  "CMakeFiles/test_uk_model.dir/test_uk_model.cc.o.d"
  "test_uk_model"
  "test_uk_model.pdb"
  "test_uk_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uk_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
