file(REMOVE_RECURSE
  "CMakeFiles/test_signaling_series.dir/test_signaling_series.cc.o"
  "CMakeFiles/test_signaling_series.dir/test_signaling_series.cc.o.d"
  "test_signaling_series"
  "test_signaling_series.pdb"
  "test_signaling_series[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signaling_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
