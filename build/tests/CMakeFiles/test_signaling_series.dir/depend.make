# Empty dependencies file for test_signaling_series.
# This may be replaced when dependencies are built.
