file(REMOVE_RECURSE
  "CMakeFiles/test_home_detection.dir/test_home_detection.cc.o"
  "CMakeFiles/test_home_detection.dir/test_home_detection.cc.o.d"
  "test_home_detection"
  "test_home_detection.pdb"
  "test_home_detection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_home_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
