file(REMOVE_RECURSE
  "CMakeFiles/test_relocation.dir/test_relocation.cc.o"
  "CMakeFiles/test_relocation.dir/test_relocation.cc.o.d"
  "test_relocation"
  "test_relocation.pdb"
  "test_relocation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
