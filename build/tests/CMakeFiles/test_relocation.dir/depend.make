# Empty dependencies file for test_relocation.
# This may be replaced when dependencies are built.
