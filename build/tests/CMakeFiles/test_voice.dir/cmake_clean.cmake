file(REMOVE_RECURSE
  "CMakeFiles/test_voice.dir/test_voice.cc.o"
  "CMakeFiles/test_voice.dir/test_voice.cc.o.d"
  "test_voice"
  "test_voice.pdb"
  "test_voice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_voice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
