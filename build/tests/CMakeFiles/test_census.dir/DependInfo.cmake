
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_census.cc" "tests/CMakeFiles/test_census.dir/test_census.cc.o" "gcc" "tests/CMakeFiles/test_census.dir/test_census.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cellscope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cellscope_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/cellscope_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/cellscope_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/cellscope_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/cellscope_population.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/cellscope_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cellscope_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cellscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
