# Empty compiler generated dependencies file for test_core_network.
# This may be replaced when dependencies are built.
