file(REMOVE_RECURSE
  "CMakeFiles/test_core_network.dir/test_core_network.cc.o"
  "CMakeFiles/test_core_network.dir/test_core_network.cc.o.d"
  "test_core_network"
  "test_core_network.pdb"
  "test_core_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
