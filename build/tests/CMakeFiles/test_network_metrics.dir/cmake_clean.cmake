file(REMOVE_RECURSE
  "CMakeFiles/test_network_metrics.dir/test_network_metrics.cc.o"
  "CMakeFiles/test_network_metrics.dir/test_network_metrics.cc.o.d"
  "test_network_metrics"
  "test_network_metrics.pdb"
  "test_network_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
