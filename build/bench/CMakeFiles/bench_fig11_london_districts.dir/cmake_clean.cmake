file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_london_districts.dir/bench_fig11_london_districts.cpp.o"
  "CMakeFiles/bench_fig11_london_districts.dir/bench_fig11_london_districts.cpp.o.d"
  "bench_fig11_london_districts"
  "bench_fig11_london_districts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_london_districts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
