# Empty dependencies file for bench_fig11_london_districts.
# This may be replaced when dependencies are built.
