# Empty compiler generated dependencies file for bench_fig12_london_geodemo.
# This may be replaced when dependencies are built.
