file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_london_geodemo.dir/bench_fig12_london_geodemo.cpp.o"
  "CMakeFiles/bench_fig12_london_geodemo.dir/bench_fig12_london_geodemo.cpp.o.d"
  "bench_fig12_london_geodemo"
  "bench_fig12_london_geodemo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_london_geodemo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
