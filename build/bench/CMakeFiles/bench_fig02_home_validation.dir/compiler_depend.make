# Empty compiler generated dependencies file for bench_fig02_home_validation.
# This may be replaced when dependencies are built.
