# Empty dependencies file for bench_fig03_national_mobility.
# This may be replaced when dependencies are built.
