# Empty compiler generated dependencies file for bench_fig05_regional_mobility.
# This may be replaced when dependencies are built.
