# Empty compiler generated dependencies file for bench_ext_year_rewind.
# This may be replaced when dependencies are built.
