file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_year_rewind.dir/bench_ext_year_rewind.cpp.o"
  "CMakeFiles/bench_ext_year_rewind.dir/bench_ext_year_rewind.cpp.o.d"
  "bench_ext_year_rewind"
  "bench_ext_year_rewind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_year_rewind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
