# Empty compiler generated dependencies file for bench_fig10_geodemo_network.
# This may be replaced when dependencies are built.
