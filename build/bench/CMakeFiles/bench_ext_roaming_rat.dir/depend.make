# Empty dependencies file for bench_ext_roaming_rat.
# This may be replaced when dependencies are built.
