file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_roaming_rat.dir/bench_ext_roaming_rat.cpp.o"
  "CMakeFiles/bench_ext_roaming_rat.dir/bench_ext_roaming_rat.cpp.o.d"
  "bench_ext_roaming_rat"
  "bench_ext_roaming_rat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_roaming_rat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
