# Empty dependencies file for bench_fig06_geodemo_mobility.
# This may be replaced when dependencies are built.
