# Empty dependencies file for bench_fig04_entropy_vs_cases.
# This may be replaced when dependencies are built.
