file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_entropy_vs_cases.dir/bench_fig04_entropy_vs_cases.cpp.o"
  "CMakeFiles/bench_fig04_entropy_vs_cases.dir/bench_fig04_entropy_vs_cases.cpp.o.d"
  "bench_fig04_entropy_vs_cases"
  "bench_fig04_entropy_vs_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_entropy_vs_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
