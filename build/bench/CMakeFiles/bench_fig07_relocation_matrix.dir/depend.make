# Empty dependencies file for bench_fig07_relocation_matrix.
# This may be replaced when dependencies are built.
