# Empty dependencies file for bench_ext_signaling.
# This may be replaced when dependencies are built.
