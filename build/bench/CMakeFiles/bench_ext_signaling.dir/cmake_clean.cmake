file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_signaling.dir/bench_ext_signaling.cpp.o"
  "CMakeFiles/bench_ext_signaling.dir/bench_ext_signaling.cpp.o.d"
  "bench_ext_signaling"
  "bench_ext_signaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_signaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
