file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_voice_traffic.dir/bench_fig09_voice_traffic.cpp.o"
  "CMakeFiles/bench_fig09_voice_traffic.dir/bench_fig09_voice_traffic.cpp.o.d"
  "bench_fig09_voice_traffic"
  "bench_fig09_voice_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_voice_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
