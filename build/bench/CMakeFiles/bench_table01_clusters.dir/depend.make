# Empty dependencies file for bench_table01_clusters.
# This may be replaced when dependencies are built.
