file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_legacy_rats.dir/bench_ext_legacy_rats.cpp.o"
  "CMakeFiles/bench_ext_legacy_rats.dir/bench_ext_legacy_rats.cpp.o.d"
  "bench_ext_legacy_rats"
  "bench_ext_legacy_rats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_legacy_rats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
