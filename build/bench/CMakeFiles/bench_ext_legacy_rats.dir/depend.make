# Empty dependencies file for bench_ext_legacy_rats.
# This may be replaced when dependencies are built.
