#include "geo/census.h"

namespace cellscope::geo {

std::vector<LadPopulationRow> census_by_lad(const UkGeography& geography) {
  std::vector<LadPopulationRow> rows;
  rows.reserve(geography.lads().size());
  for (const auto& lad : geography.lads())
    rows.push_back({lad.id, lad.name, lad.census_population});
  return rows;
}

double expected_market_share(const UkGeography& geography,
                             std::int64_t subscriber_count) {
  const auto total = geography.census_total();
  if (total <= 0) return 0.0;
  return static_cast<double>(subscriber_count) / static_cast<double>(total);
}

}  // namespace cellscope::geo
