// UK administrative hierarchy records.
//
// The paper aggregates everything "at postcode level or larger granularity"
// and analyses four geographies: postcode districts (Fig 11), Local
// Authority Districts (Fig 2), counties (Fig 7) and named regions / the
// whole UK (Figs 3, 5, 8). This header defines the records of our synthetic
// National Statistics Postcode Lookup (NSPL) equivalent; geo/uk_model.h
// builds a consistent instance of it.
#pragma once

#include <cstdint>
#include <string>

#include "common/geodesy.h"
#include "common/ids.h"
#include "geo/oac.h"

namespace cellscope::geo {

// The five high-user-count analysis regions of Sections 3.2 / 4.3, plus the
// rest of the country. "UK - all regions" is represented by aggregating all.
enum class Region : std::uint8_t {
  kInnerLondon = 0,
  kOuterLondon,
  kGreaterManchester,
  kWestMidlands,
  kWestYorkshire,
  kRestOfUk,
};
inline constexpr int kRegionCount = 6;

[[nodiscard]] std::string_view region_name(Region region);

// Density archetype of a county; drives site density, place layout and the
// census synthesis.
enum class UrbanProfile : std::uint8_t {
  kMetroCore = 0,  // dense city centre (Inner London)
  kMetro,          // large conurbation
  kTown,           // towns + suburbs
  kRural,          // countryside, low density
};

struct CountyInfo {
  CountyId id;
  std::string name;
  Region region = Region::kRestOfUk;
  LatLon center;
  UrbanProfile profile = UrbanProfile::kTown;
  // Synthetic ONS resident count (ground truth for Fig 2 / market share).
  std::int64_t census_population = 0;
  // Relative attractiveness for weekend trips / temporary relocation from
  // London (Fig 7's receiving counties: Hampshire, Kent, East Sussex...).
  double getaway_attraction = 0.0;
};

struct LadInfo {
  LadId id;
  std::string name;
  CountyId county;
  std::int64_t census_population = 0;
};

struct DistrictInfo {
  PostcodeDistrictId id;
  std::string name;  // e.g. "EC", "WC", "M-03"
  LadId lad;
  CountyId county;
  Region region = Region::kRestOfUk;
  LatLon center;
  double radius_km = 2.0;      // districts are modeled as discs
  std::int64_t residents = 0;  // census residents
  // Daytime pull of the district for work / leisure trips, relative to
  // residents (EC/WC: huge; dormitory suburbs: small).
  double job_weight = 0.0;
  double visitor_weight = 0.0;
  OacCluster cluster = OacCluster::kUrbanites;
};

}  // namespace cellscope::geo
