// Synthetic UK geography.
//
// Builds a deterministic, internally consistent stand-in for the UK datasets
// the paper joins against: the NSPL postcode lookup, the LAD/county/region
// hierarchy, ONS census populations and the 2011 OAC cluster labels.
//
// The model is topologically faithful rather than geometrically exact:
//  * the 15 counties carry (approximately) real names, centroids, census
//    populations and density profiles;
//  * Inner London's postcode districts are the eight real postal areas
//    (EC, WC, N, E, SE, SW, W, NW) with the paper's stated contrasts (EC has
//    ~30k residents vs ~400k in SW, EC/WC are business/tourist-heavy);
//  * OAC supergroup mixes match the paper's statements (Inner London is
//    ~45% Cosmopolitans + ~50% Ethnicity Central; the named getaway
//    counties host Rural Residents / Suburbanites).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "geo/admin.h"

namespace cellscope::geo {

struct GeographyConfig {
  // Scales every census population (1.0 = the built-in ~29M-person UK
  // subset). Lowering it shrinks district counts proportionally.
  double population_scale = 1.0;
  // RNG stream for procedural LAD/district layout outside Inner London.
  std::uint64_t seed = 2020;
};

class UkGeography {
 public:
  // Builds the full synthetic UK.
  static UkGeography build(const GeographyConfig& config = {});

  [[nodiscard]] const std::vector<CountyInfo>& counties() const {
    return counties_;
  }
  [[nodiscard]] const std::vector<LadInfo>& lads() const { return lads_; }
  [[nodiscard]] const std::vector<DistrictInfo>& districts() const {
    return districts_;
  }

  [[nodiscard]] const CountyInfo& county(CountyId id) const;
  [[nodiscard]] const LadInfo& lad(LadId id) const;
  [[nodiscard]] const DistrictInfo& district(PostcodeDistrictId id) const;

  [[nodiscard]] std::optional<CountyId> county_by_name(
      std::string_view name) const;
  [[nodiscard]] std::optional<PostcodeDistrictId> district_by_name(
      std::string_view name) const;

  // Districts of one LAD / county / region, in id order.
  [[nodiscard]] std::vector<PostcodeDistrictId> districts_in(LadId lad) const;
  [[nodiscard]] std::vector<PostcodeDistrictId> districts_in(
      CountyId county) const;
  [[nodiscard]] std::vector<PostcodeDistrictId> districts_in(
      Region region) const;

  [[nodiscard]] Region region_of(CountyId county) const;

  // Total synthetic census population.
  [[nodiscard]] std::int64_t census_total() const;

  // Fraction of the national census population resident in each district;
  // used to place subscribers (index = district id value).
  [[nodiscard]] std::vector<double> resident_weights() const;

 private:
  std::vector<CountyInfo> counties_;
  std::vector<LadInfo> lads_;
  std::vector<DistrictInfo> districts_;
};

}  // namespace cellscope::geo
