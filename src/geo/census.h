// Synthetic ONS census views.
//
// Figure 2 of the paper validates home detection by comparing the inferred
// per-LAD subscriber counts against ONS population estimates. This header
// exposes the synthetic geography's census as the same per-LAD table, plus
// the market-share arithmetic the comparison needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "geo/uk_model.h"

namespace cellscope::geo {

struct LadPopulationRow {
  LadId lad;
  std::string name;
  std::int64_t census_population = 0;
};

// Per-LAD census table in LAD id order.
[[nodiscard]] std::vector<LadPopulationRow> census_by_lad(
    const UkGeography& geography);

// Expected MNO market share implied by a subscriber count: the slope the
// Fig 2 fit should recover when home detection is unbiased.
[[nodiscard]] double expected_market_share(const UkGeography& geography,
                                           std::int64_t subscriber_count);

}  // namespace cellscope::geo
