#include "geo/uk_model.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <unordered_map>

namespace cellscope::geo {

namespace {

struct CountySpec {
  std::string_view name;
  Region region;
  LatLon center;
  UrbanProfile profile;
  std::int64_t population;
  double getaway;
  // Cluster mix for procedurally generated districts (ignored for Inner
  // London, which is hand-built). Order matches OacCluster.
  std::array<double, kOacClusterCount> cluster_weights;
};

// Column order of cluster_weights:
//   Rural, Cosmo, EthCentral, MultiMetro, Urbanites, Suburb, Constrained, HardPressed
constexpr std::array<CountySpec, 15> kCounties = {{
    {"Inner London", Region::kInnerLondon, {51.515, -0.09},
     UrbanProfile::kMetroCore, 3'200'000, 0.0,
     {0, 0, 0, 0, 0, 0, 0, 0}},  // hand-built
    {"Outer London", Region::kOuterLondon, {51.55, -0.25},
     UrbanProfile::kMetro, 5'200'000, 0.0,
     {0.00, 0.02, 0.04, 0.42, 0.18, 0.26, 0.08, 0.00}},
    {"Greater Manchester", Region::kGreaterManchester, {53.48, -2.24},
     UrbanProfile::kMetro, 2'800'000, 0.0,
     {0.00, 0.08, 0.03, 0.28, 0.12, 0.16, 0.14, 0.19}},
    {"West Midlands", Region::kWestMidlands, {52.48, -1.90},
     UrbanProfile::kMetro, 2'900'000, 0.0,
     {0.00, 0.06, 0.04, 0.32, 0.10, 0.16, 0.14, 0.18}},
    {"West Yorkshire", Region::kWestYorkshire, {53.80, -1.55},
     UrbanProfile::kMetro, 2'300'000, 0.0,
     {0.02, 0.06, 0.02, 0.24, 0.12, 0.18, 0.14, 0.22}},
    {"Hampshire", Region::kRestOfUk, {51.06, -1.31}, UrbanProfile::kTown,
     1'800'000, 1.00,
     {0.16, 0.01, 0.00, 0.06, 0.30, 0.34, 0.05, 0.08}},
    {"Kent", Region::kRestOfUk, {51.28, 0.52}, UrbanProfile::kTown,
     1'800'000, 0.70,
     {0.14, 0.01, 0.00, 0.08, 0.26, 0.32, 0.07, 0.12}},
    {"Essex", Region::kRestOfUk, {51.73, 0.47}, UrbanProfile::kTown,
     1'800'000, 0.40,
     {0.10, 0.01, 0.00, 0.10, 0.28, 0.34, 0.07, 0.10}},
    {"Surrey", Region::kRestOfUk, {51.24, -0.57}, UrbanProfile::kTown,
     1'200'000, 0.40,
     {0.10, 0.02, 0.00, 0.06, 0.36, 0.40, 0.03, 0.03}},
    {"East Sussex", Region::kRestOfUk, {50.92, 0.25}, UrbanProfile::kRural,
     850'000, 0.80,
     {0.34, 0.01, 0.00, 0.03, 0.26, 0.26, 0.05, 0.05}},
    {"Hertfordshire", Region::kRestOfUk, {51.81, -0.20}, UrbanProfile::kTown,
     1'200'000, 0.30,
     {0.10, 0.01, 0.00, 0.10, 0.34, 0.36, 0.04, 0.05}},
    {"Berkshire", Region::kRestOfUk, {51.45, -0.97}, UrbanProfile::kTown,
     900'000, 0.25,
     {0.08, 0.02, 0.00, 0.10, 0.38, 0.34, 0.04, 0.04}},
    {"Lancashire", Region::kRestOfUk, {53.76, -2.70}, UrbanProfile::kTown,
     1'500'000, 0.10,
     {0.14, 0.01, 0.00, 0.08, 0.22, 0.26, 0.09, 0.20}},
    {"Devon", Region::kRestOfUk, {50.72, -3.53}, UrbanProfile::kRural,
     800'000, 0.50,
     {0.44, 0.01, 0.00, 0.02, 0.22, 0.22, 0.04, 0.05}},
    {"Norfolk", Region::kRestOfUk, {52.63, 1.30}, UrbanProfile::kRural,
     900'000, 0.45,
     {0.42, 0.01, 0.00, 0.02, 0.22, 0.22, 0.05, 0.06}},
}};

// Hand-built Inner London: the eight postal areas become LADs; each postal
// area contains numbered postcode districts (EC1.., N1..). Residents follow
// the paper's Section 5.1 contrast (EC ~30k vs SW ~400k).
struct LondonAreaSpec {
  std::string_view name;
  std::int64_t residents;
  int district_count;
  double job_weight;      // per-district daytime work pull
  double visitor_weight;  // per-district leisure/tourist pull
  double east_km;         // offset of the area centre from the county centre
  double north_km;
  // Cluster counts: cosmopolitans / ethnicity-central / multicultural.
  int n_cosmo;
  int n_eth;
  int n_multi;
};

// 25 districts total: 11 Cosmopolitans (44%), 13 Ethnicity Central (52%),
// 1 Multicultural Metropolitans (4%) — matching Section 4.4's "~45% of
// postcode areas cluster within Cosmopolitans, ~50% in Ethnicity Central".
constexpr std::array<LondonAreaSpec, 8> kLondonAreas = {{
    {"EC", 30'000, 2, 14.0, 9.0, 1.2, 0.4, 2, 0, 0},
    {"WC", 25'000, 1, 11.0, 13.0, -0.6, 0.5, 1, 0, 0},
    {"N", 360'000, 4, 0.8, 0.7, 0.5, 6.0, 1, 3, 0},
    {"E", 420'000, 4, 1.1, 0.9, 5.5, 1.0, 0, 3, 1},
    {"SE", 430'000, 4, 0.7, 0.7, 3.5, -5.0, 1, 3, 0},
    {"SW", 400'000, 4, 0.9, 1.0, -3.5, -4.5, 3, 1, 0},
    {"W", 380'000, 3, 1.3, 1.6, -5.0, 0.5, 2, 1, 0},
    {"NW", 340'000, 3, 0.8, 0.7, -3.0, 5.0, 1, 2, 0},
}};

struct ClusterEconomics {
  double job_weight;
  double visitor_weight;
};

// Daytime pulls per cluster for procedurally generated districts.
constexpr std::array<ClusterEconomics, kOacClusterCount> kClusterEconomics = {{
    {0.30, 0.70},  // Rural Residents (leisure visitors)
    {5.00, 4.00},  // Cosmopolitans (city cores)
    {1.30, 1.20},  // Ethnicity Central
    {0.80, 0.70},  // Multicultural Metropolitans
    {0.90, 0.80},  // Urbanites
    {0.40, 0.40},  // Suburbanites
    {0.50, 0.40},  // Constrained City Dwellers
    {0.50, 0.40},  // Hard-pressed Living
}};

double lad_ring_radius_km(UrbanProfile profile) {
  switch (profile) {
    case UrbanProfile::kMetroCore: return 5.0;
    case UrbanProfile::kMetro: return 10.0;
    case UrbanProfile::kTown: return 22.0;
    case UrbanProfile::kRural: return 32.0;
  }
  return 20.0;
}

double district_radius_km(UrbanProfile profile) {
  switch (profile) {
    case UrbanProfile::kMetroCore: return 1.6;
    case UrbanProfile::kMetro: return 2.5;
    case UrbanProfile::kTown: return 4.0;
    case UrbanProfile::kRural: return 7.0;
  }
  return 3.0;
}

}  // namespace

std::string_view region_name(Region region) {
  switch (region) {
    case Region::kInnerLondon: return "Inner London";
    case Region::kOuterLondon: return "Outer London";
    case Region::kGreaterManchester: return "Greater Manchester";
    case Region::kWestMidlands: return "West Midlands";
    case Region::kWestYorkshire: return "West Yorkshire";
    case Region::kRestOfUk: return "Rest of UK";
  }
  return "?";
}

UkGeography UkGeography::build(const GeographyConfig& config) {
  if (config.population_scale <= 0.0)
    throw std::invalid_argument("GeographyConfig: population_scale must be > 0");

  UkGeography g;
  Rng rng{config.seed};
  Rng layout_rng = rng.fork("geo-layout");

  for (std::size_t ci = 0; ci < kCounties.size(); ++ci) {
    const CountySpec& spec = kCounties[ci];
    CountyInfo county;
    county.id = CountyId{static_cast<std::uint32_t>(ci)};
    county.name = std::string{spec.name};
    county.region = spec.region;
    county.center = spec.center;
    county.profile = spec.profile;
    county.census_population = static_cast<std::int64_t>(
        std::llround(double(spec.population) * config.population_scale));
    county.getaway_attraction = spec.getaway;
    g.counties_.push_back(county);

    if (spec.profile == UrbanProfile::kMetroCore) {
      // --- Hand-built Inner London ---
      for (const LondonAreaSpec& area : kLondonAreas) {
        LadInfo lad;
        lad.id = LadId{static_cast<std::uint32_t>(g.lads_.size())};
        lad.name = std::string{area.name};
        lad.county = county.id;
        lad.census_population = static_cast<std::int64_t>(
            std::llround(double(area.residents) * config.population_scale));
        const LatLon area_center =
            offset_km(spec.center, area.east_km, area.north_km);

        // Cluster sequence for this area's numbered districts.
        std::vector<OacCluster> seq;
        seq.insert(seq.end(), area.n_cosmo, OacCluster::kCosmopolitans);
        seq.insert(seq.end(), area.n_eth, OacCluster::kEthnicityCentral);
        seq.insert(seq.end(), area.n_multi,
                   OacCluster::kMulticulturalMetropolitans);
        assert(static_cast<int>(seq.size()) == area.district_count);

        // Cosmopolitan districts are the business/commercial/student cores:
        // far more daytime visitors than residents. Weight the resident
        // split away from them and boost their daytime pull.
        double share_total = 0.0;
        std::vector<double> resident_share(
            static_cast<std::size_t>(area.district_count));
        for (int d = 0; d < area.district_count; ++d) {
          resident_share[static_cast<std::size_t>(d)] =
              seq[static_cast<std::size_t>(d)] == OacCluster::kCosmopolitans
                  ? 0.42
                  : 1.0;
          share_total += resident_share[static_cast<std::size_t>(d)];
        }
        std::int64_t assigned = 0;
        for (int d = 0; d < area.district_count; ++d) {
          DistrictInfo info;
          info.id =
              PostcodeDistrictId{static_cast<std::uint32_t>(g.districts_.size())};
          info.name = std::string{area.name} + std::to_string(d + 1);
          info.lad = lad.id;
          info.county = county.id;
          info.region = spec.region;
          const double angle = 2.0 * std::numbers::pi * d /
                               std::max(1, area.district_count);
          info.center = offset_km(area_center, 1.8 * std::cos(angle),
                                  1.8 * std::sin(angle));
          info.radius_km = district_radius_km(spec.profile);
          info.residents = static_cast<std::int64_t>(
              double(lad.census_population) *
              resident_share[static_cast<std::size_t>(d)] / share_total);
          assigned += info.residents;
          info.cluster = seq[static_cast<std::size_t>(d)];
          // Central-London character: Cosmopolitan districts are dominated
          // by daytime visitors; Ethnicity Central districts also attract a
          // sizable worker/visitor inflow (Table 1: "denser central areas").
          const bool cosmo = info.cluster == OacCluster::kCosmopolitans;
          const bool eth = info.cluster == OacCluster::kEthnicityCentral;
          info.job_weight = area.job_weight * (cosmo ? 4.0 : eth ? 1.6 : 1.0);
          info.visitor_weight =
              area.visitor_weight * (cosmo ? 3.0 : eth ? 1.5 : 1.0);
          g.districts_.push_back(std::move(info));
        }
        lad.census_population = assigned;
        g.lads_.push_back(std::move(lad));
      }
      continue;
    }

    // --- Procedural counties ---
    const int lad_count = std::max<int>(
        1, static_cast<int>(std::llround(double(county.census_population) /
                                         (500'000.0 * config.population_scale))));
    // Random-but-normalized LAD population shares (flat Dirichlet via
    // exponentials).
    std::vector<double> shares(static_cast<std::size_t>(lad_count));
    double share_total = 0.0;
    for (auto& s : shares) {
      s = layout_rng.exponential(1.0) + 0.3;
      share_total += s;
    }

    const DiscreteSampler cluster_sampler{
        std::span<const double>(spec.cluster_weights)};
    const double ring = lad_ring_radius_km(spec.profile);

    for (int li = 0; li < lad_count; ++li) {
      LadInfo lad;
      lad.id = LadId{static_cast<std::uint32_t>(g.lads_.size())};
      lad.name = std::string{spec.name} + " LAD-" + std::to_string(li + 1);
      lad.county = county.id;
      lad.census_population = static_cast<std::int64_t>(std::llround(
          double(county.census_population) *
          shares[static_cast<std::size_t>(li)] / share_total));
      const double angle = 2.0 * std::numbers::pi * li / lad_count;
      const double r = li == 0 ? 0.0 : ring * (0.5 + 0.5 * layout_rng.uniform());
      const LatLon lad_center =
          offset_km(spec.center, r * std::cos(angle), r * std::sin(angle));

      const int district_count = 2 + static_cast<int>(layout_rng.uniform_index(2));
      const std::int64_t per_district =
          lad.census_population / district_count;
      lad.census_population = per_district * district_count;
      for (int d = 0; d < district_count; ++d) {
        DistrictInfo info;
        info.id =
            PostcodeDistrictId{static_cast<std::uint32_t>(g.districts_.size())};
        info.name = std::string{spec.name.substr(0, 2)} + "-" +
                    std::to_string(li + 1) + "-" + std::to_string(d + 1);
        info.lad = lad.id;
        info.county = county.id;
        info.region = spec.region;
        const double da = 2.0 * std::numbers::pi * d / district_count;
        const double dr = (spec.profile == UrbanProfile::kRural ? 9.0 : 4.0) *
                          (0.4 + 0.6 * layout_rng.uniform());
        info.center =
            offset_km(lad_center, dr * std::cos(da), dr * std::sin(da));
        info.radius_km = district_radius_km(spec.profile);
        info.residents = per_district;

        // The first district of the first LAD of a metro county is the city
        // core: force Cosmopolitans there so conurbations have a centre.
        if (spec.profile == UrbanProfile::kMetro && li == 0 && d == 0) {
          info.cluster = OacCluster::kCosmopolitans;
        } else {
          info.cluster = static_cast<OacCluster>(
              cluster_sampler.sample(layout_rng));
        }
        const ClusterEconomics& econ =
            kClusterEconomics[static_cast<int>(info.cluster)];
        info.job_weight = econ.job_weight;
        info.visitor_weight =
            econ.visitor_weight *
            (info.cluster == OacCluster::kRuralResidents
                 ? (1.0 + 1.5 * county.getaway_attraction)
                 : 1.0);
        g.districts_.push_back(std::move(info));
      }
      g.lads_.push_back(std::move(lad));
    }
  }

  // Make the hierarchy exactly consistent (rounding during the splits):
  // county census = sum of its LADs = sum of its districts.
  for (auto& county : g.counties_) county.census_population = 0;
  for (const auto& lad : g.lads_)
    g.counties_[lad.county.value()].census_population +=
        lad.census_population;
  return g;
}

const CountyInfo& UkGeography::county(CountyId id) const {
  return counties_.at(id.value());
}
const LadInfo& UkGeography::lad(LadId id) const { return lads_.at(id.value()); }
const DistrictInfo& UkGeography::district(PostcodeDistrictId id) const {
  return districts_.at(id.value());
}

std::optional<CountyId> UkGeography::county_by_name(
    std::string_view name) const {
  for (const auto& c : counties_)
    if (c.name == name) return c.id;
  return std::nullopt;
}

std::optional<PostcodeDistrictId> UkGeography::district_by_name(
    std::string_view name) const {
  for (const auto& d : districts_)
    if (d.name == name) return d.id;
  return std::nullopt;
}

std::vector<PostcodeDistrictId> UkGeography::districts_in(LadId lad) const {
  std::vector<PostcodeDistrictId> out;
  for (const auto& d : districts_)
    if (d.lad == lad) out.push_back(d.id);
  return out;
}

std::vector<PostcodeDistrictId> UkGeography::districts_in(
    CountyId county) const {
  std::vector<PostcodeDistrictId> out;
  for (const auto& d : districts_)
    if (d.county == county) out.push_back(d.id);
  return out;
}

std::vector<PostcodeDistrictId> UkGeography::districts_in(
    Region region) const {
  std::vector<PostcodeDistrictId> out;
  for (const auto& d : districts_)
    if (d.region == region) out.push_back(d.id);
  return out;
}

Region UkGeography::region_of(CountyId county_id) const {
  return county(county_id).region;
}

std::int64_t UkGeography::census_total() const {
  std::int64_t total = 0;
  for (const auto& c : counties_) total += c.census_population;
  return total;
}

std::vector<double> UkGeography::resident_weights() const {
  std::vector<double> weights(districts_.size(), 0.0);
  for (const auto& d : districts_)
    weights[d.id.value()] = static_cast<double>(d.residents);
  return weights;
}

}  // namespace cellscope::geo
