#include "geo/oac.h"

namespace cellscope::geo {

namespace {
struct ClusterRow {
  std::string_view name;
  std::string_view definition;
  OacTraits traits;
};

// Order matches the OacCluster enum. Definitions are Table 1 verbatim;
// traits encode the paper's qualitative cluster statements.
constexpr std::array<ClusterRow, kOacClusterCount> kRows = {{
    {"Rural Residents",
     "Rural areas, low density, older and educated population",
     // Wide daily ranges (Fig 6a wks 9-11 above national), regular routines,
     // few visitors, weekend/second-home inflows handled by the relocation
     // model.
     {.range_factor = 1.6,
      .variety_factor = 0.85,
      .visitor_ratio = 0.45,
      .seasonal_fraction = 0.02,
      .wfh_capable = 0.35}},
    {"Cosmopolitans",
     "Densely populated urban areas, high ethnic integration, young adults "
     "and students",
     // Small ranges, erratic visitation (Fig 6 wks 9-11), and the paper's
     // defining property for Fig 10: far more visitors than residents and a
     // large seasonal-resident share (students, tourists).
     {.range_factor = 0.62,
      .variety_factor = 1.30,
      .visitor_ratio = 3.2,
      .seasonal_fraction = 0.30,
      .wfh_capable = 0.75}},
    {"Ethnicity Central",
     "Denser central areas of London, non-white ethnic groups, young adults",
     {.range_factor = 0.66,
      .variety_factor = 1.25,
      .visitor_ratio = 1.8,
      .seasonal_fraction = 0.15,
      .wfh_capable = 0.55}},
    {"Multicultural Metropolitans",
     "Urban areas in transition between centres and suburbia, high ethnic mix",
     {.range_factor = 0.85,
      .variety_factor = 1.05,
      .visitor_ratio = 0.9,
      .seasonal_fraction = 0.04,
      .wfh_capable = 0.40}},
    {"Urbanites",
     "Urban areas mainly in southern England, average ethnic mix, low "
     "unemployment",
     {.range_factor = 1.0,
      .variety_factor = 1.0,
      .visitor_ratio = 0.9,
      .seasonal_fraction = 0.03,
      .wfh_capable = 0.60}},
    {"Suburbanites",
     "Population above retirement age and parents with school age children, "
     "low unemployment",
     {.range_factor = 1.1,
      .variety_factor = 0.9,
      .visitor_ratio = 0.6,
      .seasonal_fraction = 0.01,
      .wfh_capable = 0.55}},
    {"Constrained City Dwellers",
     "Densely populated areas, single/divorced population, higher level of "
     "unemployment",
     {.range_factor = 0.8,
      .variety_factor = 0.95,
      .visitor_ratio = 0.7,
      .seasonal_fraction = 0.02,
      .wfh_capable = 0.25}},
    {"Hard-pressed Living",
     "Urban surroundings (northern England/southern Wales), higher rates of "
     "unemployment",
     {.range_factor = 0.95,
      .variety_factor = 0.9,
      .visitor_ratio = 0.65,
      .seasonal_fraction = 0.01,
      .wfh_capable = 0.20}},
}};
}  // namespace

std::string_view oac_name(OacCluster cluster) {
  return kRows[static_cast<int>(cluster)].name;
}

std::string_view oac_definition(OacCluster cluster) {
  return kRows[static_cast<int>(cluster)].definition;
}

const OacTraits& oac_traits(OacCluster cluster) {
  return kRows[static_cast<int>(cluster)].traits;
}

}  // namespace cellscope::geo
