// 2011 Output Area Classification (OAC) supergroups.
//
// The paper's geodemographic analysis (Sections 3.3, 4.4, 5.2 and Table 1)
// groups postcode areas into the eight 2011 OAC supergroups published by the
// UK Office for National Statistics. This header reproduces Table 1 and adds
// the per-cluster behavioural descriptors the synthetic models consume.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace cellscope::geo {

enum class OacCluster : std::uint8_t {
  kRuralResidents = 0,
  kCosmopolitans,
  kEthnicityCentral,
  kMulticulturalMetropolitans,
  kUrbanites,
  kSuburbanites,
  kConstrainedCityDwellers,
  kHardPressedLiving,
};

inline constexpr int kOacClusterCount = 8;

[[nodiscard]] constexpr std::array<OacCluster, kOacClusterCount>
all_oac_clusters() {
  return {OacCluster::kRuralResidents,
          OacCluster::kCosmopolitans,
          OacCluster::kEthnicityCentral,
          OacCluster::kMulticulturalMetropolitans,
          OacCluster::kUrbanites,
          OacCluster::kSuburbanites,
          OacCluster::kConstrainedCityDwellers,
          OacCluster::kHardPressedLiving};
}

// Table 1 of the paper, verbatim.
[[nodiscard]] std::string_view oac_name(OacCluster cluster);
[[nodiscard]] std::string_view oac_definition(OacCluster cluster);

// Behavioural descriptors used by the synthetic population and mobility
// models. These encode the paper's qualitative statements about the
// clusters (Sections 3.3 and 4.4): rural areas have higher-than-average
// gyration; cosmopolitan / ethnicity-central areas have high entropy but
// small daily ranges; cosmopolitan areas host far more visitors (workers,
// students, tourists) than residents; etc.
struct OacTraits {
  // Multiplier on the typical daily travel range (gyration proxy), 1 = UK avg.
  double range_factor = 1.0;
  // Multiplier on the number/evenness of distinct places visited per day
  // (entropy proxy), 1 = UK avg.
  double variety_factor = 1.0;
  // Ratio of daytime visitor population to resident population.
  double visitor_ratio = 1.0;
  // Fraction of residents that are "seasonal" (students, long-stay tourists)
  // and likely to leave during a lockdown.
  double seasonal_fraction = 0.0;
  // Fraction of resident workers who can work from home under advice.
  double wfh_capable = 0.5;
};

[[nodiscard]] const OacTraits& oac_traits(OacCluster cluster);

}  // namespace cellscope::geo
