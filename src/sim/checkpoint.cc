#include "sim/checkpoint.h"

#include <array>
#include <utility>

#include "sim/simulator.h"

namespace cellscope::sim {

namespace {

// ------------------------------------------------------------------- save

void save_daily(const DailySeries& s, BlobWriter& w) {
  std::uint64_t entries = 0;
  if (!s.empty())
    for (SimDay day = s.first_day(); day <= s.last_day(); ++day)
      if (s.count(day) > 0) ++entries;
  w.u64(entries);
  if (s.empty()) return;
  for (SimDay day = s.first_day(); day <= s.last_day(); ++day) {
    const std::size_t count = s.count(day);
    if (count == 0) continue;
    w.i64(day);
    w.f64(s.day_sum(day));
    w.u64(count);
  }
}

void save_grouped(const analysis::GroupedDailySeries& g, BlobWriter& w) {
  w.u64(g.group_count());
  for (std::size_t i = 0; i < g.group_count(); ++i) save_daily(g.group(i), w);
}

void save_distribution(const analysis::DistributionSeries& d, BlobWriter& w) {
  std::uint64_t sealed = 0;
  if (d.first_day() <= d.last_day())
    for (SimDay day = d.first_day(); day <= d.last_day(); ++day)
      if (d.sealed_day(day)) ++sealed;
  w.u64(sealed);
  if (d.first_day() > d.last_day()) return;
  for (SimDay day = d.first_day(); day <= d.last_day(); ++day) {
    if (!d.sealed_day(day)) continue;
    const stats::Summary& s = d.day_summary(day);
    w.i64(day);
    w.u64(s.n);
    w.f64(s.mean);
    w.f64(s.p10);
    w.f64(s.p25);
    w.f64(s.median);
    w.f64(s.p75);
    w.f64(s.p90);
  }
}

// ---------------------------------------------------------------- restore

void restore_daily(DailySeries& s, BlobReader& r) {
  const std::uint64_t entries = r.u64();
  for (std::uint64_t i = 0; i < entries; ++i) {
    const auto day = static_cast<SimDay>(r.i64());
    const double sum = r.f64();
    const auto count = static_cast<std::size_t>(r.u64());
    s.restore(day, sum, count);
  }
}

void restore_grouped(analysis::GroupedDailySeries& g, BlobReader& r) {
  const std::uint64_t groups = r.u64();
  if (groups != g.group_count())
    throw BlobError{"checkpoint blob: grouped-series shape mismatch"};
  for (std::uint64_t i = 0; i < groups; ++i)
    restore_daily(g.group_mutable(static_cast<std::size_t>(i)), r);
}

void restore_distribution(analysis::DistributionSeries& d, BlobReader& r) {
  const std::uint64_t sealed = r.u64();
  for (std::uint64_t i = 0; i < sealed; ++i) {
    const auto day = static_cast<SimDay>(r.i64());
    stats::Summary s;
    s.n = static_cast<std::size_t>(r.u64());
    s.mean = r.f64();
    s.p10 = r.f64();
    s.p25 = r.f64();
    s.median = r.f64();
    s.p75 = r.f64();
    s.p90 = r.f64();
    d.restore_day(day, s);
  }
}

}  // namespace

void save_dataset_state(const Dataset& ds, BlobWriter& w) {
  // Homes + Fig 2 validation (present only once homes finalized).
  w.u64(ds.homes.size());
  for (const auto& h : ds.homes) {
    w.u32(h.user.value());
    w.u32(h.home_site.value());
    w.u32(h.home_district.value());
    w.u32(h.home_county.value());
    w.f64(h.night_hours);
    w.i64(h.nights_observed);
  }
  w.u64(ds.home_validation.points.size());
  for (const auto& p : ds.home_validation.points) {
    w.u32(p.lad.value());
    w.i64(p.census_population);
    w.i64(p.inferred_residents);
  }
  w.f64(ds.home_validation.fit.slope);
  w.f64(ds.home_validation.fit.intercept);
  w.f64(ds.home_validation.fit.r_squared);
  w.u64(ds.home_validation.fit.n);
  w.f64(ds.home_validation.expected_market_share);

  // Inner London relocation matrix.
  w.u64(ds.london_residents_tracked);
  w.u8(ds.london_matrix != nullptr ? 1 : 0);
  if (ds.london_matrix != nullptr) {
    const auto& m = *ds.london_matrix;
    w.u32(m.home_county().value());
    w.i64(m.first_day());
    w.i64(m.last_day());
    std::uint64_t presence_rows = 0;
    const auto counties = ds.geography->counties().size();
    for (std::uint32_t c = 0; c < counties; ++c)
      for (SimDay day = m.first_day(); day <= m.last_day(); ++day)
        if (m.presence(CountyId{c}, day) != 0.0) ++presence_rows;
    w.u64(presence_rows);
    for (std::uint32_t c = 0; c < counties; ++c) {
      for (SimDay day = m.first_day(); day <= m.last_day(); ++day) {
        const double presence = m.presence(CountyId{c}, day);
        if (presence == 0.0) continue;
        w.u32(c);
        w.i64(day);
        w.f64(presence);
      }
    }
    std::uint64_t observation_rows = 0;
    for (SimDay day = m.first_day(); day <= m.last_day(); ++day)
      if (m.day_observations(day) != 0) ++observation_rows;
    w.u64(observation_rows);
    for (SimDay day = m.first_day(); day <= m.last_day(); ++day) {
      const std::size_t observations = m.day_observations(day);
      if (observations == 0) continue;
      w.i64(day);
      w.u64(observations);
    }
  }

  // Mobility aggregates and interconnect/roamer diagnostics.
  save_grouped(ds.entropy_national, w);
  save_grouped(ds.gyration_national, w);
  save_grouped(ds.entropy_by_region, w);
  save_grouped(ds.gyration_by_region, w);
  save_grouped(ds.entropy_by_cluster, w);
  save_grouped(ds.gyration_by_cluster, w);
  save_grouped(ds.entropy_by_bin, w);
  save_grouped(ds.gyration_by_bin, w);
  save_daily(ds.offnet_busy_hour_minutes, w);
  save_daily(ds.interconnect_busy_hour_loss_pct, w);
  save_daily(ds.roamers_active, w);
  save_distribution(ds.gyration_distribution, w);
  save_distribution(ds.entropy_distribution, w);

  // Voice ledger.
  w.u64(ds.voice_calls.days().size());
  for (const auto& d : ds.voice_calls.days()) {
    w.i64(d.day);
    w.u64(d.attempts);
    w.u64(d.completed);
    w.u64(d.blocked);
    w.u64(d.dropped);
  }

  // Signaling probe.
  w.u64(ds.signaling.days().size());
  for (const auto& d : ds.signaling.days()) {
    w.i64(d.day);
    for (int t = 0; t < traffic::kSignalingEventTypeCount; ++t) {
      w.u64(d.total[t]);
      w.u64(d.failures[t]);
    }
  }

  // Quality ledger: feeds in creation order (the order IS state — the
  // report keeps feeds in first-touch order and dataset equality compares
  // them positionally).
  w.u64(ds.quality.feeds().size());
  for (const auto& f : ds.quality.feeds()) {
    w.bytes(f.name);
    w.u64(f.expected_records);
    w.u64(f.observed_records);
    w.u64(f.quarantined_records);
    w.u64(f.duplicate_records);
    w.u64(f.days.size());
    for (const auto& [day, counts] : f.days) {
      w.i64(day);
      w.u64(counts.expected);
      w.u64(counts.observed);
    }
  }

  // KPI rows — the dominant feed. Stored whole so resume can re-stream the
  // exact row sequence through a fresh DatasetWriter, which makes the CSF1
  // bytes a pure function of the rows and byte-identity trivial.
  w.u64(ds.kpis.records().size());
  for (const auto& rec : ds.kpis.records()) {
    w.i64(rec.day);
    w.u32(rec.cell.value());
    for (int m = 0; m < telemetry::kKpiMetricCount; ++m)
      w.f64(telemetry::kpi_value(rec, static_cast<telemetry::KpiMetric>(m)));
  }
}

void restore_dataset_state(Dataset& ds, BlobReader& r) {
  const std::uint64_t n_homes = r.u64();
  ds.homes.clear();
  ds.homes.reserve(n_homes);
  for (std::uint64_t i = 0; i < n_homes; ++i) {
    analysis::HomeRecord h;
    h.user = UserId{r.u32()};
    h.home_site = SiteId{r.u32()};
    h.home_district = PostcodeDistrictId{r.u32()};
    h.home_county = CountyId{r.u32()};
    h.night_hours = r.f64();
    h.nights_observed = static_cast<int>(r.i64());
    ds.homes.push_back(h);
  }
  const std::uint64_t n_points = r.u64();
  ds.home_validation.points.clear();
  ds.home_validation.points.reserve(n_points);
  for (std::uint64_t i = 0; i < n_points; ++i) {
    analysis::LadValidationPoint p;
    p.lad = LadId{r.u32()};
    p.census_population = r.i64();
    p.inferred_residents = r.i64();
    ds.home_validation.points.push_back(p);
  }
  ds.home_validation.fit.slope = r.f64();
  ds.home_validation.fit.intercept = r.f64();
  ds.home_validation.fit.r_squared = r.f64();
  ds.home_validation.fit.n = static_cast<std::size_t>(r.u64());
  ds.home_validation.expected_market_share = r.f64();

  ds.london_residents_tracked = static_cast<std::size_t>(r.u64());
  if (r.u8() != 0) {
    const CountyId home_county{r.u32()};
    const auto first = static_cast<SimDay>(r.i64());
    const auto last = static_cast<SimDay>(r.i64());
    ds.london_matrix = std::make_unique<analysis::MobilityMatrix>(
        *ds.geography, home_county, first, last);
    const std::uint64_t presence_rows = r.u64();
    for (std::uint64_t i = 0; i < presence_rows; ++i) {
      const std::uint32_t county = r.u32();
      const auto day = static_cast<SimDay>(r.i64());
      ds.london_matrix->restore_presence(CountyId{county}, day, r.f64());
    }
    const std::uint64_t observation_rows = r.u64();
    for (std::uint64_t i = 0; i < observation_rows; ++i) {
      const auto day = static_cast<SimDay>(r.i64());
      ds.london_matrix->restore_observations(
          day, static_cast<std::size_t>(r.u64()));
    }
  } else {
    ds.london_matrix.reset();
  }

  restore_grouped(ds.entropy_national, r);
  restore_grouped(ds.gyration_national, r);
  restore_grouped(ds.entropy_by_region, r);
  restore_grouped(ds.gyration_by_region, r);
  restore_grouped(ds.entropy_by_cluster, r);
  restore_grouped(ds.gyration_by_cluster, r);
  restore_grouped(ds.entropy_by_bin, r);
  restore_grouped(ds.gyration_by_bin, r);
  restore_daily(ds.offnet_busy_hour_minutes, r);
  restore_daily(ds.interconnect_busy_hour_loss_pct, r);
  restore_daily(ds.roamers_active, r);
  restore_distribution(ds.gyration_distribution, r);
  restore_distribution(ds.entropy_distribution, r);

  const std::uint64_t n_voice = r.u64();
  for (std::uint64_t i = 0; i < n_voice; ++i) {
    traffic::VoiceDayCalls d;
    d.day = static_cast<SimDay>(r.i64());
    d.attempts = r.u64();
    d.completed = r.u64();
    d.blocked = r.u64();
    d.dropped = r.u64();
    ds.voice_calls.record_day(d);
  }

  const std::uint64_t n_signaling = r.u64();
  for (std::uint64_t i = 0; i < n_signaling; ++i) {
    telemetry::DailySignalingCounts counts;
    counts.day = static_cast<SimDay>(r.i64());
    for (int t = 0; t < traffic::kSignalingEventTypeCount; ++t) {
      counts.total[t] = r.u64();
      counts.failures[t] = r.u64();
    }
    ds.signaling.restore_day(counts);
  }

  const std::uint64_t n_feeds = r.u64();
  for (std::uint64_t i = 0; i < n_feeds; ++i) {
    telemetry::FeedQuality& f = ds.quality.feed(r.bytes());
    f.expected_records = r.u64();
    f.observed_records = r.u64();
    f.quarantined_records = r.u64();
    f.duplicate_records = r.u64();
    const std::uint64_t n_days = r.u64();
    for (std::uint64_t d = 0; d < n_days; ++d) {
      const auto day = static_cast<SimDay>(r.i64());
      const std::uint64_t expected = r.u64();
      const std::uint64_t observed = r.u64();
      f.days[day] = {expected, observed};
    }
  }

  const std::uint64_t n_kpi = r.u64();
  std::vector<telemetry::CellDayRecord> day_batch;
  for (std::uint64_t i = 0; i < n_kpi; ++i) {
    telemetry::CellDayRecord rec;
    rec.day = static_cast<SimDay>(r.i64());
    rec.cell = CellId{r.u32()};
    std::array<double, telemetry::kKpiMetricCount> values{};
    for (int m = 0; m < telemetry::kKpiMetricCount; ++m)
      values[static_cast<std::size_t>(m)] = r.f64();
    rec.dl_volume_mb = values[0];
    rec.ul_volume_mb = values[1];
    rec.active_dl_users = values[2];
    rec.tti_utilization = values[3];
    rec.user_dl_throughput_mbps = values[4];
    rec.active_data_seconds = values[5];
    rec.connected_users = values[6];
    rec.voice_volume_mb = values[7];
    rec.simultaneous_voice_users = values[8];
    rec.voice_dl_loss_pct = values[9];
    rec.voice_ul_loss_pct = values[10];
    if (!day_batch.empty() && rec.day != day_batch.front().day) {
      ds.kpis.add_day(std::move(day_batch));
      day_batch = {};
    }
    day_batch.push_back(rec);
  }
  if (!day_batch.empty()) ds.kpis.add_day(std::move(day_batch));
}

}  // namespace cellscope::sim
