#include "sim/pool.h"

#include <algorithm>

namespace cellscope::sim {

namespace {

// Two spare slots beyond one-per-worker let fast workers run ahead of the
// reducer without unbounded buffering: peak chunk-buffer memory is
// window() slots regardless of how many chunks a day has.
std::size_t window_for(int workers) {
  return workers <= 1 ? 1 : static_cast<std::size_t>(workers) + 2;
}

}  // namespace

WorkerPool::WorkerPool(int workers)
    : workers_(std::max(workers, 1)), window_(window_for(workers)) {
  chunks_per_worker_.assign(static_cast<std::size_t>(workers_), 0);
  if (workers_ > 1) {
    threads_.reserve(static_cast<std::size_t>(workers_));
    for (int w = 0; w < workers_; ++w)
      threads_.emplace_back(&WorkerPool::worker_main, this,
                            static_cast<std::size_t>(w));
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void WorkerPool::run_inline(std::size_t chunk_size, const WorkFn& work,
                            const ReduceFn& reduce) {
  // Same chunk grid, same order, no threads: chunk c is worked then reduced
  // before chunk c+1 starts, using slot 0 throughout.
  std::size_t chunk = 0;
  while (cursor_.next(chunk)) {
    const std::size_t begin = chunk * chunk_size;
    const std::size_t end = std::min(begin + chunk_size, n_items_);
    work(chunk, 0, begin, end, 0);
    ++chunks_per_worker_[0];
    reduce(chunk, 0);
  }
}

void WorkerPool::run(std::size_t n_items, std::size_t chunk_size,
                     const WorkFn& work, const ReduceFn& reduce) {
  chunk_size = std::max<std::size_t>(chunk_size, 1);
  const std::size_t n_chunks = (n_items + chunk_size - 1) / chunk_size;
  if (n_chunks == 0) return;
  ++runs_;

  if (workers_ == 1) {
    n_items_ = n_items;
    cursor_.reset(n_chunks);
    chunks_per_worker_.assign(1, 0);
    run_inline(chunk_size, work, reduce);
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    n_items_ = n_items;
    chunk_size_ = chunk_size;
    cursor_.reset(n_chunks);
    reduced_ = 0;
    done_.assign(window_, 0);
    work_ = &work;
    chunks_per_worker_.assign(static_cast<std::size_t>(workers_), 0);
    ++epoch_;
  }
  cv_work_.notify_all();

  // Ordered reduction on the calling thread: wait for chunk c's slot to
  // complete, apply it, free the slot, let blocked workers advance. Claims
  // are monotone, so chunk `reduced_` is always claimed (or claimable) by a
  // live worker — the wait below cannot deadlock.
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t slot = c % window_;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_done_.wait(lock, [&] { return done_[slot] != 0; });
    }
    reduce(c, slot);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_[slot] = 0;
      reduced_ = c + 1;
    }
    cv_work_.notify_all();
  }
  // Every chunk is worked and reduced; workers drain the exhausted cursor
  // and park on their own, so there is nothing to join here.
}

void WorkerPool::worker_main(std::size_t worker_index) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen_epoch = 0;
  for (;;) {
    cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = epoch_;

    for (;;) {
      std::size_t chunk = 0;
      if (!cursor_.next(chunk)) break;  // job drained; park for the next
      // Bounded reorder window: chunk c may not start until its slot was
      // freed by the reduction of chunk c - window.
      cv_work_.wait(lock, [&] { return stop_ || chunk < reduced_ + window_; });
      if (stop_) return;
      ++chunks_per_worker_[worker_index];
      const std::size_t begin = chunk * chunk_size_;
      const std::size_t end = std::min(begin + chunk_size_, n_items_);
      const WorkFn* work = work_;
      lock.unlock();
      (*work)(chunk, chunk % window_, begin, end, worker_index);
      lock.lock();
      done_[chunk % window_] = 1;
      cv_done_.notify_one();
    }
  }
}

}  // namespace cellscope::sim
