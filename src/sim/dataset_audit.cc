#include "sim/dataset_audit.h"

#include <span>

#include "audit/laws.h"

namespace cellscope::sim {

void audit_dataset_global(const Dataset& ds, audit::AuditReport& report) {
  const audit::MetricBounds bounds = audit::bounds_for(*ds.topology);
  const analysis::CellGrouping partition =
      audit::region_partition(*ds.topology);

  audit::check_kpi_aggregation(ds.kpis, partition, report);
  audit::check_voice_accounting(ds.voice_calls, report);
  audit::check_quality_closure(ds.quality, report);
  audit::check_signaling_balance(ds.signaling, report);
  audit::check_mobility_ranges(ds.entropy_national, ds.gyration_national,
                               ds.entropy_distribution,
                               ds.gyration_distribution, bounds, report);
  audit::check_mobility_ranges(ds.entropy_by_region, ds.gyration_by_region,
                               {}, {}, bounds, report);
  audit::check_mobility_ranges(ds.entropy_by_cluster, ds.gyration_by_cluster,
                               {}, {}, bounds, report);
  if (ds.entropy_by_bin.group_count() > 0) {
    audit::check_mobility_ranges(ds.entropy_by_bin, ds.gyration_by_bin, {},
                                 {}, bounds, report);
  }

  // The measured 4G time share is a fraction of connected hours.
  report.add_checks("mobility-range");
  if (ds.measured_lte_time_share < 0.0 || ds.measured_lte_time_share > 1.0) {
    report.add_violation({"mobility-range", "measured_lte_time_share", 1.0,
                          ds.measured_lte_time_share,
                          "4G time share outside [0, 1]"});
  }

  // Resumed runs only: the restored ledger prefixes must reconcile with
  // the sizes recorded at the moment of the fast-forward.
  if (ds.recovery.resumed) {
    audit::check_checkpoint_consistency(
        ds.recovery.resumed_from_day, ds.recovery.checkpoint_kpi_rows,
        ds.recovery.checkpoint_voice_attempts,
        ds.recovery.checkpoint_signaling_days, ds.kpis, ds.voice_calls,
        ds.signaling, report);
  }
}

audit::AuditReport audit_dataset(const Dataset& ds) {
  audit::AuditReport report;
  const audit::MetricBounds bounds = audit::bounds_for(*ds.topology);
  const analysis::CellGrouping partition =
      audit::region_partition(*ds.topology);

  // Per-day KPI checks over the stored rows (day-ordered runs).
  const auto& records = ds.kpis.records();
  std::size_t begin = 0;
  while (begin < records.size()) {
    std::size_t end = begin;
    while (end < records.size() && records[end].day == records[begin].day)
      ++end;
    audit::check_kpi_day(
        records[begin].day,
        std::span<const telemetry::CellDayRecord>{records.data() + begin,
                                                  end - begin},
        partition, bounds, report);
    begin = end;
  }

  audit_dataset_global(ds, report);
  return report;
}

}  // namespace cellscope::sim
