// Day-granular checkpoint/resume: the simulator side.
//
// The simulator streams days; after each completed day it can hand a
// CheckpointSink one serialized blob holding everything needed to resume
// from the NEXT day — the dataset accumulated so far plus the run-local
// evolving state (user states, home-detector accumulators, calibration
// scalars). On the next run the sink supplies the stored blob and the
// high-water mark, and Simulator::run() fast-forwards: substrate and
// static per-user structures are rebuilt from the config (pure functions
// of the seed), the blob restores the evolving state, and the day loop
// starts at resume_day() + 1.
//
// The contract — enforced in test_determinism and test_crash_resume — is
// bitwise: an interrupted-then-resumed run yields a Dataset bit-identical
// (and store bytes byte-identical) to an uninterrupted one, at any worker
// count on either side of the interruption. That is why every float here
// round-trips as raw IEEE-754 bits (common/blob.h) and why the home
// detector keeps ordered accumulators (analysis/home_detection.h).
//
// The durable implementation (file format, digest keying, crash
// atomicity) lives in store/checkpoint.h; tests substitute in-memory
// sinks. See docs/RECOVERY.md for the full recovery story.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/blob.h"
#include "common/simtime.h"

namespace cellscope::sim {

struct Dataset;

class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;

  // State saved by a previous run, if any. An empty span means no resumable
  // progress: the run starts fresh from the first day.
  [[nodiscard]] virtual std::span<const std::uint8_t> resume_payload()
      const = 0;
  // Last fully completed day of the saved state; meaningless when
  // resume_payload() is empty.
  [[nodiscard]] virtual SimDay resume_day() const = 0;

  // Called once after each day fully completes (accumulators reduced, KPI
  // rows published to the DatasetSink), with the serialized resumable
  // state as of that day. Implementations must persist atomically: a crash
  // mid-save must leave the previous day's checkpoint intact.
  virtual void on_day_complete(SimDay day,
                               const std::vector<std::uint8_t>& state) = 0;
};

// (De)serializes the Dataset portion of a checkpoint blob: every
// accumulated field a resumed run appends to. The run-local portion
// (user states, detector accumulators, calibration scalars) is handled by
// the simulator itself; both live in one blob, versioned by the sink.
// restore_dataset_state throws BlobError on truncated/inconsistent input.
void save_dataset_state(const Dataset& ds, BlobWriter& w);
void restore_dataset_state(Dataset& ds, BlobReader& r);

}  // namespace cellscope::sim
