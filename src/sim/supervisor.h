// Supervised chunk execution: retries, deadlines and a watchdog over the
// WorkerPool.
//
// A multi-hour run must not die (or hang) because one chunk task threw or
// stalled. The Supervisor wraps WorkerPool::run() with:
//
//   * per-chunk retry — a throwing chunk has its buffer reset (the caller
//     supplies the reset, restoring the chunk's pre-work state) and is
//     re-executed in place with bounded exponential backoff;
//   * failure containment — when a chunk exhausts its attempts the run
//     finishes draining, then DayFailed is thrown from the CALLER thread
//     (a worker thread must never propagate: the pool would terminate).
//     The day is thereby failed-and-resumable: the previous day's
//     checkpoint is intact, so a rerun resumes right before the bad day;
//   * a watchdog thread — if no chunk completes within `stall_deadline`
//     it records a stall. It cannot preempt a truly hung thread (no safe
//     way exists in-process); the recovery for a hard hang is the
//     process-level kill + resume documented in docs/RECOVERY.md, and the
//     stall counter is what tells the operator to reach for it.
//
// Retries re-run a chunk from its snapshot, so the reduced result — and
// the Dataset — is bit-identical whether a chunk ran once or five times.
// Counters surface as `supervisor.*` metrics and in the run manifest.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/simtime.h"
#include "sim/pool.h"

namespace cellscope::sim {

struct Dataset;

struct SupervisorConfig {
  // Attempts per chunk (first run + retries). At least 1.
  int max_attempts = 3;
  // Backoff before retry k is backoff_base * 2^(k-1).
  std::chrono::milliseconds backoff_base{10};
  // No chunk completing for this long counts as a stall (watchdog).
  std::chrono::seconds stall_deadline{120};
};

struct SupervisorStats {
  std::uint64_t retries = 0;    // chunk attempts after the first
  std::uint64_t failures = 0;   // chunks that exhausted every attempt
  std::uint64_t stalls = 0;     // watchdog deadline expiries
};

// Thrown (from the caller thread) when any chunk of a day exhausted its
// attempts. The day is resumable: nothing of it was checkpointed.
// Simulator::run attaches the Dataset as accumulated through the last
// *completed* day, so callers can still account for the partial run (obs
// manifest, quality ledger) before exiting with code 5.
class DayFailed : public std::runtime_error {
 public:
  DayFailed(SimDay day, const std::string& detail);
  SimDay day;
  std::shared_ptr<Dataset> partial;  // may be null below the Simulator
};

class Supervisor {
 public:
  explicit Supervisor(WorkerPool& pool, SupervisorConfig config = {});

  // Restores chunk `chunk`'s inputs/buffer (slot `slot`) to the state work
  // expects on entry, so the chunk can be re-run from scratch.
  using ResetFn = std::function<void(std::size_t chunk, std::size_t slot)>;

  // WorkerPool::run() with supervision; `day` labels failures. Work and
  // reduce keep their pool contracts; `reset` must be safe on a worker
  // thread. Throws DayFailed after the pool drains if any chunk failed.
  void run(SimDay day, std::size_t n_items, std::size_t chunk_size,
           const WorkerPool::WorkFn& work, const ResetFn& reset,
           const WorkerPool::ReduceFn& reduce);

  // Lifetime totals across every supervised run().
  [[nodiscard]] const SupervisorStats& stats() const { return stats_; }

 private:
  WorkerPool& pool_;
  SupervisorConfig config_;
  SupervisorStats stats_;
};

}  // namespace cellscope::sim
