#include "sim/interrupt.h"

#include <atomic>
#include <string>

namespace cellscope::sim {

namespace {
std::atomic<bool> g_interrupt{false};
}  // namespace

void request_interrupt() noexcept {
  g_interrupt.store(true, std::memory_order_relaxed);
}

bool interrupt_requested() noexcept {
  return g_interrupt.load(std::memory_order_relaxed);
}

void reset_interrupt() noexcept {
  g_interrupt.store(false, std::memory_order_relaxed);
}

RunInterrupted::RunInterrupted(SimDay day, std::shared_ptr<Dataset> ds)
    : std::runtime_error("simulation interrupted after day " +
                         std::to_string(day) + "; checkpoint flushed"),
      last_completed_day(day),
      partial(std::move(ds)) {}

}  // namespace cellscope::sim
