#include "sim/faults.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <stdexcept>
#include <string>

namespace cellscope::sim {

namespace {

// Key for the per-record decision streams: unique per (id, day) inside any
// realistic window (day fits comfortably in 20 bits).
constexpr std::uint64_t record_key(std::uint32_t id, SimDay day) {
  return (static_cast<std::uint64_t>(id) << 20) ^
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(day));
}

void check_rate(double value, const char* name) {
  if (value < 0.0 || value > 1.0)
    throw std::invalid_argument(std::string("FaultConfig: ") + name +
                                " must be in [0, 1]");
}

void check_nonnegative(double value, const char* name) {
  if (value < 0.0 || !std::isfinite(value))
    throw std::invalid_argument(std::string("FaultConfig: ") + name +
                                " must be finite and >= 0");
}

// Draws the outage windows of one feed and marks them in an hourly bitmap.
std::vector<FaultPlan::Window> draw_windows(Rng rng, double per_week,
                                            double mean_hours,
                                            SimDay first_day, SimDay last_day,
                                            std::vector<std::uint8_t>& down) {
  std::vector<FaultPlan::Window> windows;
  if (per_week <= 0.0) return windows;
  const auto n_days = static_cast<std::size_t>(last_day - first_day + 1);
  const auto total_hours = static_cast<std::uint64_t>(n_days) * kHoursPerDay;
  const double weeks = static_cast<double>(n_days) / kDaysPerWeek;
  const std::uint64_t count = rng.poisson(per_week * weeks);
  if (count == 0) return windows;

  down.assign(total_hours, 0);
  const SimHour base = first_hour(first_day);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto start_offset = rng.uniform_index(total_hours);
    const auto duration = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(
               rng.exponential(std::max(mean_hours, 1.0)))));
    const auto end_offset = std::min<std::uint64_t>(
        total_hours, start_offset + duration);
    windows.push_back({base + static_cast<SimHour>(start_offset),
                       base + static_cast<SimHour>(end_offset)});
    for (auto h = start_offset; h < end_offset; ++h) down[h] = 1;
  }
  std::sort(windows.begin(), windows.end(),
            [](const auto& a, const auto& b) { return a.start < b.start; });
  return windows;
}

double parse_spec_number(std::string_view text, std::string_view key) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw std::invalid_argument("fault spec: bad number '" +
                                std::string(text) + "' for key '" +
                                std::string(key) + "'");
  return value;
}

}  // namespace

bool FaultConfig::any() const {
  return signaling_outages_per_week > 0.0 || kpi_outages_per_week > 0.0 ||
         cell_outage_daily_prob > 0.0 || observation_loss_rate > 0.0 ||
         kpi_record_loss_rate > 0.0 || kpi_record_duplication_rate > 0.0;
}

void FaultConfig::validate() const {
  check_nonnegative(signaling_outages_per_week, "signaling_outages_per_week");
  check_nonnegative(signaling_outage_mean_hours,
                    "signaling_outage_mean_hours");
  check_nonnegative(kpi_outages_per_week, "kpi_outages_per_week");
  check_nonnegative(kpi_outage_mean_hours, "kpi_outage_mean_hours");
  check_nonnegative(cell_outage_mean_days, "cell_outage_mean_days");
  check_rate(cell_outage_daily_prob, "cell_outage_daily_prob");
  check_rate(observation_loss_rate, "observation_loss_rate");
  check_rate(kpi_record_loss_rate, "kpi_record_loss_rate");
  check_rate(kpi_record_duplication_rate, "kpi_record_duplication_rate");
}

FaultConfig uniform_loss_faults(double rate) {
  FaultConfig config;
  config.observation_loss_rate = rate;
  config.kpi_record_loss_rate = rate;
  config.signaling_outages_per_week = 0.25;
  config.signaling_outage_mean_hours = 6.0;
  config.kpi_outages_per_week = 0.25;
  config.kpi_outage_mean_hours = 4.0;
  config.cell_outage_daily_prob = 0.002;
  config.validate();
  return config;
}

FaultConfig parse_fault_spec(std::string_view spec) {
  FaultConfig config;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    auto comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const auto entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string_view::npos)
      throw std::invalid_argument("fault spec: expected key=value, got '" +
                                  std::string(entry) + "'");
    const auto key = entry.substr(0, eq);
    const double value = parse_spec_number(entry.substr(eq + 1), key);
    if (key == "loss") {
      config.observation_loss_rate = value;
      config.kpi_record_loss_rate = value;
    } else if (key == "obs_loss") {
      config.observation_loss_rate = value;
    } else if (key == "kpi_loss") {
      config.kpi_record_loss_rate = value;
    } else if (key == "dup") {
      config.kpi_record_duplication_rate = value;
    } else if (key == "sig_outages") {
      config.signaling_outages_per_week = value;
    } else if (key == "sig_hours") {
      config.signaling_outage_mean_hours = value;
    } else if (key == "kpi_outages") {
      config.kpi_outages_per_week = value;
    } else if (key == "kpi_hours") {
      config.kpi_outage_mean_hours = value;
    } else if (key == "cell_daily") {
      config.cell_outage_daily_prob = value;
    } else if (key == "cell_days") {
      config.cell_outage_mean_days = value;
    } else {
      throw std::invalid_argument("fault spec: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  config.validate();
  return config;
}

FaultPlan FaultPlan::build(const FaultConfig& config, std::uint64_t seed,
                           SimDay first_day, SimDay last_day,
                           std::size_t cell_count) {
  config.validate();
  FaultPlan plan;
  if (!config.any() || last_day < first_day) return plan;

  plan.enabled_ = true;
  plan.first_day_ = first_day;
  plan.last_day_ = last_day;
  plan.n_days_ = static_cast<std::size_t>(last_day - first_day + 1);
  plan.n_cells_ = cell_count;
  plan.observation_loss_rate_ = config.observation_loss_rate;
  plan.kpi_record_loss_rate_ = config.kpi_record_loss_rate;
  plan.kpi_record_duplication_rate_ = config.kpi_record_duplication_rate;

  // Every fault family forks its own stream off "faults", so each family's
  // realization depends only on the scenario seed and its own knobs.
  const Rng root = Rng{seed}.fork("faults");

  plan.signaling_windows_ = draw_windows(
      root.fork("signaling-outages"), config.signaling_outages_per_week,
      config.signaling_outage_mean_hours, first_day, last_day,
      plan.signaling_down_);
  plan.kpi_windows_ = draw_windows(
      root.fork("kpi-outages"), config.kpi_outages_per_week,
      config.kpi_outage_mean_hours, first_day, last_day, plan.kpi_down_);

  if (config.cell_outage_daily_prob > 0.0 && cell_count > 0) {
    plan.cell_out_.assign(cell_count * plan.n_days_, 0);
    for (std::size_t c = 0; c < cell_count; ++c) {
      // Per-cell stream: adding cells extends, never reshuffles, the plan.
      Rng cell_rng = root.fork("cell-outages", c);
      for (std::size_t d = 0; d < plan.n_days_; ++d) {
        if (plan.cell_out_[c * plan.n_days_ + d]) continue;
        if (!cell_rng.chance(config.cell_outage_daily_prob)) continue;
        const auto run = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::llround(cell_rng.exponential(
                   std::max(config.cell_outage_mean_days, 1.0)))));
        for (std::size_t k = d; k < std::min(plan.n_days_, d + run); ++k) {
          plan.cell_out_[c * plan.n_days_ + k] = 1;
          ++plan.cell_outage_cell_days_;
        }
      }
    }
  }

  plan.observation_loss_rng_ = root.fork("observation-loss");
  plan.kpi_loss_rng_ = root.fork("kpi-record-loss");
  plan.kpi_dup_rng_ = root.fork("kpi-record-duplication");
  return plan;
}

bool FaultPlan::signaling_down(SimDay day, int hour) const {
  if (signaling_down_.empty() || !in_window(day)) return false;
  const auto offset =
      static_cast<std::size_t>(day - first_day_) * kHoursPerDay +
      static_cast<std::size_t>(hour);
  return signaling_down_[offset] != 0;
}

bool FaultPlan::kpi_feed_down(SimDay day, int hour) const {
  if (kpi_down_.empty() || !in_window(day)) return false;
  const auto offset =
      static_cast<std::size_t>(day - first_day_) * kHoursPerDay +
      static_cast<std::size_t>(hour);
  return kpi_down_[offset] != 0;
}

int FaultPlan::signaling_down_hours(SimDay day) const {
  int hours = 0;
  for (int h = 0; h < kHoursPerDay; ++h)
    if (signaling_down(day, h)) ++hours;
  return hours;
}

int FaultPlan::kpi_down_hours(SimDay day) const {
  int hours = 0;
  for (int h = 0; h < kHoursPerDay; ++h)
    if (kpi_feed_down(day, h)) ++hours;
  return hours;
}

bool FaultPlan::cell_out(CellId cell, SimDay day) const {
  if (cell_out_.empty() || !in_window(day)) return false;
  const std::size_t c = cell.value();
  if (c >= n_cells_) return false;
  return cell_out_[c * n_days_ +
                   static_cast<std::size_t>(day - first_day_)] != 0;
}

bool FaultPlan::drop_observation(std::uint32_t user, SimDay day) const {
  if (observation_loss_rate_ <= 0.0) return false;
  return observation_loss_rng_.fork("rec", record_key(user, day)).uniform() <
         observation_loss_rate_;
}

bool FaultPlan::drop_kpi_record(std::uint32_t cell, SimDay day) const {
  if (kpi_record_loss_rate_ <= 0.0) return false;
  return kpi_loss_rng_.fork("rec", record_key(cell, day)).uniform() <
         kpi_record_loss_rate_;
}

bool FaultPlan::duplicate_kpi_record(std::uint32_t cell, SimDay day) const {
  if (kpi_record_duplication_rate_ <= 0.0) return false;
  return kpi_dup_rng_.fork("rec", record_key(cell, day)).uniform() <
         kpi_record_duplication_rate_;
}

}  // namespace cellscope::sim
