#include "sim/scenario.h"

#include <cstdio>
#include <stdexcept>
#include <string_view>

namespace cellscope::sim {

namespace {

// FNV-1a over a canonical text serialization: stable across platforms and
// insensitive to struct layout, so the digest survives refactors that do
// not change scenario meaning.
class Digest {
 public:
  void field(std::string_view name, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%.17g;", std::string(name).c_str(),
                  value);
    mix(buf);
  }
  void field(std::string_view name, std::uint64_t value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%llu;", std::string(name).c_str(),
                  static_cast<unsigned long long>(value));
    mix(buf);
  }

  [[nodiscard]] std::string hex() const {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash_));
    return buf;
  }

 private:
  void mix(std::string_view text) {
    for (const char c : text) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001b3ULL;
    }
  }

  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

}  // namespace

std::string config_digest(const ScenarioConfig& config) {
  Digest digest;
  digest.field("seed", config.seed);
  digest.field("first_week", static_cast<std::uint64_t>(config.first_week));
  digest.field("last_week", static_cast<std::uint64_t>(config.last_week));
  digest.field("kpi_first_week",
               static_cast<std::uint64_t>(config.kpi_first_week));
  digest.field("collect_kpis",
               static_cast<std::uint64_t>(config.collect_kpis));
  digest.field("collect_signaling",
               static_cast<std::uint64_t>(config.collect_signaling));
  digest.field("collect_binned_mobility",
               static_cast<std::uint64_t>(config.collect_binned_mobility));
  digest.field("collect_legacy_kpis",
               static_cast<std::uint64_t>(config.collect_legacy_kpis));
  digest.field("num_users", static_cast<std::uint64_t>(config.num_users));
  digest.field("user_chunk", static_cast<std::uint64_t>(config.user_chunk));
  digest.field("lte_time_share", config.lte_time_share);
  digest.field("kpi_reduction",
               static_cast<std::uint64_t>(config.kpi_reduction));
  digest.field("sig_outages", config.faults.signaling_outages_per_week);
  digest.field("sig_hours", config.faults.signaling_outage_mean_hours);
  digest.field("kpi_outages", config.faults.kpi_outages_per_week);
  digest.field("kpi_hours", config.faults.kpi_outage_mean_hours);
  digest.field("cell_daily", config.faults.cell_outage_daily_prob);
  digest.field("cell_days", config.faults.cell_outage_mean_days);
  digest.field("obs_loss", config.faults.observation_loss_rate);
  digest.field("kpi_loss", config.faults.kpi_record_loss_rate);
  digest.field("kpi_dup", config.faults.kpi_record_duplication_rate);
  return digest.hex();
}

void ScenarioConfig::validate() const {
  if (first_week < kEpochIsoWeek)
    throw std::invalid_argument("ScenarioConfig: first_week before epoch");
  if (last_week < first_week)
    throw std::invalid_argument("ScenarioConfig: last_week < first_week");
  if (kpi_first_week < first_week || kpi_first_week > last_week)
    throw std::invalid_argument(
        "ScenarioConfig: kpi_first_week outside the simulated window");
  if (num_users == 0)
    throw std::invalid_argument("ScenarioConfig: num_users must be > 0");
  if (lte_time_share < 0.0 || lte_time_share > 1.0)
    throw std::invalid_argument(
        "ScenarioConfig: lte_time_share must be in [0, 1]");
  if (worker_threads < 1 || worker_threads > 256)
    throw std::invalid_argument(
        "ScenarioConfig: worker_threads must be in [1, 256]");
  if (user_chunk < 1 || user_chunk > (1u << 20))
    throw std::invalid_argument(
        "ScenarioConfig: user_chunk must be in [1, 2^20]");
  faults.validate();
}

ScenarioConfig default_scenario() {
  ScenarioConfig config;
  // Defaults in the member initializers are the calibrated paper scenario.
  return config;
}

ScenarioConfig smoke_scenario() {
  ScenarioConfig config;
  config.num_users = 3'000;
  config.topology.users_per_site = 120.0;  // keep the RAN small too
  return config;
}

}  // namespace cellscope::sim
