#include "sim/scenario.h"

#include <stdexcept>

namespace cellscope::sim {

void ScenarioConfig::validate() const {
  if (first_week < kEpochIsoWeek)
    throw std::invalid_argument("ScenarioConfig: first_week before epoch");
  if (last_week < first_week)
    throw std::invalid_argument("ScenarioConfig: last_week < first_week");
  if (kpi_first_week < first_week || kpi_first_week > last_week)
    throw std::invalid_argument(
        "ScenarioConfig: kpi_first_week outside the simulated window");
  if (num_users == 0)
    throw std::invalid_argument("ScenarioConfig: num_users must be > 0");
  if (lte_time_share < 0.0 || lte_time_share > 1.0)
    throw std::invalid_argument(
        "ScenarioConfig: lte_time_share must be in [0, 1]");
  if (worker_threads < 1 || worker_threads > 256)
    throw std::invalid_argument(
        "ScenarioConfig: worker_threads must be in [1, 256]");
  faults.validate();
}

ScenarioConfig default_scenario() {
  ScenarioConfig config;
  // Defaults in the member initializers are the calibrated paper scenario.
  return config;
}

ScenarioConfig smoke_scenario() {
  ScenarioConfig config;
  config.num_users = 3'000;
  config.topology.users_per_site = 120.0;  // keep the RAN small too
  return config;
}

}  // namespace cellscope::sim
