#include "sim/scenario.h"

#include <cstdio>
#include <stdexcept>
#include <string_view>

namespace cellscope::sim {

namespace {

// FNV-1a over a canonical text serialization: stable across platforms and
// insensitive to struct layout, so the digest survives refactors that do
// not change scenario meaning.
class Digest {
 public:
  void field(std::string_view name, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%.17g;", std::string(name).c_str(),
                  value);
    mix(buf);
  }
  void field(std::string_view name, std::uint64_t value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%llu;", std::string(name).c_str(),
                  static_cast<unsigned long long>(value));
    mix(buf);
  }

  [[nodiscard]] std::string hex() const {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash_));
    return buf;
  }

 private:
  void mix(std::string_view text) {
    for (const char c : text) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001b3ULL;
    }
  }

  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

}  // namespace

std::string config_digest(const ScenarioConfig& config) {
  Digest digest;
  digest.field("seed", config.seed);
  digest.field("first_week", static_cast<std::uint64_t>(config.first_week));
  digest.field("last_week", static_cast<std::uint64_t>(config.last_week));
  digest.field("kpi_first_week",
               static_cast<std::uint64_t>(config.kpi_first_week));
  digest.field("collect_kpis",
               static_cast<std::uint64_t>(config.collect_kpis));
  digest.field("collect_signaling",
               static_cast<std::uint64_t>(config.collect_signaling));
  digest.field("collect_binned_mobility",
               static_cast<std::uint64_t>(config.collect_binned_mobility));
  digest.field("collect_legacy_kpis",
               static_cast<std::uint64_t>(config.collect_legacy_kpis));
  digest.field("num_users", static_cast<std::uint64_t>(config.num_users));
  digest.field("user_chunk", static_cast<std::uint64_t>(config.user_chunk));
  digest.field("lte_time_share", config.lte_time_share);
  digest.field("kpi_reduction",
               static_cast<std::uint64_t>(config.kpi_reduction));
  // Model parameters. Every knob that changes what the simulation produces
  // must enter the digest: the store's load_or_run() replays a cached
  // dataset whenever digests match, so a missed field here would silently
  // serve one counterfactual's results as another's. Fields the simulator
  // overrides from top-level config (population.num_users/seed,
  // topology.expected_subscribers/seed, geography.seed) are excluded — they
  // cannot differ between runs that share the fields above.
  digest.field("geo_scale", config.geography.population_scale);
  digest.field("pol_advice",
               static_cast<std::uint64_t>(config.policy.advice_day));
  digest.field("pol_closure",
               static_cast<std::uint64_t>(config.policy.closure_day));
  digest.field("pol_lockdown",
               static_cast<std::uint64_t>(config.policy.lockdown_day));
  digest.field("pol_enabled",
               static_cast<std::uint64_t>(config.policy.lockdown_enabled));
  digest.field("pol_suppression", config.policy.suppression_scale);
  digest.field("pol_relaxation",
               static_cast<std::uint64_t>(config.policy.regional_relaxation));
  digest.field("pol_voice_surge", config.policy.voice_surge_scale);
  digest.field("pop_m2m", config.population.m2m_fraction);
  digest.field("pop_roamer", config.population.roamer_fraction);
  digest.field("pop_second_home", config.population.second_home_fraction);
  digest.field("topo_users_per_site", config.topology.users_per_site);
  digest.field("topo_3g", config.topology.site_has_3g);
  digest.field("topo_2g", config.topology.site_has_2g);
  digest.field("topo_outage", config.topology.outage_probability);
  digest.field("beh_evening", config.behavior.weekday_evening_leisure);
  digest.field("beh_weekend", config.behavior.weekend_leisure);
  digest.field("beh_errand", config.behavior.errand_probability);
  digest.field("beh_ld_errand", config.behavior.lockdown_errand);
  digest.field("beh_ld_outing", config.behavior.lockdown_outing);
  digest.field("beh_second_home", config.behavior.getaway_second_home);
  digest.field("beh_london", config.behavior.getaway_london);
  digest.field("beh_other", config.behavior.getaway_other);
  digest.field("beh_rush", config.behavior.rush_multiplier);
  digest.field("beh_wfh", config.behavior.wfh_adoption);
  digest.field("rel_seasonal_leave", config.relocation.seasonal_leave);
  digest.field("rel_seasonal_reloc", config.relocation.seasonal_relocate);
  digest.field("rel_roamer_leave", config.relocation.roamer_leave);
  digest.field("rel_student", config.relocation.student_relocate);
  digest.field("rel_second_home", config.relocation.second_home_relocate);
  digest.field("dem_away_dl", config.demand.away_dl_mb_per_hour);
  digest.field("dem_home_dl", config.demand.home_dl_residue);
  digest.field("dem_home_ul", config.demand.home_ul_residue);
  digest.field("dem_work_dl", config.demand.work_dl_residue);
  digest.field("dem_work_ul", config.demand.work_ul_residue);
  digest.field("dem_noise", config.demand.noise_sigma);
  digest.field("dem_boost", config.demand.restricted_usage_boost);
  digest.field("voice_minutes", config.voice.daily_minutes);
  digest.field("voice_mb", config.voice.mb_per_minute);
  digest.field("voice_offnet", config.voice.offnet_fraction);
  digest.field("ic_capacity", config.interconnect.baseline_capacity);
  digest.field("ic_upgrade", config.interconnect.upgrade_factor);
  digest.field("ic_upgrade_day",
               static_cast<std::uint64_t>(config.interconnect.upgrade_day));
  digest.field("ic_base_loss", config.interconnect.base_loss_pct);
  digest.field("ic_knee", config.interconnect.knee_utilization);
  digest.field("ic_steepness", config.interconnect.steepness);
  digest.field("ic_max_loss", config.interconnect.max_loss_pct);
  digest.field("sig_mcc", static_cast<std::uint64_t>(config.signaling.home_mcc));
  digest.field("sig_mnc", static_cast<std::uint64_t>(config.signaling.home_mnc));
  digest.field("sig_attach_fail", config.signaling.attach_failure_rate);
  digest.field("sig_handover", config.signaling.handover_share);
  digest.field("sig_detach", config.signaling.daily_detach_probability);
  digest.field("sig_outages", config.faults.signaling_outages_per_week);
  digest.field("sig_hours", config.faults.signaling_outage_mean_hours);
  digest.field("kpi_outages", config.faults.kpi_outages_per_week);
  digest.field("kpi_hours", config.faults.kpi_outage_mean_hours);
  digest.field("cell_daily", config.faults.cell_outage_daily_prob);
  digest.field("cell_days", config.faults.cell_outage_mean_days);
  digest.field("obs_loss", config.faults.observation_loss_rate);
  digest.field("kpi_loss", config.faults.kpi_record_loss_rate);
  digest.field("kpi_dup", config.faults.kpi_record_duplication_rate);
  return digest.hex();
}

void ScenarioConfig::validate() const {
  if (first_week < kEpochIsoWeek)
    throw std::invalid_argument("ScenarioConfig: first_week before epoch");
  if (last_week < first_week)
    throw std::invalid_argument("ScenarioConfig: last_week < first_week");
  if (kpi_first_week < first_week || kpi_first_week > last_week)
    throw std::invalid_argument(
        "ScenarioConfig: kpi_first_week outside the simulated window");
  if (num_users == 0)
    throw std::invalid_argument("ScenarioConfig: num_users must be > 0");
  if (lte_time_share < 0.0 || lte_time_share > 1.0)
    throw std::invalid_argument(
        "ScenarioConfig: lte_time_share must be in [0, 1]");
  if (worker_threads < 1 || worker_threads > 256)
    throw std::invalid_argument(
        "ScenarioConfig: worker_threads must be in [1, 256]");
  if (user_chunk < 1 || user_chunk > (1u << 20))
    throw std::invalid_argument(
        "ScenarioConfig: user_chunk must be in [1, 2^20]");
  faults.validate();
}

ScenarioConfig default_scenario() {
  ScenarioConfig config;
  // Defaults in the member initializers are the calibrated paper scenario.
  return config;
}

ScenarioConfig smoke_scenario() {
  ScenarioConfig config;
  config.num_users = 3'000;
  config.topology.users_per_site = 120.0;  // keep the RAN small too
  return config;
}

}  // namespace cellscope::sim
