// Bridges a finished Dataset into the conservation-law registry
// (audit/laws.h): builds the region partition and metric bounds from the
// dataset's own topology and walks every structure the laws cover.
//
// Two entry points because the checks split by when their inputs exist:
// the per-day KPI laws can run as each day completes (the simulator does,
// when ScenarioConfig::audit is set), while the whole-run laws need the
// merged probes and the full KPI store. audit_dataset() runs both over an
// already-finished Dataset — the post-hoc path for replayed stores and
// examples/audit_store.
#pragma once

#include "audit/report.h"
#include "sim/simulator.h"

namespace cellscope::sim {

// Every law over a finished dataset: per-day KPI checks over the stored
// rows plus the whole-run laws. Read-only.
[[nodiscard]] audit::AuditReport audit_dataset(const Dataset& ds);

// Only the whole-run laws (aggregation, voice accounting, quality closure,
// signaling balance, metric ranges). The simulator calls this at end of run
// after running the per-day checks in-process.
void audit_dataset_global(const Dataset& ds, audit::AuditReport& report);

}  // namespace cellscope::sim
