// Deterministic degraded-feed fault injection.
//
// Real measurement feeds are not perfect: passive probes go down for hours,
// cells disappear from the warehouse export for days, and record streams
// arrive with corrupted or duplicated rows. FaultConfig describes those
// degradations as rates; FaultPlan materializes one concrete, reproducible
// realization of them for a scenario window. Every fault family draws from
// its own named fork of the scenario seed, so toggling (say) the KPI outage
// knobs never perturbs the signaling outage windows — experiments stay
// comparable as fault dimensions are swept independently.
//
// Faults degrade *measurement*, never behaviour: subscribers keep moving
// and generating traffic; the plan only decides which telemetry records
// survive the collection pipeline. A scenario with an all-zero FaultConfig
// produces bit-identical datasets to one without any fault machinery.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/simtime.h"

namespace cellscope::sim {

struct FaultConfig {
  // Signaling-probe outage windows (hour granularity). While the probe is
  // down, control-plane events are lost AND the user-day tower observations
  // derived from them lose the affected hours (they come from the same
  // taps, Fig 1 of the paper).
  double signaling_outages_per_week = 0.0;  // expected windows per week
  double signaling_outage_mean_hours = 12.0;

  // KPI collection outages (hour granularity): hourly KPI samples in a down
  // window never reach the daily aggregation.
  double kpi_outages_per_week = 0.0;
  double kpi_outage_mean_hours = 8.0;

  // Per-cell whole-day outages: a cell vanishes from the KPI export for a
  // run of days (decommissioning, transport faults, export misconfig).
  double cell_outage_daily_prob = 0.0;  // per cell, per day
  double cell_outage_mean_days = 2.0;

  // Record-level faults on the warehouse exports. Loss models corrupted
  // rows that quarantine fails to repair; duplication models at-least-once
  // delivery from the export pipeline.
  double observation_loss_rate = 0.0;      // user-day mobility records
  double kpi_record_loss_rate = 0.0;       // cell-day KPI rows
  double kpi_record_duplication_rate = 0.0;

  // True when any knob is non-zero (an all-zero config disables the plan).
  [[nodiscard]] bool any() const;
  // Throws std::invalid_argument on negative rates / probabilities > 1.
  void validate() const;
};

// Convenience preset: `rate` record loss on both feeds plus mild outage
// activity — the shape bench_ext_probe_outage studies.
[[nodiscard]] FaultConfig uniform_loss_faults(double rate);

// Parses the CELLSCOPE_BENCH_FAULTS spec: a comma-separated key=value list.
//   loss=R       observation + KPI record loss rate
//   obs_loss=R   observation record loss rate only
//   kpi_loss=R   KPI record loss rate only
//   dup=R        KPI record duplication rate
//   sig_outages=N / sig_hours=H    signaling windows per week / mean hours
//   kpi_outages=N / kpi_hours=H    KPI windows per week / mean hours
//   cell_daily=P / cell_days=D     per-cell outage entry prob / mean days
// Throws std::invalid_argument on unknown keys or malformed numbers.
[[nodiscard]] FaultConfig parse_fault_spec(std::string_view spec);

// One concrete realization of a FaultConfig over a scenario window.
// Immutable after build(); all queries are const and thread-safe, so worker
// shards can consult the plan concurrently.
class FaultPlan {
 public:
  // [start, end) in sim hours.
  struct Window {
    SimHour start = 0;
    SimHour end = 0;
  };

  FaultPlan() = default;  // empty plan: enabled() == false, nothing faulted

  [[nodiscard]] static FaultPlan build(const FaultConfig& config,
                                       std::uint64_t seed, SimDay first_day,
                                       SimDay last_day,
                                       std::size_t cell_count);

  [[nodiscard]] bool enabled() const { return enabled_; }

  // Feed outage queries (false outside the plan's window).
  [[nodiscard]] bool signaling_down(SimDay day, int hour) const;
  [[nodiscard]] bool kpi_feed_down(SimDay day, int hour) const;
  [[nodiscard]] int signaling_down_hours(SimDay day) const;
  [[nodiscard]] int kpi_down_hours(SimDay day) const;
  [[nodiscard]] bool cell_out(CellId cell, SimDay day) const;

  // Record-level fault decisions: pure functions of (plan seed, key), safe
  // to call from any thread, stable across replays.
  [[nodiscard]] bool drop_observation(std::uint32_t user, SimDay day) const;
  [[nodiscard]] bool drop_kpi_record(std::uint32_t cell, SimDay day) const;
  [[nodiscard]] bool duplicate_kpi_record(std::uint32_t cell,
                                          SimDay day) const;

  // Introspection (tests, bench banners).
  [[nodiscard]] const std::vector<Window>& signaling_windows() const {
    return signaling_windows_;
  }
  [[nodiscard]] const std::vector<Window>& kpi_windows() const {
    return kpi_windows_;
  }
  [[nodiscard]] std::size_t cell_outage_cell_days() const {
    return cell_outage_cell_days_;
  }

 private:
  [[nodiscard]] bool in_window(SimDay day) const {
    return enabled_ && day >= first_day_ && day <= last_day_;
  }

  bool enabled_ = false;
  SimDay first_day_ = 0;
  SimDay last_day_ = -1;
  std::size_t n_days_ = 0;
  std::size_t n_cells_ = 0;

  std::vector<Window> signaling_windows_;
  std::vector<Window> kpi_windows_;
  // Per-hour down bitmaps over [first_day, last_day], empty when the feed
  // has no outages.
  std::vector<std::uint8_t> signaling_down_;
  std::vector<std::uint8_t> kpi_down_;
  // [cell * n_days + day_offset], empty when cell outages are disabled.
  std::vector<std::uint8_t> cell_out_;
  std::size_t cell_outage_cell_days_ = 0;

  double observation_loss_rate_ = 0.0;
  double kpi_record_loss_rate_ = 0.0;
  double kpi_record_duplication_rate_ = 0.0;
  // Base streams for the record-level decisions (forked per record key).
  Rng observation_loss_rng_{0};
  Rng kpi_loss_rng_{0};
  Rng kpi_dup_rng_{0};
};

}  // namespace cellscope::sim
