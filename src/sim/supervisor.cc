#include "sim/supervisor.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

namespace cellscope::sim {

DayFailed::DayFailed(SimDay d, const std::string& detail)
    : std::runtime_error("day " + std::to_string(d) +
                         " failed after supervised retries (" + detail +
                         "); previous checkpoint intact — rerun to resume"),
      day(d) {}

Supervisor::Supervisor(WorkerPool& pool, SupervisorConfig config)
    : pool_(pool), config_(config) {
  if (config_.max_attempts < 1) config_.max_attempts = 1;
}

void Supervisor::run(SimDay day, std::size_t n_items, std::size_t chunk_size,
                     const WorkerPool::WorkFn& work, const ResetFn& reset,
                     const WorkerPool::ReduceFn& reduce) {
  // Shared between workers, the watchdog and this thread for one run().
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::string first_error;

  const auto supervised = [&](std::size_t chunk, std::size_t slot,
                              std::size_t begin, std::size_t end,
                              std::size_t worker) {
    for (int attempt = 1;; ++attempt) {
      try {
        work(chunk, slot, begin, end, worker);
        completed.fetch_add(1, std::memory_order_relaxed);
        return;
      } catch (const std::exception& e) {
        // Never let the exception reach the pool's worker loop: it has no
        // handler and would std::terminate the process. Contain, reset,
        // retry — and on exhaustion flag the run as failed; the chunk's
        // buffer stays reset, so the reducer folds in a no-op.
        reset(chunk, slot);
        {
          std::lock_guard<std::mutex> lock{error_mutex};
          if (first_error.empty()) first_error = e.what();
        }
        if (attempt >= config_.max_attempts) {
          failed.store(true, std::memory_order_relaxed);
          completed.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        retries.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(config_.backoff_base * (1 << (attempt - 1)));
      }
    }
  };

  // Watchdog: wakes periodically and records a stall whenever a full
  // deadline passes with no chunk completing. Detection only — see the
  // header for why a hung thread cannot be preempted in-process.
  std::mutex watchdog_mutex;
  std::condition_variable watchdog_cv;
  bool run_done = false;
  std::uint64_t stalls = 0;
  std::thread watchdog{[&] {
    std::unique_lock<std::mutex> lock{watchdog_mutex};
    std::uint64_t last_seen = 0;
    auto last_progress = std::chrono::steady_clock::now();
    while (!run_done) {
      watchdog_cv.wait_for(lock, std::chrono::milliseconds{200});
      if (run_done) break;
      const std::uint64_t now_completed =
          completed.load(std::memory_order_relaxed);
      const auto now = std::chrono::steady_clock::now();
      if (now_completed != last_seen) {
        last_seen = now_completed;
        last_progress = now;
      } else if (now - last_progress >= config_.stall_deadline) {
        ++stalls;
        last_progress = now;  // one stall per expired deadline
      }
    }
  }};

  try {
    pool_.run(n_items, chunk_size, supervised, reduce);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock{watchdog_mutex};
      run_done = true;
    }
    watchdog_cv.notify_all();
    watchdog.join();
    throw;
  }
  {
    std::lock_guard<std::mutex> lock{watchdog_mutex};
    run_done = true;
  }
  watchdog_cv.notify_all();
  watchdog.join();

  stats_.retries += retries.load(std::memory_order_relaxed);
  stats_.stalls += stalls;
  if (failed.load(std::memory_order_relaxed)) {
    ++stats_.failures;
    std::lock_guard<std::mutex> lock{error_mutex};
    throw DayFailed{day, first_error.empty() ? "unknown error" : first_error};
  }
}

}  // namespace cellscope::sim
