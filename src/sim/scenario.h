// Scenario configuration.
//
// One ScenarioConfig fully determines a simulation run: the synthetic UK,
// the subscriber population, the RAN, the behavioural/policy models and the
// measurement window. Everything derives from `seed`, so two runs with the
// same config produce bit-identical feeds.
#pragma once

#include <cstdint>
#include <string>

#include "geo/uk_model.h"
#include "mobility/relocation.h"
#include "mobility/trajectory.h"
#include "population/generator.h"
#include "radio/topology.h"
#include "sim/faults.h"
#include "telemetry/kpi.h"
#include "traffic/core_network.h"
#include "traffic/demand.h"
#include "traffic/interconnect.h"
#include "traffic/voice.h"

namespace cellscope::sim {

struct ScenarioConfig {
  std::uint64_t seed = 42;

  // Simulated window, ISO weeks of 2020. Week 6 opens the February
  // home-detection warm-up; the paper's analysis covers weeks 9-19.
  int first_week = 6;
  int last_week = 19;
  // Network KPI collection starts here (mobility is always collected).
  int kpi_first_week = 9;
  bool collect_kpis = true;
  bool collect_signaling = true;
  // Also compute the six per-4-hour-bin mobility aggregates of Section 2.3
  // (6x the metric work; off by default, used by bench_ext_binned_mobility).
  bool collect_binned_mobility = false;
  // Also collect KPIs for 2G/3G cells (the paper's probes tap the legacy
  // Gb/Iu-PS/A interfaces too, but its figures are 4G-only). Off by
  // default; used by bench_ext_legacy_rats.
  bool collect_legacy_kpis = false;

  // Subscriber scale. The paper has ~22M native users; the default 40k is a
  // scaled stand-in (all reported quantities are deltas/fractions).
  std::uint32_t num_users = 40'000;

  geo::GeographyConfig geography;
  // Intervention-timeline knobs (counterfactuals: no lockdown, earlier
  // order, no regional relaxation...). Defaults reproduce the paper.
  mobility::PolicyParams policy;
  population::PopulationConfig population;  // num_users/seed overridden
  radio::TopologyConfig topology;           // expected_subscribers/seed overridden
  mobility::BehaviorParams behavior;
  mobility::RelocationParams relocation;
  traffic::DemandParams demand;
  traffic::VoiceParams voice;
  traffic::InterconnectParams interconnect;
  traffic::SignalingParams signaling;
  telemetry::DailyReduction kpi_reduction = telemetry::DailyReduction::kMedian;

  // Measurement-plane fault injection (probe outages, dark cells, record
  // loss/duplication). Defaults are all-zero: the feeds are perfect and the
  // run is byte-identical to a build without fault support. Faults degrade
  // what the probes *record*, never what the subscribers *do*.
  FaultConfig faults;

  // Share of connected time 4G serves when legacy RATs are present (~75%
  // per Section 2.4).
  double lte_time_share = 0.75;

  // Run the conservation audit (audit/laws.h) in-process: per-day checks
  // after each simulated KPI day plus the whole-run laws at the end, into
  // Dataset::audit_report. Like worker_threads this is a runtime knob, not
  // scenario identity — the audit only reads finished structures, so an
  // audited run's Dataset is bit-identical to an unaudited one (enforced by
  // test_determinism) and the flag stays out of config_digest.
  bool audit = false;

  // Worker threads for the per-user simulation. 1 = the serial reference.
  // A pure runtime knob: the worker pool buffers every accumulation per
  // user chunk and reduces chunks in index order, so any thread count
  // produces a bit-identical Dataset (enforced by test_determinism).
  int worker_threads = 1;

  // Users per work chunk. Unlike worker_threads this IS scenario identity:
  // the chunk grid fixes the floating-point reduction order, so changing it
  // can move KPI sums by a few ulps (and it enters config_digest). The
  // default keeps per-chunk buffers cache-friendly at bench scale; tests
  // shrink it to exercise many chunks on small populations.
  std::uint32_t user_chunk = 4096;

  [[nodiscard]] SimDay first_day() const { return week_start_day(first_week); }
  [[nodiscard]] SimDay last_day() const {
    return week_start_day(last_week) + kDaysPerWeek - 1;
  }
  [[nodiscard]] SimDay kpi_first_day() const {
    return week_start_day(kpi_first_week);
  }

  // Validates invariants (week ordering, positive counts); throws
  // std::invalid_argument on violation.
  void validate() const;
};

// Hex FNV-1a digest of the scenario-identifying fields (seed, window,
// scale, collection toggles, chunk grid, fault knobs). Two configs that
// describe the same scenario share a digest; worker_threads and audit are
// deliberately excluded — runtime choices, not part of the scenario identity
// (user_chunk, which pins the reduction order, is included). Run manifests
// carry this so results can be matched across machines and commits.
[[nodiscard]] std::string config_digest(const ScenarioConfig& config);

// The paper-scale default scenario used by the figure benches.
[[nodiscard]] ScenarioConfig default_scenario();

// A small, fast scenario for tests and the quickstart example.
[[nodiscard]] ScenarioConfig smoke_scenario();

}  // namespace cellscope::sim
