// Persistent worker pool for the per-user day simulation.
//
// The determinism contract (DESIGN.md Section 6) requires that a scenario's
// Dataset depend only on its ScenarioConfig — never on how many threads
// happened to execute it. The pool delivers that by decoupling *scheduling*
// from *reduction order*:
//
//   * the user index space is cut into fixed-size chunks (the chunk size is
//     scenario identity — ScenarioConfig::user_chunk — the thread count is
//     not);
//   * workers pull chunk indices from an atomic ChunkCursor, so a slow
//     worker sheds load to fast ones instead of stalling a static shard;
//   * every chunk accumulates into its own buffer (one of a small ring of
//     reusable slots), and the caller thread applies completed buffers
//     strictly in ascending chunk order, overlapping reduction with the
//     still-running tail of the fan-out.
//
// Because chunks are reduced in chunk-index order and users are processed
// in index order within a chunk, every floating-point accumulation happens
// in exactly the user-index order of a serial run over the same chunk
// grid — a run with 1, 2, 7 or 32 workers produces bit-identical output.
//
// Threads are created once per pool (one pool per Simulator::run) and
// parked on a condition variable between run() calls; the per-day
// create/join of the previous engine is gone. With a single worker the
// pool spawns no threads at all and run() executes work+reduce inline, in
// the same chunk order — the serial reference path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cellscope::sim {

// Hands out chunk indices [0, total) exactly once each, lock-free. Claims
// are monotonically increasing, which the pool's bounded reorder window
// relies on. reset() is serial-phase only; next() may race freely.
class ChunkCursor {
 public:
  ChunkCursor() = default;
  explicit ChunkCursor(std::size_t total) : total_(total) {}

  void reset(std::size_t total) {
    next_.store(0, std::memory_order_relaxed);
    total_ = total;
  }

  // Claims the next chunk; false once the index space is exhausted.
  bool next(std::size_t& chunk) {
    const std::size_t claimed = next_.fetch_add(1, std::memory_order_relaxed);
    if (claimed >= total_) return false;
    chunk = claimed;
    return true;
  }

  [[nodiscard]] std::size_t total() const { return total_; }

 private:
  std::atomic<std::size_t> next_{0};
  std::size_t total_ = 0;
};

class WorkerPool {
 public:
  // `work(chunk, slot, begin, end, worker)` runs on a pool worker (or the
  // caller when workers == 1) and must write only to the chunk buffer
  // addressed by `slot` and to per-item / per-worker private state.
  using WorkFn = std::function<void(std::size_t chunk, std::size_t slot,
                                    std::size_t begin, std::size_t end,
                                    std::size_t worker)>;
  // `reduce(chunk, slot)` runs on the calling thread, in ascending chunk
  // order, after that chunk's work returned. It must leave the slot buffer
  // cleared for reuse by a later chunk.
  using ReduceFn =
      std::function<void(std::size_t chunk, std::size_t slot)>;

  // Spawns `workers` persistent threads when workers > 1; a single-worker
  // pool spawns none and run() executes inline (the serial reference).
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int workers() const { return workers_; }

  // Number of chunk-buffer slots a caller must provide: the maximum number
  // of chunks in flight (claimed but not yet reduced) at any instant.
  [[nodiscard]] std::size_t window() const { return window_; }

  // Fans `ceil(n_items / chunk_size)` chunks out over the workers and
  // reduces them in chunk order on this thread; returns when every chunk
  // has been worked *and* reduced. Serial-phase only (one run at a time).
  void run(std::size_t n_items, std::size_t chunk_size, const WorkFn& work,
           const ReduceFn& reduce);

  // Chunks executed by each worker during the last run() (dynamic pulling
  // makes this the pool's balance record). Valid until the next run().
  [[nodiscard]] const std::vector<std::uint64_t>& chunks_per_worker() const {
    return chunks_per_worker_;
  }

  // run() invocations that dispatched at least one chunk.
  [[nodiscard]] std::uint64_t runs() const { return runs_; }

 private:
  void worker_main(std::size_t worker_index);
  void run_inline(std::size_t chunk_size, const WorkFn& work,
                  const ReduceFn& reduce);

  const int workers_;
  const std::size_t window_;
  std::uint64_t runs_ = 0;

  std::mutex mutex_;
  std::condition_variable cv_work_;   // workers wait: new job / window slack
  std::condition_variable cv_done_;   // reducer waits: chunk completion
  std::uint64_t epoch_ = 0;           // bumped per run() to wake workers
  bool stop_ = false;

  // Job state (guarded by mutex_ except where noted).
  ChunkCursor cursor_;                // lock-free claims
  std::size_t n_items_ = 0;
  std::size_t chunk_size_ = 1;
  std::size_t reduced_ = 0;           // chunks already reduced (window base)
  std::vector<std::uint8_t> done_;    // per-slot completion flags
  const WorkFn* work_ = nullptr;
  std::vector<std::uint64_t> chunks_per_worker_;

  std::vector<std::thread> threads_;
};

}  // namespace cellscope::sim
