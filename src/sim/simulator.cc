#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/mobility_metrics.h"
#include "audit/laws.h"
#include "obs/runtime.h"
#include "sim/dataset_audit.h"
#include "mobility/place.h"
#include "mobility/relocation.h"
#include "mobility/trajectory.h"
#include "radio/scheduler.h"
#include "sim/interrupt.h"
#include "sim/pool.h"
#include "sim/supervisor.h"
#include "traffic/demand.h"
#include "traffic/voice.h"

namespace cellscope::sim {

namespace {

// Serving cells of one user place, resolved once.
struct PlaceCells {
  SiteId site;
  LatLon site_location;
  CountyId county;
  PostcodeDistrictId district;
  std::array<CellId, radio::kRatCount> cell_by_rat;
  bool site_has_legacy = false;
};

PlaceCells resolve_place(const radio::RadioTopology& topology,
                         const mobility::Place& place) {
  PlaceCells pc;
  // serving_cell() picks nearest site + bearing sector; resolve per RAT
  // (legacy falls back to 4G where undeployed).
  pc.cell_by_rat[static_cast<int>(radio::Rat::k4G)] =
      topology.serving_cell(place.district, place.location, radio::Rat::k4G);
  pc.cell_by_rat[static_cast<int>(radio::Rat::k3G)] =
      topology.serving_cell(place.district, place.location, radio::Rat::k3G);
  pc.cell_by_rat[static_cast<int>(radio::Rat::k2G)] =
      topology.serving_cell(place.district, place.location, radio::Rat::k2G);
  const auto& cell =
      topology.cell(pc.cell_by_rat[static_cast<int>(radio::Rat::k4G)]);
  const auto& site = topology.site(cell.site);
  pc.site = site.id;
  pc.site_location = site.location;
  pc.county = site.county;
  pc.district = site.district;
  pc.site_has_legacy = site.has_2g || site.has_3g;
  return pc;
}

// Forwards signaling events to a chunk's probe except while the probe is
// in a fault-plan outage window, counting both sides for the quality
// report. One instance per chunk task, created on the worker's stack: a
// supervised retry starts from a fresh sink, so a failed attempt leaves no
// counts behind.
class FilteredSignalingSink final : public traffic::SignalingSink {
 public:
  FilteredSignalingSink(const FaultPlan& plan, traffic::SignalingSink& inner)
      : plan_(plan), inner_(inner) {}

  void on_event(const traffic::SignalingEvent& event) override {
    const auto day = static_cast<SimDay>(event.hour / kHoursPerDay);
    const auto hour = static_cast<int>(event.hour % kHoursPerDay);
    if (plan_.signaling_down(day, hour)) {
      ++dropped_;
      return;
    }
    ++forwarded_;
    inner_.on_event(event);
  }

  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void reset_counters() { forwarded_ = 0; dropped_ = 0; }

 private:
  const FaultPlan& plan_;
  traffic::SignalingSink& inner_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace

Simulator::Simulator(ScenarioConfig config) : config_(std::move(config)) {}

Dataset run_scenario(const ScenarioConfig& config) {
  return Simulator{config}.run();
}

Dataset run_scenario(const ScenarioConfig& config, DatasetSink* sink) {
  return Simulator{config}.run(sink);
}

void build_substrate(const ScenarioConfig& config, Dataset& ds) {
  obs::Tracer& tracer = obs::tracer();

  auto geo_config = config.geography;
  geo_config.seed = config.seed;
  {
    const auto span = tracer.span("setup.geography", "setup");
    ds.geography = std::make_unique<geo::UkGeography>(
        geo::UkGeography::build(geo_config));
  }

  {
    const auto span = tracer.span("setup.population", "setup");
    ds.catalog = std::make_unique<population::DeviceCatalog>(
        population::DeviceCatalog::build(config.seed));

    auto pop_config = config.population;
    pop_config.num_users = config.num_users;
    pop_config.seed = config.seed;
    population::PopulationGenerator generator{*ds.geography, *ds.catalog};
    ds.population = std::make_unique<population::Population>(
        generator.generate(pop_config));
  }
  ds.eligible_users = ds.population->eligible_count();

  auto topo_config = config.topology;
  topo_config.expected_subscribers = config.num_users;
  topo_config.seed = config.seed;
  {
    const auto span = tracer.span("setup.topology", "setup");
    ds.topology = std::make_unique<radio::RadioTopology>(
        radio::RadioTopology::build(*ds.geography, topo_config));
  }

  ds.policy = std::make_unique<mobility::PolicyTimeline>(config.policy);
}

Dataset Simulator::run(DatasetSink* sink, CheckpointSink* checkpoint) {
  config_.validate();

  // Observability plumbing. Everything below is behind `obs_on`, a bool
  // cached once per run: a disabled runtime costs one branch per
  // instrumentation point and records nothing. Tracing/metrics only read
  // clocks and counters — never RNG streams or model state — so a traced
  // run's Dataset is bit-identical to an untraced one.
  const bool obs_on = obs::enabled();
  obs::Tracer& tracer = obs::tracer();
  obs::MetricsRegistry& registry = obs::metrics();
  obs::MetricId m_user_days, m_observations, m_mobility, m_cells;
  obs::MetricId m_pool_chunks, m_pool_steals, m_kpi_rows;
  obs::Histogram* day_wall_hist = nullptr;
  obs::Histogram* pool_imbalance_hist = nullptr;
  obs::Histogram* checkpoint_hist = nullptr;
  if (obs_on) {
    m_user_days = registry.counter("sim.user_days");
    m_observations = registry.counter("sim.observations");
    m_mobility = registry.counter("sim.mobility_results");
    m_cells = registry.counter("scheduler.cells_scheduled");
    m_pool_chunks = registry.counter("pool.chunks");
    m_pool_steals = registry.counter("pool.chunks_stolen");
    m_kpi_rows = registry.counter("sim.kpi_rows");
    day_wall_hist = &registry.histogram("sim.day_wall_ms");
    pool_imbalance_hist = &registry.histogram("pool.chunk_imbalance_pct");
    checkpoint_hist = &registry.histogram("sim.checkpoint_ms");
  }

  Dataset ds;
  ds.config = config_;
  Rng root{config_.seed};

  // ---------------------------------------------------------------- setup
  build_substrate(config_, ds);
  const geo::UkGeography& geography = *ds.geography;
  const auto& subscribers = ds.population->subscribers;
  const radio::RadioTopology& topology = *ds.topology;
  const mobility::PolicyTimeline& policy = *ds.policy;

  mobility::PlacesBuilder places_builder{geography};
  mobility::TrajectoryGenerator trajectories{geography, policy,
                                             config_.behavior};
  mobility::RelocationModel relocation{geography, policy, config_.relocation};
  traffic::DemandModel demand_model{policy, config_.demand};
  traffic::VoiceModel voice_model{policy, config_.voice};
  traffic::VoiceInterconnect interconnect{config_.interconnect};
  traffic::SignalingGenerator signaling_gen{config_.signaling};
  radio::LteScheduler scheduler;

  const SimDay first_day = config_.first_day();
  const SimDay last_day = config_.last_day();
  const SimDay kpi_first_day =
      config_.collect_kpis ? config_.kpi_first_day() : last_day + 1;

  // Measurement-plane fault plan: one deterministic realization of the
  // scenario's FaultConfig. With all-zero knobs the plan is disabled and
  // every fault branch below is skipped, keeping the clean run untouched.
  const FaultPlan fault_plan =
      FaultPlan::build(config_.faults, config_.seed, first_day, last_day,
                       topology.cells().size());
  const bool faults_on = fault_plan.enabled();

  // In-process conservation audit: per-day KPI checks as days close, the
  // whole-run laws after the final merge. Read-only over finished
  // structures — it cannot perturb the run (test_determinism compares an
  // audited run to an unaudited one bit for bit).
  const bool audit_on = config_.audit;
  analysis::CellGrouping audit_partition;
  audit::MetricBounds audit_bounds;
  if (audit_on) {
    audit_partition = audit::region_partition(topology);
    audit_bounds = audit::bounds_for(topology);
  }

  // Per-user structures.
  const std::size_t n_users = subscribers.size();
  std::vector<mobility::UserPlaces> user_places(n_users);
  std::vector<mobility::UserState> user_states(n_users);
  std::vector<std::vector<PlaceCells>> place_cells(n_users);
  {
    const auto span = tracer.span("setup.places", "setup");
    for (std::size_t i = 0; i < n_users; ++i) {
      Rng user_rng = root.fork("user-places", i);
      user_places[i] = places_builder.build(subscribers[i], user_rng);
    }
  }
  // Generated place counts, before the relocation model appends any refuge.
  // The baseline regenerates from the seed, so a checkpoint serializes only
  // the places appended beyond it.
  std::vector<std::uint8_t> base_place_count(n_users);
  for (std::size_t i = 0; i < n_users; ++i)
    base_place_count[i] = static_cast<std::uint8_t>(user_places[i].size());
  const auto cells_of = [&](std::size_t user,
                            std::uint8_t place_index) -> const PlaceCells& {
    auto& resolved = place_cells[user];
    while (resolved.size() <= place_index) {
      resolved.push_back(resolve_place(
          topology, user_places[user].places[resolved.size()]));
    }
    return resolved[place_index];
  };

  // Mobility aggregates.
  ds.entropy_national = analysis::GroupedDailySeries{1, first_day, last_day};
  ds.gyration_national = analysis::GroupedDailySeries{1, first_day, last_day};
  ds.entropy_by_region = analysis::GroupedDailySeries{
      static_cast<std::size_t>(geo::kRegionCount), first_day, last_day};
  ds.gyration_by_region = analysis::GroupedDailySeries{
      static_cast<std::size_t>(geo::kRegionCount), first_day, last_day};
  ds.entropy_by_cluster = analysis::GroupedDailySeries{
      static_cast<std::size_t>(geo::kOacClusterCount), first_day, last_day};
  ds.gyration_by_cluster = analysis::GroupedDailySeries{
      static_cast<std::size_t>(geo::kOacClusterCount), first_day, last_day};

  // Home detection runs over the warm-up and closes when week 9 opens, so
  // that the Fig 7 matrix can track detected residents from the baseline
  // week onward (Feb 3-23 gives 21 candidate nights >= the 14 required).
  const SimDay analysis_start = week_start_day(9);
  analysis::HomeDetectionParams home_params;
  home_params.first_day = first_day;
  home_params.end_day = std::min<SimDay>(analysis_start, last_day + 1);
  analysis::HomeDetector home_detector{home_params};
  bool homes_finalized = false;
  std::vector<std::uint8_t> tracked_london(n_users, 0);

  const auto inner_london = geography.county_by_name("Inner London");

  // KPI plumbing.
  const std::size_t n_cells = topology.cells().size();
  telemetry::KpiAggregator kpi_aggregator{n_cells, config_.kpi_reduction};
  // [cell][hour] offered load for the current day; app_limited_dl_mbps
  // accumulates rate*seconds here and is normalized before scheduling.
  std::vector<radio::CellHourLoad> hour_loads(n_cells * kHoursPerDay);
  std::array<double, kHoursPerDay> offnet_minutes{};
  std::array<std::uint64_t, kHoursPerDay> voice_attempts_hour{};
  double week9_busy_hour_minutes = 0.0;
  bool interconnect_calibrated = false;

  ds.offnet_busy_hour_minutes = DailySeries{first_day, last_day};
  ds.interconnect_busy_hour_loss_pct = DailySeries{first_day, last_day};
  ds.roamers_active = DailySeries{first_day, last_day};
  ds.gyration_distribution = analysis::DistributionSeries{first_day, last_day};
  ds.entropy_distribution = analysis::DistributionSeries{first_day, last_day};
  if (config_.collect_binned_mobility) {
    ds.entropy_by_bin = analysis::GroupedDailySeries{
        static_cast<std::size_t>(kFourHourBinsPerDay), first_day, last_day};
    ds.gyration_by_bin = analysis::GroupedDailySeries{
        static_cast<std::size_t>(kFourHourBinsPerDay), first_day, last_day};
  }
  double lte_hours = 0.0;
  double legacy_hours = 0.0;

  // ---------------------------------------------------- parallel engine
  // The per-user day simulation is embarrassingly parallel: every mutable
  // per-user structure is disjoint and all randomness comes from per-user
  // forks. The pool cuts the user index space into fixed-size chunks
  // (ScenarioConfig::user_chunk); each chunk accumulates into one of
  // window() reusable buffers, and this thread folds completed buffers
  // into the Dataset in ascending chunk order. Every float accumulation
  // therefore happens in user-index order over a grid fixed by the config,
  // so the Dataset is bit-identical for any worker_threads (src/sim/pool.h
  // has the full contract; test_determinism enforces it).
  struct MobilityResult {
    std::uint32_t user = 0;
    double entropy = 0.0;
    double gyration = 0.0;
    std::array<float, kFourHourBinsPerDay> bin_entropy{};
    std::array<float, kFourHourBinsPerDay> bin_gyration{};
    std::uint8_t bin_mask = 0;
  };
  // One buffer per reorder-window slot: everything whose apply order can
  // move float bits, or that feeds an order-sensitive consumer (the home
  // detector, the London matrix), is staged here and drained by reduce.
  struct ChunkBuf {
    // Dense [cell][hour] loads plus the indexes actually touched, so a
    // chunk that visits few cells merges and clears in O(touched) rather
    // than O(n_cells * 24).
    std::vector<radio::CellHourLoad> loads;
    std::vector<std::uint32_t> dirty;
    std::array<double, kHoursPerDay> offnet{};
    // Call attempts per hour (for the voice ledger): integer counts, so the
    // chunk-order merge is exact and thread-count invariant for free.
    std::array<std::uint64_t, kHoursPerDay> voice_attempts{};
    double roamers = 0.0;
    double lte_hours = 0.0;
    double legacy_hours = 0.0;
    std::vector<MobilityResult> mobility;
    std::vector<telemetry::UserDayObservation> detector_obs;
    std::vector<telemetry::UserDayObservation> matrix_obs;
    // Per-day observation-feed accounting (faulted runs only).
    std::uint64_t obs_expected = 0;
    std::uint64_t obs_observed = 0;
    // Per-chunk signaling: events pass the outage filter into this probe;
    // reduce merges it into the Dataset (integer sums, so the chunk-order
    // merge is exact) and folds the filter counters into the day totals.
    telemetry::SignalingProbe probe;
    std::uint64_t sig_forwarded = 0;
    std::uint64_t sig_dropped = 0;
    // Pre-work snapshot of the chunk's mutable per-user inputs, taken at
    // the top of work(): user states plus each user's (place count,
    // refuge index). The supervisor's reset restores them so a retried
    // chunk replays the exact same decisions — including re-drawing a
    // refuge a failed attempt already appended (sim/supervisor.h).
    std::vector<mobility::UserState> state_snapshot;
    std::vector<std::pair<std::uint8_t, std::uint8_t>> places_snapshot;
  };
  // Per-worker state: metric deltas whose merge is integer-exact and
  // therefore order-free, plus reusable scratch. Nothing here can move a
  // float bit, and nothing here is chunk results — a retried chunk must
  // not be able to leave partial state outside its own buffer.
  struct WorkerCtx {
    // Private metric deltas, folded into the registry at day end.
    obs::MetricsShard metrics;
    telemetry::UserDayObservation observation;  // scratch
    std::vector<traffic::CellStay> cell_stays;  // scratch
  };

  // One pool per run: worker threads are created here and parked between
  // days — the per-day thread create/join of the previous engine is gone.
  WorkerPool pool{config_.worker_threads};
  const auto chunk_size = static_cast<std::size_t>(config_.user_chunk);
  const std::size_t n_chunks = (n_users + chunk_size - 1) / chunk_size;
  std::vector<ChunkBuf> chunk_bufs(pool.window());
  std::vector<WorkerCtx> workers(static_cast<std::size_t>(pool.workers()));
  // Supervised execution: throwing chunks are reset and retried in place,
  // exhausted chunks fail the day (after the previous day's checkpoint is
  // safely on disk), and a watchdog counts stalls. docs/RECOVERY.md.
  Supervisor supervisor{pool};

  // -------------------------------------------------- checkpoint/resume
  // One blob per completed day: the run-local evolving state below, then
  // the accumulated Dataset (sim/checkpoint.cc). Everything else regrows
  // from the config. The restore reads the exact same sequence back.
  constexpr std::uint64_t kRunStateVersion = 1;
  const auto save_checkpoint = [&](SimDay day_done) {
    BlobWriter w;
    w.u64(kRunStateVersion);
    w.u64(n_users);
    for (std::size_t i = 0; i < n_users; ++i) {
      const mobility::UserState& s = user_states[i];
      w.u8(static_cast<std::uint8_t>(
          (s.departed ? 1u : 0u) | (s.relocated ? 2u : 0u) |
          (s.wfh_active ? 4u : 0u) | (s.relocation_decided ? 8u : 0u)));
    }
    // Refuge places the relocation model appended beyond the baseline.
    std::uint64_t appended = 0;
    for (std::size_t i = 0; i < n_users; ++i)
      if (user_places[i].size() > base_place_count[i]) ++appended;
    w.u64(appended);
    for (std::size_t i = 0; i < n_users; ++i) {
      const mobility::UserPlaces& places = user_places[i];
      if (places.size() <= base_place_count[i]) continue;
      w.u32(static_cast<std::uint32_t>(i));
      w.u8(places.refuge_index);
      w.u8(static_cast<std::uint8_t>(places.size() - base_place_count[i]));
      for (std::size_t p = base_place_count[i]; p < places.size(); ++p) {
        const mobility::Place& place = places.places[p];
        w.u8(static_cast<std::uint8_t>(place.kind));
        w.u32(place.district.value());
        w.u32(place.county.value());
        w.f64(place.location.lat_deg);
        w.f64(place.location.lon_deg);
        w.f64(place.weight);
      }
    }
    w.u8(homes_finalized ? 1 : 0);
    if (!homes_finalized) {
      // Mid-warm-up: the detector's night accumulators are live state.
      // Once finalized they are spent; ds.homes (dataset section) carries
      // the result instead.
      const auto saved = home_detector.save_state();
      w.u64(saved.size());
      for (const auto& u : saved) {
        w.u32(u.user);
        w.u32(u.nights);
        w.i64(u.last_night_day);
        w.u64(u.sites.size());
        for (const auto& s : u.sites) {
          w.u32(s.site);
          w.f64(s.night_hours);
          w.u32(s.district);
          w.u32(s.county);
        }
      }
    }
    w.f64(week9_busy_hour_minutes);
    w.u8(interconnect_calibrated ? 1 : 0);
    w.f64(lte_hours);
    w.f64(legacy_hours);
    save_dataset_state(ds, w);
    if (obs_on)
      obs::track_bytes(obs::Subsystem::kSim, w.data().size());
    checkpoint->on_day_complete(day_done, w.take());
  };

  SimDay start_day = first_day;
  if (checkpoint != nullptr && !checkpoint->resume_payload().empty()) {
    const auto resume_span = tracer.span("setup.resume", "setup");
    BlobReader r{checkpoint->resume_payload()};
    if (r.u64() != kRunStateVersion)
      throw BlobError{"checkpoint blob: unsupported run-state version"};
    if (r.u64() != n_users)
      throw BlobError{"checkpoint blob: user count mismatch"};
    for (std::size_t i = 0; i < n_users; ++i) {
      const std::uint8_t flags = r.u8();
      mobility::UserState& s = user_states[i];
      s.departed = (flags & 1u) != 0;
      s.relocated = (flags & 2u) != 0;
      s.wfh_active = (flags & 4u) != 0;
      s.relocation_decided = (flags & 8u) != 0;
    }
    const std::uint64_t appended_users = r.u64();
    for (std::uint64_t k = 0; k < appended_users; ++k) {
      const std::uint32_t user = r.u32();
      if (user >= n_users)
        throw BlobError{"checkpoint blob: appended-place user out of range"};
      mobility::UserPlaces& places = user_places[user];
      const std::uint8_t refuge_index = r.u8();
      const std::uint8_t n_extra = r.u8();
      for (std::uint8_t p = 0; p < n_extra; ++p) {
        mobility::Place place;
        place.kind = static_cast<mobility::PlaceKind>(r.u8());
        place.district = PostcodeDistrictId{r.u32()};
        place.county = CountyId{r.u32()};
        place.location.lat_deg = r.f64();
        place.location.lon_deg = r.f64();
        place.weight = r.f64();
        places.places.push_back(place);
      }
      places.refuge_index = refuge_index;
    }
    homes_finalized = r.u8() != 0;
    if (!homes_finalized) {
      std::vector<analysis::HomeDetector::SavedUserState> saved(
          static_cast<std::size_t>(r.u64()));
      for (auto& u : saved) {
        u.user = r.u32();
        u.nights = r.u32();
        u.last_night_day = static_cast<SimDay>(r.i64());
        u.sites.resize(static_cast<std::size_t>(r.u64()));
        for (auto& s : u.sites) {
          s.site = r.u32();
          s.night_hours = r.f64();
          s.district = r.u32();
          s.county = r.u32();
        }
      }
      home_detector.restore_state(saved);
    }
    week9_busy_hour_minutes = r.f64();
    interconnect_calibrated = r.u8() != 0;
    lte_hours = r.f64();
    legacy_hours = r.f64();
    restore_dataset_state(ds, r);
    if (!r.done()) throw BlobError{"checkpoint blob: trailing bytes"};

    // Derived state the blob does not carry: the interconnect's capacity
    // (a pure function of the calibration scalar) and the London tracking
    // flags (a pure function of the restored homes).
    if (interconnect_calibrated)
      interconnect.calibrate(std::max(week9_busy_hour_minutes, 1.0));
    if (homes_finalized && inner_london) {
      for (const auto& home : ds.homes)
        if (home.home_county == *inner_london)
          tracked_london[home.user.value()] = 1;
    }

    start_day = checkpoint->resume_day() + 1;
    ds.recovery.resumed = true;
    ds.recovery.resumed_from_day = checkpoint->resume_day();
    ds.recovery.checkpoint_kpi_rows = ds.kpis.records().size();
    ds.recovery.checkpoint_voice_attempts = ds.voice_calls.total_attempts();
    ds.recovery.checkpoint_signaling_days = ds.signaling.days().size();

    // Re-stream the restored KPI days through the sink in their original
    // day batches: a streaming store sees the exact row sequence of the
    // uninterrupted run, so its bytes come out identical.
    if (sink != nullptr) {
      const auto& records = ds.kpis.records();
      std::size_t lo = 0;
      while (lo < records.size()) {
        std::size_t hi = lo;
        while (hi < records.size() && records[hi].day == records[lo].day) ++hi;
        sink->on_kpi_day(records[lo].day,
                         std::span<const telemetry::CellDayRecord>{
                             records.data() + lo, hi - lo});
        lo = hi;
      }
    }
  }

  // ------------------------------------------------------------- main loop
  for (SimDay day = start_day; day <= last_day; ++day) {
    auto day_span = tracer.span("day", "sim", day);
    const auto day_clock_start = std::chrono::steady_clock::now();

    // Finalize homes the moment the analysis window opens.
    if (!homes_finalized && day >= analysis_start) {
      homes_finalized = true;
      ds.homes = home_detector.finalize();
      ds.home_validation = analysis::validate_homes(
          geography, ds.homes, static_cast<std::int64_t>(ds.eligible_users));
      if (inner_london) {
        ds.london_matrix = std::make_unique<analysis::MobilityMatrix>(
            geography, *inner_london, analysis_start, last_day);
        for (const auto& home : ds.homes) {
          if (home.home_county == *inner_london) {
            tracked_london[home.user.value()] = 1;
            ++ds.london_residents_tracked;
          }
        }
      }
    }

    const bool kpi_day = config_.collect_kpis && day >= kpi_first_day;
    if (kpi_day) kpi_aggregator.begin_day(day);

    const bool collect_homes = !homes_finalized;
    const bool track_matrix = ds.london_matrix != nullptr;

    // Chunk-load buffers are sized lazily on the first KPI day; reduction
    // leaves every buffer cleared, so there is no other per-day reset.
    if (kpi_day && chunk_bufs[0].loads.empty())
      for (auto& b : chunk_bufs) b.loads.assign(n_cells * kHoursPerDay, {});
    // Day accumulators drained by the chunk-order reduction below.
    double roamers_today = 0.0;
    std::uint64_t obs_expected_today = 0;
    std::uint64_t obs_observed_today = 0;
    std::uint64_t sig_forwarded_today = 0;
    std::uint64_t sig_dropped_today = 0;
    if (kpi_day) {
      std::fill(hour_loads.begin(), hour_loads.end(),
                radio::CellHourLoad{});
      offnet_minutes.fill(0.0);
      voice_attempts_hour.fill(0);
    }
    // Hour filtering only matters on days with an actual outage window.
    const bool sig_out_today =
        faults_on && fault_plan.signaling_down_hours(day) > 0;

    // --- Per-user simulation (runs inside a pool worker; writes only to
    // its chunk buffer, its WorkerCtx and the user's own state/places). ---
    const auto process_user = [&](std::size_t i, ChunkBuf& b, WorkerCtx& ctx,
                                  traffic::SignalingSink& sink) {
      telemetry::UserDayObservation& observation = ctx.observation;
      std::vector<traffic::CellStay>& cell_stays = ctx.cell_stays;
      const population::Subscriber& user = subscribers[i];
      mobility::UserState& state = user_states[i];
      if (obs_on) ctx.metrics.add(m_user_days);
      Rng rng = root.fork("user-day", i * 1024 + static_cast<std::size_t>(day));

      relocation.maybe_decide(user, user_places[i], state, day, rng);

      mobility::DayPlan plan;
      if (!user.smartphone) {
        // M2M devices are static: pinned to the home place around the clock.
        if (!state.departed) plan.stays.push_back({0, 0, kHoursPerDay});
      } else {
        plan = trajectories.plan_day(user, user_places[i], state, day, rng);
      }
      if (plan.empty()) return;
      if (!user.native) b.roamers += 1.0;

      // --- Build the tower-level observation (merge stays per site). ---
      if (obs_on) ctx.metrics.add(m_observations);
      observation.user = user.id;
      observation.day = day;
      observation.stays.clear();
      for (const auto& stay : plan.stays) {
        const PlaceCells& pc = cells_of(i, stay.place);
        telemetry::TowerStay* tower = nullptr;
        for (auto& existing : observation.stays) {
          if (existing.site == pc.site) {
            tower = &existing;
            break;
          }
        }
        if (tower == nullptr) {
          observation.stays.emplace_back();
          tower = &observation.stays.back();
          tower->site = pc.site;
          tower->location = pc.site_location;
          tower->county = pc.county;
          tower->district = pc.district;
          tower->hours = 0.0f;
          tower->night_hours = 0.0f;
          tower->bin_hours.fill(0.0f);
        }
        if (!sig_out_today) {
          const float hours =
              static_cast<float>(stay.end_hour - stay.start_hour);
          tower->hours += hours;
          for (int h = stay.start_hour; h < stay.end_hour; ++h) {
            tower->bin_hours[static_cast<std::size_t>(four_hour_bin(h))] +=
                1.0f;
            if (is_nighttime(h)) tower->night_hours += 1.0f;
          }
        } else {
          // Hours inside a signaling-probe outage never reach the feed: the
          // stay's dwell shrinks to its visible hours (the subscriber still
          // moved; the record just doesn't show it).
          for (int h = stay.start_hour; h < stay.end_hour; ++h) {
            if (fault_plan.signaling_down(day, h)) continue;
            tower->hours += 1.0f;
            tower->bin_hours[static_cast<std::size_t>(four_hour_bin(h))] +=
                1.0f;
            if (is_nighttime(h)) tower->night_hours += 1.0f;
          }
        }
      }
      if (sig_out_today)
        std::erase_if(observation.stays, [](const telemetry::TowerStay& t) {
          return t.hours <= 0.0f;
        });

      const bool eligible = user.native && user.smartphone;
      // Record-level fault gate: a dropped (or fully outage-eclipsed)
      // observation is invisible to every consumer of the signaling feed —
      // home detection, mobility metrics and the relocation matrix alike.
      bool feed_visible = true;
      if (faults_on && eligible) {
        ++b.obs_expected;
        if (observation.stays.empty() ||
            fault_plan.drop_observation(static_cast<std::uint32_t>(i), day))
          feed_visible = false;
        else
          ++b.obs_observed;
      }
      if (eligible && feed_visible) {
        if (collect_homes) b.detector_obs.push_back(observation);
        // Mobility metrics, grouped by residence (Section 2.3 aggregates at
        // home-postcode granularity and up). Buffered per chunk; applied in
        // user-index order by the chunk reduction.
        if (const auto metrics = analysis::compute_day_metrics(observation)) {
          MobilityResult result;
          result.user = static_cast<std::uint32_t>(i);
          result.entropy = metrics->entropy;
          result.gyration = metrics->gyration_km;
          if (config_.collect_binned_mobility) {
            for (int bin = 0; bin < kFourHourBinsPerDay; ++bin) {
              analysis::MobilityMetricOptions options;
              options.four_hour_bin = bin;
              if (const auto m =
                      analysis::compute_day_metrics(observation, options)) {
                result.bin_entropy[static_cast<std::size_t>(bin)] =
                    static_cast<float>(m->entropy);
                result.bin_gyration[static_cast<std::size_t>(bin)] =
                    static_cast<float>(m->gyration_km);
                result.bin_mask |= static_cast<std::uint8_t>(1u << bin);
              }
            }
          }
          b.mobility.push_back(result);
          if (obs_on) ctx.metrics.add(m_mobility);
        }
        if (track_matrix && tracked_london[i])
          b.matrix_obs.push_back(observation);
      }

      // --- Traffic and signaling. ---
      if (!kpi_day) return;
      int active_data_hours = 0;
      int voice_calls = 0;
      cell_stays.clear();
      for (const auto& stay : plan.stays) {
        const PlaceCells& pc = cells_of(i, stay.place);
        const auto context = traffic::wifi_context(
            user_places[i].places[stay.place].kind);
        const CellId lte_cell =
            pc.cell_by_rat[static_cast<int>(radio::Rat::k4G)];
        cell_stays.push_back({lte_cell, stay.start_hour, stay.end_hour});

        for (int h = stay.start_hour; h < stay.end_hour; ++h) {
          // RAT for this hour (~75% of connected time on 4G).
          const bool on_lte =
              !pc.site_has_legacy || rng.chance(config_.lte_time_share);
          if (on_lte) {
            b.lte_hours += 1.0;
          } else {
            b.legacy_hours += 1.0;
          }

          const auto voice = voice_model.sample_hour(user, day, h, rng);
          if (voice.minutes > 0.0) {
            ++voice_calls;
            ++b.voice_attempts[static_cast<std::size_t>(h)];
            // All off-net conversational minutes (any RAT) cross the
            // inter-MNO trunks.
            b.offnet[static_cast<std::size_t>(h)] +=
                voice.minutes * voice.offnet_fraction;
          }

          // Serving cell for the load accounting. Legacy hours are outside
          // the paper's KPI scope and are only accumulated when the
          // scenario opts into legacy collection.
          CellId serving = lte_cell;
          if (!on_lte) {
            if (!config_.collect_legacy_kpis) continue;
            // Camped on 3G where deployed (2G for ~30% of the legacy dwell
            // when both layers exist).
            const CellId cell_3g =
                pc.cell_by_rat[static_cast<int>(radio::Rat::k3G)];
            const CellId cell_2g =
                pc.cell_by_rat[static_cast<int>(radio::Rat::k2G)];
            const bool has_3g =
                topology.cell(cell_3g).rat == radio::Rat::k3G;
            const bool has_2g =
                topology.cell(cell_2g).rat == radio::Rat::k2G;
            if (has_3g && (!has_2g || !rng.chance(0.3))) {
              serving = cell_3g;
            } else if (has_2g) {
              serving = cell_2g;
            } else {
              continue;  // no legacy layer actually deployed here
            }
          }

          const std::size_t load_index =
              serving.value() * kHoursPerDay + static_cast<std::size_t>(h);
          auto& load = b.loads[load_index];
          // connected_users is always a (cell, hour)'s first touch, so a
          // zero count means this chunk has not dirtied the slot yet.
          if (load.connected_users == 0.0)
            b.dirty.push_back(static_cast<std::uint32_t>(load_index));
          load.connected_users += 1.0;
          const auto demand = demand_model.sample_hour(
              user, context, day, h, rng,
              demand_model.activity_factor(
                  user_places[i].places[stay.place].kind, day));
          load.offered_dl_mb += demand.dl_mb;
          load.offered_ul_mb += demand.ul_mb;
          load.active_dl_user_seconds += demand.active_dl_seconds;
          // Accumulate rate*seconds; normalized to the mean before
          // scheduling (see below).
          load.app_limited_dl_mbps +=
              demand.app_dl_rate_mbps * demand.active_dl_seconds;
          if (on_lte && demand.active_dl_seconds > 0.0) ++active_data_hours;
          if (voice.minutes > 0.0) {
            load.voice_dl_mb += voice.dl_mb;
            load.voice_ul_mb += voice.ul_mb;
            load.voice_user_seconds += voice.in_call_seconds;
            load.offnet_voice_fraction = voice.offnet_fraction;
          }
        }
      }
      if (config_.collect_signaling && !cell_stays.empty()) {
        signaling_gen.generate_day(user, cell_stays, day, active_data_hours,
                                   voice_calls, rng, sink);
      }
    };

    // Work runs on a pool worker (or inline when worker_threads == 1) and
    // touches only its chunk buffer, its WorkerCtx and per-user state.
    const auto work = [&](std::size_t chunk, std::size_t slot,
                          std::size_t begin, std::size_t end,
                          std::size_t worker) {
      (void)chunk;
      // One span per chunk, on the executing worker's display lane.
      const auto chunk_span =
          tracer.span("day.users.chunk", "worker", day,
                      static_cast<std::uint32_t>(worker + 1));
      ChunkBuf& b = chunk_bufs[slot];
      WorkerCtx& ctx = workers[worker];
      // Snapshot the chunk's mutable inputs so a supervised retry can
      // rewind to exactly this point.
      b.state_snapshot.assign(
          user_states.begin() + static_cast<std::ptrdiff_t>(begin),
          user_states.begin() + static_cast<std::ptrdiff_t>(end));
      b.places_snapshot.clear();
      for (std::size_t i = begin; i < end; ++i)
        b.places_snapshot.emplace_back(
            static_cast<std::uint8_t>(user_places[i].size()),
            user_places[i].refuge_index);
      FilteredSignalingSink sink{fault_plan, b.probe};
      for (std::size_t i = begin; i < end; ++i) process_user(i, b, ctx, sink);
      b.sig_forwarded = sink.forwarded();
      b.sig_dropped = sink.dropped();
    };

    // Rewinds a chunk to its pre-work snapshot after a failed attempt:
    // per-user state and any refuge place the attempt appended roll back,
    // every buffer accumulator clears. With the inputs restored, the rerun
    // draws the same per-user RNG forks and reproduces the attempt bit for
    // bit — so a retried chunk is indistinguishable in the Dataset.
    const auto reset_chunk = [&](std::size_t chunk, std::size_t slot) {
      ChunkBuf& b = chunk_bufs[slot];
      const std::size_t begin = chunk * chunk_size;
      std::copy(b.state_snapshot.begin(), b.state_snapshot.end(),
                user_states.begin() + static_cast<std::ptrdiff_t>(begin));
      for (std::size_t k = 0; k < b.places_snapshot.size(); ++k) {
        mobility::UserPlaces& places = user_places[begin + k];
        const auto [n_places, refuge] = b.places_snapshot[k];
        if (places.places.size() > n_places) places.places.resize(n_places);
        places.refuge_index = refuge;
        // The lazy serving-cell cache may have resolved the rolled-back
        // place; truncate so the rerun re-resolves it identically.
        auto& resolved = place_cells[begin + k];
        if (resolved.size() > n_places) resolved.resize(n_places);
      }
      for (const auto load_index : b.dirty)
        b.loads[load_index] = radio::CellHourLoad{};
      b.dirty.clear();
      b.offnet.fill(0.0);
      b.voice_attempts.fill(0);
      b.roamers = 0.0;
      b.lte_hours = 0.0;
      b.legacy_hours = 0.0;
      b.mobility.clear();
      b.detector_obs.clear();
      b.matrix_obs.clear();
      b.obs_expected = 0;
      b.obs_observed = 0;
      b.probe = telemetry::SignalingProbe{};
      b.sig_forwarded = 0;
      b.sig_dropped = 0;
    };

    // Reduce runs on this thread in ascending chunk order — the only
    // writer of Dataset and day state — and leaves the slot cleared.
    const auto reduce = [&](std::size_t chunk, std::size_t slot) {
      (void)chunk;
      ChunkBuf& b = chunk_bufs[slot];
      roamers_today += b.roamers;
      lte_hours += b.lte_hours;
      legacy_hours += b.legacy_hours;
      obs_expected_today += b.obs_expected;
      obs_observed_today += b.obs_observed;
      sig_forwarded_today += b.sig_forwarded;
      sig_dropped_today += b.sig_dropped;
      b.roamers = 0.0;
      b.lte_hours = 0.0;
      b.legacy_hours = 0.0;
      b.obs_expected = 0;
      b.obs_observed = 0;
      b.sig_forwarded = 0;
      b.sig_dropped = 0;
      ds.signaling.merge(b.probe);
      b.probe = telemetry::SignalingProbe{};
      b.state_snapshot.clear();
      b.places_snapshot.clear();
      for (const auto& obs : b.detector_obs) home_detector.observe(obs);
      b.detector_obs.clear();
      for (const auto& result : b.mobility) {
        const population::Subscriber& user = subscribers[result.user];
        if (config_.collect_binned_mobility) {
          for (int bin = 0; bin < kFourHourBinsPerDay; ++bin) {
            if (!(result.bin_mask & (1u << bin))) continue;
            ds.entropy_by_bin.add(
                static_cast<std::size_t>(bin), day,
                static_cast<double>(
                    result.bin_entropy[static_cast<std::size_t>(bin)]));
            ds.gyration_by_bin.add(
                static_cast<std::size_t>(bin), day,
                static_cast<double>(
                    result.bin_gyration[static_cast<std::size_t>(bin)]));
          }
        }
        ds.entropy_national.add(0, day, result.entropy);
        ds.gyration_national.add(0, day, result.gyration);
        ds.entropy_distribution.add(day, result.entropy);
        ds.gyration_distribution.add(day, result.gyration);
        const auto region = static_cast<std::size_t>(user.home_region);
        ds.entropy_by_region.add(region, day, result.entropy);
        ds.gyration_by_region.add(region, day, result.gyration);
        const auto cluster = static_cast<std::size_t>(user.home_cluster);
        ds.entropy_by_cluster.add(cluster, day, result.entropy);
        ds.gyration_by_cluster.add(cluster, day, result.gyration);
      }
      b.mobility.clear();
      for (const auto& obs : b.matrix_obs) ds.london_matrix->observe(obs);
      b.matrix_obs.clear();
      if (kpi_day) {
        for (const auto load_index : b.dirty) {
          radio::merge_load(hour_loads[load_index], b.loads[load_index]);
          b.loads[load_index] = radio::CellHourLoad{};
        }
        b.dirty.clear();
        for (int h = 0; h < kHoursPerDay; ++h)
          offnet_minutes[static_cast<std::size_t>(h)] +=
              b.offnet[static_cast<std::size_t>(h)];
        b.offnet.fill(0.0);
        for (int h = 0; h < kHoursPerDay; ++h)
          voice_attempts_hour[static_cast<std::size_t>(h)] +=
              b.voice_attempts[static_cast<std::size_t>(h)];
        b.voice_attempts.fill(0);
      }
    };

    {
      // "day.users" now covers the fan-out *and* the in-flight reduction:
      // completed chunks fold into the Dataset while later chunks are
      // still being simulated.
      const auto users_span = tracer.span("day.users", "sim", day);
      try {
        supervisor.run(day, n_users, chunk_size, work, reset_chunk, reduce);
      } catch (DayFailed& failed) {
        // Attach the partial Dataset so the bench can still write a
        // manifest + quality ledger for the run before exiting 5. It holds
        // every completed day plus whatever chunks of the failed day
        // reduced before the drain; resume discards the failed day anyway
        // (the checkpoint stops at the previous one).
        ds.recovery.supervisor_retries = supervisor.stats().retries;
        ds.recovery.supervisor_failures = supervisor.stats().failures;
        ds.recovery.supervisor_stalls = supervisor.stats().stalls;
        failed.partial = std::make_shared<Dataset>(std::move(ds));
        throw;
      }
    }

    // --- Serial tail: everything left after the chunk reduction. ---
    auto apply_span = tracer.span("day.apply", "sim", day);
    ds.roamers_active.set(day, roamers_today);
    ds.gyration_distribution.seal_day(day);
    ds.entropy_distribution.seal_day(day);

    // Quality accounting for the signaling-derived feeds (faulted runs
    // only; a clean run keeps the report empty and its output untouched).
    if (faults_on) {
      ds.quality.expect("user-observations", day, obs_expected_today);
      ds.quality.observe("user-observations", day, obs_observed_today);
      if (config_.collect_signaling) {
        ds.quality.expect("signaling-events", day,
                          sig_forwarded_today + sig_dropped_today);
        ds.quality.observe("signaling-events", day, sig_forwarded_today);
      }
    }
    apply_span.close();

    // --- Schedule the day's cell-hours and reduce to daily KPIs. ---
    if (kpi_day) {
      const auto schedule_span = tracer.span("day.schedule", "sim", day);
      // Interconnect: dimensioned against the first KPI week's busy hour.
      const int calibration_week = config_.kpi_first_week;
      const double day_busy_hour =
          *std::max_element(offnet_minutes.begin(), offnet_minutes.end());
      if (iso_week(day) == calibration_week) {
        week9_busy_hour_minutes =
            std::max(week9_busy_hour_minutes, day_busy_hour);
      } else if (!interconnect_calibrated) {
        interconnect.calibrate(std::max(week9_busy_hour_minutes, 1.0));
        interconnect_calibrated = true;
      }

      std::array<double, kHoursPerDay> hour_loss{};
      for (int h = 0; h < kHoursPerDay; ++h) {
        hour_loss[static_cast<std::size_t>(h)] =
            interconnect_calibrated
                ? interconnect.dl_loss_pct(day, offnet_minutes[h])
                : interconnect.params().base_loss_pct;
      }
      ds.offnet_busy_hour_minutes.set(day, day_busy_hour);
      const auto busy_hour_index = static_cast<std::size_t>(
          std::max_element(offnet_minutes.begin(), offnet_minutes.end()) -
          offnet_minutes.begin());
      ds.interconnect_busy_hour_loss_pct.set(day, hour_loss[busy_hour_index]);

      // Classify the day's call attempts for the voice ledger. Blocked:
      // the off-net share of attempts in hours whose offered interconnect
      // minutes exceed trunk capacity (turned away at setup). Dropped: the
      // in-call casualties of the hour's trunk loss among what got through.
      // Integer floors on already-computed quantities — no RNG, no float
      // accumulation into any other structure — so the ledger rides along
      // without moving a bit of the existing outputs.
      traffic::VoiceDayCalls vday;
      vday.day = day;
      for (int h = 0; h < kHoursPerDay; ++h) {
        const std::uint64_t attempts =
            voice_attempts_hour[static_cast<std::size_t>(h)];
        vday.attempts += attempts;
        if (attempts == 0) continue;
        double overflow_frac = 0.0;
        if (interconnect_calibrated) {
          const double cap = interconnect.capacity(day);
          const double offered = offnet_minutes[static_cast<std::size_t>(h)];
          if (offered > cap && offered > 0.0)
            overflow_frac = (offered - cap) / offered;
        }
        const auto blocked = std::min(
            attempts,
            static_cast<std::uint64_t>(
                static_cast<double>(attempts) * overflow_frac *
                config_.voice.offnet_fraction));
        const std::uint64_t through = attempts - blocked;
        const auto dropped = std::min(
            through, static_cast<std::uint64_t>(
                         static_cast<double>(through) *
                         hour_loss[static_cast<std::size_t>(h)] / 100.0));
        vday.blocked += blocked;
        vday.dropped += dropped;
        vday.completed += through - dropped;
      }
      ds.voice_calls.record_day(vday);

      std::uint64_t cells_scheduled = 0;
      const auto schedule_cell = [&](CellId cell_id) {
        ++cells_scheduled;
        // A cell in an outage run is dark for the whole day: no hourly
        // samples reach the aggregator, so finish_day emits no row for it.
        if (faults_on && fault_plan.cell_out(cell_id, day)) return;
        const radio::Cell& cell = topology.cell(cell_id);
        for (int h = 0; h < kHoursPerDay; ++h) {
          // Hours inside a KPI-collection outage are lost before daily
          // aggregation (the day reduces over its surviving hours).
          if (faults_on && fault_plan.kpi_feed_down(day, h)) continue;
          auto& load = hour_loads[cell_id.value() * kHoursPerDay +
                                  static_cast<std::size_t>(h)];
          if (load.active_dl_user_seconds > 0.0)
            load.app_limited_dl_mbps /= load.active_dl_user_seconds;
          kpi_aggregator.record_hour(
              cell_id, scheduler.schedule_hour(
                           cell, load, hour_loss[static_cast<std::size_t>(h)]));
        }
      };
      if (config_.collect_legacy_kpis) {
        for (const auto& cell : topology.cells()) schedule_cell(cell.id);
      } else {
        for (const auto cell_id : topology.lte_cells()) schedule_cell(cell_id);
      }
      std::uint64_t day_rows = 0;
      if (!faults_on) {
        auto day_records = kpi_aggregator.finish_day();
        if (audit_on)
          audit::check_kpi_day(day, day_records, audit_partition,
                               audit_bounds, ds.audit_report);
        if (sink != nullptr && !day_records.empty())
          sink->on_kpi_day(day, day_records);
        day_rows = day_records.size();
        ds.kpis.add_day(std::move(day_records));
      } else {
        // Warehouse-export faults: lose or duplicate whole cell-day rows.
        auto day_records = kpi_aggregator.finish_day();
        std::vector<telemetry::CellDayRecord> kept;
        kept.reserve(day_records.size());
        std::uint64_t observed = 0;
        for (const auto& record : day_records) {
          if (fault_plan.drop_kpi_record(record.cell.value(), day)) continue;
          ++observed;
          kept.push_back(record);
          if (fault_plan.duplicate_kpi_record(record.cell.value(), day)) {
            ds.quality.duplicate("kpi-feed");
            kept.push_back(record);
          }
        }
        ds.quality.expect("kpi-feed", day, cells_scheduled);
        ds.quality.observe("kpi-feed", day, observed);
        // The audit sees what the feed delivered (kept rows): conservation
        // must hold over the degraded feed too, since a duplicated row
        // lands on both sides of every sum.
        if (audit_on)
          audit::check_kpi_day(day, kept, audit_partition, audit_bounds,
                               ds.audit_report);
        if (sink != nullptr && !kept.empty()) sink->on_kpi_day(day, kept);
        day_rows = kept.size();
        ds.kpis.add_day(std::move(kept));
      }
      if (obs_on) {
        registry.add(m_cells, cells_scheduled);
        registry.add(m_kpi_rows, day_rows);
        obs::track_bytes(obs::Subsystem::kSim,
                         day_rows * sizeof(telemetry::CellDayRecord));
      }
    }

    // Fold worker metric deltas into the registry at day (phase) end and
    // account the day's wall time plus the pool's balance record.
    if (obs_on) {
      for (auto& w : workers) registry.merge(w.metrics);
      registry.add(m_pool_chunks, n_chunks);
      const auto& per_worker = pool.chunks_per_worker();
      // "Stolen" chunks: work a worker pulled beyond the static fair share
      // a shard-per-thread engine would have pinned on it.
      const std::uint64_t fair_share =
          (n_chunks + per_worker.size() - 1) / per_worker.size();
      std::uint64_t stolen = 0;
      std::uint64_t busiest = per_worker[0];
      std::uint64_t laziest = per_worker[0];
      for (const auto count : per_worker) {
        if (count > fair_share) stolen += count - fair_share;
        busiest = std::max(busiest, count);
        laziest = std::min(laziest, count);
      }
      registry.add(m_pool_steals, stolen);
      pool_imbalance_hist->record(100.0 *
                                  static_cast<double>(busiest - laziest) /
                                  static_cast<double>(n_chunks));
      day_wall_hist->record(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - day_clock_start)
              .count());
    }

    // Day complete: every accumulator above is reduced and published.
    // Persist the resumable state, then honor any pending interrupt — both
    // only at this boundary, so a checkpoint always describes whole days
    // and an interrupted run is exactly a resumable one.
    if (checkpoint != nullptr) {
      const auto ckpt_span = tracer.span("day.checkpoint", "sim", day);
      const auto ckpt_start = std::chrono::steady_clock::now();
      save_checkpoint(day);
      if (obs_on) {
        const double ckpt_ms = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() -
                                   ckpt_start)
                                   .count();
        checkpoint_hist->record(ckpt_ms);
        obs::timeline().record_checkpoint_ms(ckpt_ms);
      }
    }
    // Day-boundary health sample, after the checkpoint so its latency is
    // this day's, not the previous one's. Reads clocks, /proc and counters
    // only — a sampled run stays bit-identical to an unsampled one.
    if (obs_on) obs::timeline().sample_day(day);
    if (interrupt_requested() && day < last_day)
      throw RunInterrupted{day, std::make_shared<Dataset>(std::move(ds))};
  }

  ds.recovery.supervisor_retries = supervisor.stats().retries;
  ds.recovery.supervisor_failures = supervisor.stats().failures;
  ds.recovery.supervisor_stalls = supervisor.stats().stalls;

  // Whole-run conservation laws, now that every store is final (signaling
  // probes merge per chunk inside the day loop).
  if (audit_on) {
    const auto span = tracer.span("audit.global", "audit");
    audit_dataset_global(ds, ds.audit_report);
  }

  // Publish the leaf-module counters (each accumulated locally on its
  // serial path) and the run-level resource gauges.
  if (obs_on) {
    registry.add("scheduler.hours_scheduled", scheduler.hours_scheduled());
    registry.add("scheduler.hours_dl_saturated",
                 scheduler.hours_dl_saturated());
    registry.add("interconnect.hours_evaluated",
                 interconnect.hours_evaluated());
    registry.add("interconnect.hours_saturated",
                 interconnect.hours_saturated());
    registry.add("probe.signaling_events", ds.signaling.events_ingested());
    registry.add("supervisor.retries", supervisor.stats().retries);
    registry.add("supervisor.failures", supervisor.stats().failures);
    registry.add("supervisor.stalls", supervisor.stats().stalls);
    std::uint64_t quarantined = 0;
    for (const auto& feed : ds.quality.feeds())
      quarantined += feed.quarantined_records;
    registry.add("quality.quarantined_records", quarantined);
    registry.set_gauge("process.peak_rss_kb",
                       static_cast<double>(obs::peak_rss_kb()));
  }

  if (lte_hours + legacy_hours > 0.0)
    ds.measured_lte_time_share = lte_hours / (lte_hours + legacy_hours);

  // Degenerate scenarios that never reach week 9 still finalize homes.
  if (!homes_finalized) {
    ds.homes = home_detector.finalize();
    ds.home_validation = analysis::validate_homes(
        geography, ds.homes, static_cast<std::int64_t>(ds.eligible_users));
  }
  return ds;
}

}  // namespace cellscope::sim
