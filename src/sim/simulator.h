// The simulator: runs a scenario end to end and materializes every dataset
// the paper's figures need.
//
// Day-by-day loop:
//   1. every subscriber's trajectory is generated (policy-modulated),
//      resolved to serving cells, and turned into a UserDayObservation;
//   2. observations stream into the February home detector, the mobility
//      metric aggregates (national / per-region / per-cluster) and, once
//      homes are known, the Inner London mobility matrix;
//   3. if KPI collection is open, per-(cell, hour) offered load accumulates
//      from the demand and voice models, the interconnect converts national
//      off-net voice into a per-hour loss, the LTE scheduler produces each
//      cell's hourly KPIs, and the aggregator reduces them to daily medians;
//   4. signaling events stream into the passive probe.
//
// The per-user work fans out over a persistent worker pool (sim/pool.h)
// that reduces fixed-size user chunks in index order, so the returned
// Dataset is bit-identical for any worker_threads setting.
//
// The returned Dataset owns everything a bench or example reads.
#pragma once

#include <memory>
#include <span>

#include "analysis/aggregation.h"
#include "analysis/distribution.h"
#include "audit/report.h"
#include "analysis/home_detection.h"
#include "analysis/mobility_matrix.h"
#include "analysis/validation.h"
#include "common/timeseries.h"
#include "mobility/policy.h"
#include "population/device.h"
#include "population/subscriber.h"
#include "radio/topology.h"
#include "sim/checkpoint.h"
#include "sim/scenario.h"
#include "telemetry/kpi.h"
#include "telemetry/probes.h"
#include "telemetry/quality.h"
#include "traffic/voice.h"

namespace cellscope::sim {

struct Dataset {
  ScenarioConfig config;

  // Substrate (owned; analysis structures reference into these).
  std::unique_ptr<geo::UkGeography> geography;
  std::unique_ptr<population::DeviceCatalog> catalog;
  std::unique_ptr<population::Population> population;
  std::unique_ptr<radio::RadioTopology> topology;
  std::unique_ptr<mobility::PolicyTimeline> policy;

  // Home detection (window: the February warm-up) + Fig 2 validation.
  std::vector<analysis::HomeRecord> homes;
  analysis::HomeValidation home_validation;

  // Mobility aggregates over eligible (native smartphone) users.
  // Group 0 of `national` is the whole country; regional groups follow
  // geo::Region order; cluster groups follow geo::OacCluster order.
  analysis::GroupedDailySeries entropy_national;   // 1 group
  analysis::GroupedDailySeries gyration_national;  // 1 group
  analysis::GroupedDailySeries entropy_by_region;
  analysis::GroupedDailySeries gyration_by_region;
  analysis::GroupedDailySeries entropy_by_cluster;
  analysis::GroupedDailySeries gyration_by_cluster;

  // Inner London relocation matrix (Fig 7).
  std::unique_ptr<analysis::MobilityMatrix> london_matrix;
  std::size_t london_residents_tracked = 0;

  // Network KPIs (daily medians per 4G cell) and signaling counters.
  telemetry::KpiStore kpis;
  telemetry::SignalingProbe signaling;

  // National per-day call accounting over the KPI window: every attempt
  // classified completed / blocked (interconnect overflow) / dropped
  // (in-call trunk loss). Model-side bookkeeping, so measurement-plane
  // faults never thin it — the audit's voice-accounting law closes over it.
  traffic::VoiceCallLedger voice_calls;

  // Data-quality accounting for the collected feeds. Empty when the
  // scenario injects no faults (a perfect feed has nothing to report).
  telemetry::FeedQualityReport quality;

  // Interconnect diagnostics: national off-net voice minutes offered in the
  // busiest hour of each day, and that hour's trunk loss.
  DailySeries offnet_busy_hour_minutes;
  DailySeries interconnect_busy_hour_loss_pct;

  // Optional per-4-hour-bin mobility aggregates (six groups, bin 0 =
  // 00:00-04:00), populated when collect_binned_mobility is set.
  analysis::GroupedDailySeries entropy_by_bin;
  analysis::GroupedDailySeries gyration_by_bin;

  // Inbound roamers active per day (the population the paper filters OUT;
  // its collapse is the travel-ban signature).
  DailySeries roamers_active;

  // Per-day distribution bands of the per-user mobility metrics (national):
  // backs the paper's "all percentiles are close to the median" commentary.
  analysis::DistributionSeries gyration_distribution;
  analysis::DistributionSeries entropy_distribution;

  // Measured share of connected time served by 4G during the KPI window
  // (Section 2.4 reports ~75% for the real network).
  double measured_lte_time_share = 0.0;

  std::size_t eligible_users = 0;

  // Conservation-audit results, populated when ScenarioConfig::audit is
  // set (empty otherwise). Derived bookkeeping about the run, not part of
  // the run itself: the store never serializes it and dataset equality
  // ignores it.
  audit::AuditReport audit_report;

  // Crash-safety bookkeeping (docs/RECOVERY.md). Like audit_report this is
  // derived metadata about HOW the run executed, not part of the run's
  // output: the store never serializes it and dataset equality ignores it
  // (a resumed run must be bit-identical to an uninterrupted one).
  struct RunRecovery {
    bool resumed = false;
    SimDay resumed_from_day = 0;  // checkpoint high-water mark
    // Ledger sizes recorded at restore time; the checkpoint-consistency
    // audit law reconciles the final ledgers' prefixes against these.
    std::uint64_t checkpoint_kpi_rows = 0;
    std::uint64_t checkpoint_voice_attempts = 0;
    std::uint64_t checkpoint_signaling_days = 0;
    // Supervised-execution totals (sim/supervisor.h).
    std::uint64_t supervisor_retries = 0;
    std::uint64_t supervisor_failures = 0;
    std::uint64_t supervisor_stalls = 0;
  };
  RunRecovery recovery;

  // Convenience baselines (week-9 national averages).
  [[nodiscard]] double entropy_baseline() const {
    return entropy_national.week_baseline(0, 9);
  }
  [[nodiscard]] double gyration_baseline() const {
    return gyration_national.week_baseline(0, 9);
  }
};

// Streaming hook for feed consumers that want rows as they are produced
// (the on-disk store in src/store implements this). The simulator calls
// on_kpi_day() once per collected KPI day, in day order, with the day's
// finalized cell-day rows — the same rows that are about to enter
// Dataset::kpis — so a sink can persist the dominant feed incrementally
// with bounded memory instead of walking the finished Dataset.
class DatasetSink {
 public:
  virtual ~DatasetSink() = default;
  virtual void on_kpi_day(SimDay day,
                          std::span<const telemetry::CellDayRecord> rows) = 0;
};

// Builds the deterministic substrate (geography, device catalog,
// population, radio topology, policy timeline) into `ds` and sets
// eligible_users. Everything here derives from the config alone, so the
// store's read_dataset() rebuilds the substrate with this instead of
// serializing it.
void build_substrate(const ScenarioConfig& config, Dataset& ds);

class Simulator {
 public:
  explicit Simulator(ScenarioConfig config);

  // Runs the whole window and returns the populated dataset. A non-null
  // sink receives feed rows as days complete. A non-null checkpoint makes
  // the run resumable: its saved state (if any) fast-forwards the run to
  // the first incomplete day — with restored KPI days re-streamed through
  // `sink` first, so a streaming store ends up byte-identical — and every
  // completed day is checkpointed. Throws RunInterrupted (sim/interrupt.h)
  // at a day boundary when an interrupt was requested, and DayFailed
  // (sim/supervisor.h) when a day exhausted its supervised retries.
  [[nodiscard]] Dataset run(DatasetSink* sink = nullptr,
                            CheckpointSink* checkpoint = nullptr);

 private:
  ScenarioConfig config_;
};

// Convenience: configure + run.
[[nodiscard]] Dataset run_scenario(const ScenarioConfig& config);
[[nodiscard]] Dataset run_scenario(const ScenarioConfig& config,
                                   DatasetSink* sink);

}  // namespace cellscope::sim
