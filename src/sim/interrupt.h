// Cooperative interruption of a running simulation.
//
// The bench harness installs SIGINT/SIGTERM handlers that set a global
// flag (the only thing a signal handler may safely do); the simulator
// polls it at day boundaries — immediately after the day's checkpoint is
// persisted — and unwinds with RunInterrupted. The day granularity is
// deliberate: it is exactly the checkpoint granularity, so an interrupted
// run is always resumable from where it stopped and never loses a
// completed day. See docs/RECOVERY.md.
#pragma once

#include <memory>
#include <stdexcept>

#include "common/simtime.h"

namespace cellscope::sim {

struct Dataset;

// Async-signal-safe: sets the process-wide interrupt flag.
void request_interrupt() noexcept;
[[nodiscard]] bool interrupt_requested() noexcept;
// Clears the flag (start of a run, and tests).
void reset_interrupt() noexcept;

// Thrown by Simulator::run() when the interrupt flag is observed at a day
// boundary. The day's checkpoint (if a CheckpointSink is attached) has
// already been flushed; `partial` carries the dataset as of
// `last_completed_day` so the harness can still print quality/obs
// summaries before exiting.
class RunInterrupted : public std::runtime_error {
 public:
  RunInterrupted(SimDay last_completed_day, std::shared_ptr<Dataset> partial);

  SimDay last_completed_day;
  std::shared_ptr<Dataset> partial;
};

}  // namespace cellscope::sim
