#include "audit/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/json.h"

namespace cellscope::audit {

namespace {

// JSON has no NaN/Inf; degenerate values serialize as 0 (matching the obs
// manifest writer's convention).
std::string number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// CSV fields are quoted with doubled inner quotes, so commas in violation
// details never shear a row.
std::string csv_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    out += c;
    if (c == '"') out += '"';
  }
  out += '"';
  return out;
}

}  // namespace

AuditReport::LawCount& AuditReport::law_entry(std::string_view law) {
  for (auto& entry : laws_)
    if (entry.law == law) return entry;
  laws_.push_back(LawCount{std::string(law), 0, 0});
  return laws_.back();
}

void AuditReport::add_checks(std::string_view law, std::uint64_t n) {
  law_entry(law).checks += n;
}

void AuditReport::add_violation(AuditViolation violation) {
  ++law_entry(violation.law).violations;
  violations_.push_back(std::move(violation));
}

std::uint64_t AuditReport::checks_evaluated() const {
  std::uint64_t total = 0;
  for (const auto& entry : laws_) total += entry.checks;
  return total;
}

std::uint64_t AuditReport::checks_for(std::string_view law) const {
  for (const auto& entry : laws_)
    if (entry.law == law) return entry.checks;
  return 0;
}

std::uint64_t AuditReport::violations_for(std::string_view law) const {
  for (const auto& entry : laws_)
    if (entry.law == law) return entry.violations;
  return 0;
}

void AuditReport::merge(const AuditReport& other) {
  for (const auto& entry : other.laws_) {
    LawCount& mine = law_entry(entry.law);
    mine.checks += entry.checks;
    mine.violations += entry.violations;
  }
  violations_.insert(violations_.end(), other.violations_.begin(),
                     other.violations_.end());
}

void AuditReport::print(std::ostream& os) const {
  os << "Conservation audit: " << checks_evaluated() << " checks, "
     << violations_.size() << " violation(s)\n";
  for (const auto& entry : laws_) {
    os << "  " << entry.law << ": " << entry.checks << " checks, "
       << entry.violations << " violation(s)\n";
  }
  // Cap the detail listing: a systematically broken law would otherwise
  // bury the summary under thousands of identical rows.
  constexpr std::size_t kMaxDetailed = 20;
  const std::size_t shown = std::min(violations_.size(), kMaxDetailed);
  for (std::size_t i = 0; i < shown; ++i) {
    const AuditViolation& v = violations_[i];
    os << "  VIOLATION [" << v.law << "] " << v.subject << ": expected "
       << v.expected << ", actual " << v.actual << " — " << v.detail << "\n";
  }
  if (violations_.size() > shown)
    os << "  ... and " << violations_.size() - shown << " more\n";
}

void AuditReport::write_json(std::ostream& os) const {
  os << "{\n";
  os << "  \"schema\": \"cellscope-audit-report/1\",\n";
  os << "  \"checks\": " << checks_evaluated() << ",\n";
  os << "  \"violations_total\": " << violations_.size() << ",\n";
  os << "  \"clean\": " << (clean() ? "true" : "false") << ",\n";
  os << "  \"laws\": [";
  for (std::size_t i = 0; i < laws_.size(); ++i) {
    const LawCount& entry = laws_[i];
    os << (i ? "," : "") << "\n    {\"law\": \"" << obs::json_escape(entry.law)
       << "\", \"checks\": " << entry.checks
       << ", \"violations\": " << entry.violations << "}";
  }
  os << (laws_.empty() ? "" : "\n  ") << "],\n";
  os << "  \"violations\": [";
  for (std::size_t i = 0; i < violations_.size(); ++i) {
    const AuditViolation& v = violations_[i];
    os << (i ? "," : "") << "\n    {\"law\": \"" << obs::json_escape(v.law)
       << "\", \"subject\": \"" << obs::json_escape(v.subject)
       << "\", \"expected\": " << number(v.expected)
       << ", \"actual\": " << number(v.actual) << ", \"detail\": \""
       << obs::json_escape(v.detail) << "\"}";
  }
  os << (violations_.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
}

void AuditReport::write_csv(std::ostream& os) const {
  os << "law,subject,expected,actual,detail\n";
  for (const AuditViolation& v : violations_) {
    os << csv_quote(v.law) << ',' << csv_quote(v.subject) << ','
       << number(v.expected) << ',' << number(v.actual) << ','
       << csv_quote(v.detail) << "\n";
  }
}

}  // namespace cellscope::audit
