// The conservation-law registry.
//
// Each check_* function verifies one law over the telemetry/analysis
// structures a finished run produced, appending to an AuditReport. The laws
// span layers on purpose — each one compares two independent computations
// of the same physical quantity, so a quiet double-count or loss *between*
// layers (scheduler -> telemetry -> analysis -> store) trips a check even
// when every layer is self-consistent:
//
//   kpi-partition     every KPI row's cell belongs to exactly one region of
//                     the full partition, and the per-day regional sums add
//                     up to the day's national sum (gap days excluded on
//                     both sides).
//   kpi-aggregation   the analysis layer's KpiGroupSeries sum-reduction
//                     over the region partition reproduces the direct
//                     per-day sums over the raw telemetry rows.
//   kpi-range         per-row metric-range laws: volumes, counts and
//                     throughputs are non-negative, TTI utilization is in
//                     [0, 1], loss percentages are in [0, 100].
//   voice-accounting  per day, call attempts == completed + blocked +
//                     dropped (blocked = interconnect overflow), and the
//                     ledger's lifetime attempt counter equals the day sum.
//   quality-closure   per feed, generated = delivered + lost closes:
//                     the expected/observed totals equal their per-day
//                     sums and observed never exceeds expected.
//   signaling-balance signaling event counts balance per day — every
//                     attach carries exactly one authentication and one
//                     session establishment, bearer setups match releases,
//                     service requests match ECM-IDLE transitions, failures
//                     never exceed totals — and the probe's lifetime event
//                     counter equals the day-total sum.
//   mobility-range    entropy lies in [0, ln(sites)], radius of gyration
//                     is >= 0, both in the daily aggregates and in every
//                     distribution band.
//
// The store-reconcile law (bytes/rows written vs read back) lives in the
// store layer (store::audit_store), which sits above sim in the layer
// graph. sim/dataset_audit.h bridges a whole Dataset into these checks.
//
// All checks are read-only and draw no randomness: auditing a run cannot
// change it.
#pragma once

#include <span>

#include "analysis/aggregation.h"
#include "analysis/distribution.h"
#include "analysis/network_metrics.h"
#include "audit/report.h"
#include "geo/uk_model.h"
#include "radio/topology.h"
#include "telemetry/kpi.h"
#include "telemetry/probes.h"
#include "telemetry/quality.h"
#include "traffic/voice.h"

namespace cellscope::audit {

// The full-partition grouping the KPI conservation laws sum over: every
// cell (any RAT) assigned to exactly one geo::Region by its site. Unlike
// analysis::group_by_region — five figure counties plus an all-group — this
// covers the whole country with no overlap, so regional sums must equal the
// national sum exactly.
[[nodiscard]] analysis::CellGrouping region_partition(
    const radio::RadioTopology& topology);

// Bounds for the metric-range laws.
struct MetricBounds {
  // ln(site count): entropy is in nats over towers visited, so no user-day
  // can exceed the uniform distribution over every site.
  double entropy_max = 0.0;
  double loss_pct_max = 100.0;
};
[[nodiscard]] MetricBounds bounds_for(const radio::RadioTopology& topology);

// --- Per-day checks (kpi-partition, kpi-range): run in-process after each
// simulated day, and per stored day by the post-hoc auditor. `rows` is one
// day's KPI feed output.
void check_kpi_day(SimDay day, std::span<const telemetry::CellDayRecord> rows,
                   const analysis::CellGrouping& partition,
                   const MetricBounds& bounds, AuditReport& report);

// voice-accounting for a single day (the lifetime-counter cross-check
// lives in check_voice_accounting).
void check_voice_day(const traffic::VoiceDayCalls& day, AuditReport& report);

// --- Whole-run checks.

// kpi-aggregation: KpiGroupSeries (kSum reduction, a mean*count float path)
// vs direct sums over the raw rows, per day per region, within a relative
// tolerance of 1e-9 — the two paths reduce in different orders, so bitwise
// equality is not required, but anything beyond rounding is a lost or
// double-counted cell.
void check_kpi_aggregation(const telemetry::KpiStore& kpis,
                           const analysis::CellGrouping& partition,
                           AuditReport& report);

void check_voice_accounting(const traffic::VoiceCallLedger& ledger,
                            AuditReport& report);

void check_quality_closure(const telemetry::FeedQualityReport& quality,
                           AuditReport& report);

void check_signaling_balance(const telemetry::SignalingProbe& probe,
                             AuditReport& report);

// mobility-range over the national daily aggregates and distribution bands.
void check_mobility_ranges(const analysis::GroupedDailySeries& entropy,
                           const analysis::GroupedDailySeries& gyration,
                           const analysis::DistributionSeries& entropy_dist,
                           const analysis::DistributionSeries& gyration_dist,
                           const MetricBounds& bounds, AuditReport& report);

// checkpoint-consistency: only meaningful for a RESUMED run. The simulator
// records the restored ledger sizes (KPI rows, lifetime voice attempts,
// signaling days) at the moment it fast-forwards; this law re-derives each
// from the FINAL ledgers' prefix up to the resume day and requires exact
// equality — a resumed run that re-simulated a checkpointed day (double
// count) or skipped one (loss) cannot reconcile. Never runs for fresh
// runs: there is no restore point to reconcile against.
void check_checkpoint_consistency(SimDay resumed_from_day,
                                  std::uint64_t recorded_kpi_rows,
                                  std::uint64_t recorded_voice_attempts,
                                  std::uint64_t recorded_signaling_days,
                                  const telemetry::KpiStore& kpis,
                                  const traffic::VoiceCallLedger& voice,
                                  const telemetry::SignalingProbe& signaling,
                                  AuditReport& report);

}  // namespace cellscope::audit
