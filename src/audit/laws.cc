#include "audit/laws.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "geo/admin.h"
#include "traffic/core_network.h"

namespace cellscope::audit {

namespace {

// Two float reductions of the same cells agree to rounding but not bitwise
// (different summation orders). Anything past 1e-9 relative is a lost or
// double-counted term, not noise: the sums involved have at most ~1e5
// addends of comparable magnitude.
constexpr double kRelTol = 1e-9;

bool nearly_equal(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= kRelTol * scale;
}

std::string day_subject(SimDay day) { return "day " + std::to_string(day); }

// One row-level range check; returns false (and records a violation) on the
// first out-of-bounds field so a single corrupt row yields one violation.
bool check_row_ranges(const telemetry::CellDayRecord& row,
                      const MetricBounds& bounds, AuditReport& report) {
  const std::string subject =
      "cell " + std::to_string(row.cell.value()) + " / " +
      day_subject(row.day);
  const auto fail = [&](std::string_view field, double lo, double hi,
                        double actual) {
    report.add_violation(
        {"kpi-range", subject, lo, actual,
         std::string(field) + " outside [" + std::to_string(lo) + ", " +
             std::to_string(hi) + "]"});
    return false;
  };
  struct Field {
    std::string_view name;
    double value;
    double lo;
    double hi;
  };
  const double inf = std::numeric_limits<double>::infinity();
  const Field fields[] = {
      {"dl_volume_mb", row.dl_volume_mb, 0.0, inf},
      {"ul_volume_mb", row.ul_volume_mb, 0.0, inf},
      {"active_dl_users", row.active_dl_users, 0.0, inf},
      {"tti_utilization", row.tti_utilization, 0.0, 1.0},
      {"user_dl_throughput_mbps", row.user_dl_throughput_mbps, 0.0, inf},
      {"active_data_seconds", row.active_data_seconds, 0.0, inf},
      {"connected_users", row.connected_users, 0.0, inf},
      {"voice_volume_mb", row.voice_volume_mb, 0.0, inf},
      {"simultaneous_voice_users", row.simultaneous_voice_users, 0.0, inf},
      {"voice_dl_loss_pct", row.voice_dl_loss_pct, 0.0, bounds.loss_pct_max},
      {"voice_ul_loss_pct", row.voice_ul_loss_pct, 0.0, bounds.loss_pct_max},
  };
  for (const Field& f : fields) {
    if (std::isnan(f.value) || f.value < f.lo || f.value > f.hi)
      return fail(f.name, f.lo, f.hi, f.value);
  }
  return true;
}

}  // namespace

analysis::CellGrouping region_partition(const radio::RadioTopology& topology) {
  analysis::CellGrouping grouping;
  grouping.names.reserve(geo::kRegionCount);
  for (int r = 0; r < geo::kRegionCount; ++r)
    grouping.names.emplace_back(
        geo::region_name(static_cast<geo::Region>(r)));
  grouping.group_of.assign(topology.cells().size(),
                           analysis::CellGrouping::kUngrouped);
  for (const radio::Cell& cell : topology.cells()) {
    const radio::CellSite& site = topology.site(cell.site);
    grouping.group_of[cell.id.value()] =
        static_cast<std::int32_t>(site.region);
  }
  return grouping;
}

MetricBounds bounds_for(const radio::RadioTopology& topology) {
  MetricBounds bounds;
  bounds.entropy_max =
      std::log(static_cast<double>(std::max<std::size_t>(
          topology.sites().size(), 1)));
  return bounds;
}

void check_kpi_day(SimDay day, std::span<const telemetry::CellDayRecord> rows,
                   const analysis::CellGrouping& partition,
                   const MetricBounds& bounds, AuditReport& report) {
  const std::size_t groups = partition.group_count();
  // Representative conserved quantities: a volume, a population count and
  // the anomaly metric of the paper.
  const telemetry::KpiMetric metrics[] = {
      telemetry::KpiMetric::kDlVolume,
      telemetry::KpiMetric::kConnectedUsers,
      telemetry::KpiMetric::kVoiceVolume,
  };
  constexpr std::size_t kMetrics = std::size(metrics);
  std::vector<double> regional(groups * kMetrics, 0.0);
  std::array<double, kMetrics> national{};

  report.add_checks("kpi-range", rows.size());
  report.add_checks("kpi-partition", rows.size());
  for (const telemetry::CellDayRecord& row : rows) {
    const bool in_range = check_row_ranges(row, bounds, report);
    const std::string subject =
        "cell " + std::to_string(row.cell.value()) + " / " +
        day_subject(day);
    if (row.day != day) {
      report.add_violation({"kpi-partition", subject,
                            static_cast<double>(day),
                            static_cast<double>(row.day),
                            "row filed under the wrong day"});
      continue;
    }
    const std::size_t id = static_cast<std::size_t>(row.cell.value());
    const std::int32_t group =
        id < partition.group_of.size() ? partition.group_of[id]
                                       : analysis::CellGrouping::kUngrouped;
    if (group < 0 || static_cast<std::size_t>(group) >= groups) {
      report.add_violation({"kpi-partition", subject, 0.0,
                            static_cast<double>(group),
                            "cell belongs to no region of the partition"});
      continue;
    }
    // A range-corrupt row (a NaN especially) would poison both sides of
    // the partition sums and read as a second, spurious violation; the row
    // is already accounted under kpi-range, so keep the laws orthogonal.
    if (!in_range) continue;
    for (std::size_t m = 0; m < kMetrics; ++m) {
      const double value = telemetry::kpi_value(row, metrics[m]);
      regional[static_cast<std::size_t>(group) * kMetrics + m] += value;
      national[m] += value;
    }
  }

  // Σ regional == national per conserved metric: holds only if every row
  // landed in exactly one region above.
  report.add_checks("kpi-partition", kMetrics);
  for (std::size_t m = 0; m < kMetrics; ++m) {
    double sum = 0.0;
    for (std::size_t g = 0; g < groups; ++g)
      sum += regional[g * kMetrics + m];
    if (!nearly_equal(sum, national[m])) {
      report.add_violation(
          {"kpi-partition",
           std::string(telemetry::kpi_metric_name(metrics[m])) + " / " +
               day_subject(day),
           national[m], sum,
           "regional sums do not add up to the national sum"});
    }
  }
}

void check_voice_day(const traffic::VoiceDayCalls& day, AuditReport& report) {
  report.add_checks("voice-accounting");
  const std::uint64_t classified = day.completed + day.blocked + day.dropped;
  if (classified != day.attempts) {
    report.add_violation(
        {"voice-accounting", day_subject(day.day),
         static_cast<double>(day.attempts), static_cast<double>(classified),
         "attempts != completed + blocked + dropped"});
  }
}

void check_kpi_aggregation(const telemetry::KpiStore& kpis,
                           const analysis::CellGrouping& partition,
                           AuditReport& report) {
  if (kpis.empty()) return;
  const telemetry::KpiMetric metrics[] = {
      telemetry::KpiMetric::kDlVolume,
      telemetry::KpiMetric::kConnectedUsers,
      telemetry::KpiMetric::kVoiceVolume,
  };
  const std::size_t groups = partition.group_count();
  for (const telemetry::KpiMetric metric : metrics) {
    const analysis::KpiGroupSeries reduced(kpis, partition, metric,
                                           analysis::CellReduction::kSum);
    std::vector<double> direct(groups, 0.0);
    std::vector<std::uint64_t> cells(groups, 0);
    const auto flush = [&](SimDay day) {
      for (std::size_t g = 0; g < groups; ++g) {
        if (cells[g] == 0) continue;  // the day is a gap for this group
        const std::string subject =
            std::string(telemetry::kpi_metric_name(metric)) + " / " +
            partition.names[g] + " / " + day_subject(day);
        report.add_checks("kpi-aggregation", 2);
        const std::size_t reporting = reduced.cells_reporting(g, day);
        if (reporting != cells[g]) {
          report.add_violation({"kpi-aggregation", subject,
                                static_cast<double>(cells[g]),
                                static_cast<double>(reporting),
                                "cells reporting into the group reduction "
                                "disagree with the raw rows"});
        }
        const double group_sum = reduced.group(g).value_or(
            day, std::numeric_limits<double>::quiet_NaN());
        if (!nearly_equal(group_sum, direct[g])) {
          report.add_violation(
              {"kpi-aggregation", subject, direct[g], group_sum,
               "group sum-reduction disagrees with the direct row sum"});
        }
        direct[g] = 0.0;
        cells[g] = 0;
      }
    };
    SimDay current = kpis.first_day();
    for (const telemetry::CellDayRecord& row : kpis.records()) {
      if (row.day != current) {
        flush(current);
        current = row.day;
      }
      const std::size_t id = static_cast<std::size_t>(row.cell.value());
      if (id >= partition.group_of.size()) continue;
      const std::int32_t group = partition.group_of[id];
      if (group < 0) continue;  // coverage is kpi-partition's law
      direct[static_cast<std::size_t>(group)] +=
          telemetry::kpi_value(row, metric);
      ++cells[static_cast<std::size_t>(group)];
    }
    flush(current);
  }
}

void check_voice_accounting(const traffic::VoiceCallLedger& ledger,
                            AuditReport& report) {
  std::uint64_t attempts_sum = 0;
  SimDay previous = -1;
  for (const traffic::VoiceDayCalls& day : ledger.days()) {
    check_voice_day(day, report);
    report.add_checks("voice-accounting");
    if (day.day <= previous && previous >= 0) {
      report.add_violation({"voice-accounting", day_subject(day.day),
                            static_cast<double>(previous + 1),
                            static_cast<double>(day.day),
                            "ledger days out of chronological order"});
    }
    previous = day.day;
    attempts_sum += day.attempts;
  }
  // Lifetime counter vs day rows: the counter is accumulated independently,
  // so a serialization path that drops or duplicates a day trips this even
  // when each surviving row still closes.
  report.add_checks("voice-accounting");
  if (ledger.total_attempts() != attempts_sum) {
    report.add_violation({"voice-accounting", "ledger total",
                          static_cast<double>(attempts_sum),
                          static_cast<double>(ledger.total_attempts()),
                          "lifetime attempt counter disagrees with the "
                          "per-day rows"});
  }
}

void check_quality_closure(const telemetry::FeedQualityReport& quality,
                           AuditReport& report) {
  // One check for the whole-ledger evaluation: a clean scenario's ledger
  // is empty (a perfect feed has nothing to report), and the law holding
  // vacuously is still the law having run.
  report.add_checks("quality-closure");
  for (const telemetry::FeedQuality& feed : quality.feeds()) {
    std::uint64_t expected_sum = 0;
    std::uint64_t observed_sum = 0;
    for (const auto& [day, counts] : feed.days) {
      expected_sum += counts.expected;
      observed_sum += counts.observed;
      report.add_checks("quality-closure");
      if (counts.observed > counts.expected) {
        report.add_violation(
            {"quality-closure", feed.name + " / " + day_subject(day),
             static_cast<double>(counts.expected),
             static_cast<double>(counts.observed),
             "more records observed than generated"});
      }
    }
    report.add_checks("quality-closure", 2);
    if (feed.expected_records != expected_sum) {
      report.add_violation({"quality-closure", feed.name + " / expected",
                            static_cast<double>(expected_sum),
                            static_cast<double>(feed.expected_records),
                            "feed expected total disagrees with its per-day "
                            "ledger"});
    }
    if (feed.observed_records != observed_sum) {
      report.add_violation({"quality-closure", feed.name + " / observed",
                            static_cast<double>(observed_sum),
                            static_cast<double>(feed.observed_records),
                            "feed observed total disagrees with its per-day "
                            "ledger"});
    }
  }
}

void check_signaling_balance(const telemetry::SignalingProbe& probe,
                             AuditReport& report) {
  using traffic::SignalingEventType;
  // Event pairs the core-network model emits within the same hour, so
  // hour-granular feed outages drop both sides together and the balance
  // survives degraded runs. (attach/detach does NOT pair in-hour — a detach
  // lands at the end of the day — so it is deliberately not a law here.)
  struct Pair {
    SignalingEventType a;
    SignalingEventType b;
  };
  constexpr Pair kPairs[] = {
      {SignalingEventType::kAuthentication, SignalingEventType::kAttach},
      {SignalingEventType::kSessionEstablishment, SignalingEventType::kAttach},
      {SignalingEventType::kServiceRequest,
       SignalingEventType::kEcmIdleTransition},
      {SignalingEventType::kDedicatedBearerSetup,
       SignalingEventType::kDedicatedBearerRelease},
  };
  std::uint64_t total_events = 0;
  for (const telemetry::DailySignalingCounts& day : probe.days()) {
    total_events += day.total_events();
    report.add_checks("signaling-balance", std::size(kPairs));
    for (const Pair& pair : kPairs) {
      const std::uint64_t a = day.total[static_cast<std::size_t>(pair.a)];
      const std::uint64_t b = day.total[static_cast<std::size_t>(pair.b)];
      if (a != b) {
        report.add_violation(
            {"signaling-balance",
             std::string(traffic::signaling_event_name(pair.a)) + " / " +
                 day_subject(day.day),
             static_cast<double>(b), static_cast<double>(a),
             std::string(traffic::signaling_event_name(pair.a)) +
                 " count does not balance " +
                 std::string(traffic::signaling_event_name(pair.b))});
      }
    }
    report.add_checks("signaling-balance",
                      traffic::kSignalingEventTypeCount);
    for (int t = 0; t < traffic::kSignalingEventTypeCount; ++t) {
      if (day.failures[static_cast<std::size_t>(t)] >
          day.total[static_cast<std::size_t>(t)]) {
        report.add_violation(
            {"signaling-balance",
             std::string(traffic::signaling_event_name(
                 static_cast<SignalingEventType>(t))) +
                 " / " + day_subject(day.day),
             static_cast<double>(day.total[static_cast<std::size_t>(t)]),
             static_cast<double>(day.failures[static_cast<std::size_t>(t)]),
             "more failures than events"});
      }
    }
  }
  report.add_checks("signaling-balance");
  if (probe.events_ingested() != total_events) {
    report.add_violation({"signaling-balance", "probe total",
                          static_cast<double>(total_events),
                          static_cast<double>(probe.events_ingested()),
                          "lifetime ingest counter disagrees with the "
                          "per-day counts"});
  }
}

namespace {

void check_grouped_range(const analysis::GroupedDailySeries& series,
                         std::string_view metric, double lo, double hi,
                         AuditReport& report) {
  for (std::size_t g = 0; g < series.group_count(); ++g) {
    const DailySeries& days = series.group(g);
    if (days.empty()) continue;
    for (SimDay day = days.first_day(); day <= days.last_day(); ++day) {
      if (!days.has(day)) continue;
      const double value = days.value(day);
      report.add_checks("mobility-range");
      if (std::isnan(value) || value < lo - kRelTol ||
          value > hi * (1.0 + kRelTol) + kRelTol) {
        report.add_violation(
            {"mobility-range",
             std::string(metric) + " / group " + std::to_string(g) + " / " +
                 day_subject(day),
             hi, value,
             std::string(metric) + " outside [" + std::to_string(lo) + ", " +
                 std::to_string(hi) + "]"});
      }
    }
  }
}

void check_distribution_range(const analysis::DistributionSeries& dist,
                              std::string_view metric, double lo, double hi,
                              AuditReport& report) {
  if (dist.last_day() < dist.first_day()) return;
  for (SimDay day = dist.first_day(); day <= dist.last_day(); ++day) {
    if (!dist.sealed_day(day)) continue;
    const stats::Summary& s = dist.day_summary(day);
    if (s.n == 0) continue;
    report.add_checks("mobility-range", 2);
    const bool ordered = s.p10 <= s.p25 && s.p25 <= s.median &&
                         s.median <= s.p75 && s.p75 <= s.p90;
    if (!ordered) {
      report.add_violation(
          {"mobility-range", std::string(metric) + " / " + day_subject(day),
           s.median, s.p10,
           "percentile bands out of order (p10..p90 must be "
           "non-decreasing)"});
    }
    const double band_lo = std::min(s.p10, s.mean);
    const double band_hi = std::max(s.p90, s.mean);
    if (std::isnan(band_lo) || std::isnan(band_hi) ||
        band_lo < lo - kRelTol || band_hi > hi * (1.0 + kRelTol) + kRelTol) {
      report.add_violation(
          {"mobility-range", std::string(metric) + " / " + day_subject(day),
           hi, band_hi,
           std::string(metric) + " distribution band outside [" +
               std::to_string(lo) + ", " + std::to_string(hi) + "]"});
    }
  }
}

}  // namespace

void check_mobility_ranges(const analysis::GroupedDailySeries& entropy,
                           const analysis::GroupedDailySeries& gyration,
                           const analysis::DistributionSeries& entropy_dist,
                           const analysis::DistributionSeries& gyration_dist,
                           const MetricBounds& bounds, AuditReport& report) {
  // Entropy is Shannon entropy in nats over the sites a user visited, so the
  // per-user (and hence per-group average) value cannot exceed the uniform
  // distribution over every site in the country.
  const double gyration_max = std::numeric_limits<double>::infinity();
  check_grouped_range(entropy, "entropy", 0.0, bounds.entropy_max, report);
  check_grouped_range(gyration, "gyration", 0.0, gyration_max, report);
  check_distribution_range(entropy_dist, "entropy", 0.0, bounds.entropy_max,
                           report);
  check_distribution_range(gyration_dist, "gyration", 0.0, gyration_max,
                           report);
}

void check_checkpoint_consistency(SimDay resumed_from_day,
                                  std::uint64_t recorded_kpi_rows,
                                  std::uint64_t recorded_voice_attempts,
                                  std::uint64_t recorded_signaling_days,
                                  const telemetry::KpiStore& kpis,
                                  const traffic::VoiceCallLedger& voice,
                                  const telemetry::SignalingProbe& signaling,
                                  AuditReport& report) {
  constexpr const char* kLaw = "checkpoint-consistency";
  const std::string subject = "resumed from " + day_subject(resumed_from_day);

  // Each final ledger's prefix (days <= resume day) must equal what the
  // restore produced — integer counts, so equality is exact.
  std::uint64_t kpi_rows = 0;
  for (const auto& r : kpis.records())
    if (r.day <= resumed_from_day) ++kpi_rows;
  report.add_checks(kLaw);
  if (kpi_rows != recorded_kpi_rows) {
    report.add_violation({kLaw, "kpis / " + subject,
                          static_cast<double>(recorded_kpi_rows),
                          static_cast<double>(kpi_rows),
                          "KPI rows at or before the resume day != rows "
                          "restored from the checkpoint"});
  }

  std::uint64_t voice_attempts = 0;
  for (const auto& d : voice.days())
    if (d.day <= resumed_from_day) voice_attempts += d.attempts;
  report.add_checks(kLaw);
  if (voice_attempts != recorded_voice_attempts) {
    report.add_violation({kLaw, "voice / " + subject,
                          static_cast<double>(recorded_voice_attempts),
                          static_cast<double>(voice_attempts),
                          "voice attempts at or before the resume day != "
                          "attempts restored from the checkpoint"});
  }

  std::uint64_t signaling_days = 0;
  for (const auto& d : signaling.days())
    if (d.day <= resumed_from_day) ++signaling_days;
  report.add_checks(kLaw);
  if (signaling_days != recorded_signaling_days) {
    report.add_violation({kLaw, "signaling / " + subject,
                          static_cast<double>(recorded_signaling_days),
                          static_cast<double>(signaling_days),
                          "signaling days at or before the resume day != "
                          "days restored from the checkpoint"});
  }
}

}  // namespace cellscope::audit
