// Conservation-audit report.
//
// Every figure in the paper is an accounting claim: per-cell volumes that
// must sum to regional and national aggregates, call attempts that must be
// fully classified, ledgers that must close. The audit subsystem verifies a
// registry of such conservation laws (audit/laws.h) over a finished run and
// collects what it finds here: per-law counts of checks evaluated, plus a
// structured violation record for every check that failed. A clean report
// (zero violations, nonzero checks) is the mechanized answer to "did any
// layer double-count or lose data?" — the spot checks the ROADMAP's
// production-scale north star cannot afford to do by hand.
//
// The report is passive bookkeeping: building one never mutates the run it
// describes, so an audited run stays bit-identical to an unaudited one
// (test_determinism enforces this end to end).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cellscope::audit {

// One failed conservation check.
struct AuditViolation {
  std::string law;      // registered law id, e.g. "voice-accounting"
  std::string subject;  // what broke: a feed, a day, a cell, a metric
  double expected = 0.0;
  double actual = 0.0;
  std::string detail;   // human-readable explanation
};

class AuditReport {
 public:
  // Accounts `n` evaluated checks against a law, registering the law on
  // first use (laws print in registration order). Every law check calls
  // this even when the check passes, so a report distinguishes "law held
  // over N checks" from "law never ran".
  void add_checks(std::string_view law, std::uint64_t n = 1);

  // Records a failed check. The violation's law is registered if needed;
  // its check must already have been counted via add_checks().
  void add_violation(AuditViolation violation);

  [[nodiscard]] const std::vector<AuditViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool clean() const { return violations_.empty(); }

  [[nodiscard]] std::uint64_t checks_evaluated() const;
  [[nodiscard]] std::uint64_t checks_for(std::string_view law) const;
  [[nodiscard]] std::uint64_t violations_for(std::string_view law) const;

  // Per-law accounting, in registration order.
  struct LawCount {
    std::string law;
    std::uint64_t checks = 0;
    std::uint64_t violations = 0;
  };
  [[nodiscard]] const std::vector<LawCount>& laws() const { return laws_; }

  // Adds another report's counts and violations into this one (e.g. the
  // store-reconcile report on top of the dataset-law report).
  void merge(const AuditReport& other);

  // Human-readable summary table plus the first violations, for benches.
  void print(std::ostream& os) const;

  // Machine-readable exports: one JSON document / one CSV row per
  // violation (CI uploads the JSON as an artifact).
  void write_json(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

 private:
  LawCount& law_entry(std::string_view law);

  std::vector<LawCount> laws_;
  std::vector<AuditViolation> violations_;
};

}  // namespace cellscope::audit
