// COVID-19 intervention timeline and epidemic curve.
//
// The paper's narrative (Section 1) pins the UK timeline: pandemic declared
// 11 March (week 11), work-from-home advice 16 March and venue/school
// closures 20 March (week 12), full stay-at-home order 23 March (week 13),
// slight relaxation from week 15 and clearer regional relaxation in weeks
// 18-19 (London, West Yorkshire). PolicyTimeline turns that narrative into
// per-day behavioural knobs that the trajectory, traffic and voice models
// consume; EpidemicCurve supplies the cumulative-cases series that Fig 4
// correlates (or rather, fails to correlate) with mobility.
//
// The timeline is parameterized (PolicyParams) so counterfactuals can be
// simulated — no lockdown, an earlier order, no regional relaxation —
// without touching the behavioural models. Defaults reproduce the paper.
#pragma once

#include "common/simtime.h"
#include "geo/admin.h"

namespace cellscope::mobility {

enum class PolicyPhase {
  kBaseline = 0,   // up to the WFH advice: business as usual
  kVoluntary,      // advice + closures, no order yet
  kLockdown,       // stay-at-home order in force
};

// Cumulative lab-confirmed case curve: logistic, calibrated so that the
// pandemic-declaration day coincides with ~1,000 cumulative cases (the red
// line of Fig 4) and the early-May total lands near the reported ~190k.
class EpidemicCurve {
 public:
  EpidemicCurve(double plateau = 250'000.0, double growth_rate = 0.12,
                SimDay midpoint = 83);

  [[nodiscard]] double cumulative_cases(SimDay day) const;

 private:
  double plateau_;
  double growth_rate_;
  SimDay midpoint_;
};

// Counterfactual knobs. Defaults = the UK's actual 2020 timeline.
struct PolicyParams {
  // Government milestones (sim days). Shift them to study earlier/later
  // interventions; the behavioural schedule follows the anchors.
  SimDay advice_day = timeline::kWorkFromHomeAdvice;   // WFH advice
  SimDay closure_day = timeline::kVenueClosures;       // schools/venues shut
  SimDay lockdown_day = timeline::kLockdownOrder;      // stay-at-home order
  // Disable the order entirely (voluntary measures only).
  bool lockdown_enabled = true;
  // Scales every suppression level (1 = paper; 0 = nobody complies).
  double suppression_scale = 1.0;
  // Weeks-18/19 London / West Yorkshire relaxation (Section 3.2).
  bool regional_relaxation = true;
  // Scales the voice surge above baseline: multiplier' = 1 + s*(m - 1).
  double voice_surge_scale = 1.0;
};

class PolicyTimeline {
 public:
  PolicyTimeline() = default;
  explicit PolicyTimeline(const PolicyParams& params);

  [[nodiscard]] PolicyPhase phase(SimDay day) const;

  // Are schools / universities and leisure venues (bars, gyms, restaurants)
  // open on this day?
  [[nodiscard]] bool schools_open(SimDay day) const;
  [[nodiscard]] bool venues_open(SimDay day) const;
  // Has the government advised working from home?
  [[nodiscard]] bool wfh_advised(SimDay day) const;

  // How strongly people suppress non-essential mobility on this day, in
  // [0, 1]: 0 = normal life, 1 = total immobility. Regional: the paper finds
  // London and West Yorkshire relax in weeks 18-19 while Greater Manchester
  // and the West Midlands stay locked down (Section 3.2).
  [[nodiscard]] double mobility_suppression(SimDay day,
                                            geo::Region region) const;

  // True during the short window (WFH advice .. lockdown order) in which
  // people decide to temporarily relocate (students leaving campuses,
  // second-home moves: Section 3.4).
  [[nodiscard]] bool relocation_window(SimDay day) const;

  // True on the weekend immediately before the order: the paper observes a
  // rush of trips from Inner London to coastal counties (East Sussex) just
  // before the stay-at-home order (Fig 7).
  [[nodiscard]] bool pre_lockdown_rush(SimDay day) const;

  // Voice-appetite multiplier: people under restrictions hold many more /
  // longer conversational calls (Fig 9: +140% median volume around wk 12).
  [[nodiscard]] double voice_demand_multiplier(SimDay day) const;

  // Data-appetite multipliers observed by content providers: from week 12
  // major video platforms reduced streaming quality in Europe, capping
  // per-user throughput ("application limited", Section 4.1).
  [[nodiscard]] bool content_throttling(SimDay day) const;

  // News-driven data-appetite bump in the run-up weeks (Fig 8 shows +8%
  // DL volume in week 10 before any restriction).
  [[nodiscard]] double data_demand_multiplier(SimDay day) const;

  [[nodiscard]] const EpidemicCurve& epidemic() const { return epidemic_; }
  [[nodiscard]] const PolicyParams& params() const { return params_; }

 private:
  PolicyParams params_;
  EpidemicCurve epidemic_;
};

}  // namespace cellscope::mobility
