#include "mobility/relocation.h"

#include <algorithm>

namespace cellscope::mobility {

using population::Archetype;

RelocationModel::RelocationModel(const geo::UkGeography& geography,
                                 const PolicyTimeline& policy,
                                 const RelocationParams& params)
    : geography_(geography), policy_(policy), params_(params) {
  for (const auto& county : geography.counties()) {
    family_counties_.push_back(county.id);
    family_weights_.push_back(static_cast<double>(county.census_population));
  }
}

RelocationOutcome RelocationModel::maybe_decide(
    const population::Subscriber& user, UserPlaces& places, UserState& state,
    SimDay day, Rng& rng) const {
  if (state.relocation_decided || !policy_.relocation_window(day))
    return RelocationOutcome::kStay;

  // Spread decisions across the window: each user decides on a fixed day
  // derived from their id, so re-running a day is idempotent. The window
  // follows the policy's configured milestones (counterfactual timelines
  // shift it).
  const SimDay window_start = policy_.params().advice_day;
  const SimDay window_end = policy_.params().lockdown_enabled
                                ? policy_.params().lockdown_day
                                : window_start + kDaysPerWeek;
  const SimDay window_len = std::max<SimDay>(1, window_end - window_start + 1);
  const SimDay decision_day =
      window_start + static_cast<SimDay>(user.id.value() %
                                         static_cast<std::uint32_t>(window_len));
  if (day != decision_day) return RelocationOutcome::kStay;
  state.relocation_decided = true;

  auto outcome = RelocationOutcome::kStay;
  switch (user.archetype) {
    case Archetype::kSeasonalResident: {
      const double leave =
          user.native ? params_.seasonal_leave : params_.roamer_leave;
      const double relocate = user.native ? params_.seasonal_relocate : 0.0;
      const double u = rng.uniform();
      if (u < leave) {
        outcome = RelocationOutcome::kLeaveNetwork;
      } else if (u < leave + relocate) {
        outcome = RelocationOutcome::kRelocate;
      }
      break;
    }
    case Archetype::kStudent: {
      // Students whose campus just closed head to the family home if it is
      // in another county.
      if (rng.chance(params_.student_relocate))
        outcome = RelocationOutcome::kRelocate;
      break;
    }
    default: {
      if (user.second_home && places.has_refuge() &&
          rng.chance(params_.second_home_relocate))
        outcome = RelocationOutcome::kRelocate;
      break;
    }
  }

  if (outcome == RelocationOutcome::kLeaveNetwork) {
    state.departed = true;
    return outcome;
  }
  if (outcome != RelocationOutcome::kRelocate) return outcome;

  // Materialize a refuge if the user does not have one yet (students,
  // seasonal residents): a family home in another county, drawn
  // census-proportionally.
  if (!places.has_refuge()) {
    CountyId county = user.home_county;
    for (int attempt = 0; attempt < 8 && county == user.home_county;
         ++attempt) {
      county = family_counties_[rng.categorical(family_weights_)];
    }
    if (county == user.home_county) {
      state.relocation_decided = true;
      return RelocationOutcome::kStay;  // no plausible refuge found
    }
    const auto districts = geography_.districts_in(county);
    const auto district =
        districts[rng.uniform_index(districts.size())];
    const auto& info = geography_.district(district);
    Place refuge;
    refuge.kind = PlaceKind::kRefuge;
    refuge.district = district;
    refuge.county = info.county;
    refuge.location = PlacesBuilder::sample_point_in(info, rng);
    refuge.weight = 1.0;
    places.places.push_back(refuge);
    places.refuge_index = static_cast<std::uint8_t>(places.places.size() - 1);
  }
  state.relocated = true;
  return outcome;
}

}  // namespace cellscope::mobility
