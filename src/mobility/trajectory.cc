#include "mobility/trajectory.h"

#include <algorithm>

namespace cellscope::mobility {

using population::Archetype;

TrajectoryGenerator::TrajectoryGenerator(const geo::UkGeography& geography,
                                         const PolicyTimeline& policy,
                                         const BehaviorParams& params)
    : geography_(geography), policy_(policy), params_(params) {}

std::vector<Stay> compress_slots(
    const std::array<std::uint8_t, kHoursPerDay>& slots) {
  std::vector<Stay> stays;
  int start = 0;
  for (int h = 1; h <= kHoursPerDay; ++h) {
    if (h == kHoursPerDay || slots[h] != slots[start]) {
      stays.push_back({slots[start], static_cast<std::uint8_t>(start),
                       static_cast<std::uint8_t>(h)});
      start = h;
    }
  }
  return stays;
}

DayPlan TrajectoryGenerator::plan_day(const population::Subscriber& user,
                                      const UserPlaces& places,
                                      UserState& state, SimDay day,
                                      Rng& rng) const {
  DayPlan plan;
  if (state.departed) return plan;  // silent: no network presence at all

  std::array<std::uint8_t, kHoursPerDay> slots;

  // Relocated users live at the refuge; their day is a quiet WFH-like
  // routine in the destination county (visible to Fig 7 as presence there).
  if (state.relocated && places.has_refuge()) {
    slots.fill(places.refuge_index);
    if (places.has_getaway() &&
        places.places[places.getaway_index].county ==
            places.places[places.refuge_index].county &&
        rng.chance(0.20)) {
      slots[14] = slots[15] = places.getaway_index;
    }
    plan.stays = compress_slots(slots);
    return plan;
  }

  slots.fill(UserPlaces::kHomeIndex);

  const bool weekend = is_weekend(day);
  const double suppression =
      policy_.mobility_suppression(day, user.home_region);
  const bool venues = policy_.venues_open(day);
  const bool lockdown = policy_.phase(day) == PolicyPhase::kLockdown;
  // Venue closures keep a residue of outdoor leisure (parks, walks).
  const double venue_factor = venues ? 1.0 : 0.35;
  const geo::OacTraits& traits = geo::oac_traits(user.home_cluster);

  // --- Sticky WFH adoption once the government advice lands. ---
  if (!state.wfh_active && policy_.wfh_advised(day) && user.wfh_capable &&
      user.archetype == Archetype::kOfficeWorker &&
      rng.chance(params_.wfh_adoption)) {
    state.wfh_active = true;
  }

  // --- Work / school block. ---
  if (!weekend && places.has_work()) {
    bool commutes = false;
    switch (user.archetype) {
      case Archetype::kKeyWorker:
        commutes = true;  // essential throughout
        break;
      case Archetype::kOfficeWorker:
        // WFH adopters stay home; in lockdown every office closes (the
        // non-WFH-capable are furloughed rather than commuting).
        commutes = !state.wfh_active && !lockdown;
        break;
      case Archetype::kStudent:
        commutes = policy_.schools_open(day);
        break;
      default:
        break;
    }
    if (commutes) {
      const int start = 9 + static_cast<int>(rng.uniform_index(2)) - 1;
      const int hours = user.archetype == Archetype::kStudent ? 6 : 8;
      for (int h = start; h < std::min(start + hours, 20); ++h)
        slots[h] = places.work_index;
      // Lunch out near the office while venues are open.
      if (venues && !places.leisure_indices.empty() &&
          rng.chance(0.35 * traits.variety_factor))
        slots[std::min(start + 4, 22)] = places.leisure_indices.front();
    }
  }

  const auto pick_leisure = [&]() -> std::uint8_t {
    if (places.leisure_indices.empty()) return UserPlaces::kHomeIndex;
    // Zipf-ish: weights were assigned decreasing at build time.
    std::vector<double> w;
    w.reserve(places.leisure_indices.size());
    for (const auto idx : places.leisure_indices)
      w.push_back(places.places[idx].weight);
    return places.leisure_indices[rng.categorical(w)];
  };
  const auto pick_errand = [&]() -> std::uint8_t {
    if (places.errand_indices.empty()) return UserPlaces::kHomeIndex;
    return places.errand_indices[rng.uniform_index(
        places.errand_indices.size())];
  };

  // --- Whole-day getaway trips (weekends). ---
  if (weekend && places.has_getaway()) {
    double p = params_.getaway_other;
    if (user.second_home) {
      p = params_.getaway_second_home;
    } else if (user.home_region == geo::Region::kInnerLondon ||
               user.home_region == geo::Region::kOuterLondon) {
      p = params_.getaway_london;
    }
    p *= (1.0 - suppression) * (1.0 - suppression);
    if (policy_.pre_lockdown_rush(day)) p *= params_.rush_multiplier;
    if (rng.chance(p)) {
      for (int h = 9; h < 20; ++h) slots[h] = places.getaway_index;
      plan.stays = compress_slots(slots);
      return plan;
    }
  }

  // Residual-mobility factor under lockdown: essential trips track how
  // strictly people comply, so the weeks-18/19 regional relaxation is
  // visible in errand/outing frequency too.
  const double residual = std::clamp(0.5 + 2.0 * (1.0 - suppression), 0.0, 1.2);

  // --- Errands. ---
  {
    // Essential trips are unavoidable where shops are far (rural) and
    // easily substituted where they are next door (central London).
    const double essential_need = 0.55 + 0.45 * traits.range_factor;
    const double p =
        lockdown ? params_.lockdown_errand * residual * essential_need
                 : params_.errand_probability * (1.0 - 0.4 * suppression);
    if (rng.chance(p)) {
      const int h = weekend ? 10 + static_cast<int>(rng.uniform_index(6))
                            : 16 + static_cast<int>(rng.uniform_index(4));
      const int len = 1 + static_cast<int>(rng.uniform_index(2));
      const auto place = pick_errand();
      for (int hh = h; hh < std::min(h + len, 23); ++hh)
        if (slots[hh] == UserPlaces::kHomeIndex) slots[hh] = place;
    }
  }

  // --- Leisure. ---
  if (weekend) {
    for (const int window_start : {11, 15}) {
      const double p = params_.weekend_leisure * traits.variety_factor *
                       (1.0 - suppression) * venue_factor;
      if (rng.chance(p)) {
        const auto place = pick_leisure();
        const int len = 2 + static_cast<int>(rng.uniform_index(2));
        for (int h = window_start; h < window_start + len; ++h)
          if (slots[h] == UserPlaces::kHomeIndex) slots[h] = place;
      }
    }
  } else {
    const double p = params_.weekday_evening_leisure * traits.variety_factor *
                     (1.0 - suppression) * venue_factor;
    if (rng.chance(p)) {
      const auto place = pick_leisure();
      for (int h = 19; h < 21; ++h)
        if (slots[h] == UserPlaces::kHomeIndex) slots[h] = place;
    }
  }

  // --- Lockdown daily outing (exercise near home). ---
  // Outing propensity also scales with the cluster's visitation variety:
  // central-London residents keep making many short, scattered trips —
  // high-variety users may go out twice, which is what keeps their entropy
  // from collapsing as hard as their gyration (Section 3.3).
  if (lockdown) {
    const int outings = traits.variety_factor >= 1.15 ? 2 : 1;
    for (int o = 0; o < outings; ++o) {
      const double p = params_.lockdown_outing * residual *
                       traits.variety_factor * (o == 0 ? 1.0 : 0.5);
      if (!rng.chance(std::min(0.95, p))) continue;
      const int h = 8 + static_cast<int>(rng.uniform_index(10));
      const int len = 1 + static_cast<int>(rng.uniform_index(2));
      // Mostly the errand spots (supermarket, pharmacy, local park);
      // occasionally a leisure spot, but only one in the user's own
      // district — venues elsewhere are closed, so the walk stays local.
      std::uint8_t place = UserPlaces::kNone;
      if (!rng.chance(0.8)) {
        for (const auto idx : places.leisure_indices) {
          if (places.places[idx].district ==
              places.places[UserPlaces::kHomeIndex].district) {
            place = idx;
            break;
          }
        }
      }
      if (place == UserPlaces::kNone) place = pick_errand();
      for (int hh = h; hh < std::min(h + len, 20); ++hh)
        if (slots[hh] == UserPlaces::kHomeIndex) slots[hh] = place;
    }
  }

  plan.stays = compress_slots(slots);
  return plan;
}

}  // namespace cellscope::mobility
