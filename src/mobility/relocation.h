// Temporary relocation model.
//
// Section 3.4 of the paper finds a sustained ~10% drop in the number of
// Inner London residents present in Inner London from week 13 onward, and
// names the mechanisms: students leaving campuses after the 19/20 March
// school closures, long-stay tourists leaving central London, and residents
// moving to second residences (notably in Hampshire). This model owns those
// decisions: during the policy's relocation window each candidate rolls
// once; the outcome either removes the user from the network entirely
// (left the country) or moves their daily life to a refuge place in another
// county, where Fig 7's mobility matrix will find them.
#pragma once

#include "common/rng.h"
#include "common/simtime.h"
#include "geo/uk_model.h"
#include "mobility/place.h"
#include "mobility/policy.h"
#include "mobility/trajectory.h"
#include "population/subscriber.h"

namespace cellscope::mobility {

enum class RelocationOutcome {
  kStay = 0,       // rides out the lockdown at home
  kRelocate,       // moves to the refuge place (another county)
  kLeaveNetwork,   // disappears from the network (left the country etc.)
};

struct RelocationParams {
  // Seasonal residents (tourists / temporary residents): most likely to go.
  double seasonal_leave = 0.35;
  double seasonal_relocate = 0.08;
  // Inbound roamers (foreign tourists): flights home, nearly all gone.
  double roamer_leave = 0.85;
  // Students: leave campus back to the family home elsewhere.
  double student_relocate = 0.35;
  // Second-home owners: decamp to the second residence.
  double second_home_relocate = 0.25;
};

class RelocationModel {
 public:
  RelocationModel(const geo::UkGeography& geography,
                  const PolicyTimeline& policy,
                  const RelocationParams& params = {});

  // Rolls the user's relocation decision if `day` is their decision day
  // inside the relocation window and none was made yet. May append a refuge
  // place (student family home) to `places`. Updates `state`.
  RelocationOutcome maybe_decide(const population::Subscriber& user,
                                 UserPlaces& places, UserState& state,
                                 SimDay day, Rng& rng) const;

  [[nodiscard]] const RelocationParams& params() const { return params_; }

 private:
  const geo::UkGeography& geography_;
  const PolicyTimeline& policy_;
  RelocationParams params_;
  // Family-home county sampler for students (census-proportional across
  // every county but the student's own).
  std::vector<CountyId> family_counties_;
  std::vector<double> family_weights_;
};

}  // namespace cellscope::mobility
