// Daily trajectory generation.
//
// Turns (subscriber, places, policy, date) into the day's sequence of stays
// at important places, at one-hour granularity. These stays are what the
// cellular probes "observe": the simulator maps each stay to a serving cell
// and produces signaling, traffic and mobility statistics from it.
//
// Behavioural structure (per archetype, modulated by PolicyTimeline):
//  * office/key workers commute on weekdays; office workers switch to WFH
//    once advised (if capable) and stop commuting entirely in lockdown
//    (key workers keep going — the essential-mobility floor);
//  * students attend campus until school closures;
//  * evenings/weekends hold errand and leisure visits whose probability
//    shrinks with the policy's mobility suppression;
//  * weekends can hold whole-day getaway trips to another county, with the
//    pre-lockdown rush (21-22 March) and the weeks-18/19 London relaxation
//    the paper reports in Fig 7;
//  * relocated users live at their refuge place; departed users are silent.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/simtime.h"
#include "geo/uk_model.h"
#include "mobility/place.h"
#include "mobility/policy.h"
#include "population/subscriber.h"

namespace cellscope::mobility {

// One contiguous stay at a place, hours [start_hour, end_hour) of one day.
struct Stay {
  std::uint8_t place = 0;  // index into UserPlaces::places
  std::uint8_t start_hour = 0;
  std::uint8_t end_hour = 24;
};

struct DayPlan {
  std::vector<Stay> stays;  // ordered, disjoint, covering [0, 24)

  [[nodiscard]] bool empty() const { return stays.empty(); }
};

// Evolving per-user state the policy timeline acts on.
struct UserState {
  bool departed = false;           // left the network (abroad etc.)
  bool relocated = false;          // living at the refuge place
  bool wfh_active = false;         // switched to working from home
  bool relocation_decided = false; // relocation roll already made
};

// Tunable behaviour parameters; defaults reproduce the paper's aggregate
// mobility shapes at the default scenario scale.
struct BehaviorParams {
  double weekday_evening_leisure = 0.50;
  double weekend_leisure = 0.55;
  double errand_probability = 0.55;
  // Essential-errand probability floor under full lockdown.
  double lockdown_errand = 0.55;
  // Daily-exercise outing probability under lockdown (1h near home).
  double lockdown_outing = 0.75;
  // Weekend getaway-trip base probabilities.
  double getaway_second_home = 0.18;
  double getaway_london = 0.05;
  double getaway_other = 0.02;
  // Multiplier applied on the 21-22 March pre-lockdown rush weekend.
  double rush_multiplier = 4.0;
  // Probability a WFH-capable office worker actually switches after advice.
  double wfh_adoption = 0.90;
};

class TrajectoryGenerator {
 public:
  TrajectoryGenerator(const geo::UkGeography& geography,
                      const PolicyTimeline& policy,
                      const BehaviorParams& params = {});

  // Generates the user's plan for `day`, updating sticky state (WFH).
  // Relocation/departure decisions are owned by RelocationModel and only
  // read here. Draws come from `rng` (callers fork a per-user-day stream).
  [[nodiscard]] DayPlan plan_day(const population::Subscriber& user,
                                 const UserPlaces& places, UserState& state,
                                 SimDay day, Rng& rng) const;

  [[nodiscard]] const BehaviorParams& params() const { return params_; }

 private:
  const geo::UkGeography& geography_;
  const PolicyTimeline& policy_;
  BehaviorParams params_;
};

// Helper shared with tests: compresses a 24-slot place array into stays.
[[nodiscard]] std::vector<Stay> compress_slots(
    const std::array<std::uint8_t, kHoursPerDay>& slots);

}  // namespace cellscope::mobility
