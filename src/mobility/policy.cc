#include "mobility/policy.h"

#include <algorithm>
#include <cmath>

namespace cellscope::mobility {

EpidemicCurve::EpidemicCurve(double plateau, double growth_rate,
                             SimDay midpoint)
    : plateau_(plateau), growth_rate_(growth_rate), midpoint_(midpoint) {}

double EpidemicCurve::cumulative_cases(SimDay day) const {
  return plateau_ /
         (1.0 + std::exp(-growth_rate_ * static_cast<double>(day - midpoint_)));
}

PolicyTimeline::PolicyTimeline(const PolicyParams& params) : params_(params) {}

PolicyPhase PolicyTimeline::phase(SimDay day) const {
  if (day < params_.advice_day) return PolicyPhase::kBaseline;
  if (!params_.lockdown_enabled || day < params_.lockdown_day)
    return PolicyPhase::kVoluntary;
  return PolicyPhase::kLockdown;
}

bool PolicyTimeline::schools_open(SimDay day) const {
  return day < params_.closure_day;
}

bool PolicyTimeline::venues_open(SimDay day) const {
  return day < params_.closure_day;
}

bool PolicyTimeline::wfh_advised(SimDay day) const {
  return day >= params_.advice_day;
}

double PolicyTimeline::mobility_suppression(SimDay day,
                                            geo::Region region) const {
  // Behavioural schedule anchored on the milestone days, so shifting the
  // milestones shifts behaviour coherently. With the default anchors this
  // reproduces the paper's weekly pattern: -20% gyration in week 12, the
  // steep weeks-13/14 drop, marginal relaxation from week 15 and the
  // weeks-18/19 regional split.
  // The order dominates whatever voluntary stage it lands on (an early
  // counterfactual order can predate the closures).
  const bool ordered =
      params_.lockdown_enabled && day >= params_.lockdown_day;
  double suppression = 0.0;
  if (!ordered) {
    if (day < timeline::kPandemicDeclared) {
      suppression = 0.0;
    } else if (day < params_.advice_day) {
      suppression = 0.05;  // mild voluntary caution after the declaration
    } else if (day < params_.closure_day) {
      suppression = 0.22;  // WFH advice in force
    } else {
      suppression = 0.35;  // venues shut, no order yet
    }
  } else {
    const SimDay since_order = day - params_.lockdown_day;
    if (since_order < 14) {
      suppression = 0.90;  // strict stay-at-home
    } else if (since_order < 35) {
      suppression = 0.84;  // "mobility marginally increasing" (Sec 3.1)
    } else if (params_.regional_relaxation) {
      // Regional relaxation (Section 3.2) — London and West Yorkshire
      // relax; Greater Manchester / West Midlands stay low.
      switch (region) {
        case geo::Region::kInnerLondon:
        case geo::Region::kOuterLondon:
        case geo::Region::kWestYorkshire:
          suppression = 0.68;
          break;
        case geo::Region::kGreaterManchester:
        case geo::Region::kWestMidlands:
          suppression = 0.86;
          break;
        case geo::Region::kRestOfUk:
          suppression = 0.80;
          break;
      }
    } else {
      suppression = 0.84;
    }
  }
  return std::clamp(suppression * params_.suppression_scale, 0.0, 0.98);
}

bool PolicyTimeline::relocation_window(SimDay day) const {
  const SimDay window_end = params_.lockdown_enabled
                                ? params_.lockdown_day
                                : params_.advice_day + kDaysPerWeek;
  return day >= params_.advice_day && day <= window_end;
}

bool PolicyTimeline::pre_lockdown_rush(SimDay day) const {
  // The weekend immediately before the order (21-22 March by default).
  if (!params_.lockdown_enabled) return false;
  return (day == params_.lockdown_day - 2 ||
          day == params_.lockdown_day - 1) &&
         is_weekend(day);
}

double PolicyTimeline::voice_demand_multiplier(SimDay day) const {
  // Fig 9: voice volume already climbs in weeks 10-11 (enough to congest the
  // inter-MNO trunks), spikes around week 12 (+140% median) and stays
  // elevated for the rest of the period. The surge tracks the pandemic news
  // cycle (not the orders), so it stays week-keyed.
  const int week = iso_week(day);
  double multiplier = 1.0;
  if (week > 9) {
    switch (week) {
      case 10: multiplier = 1.25; break;
      case 11: multiplier = 1.45; break;
      case 12: multiplier = 1.90; break;
      case 13: multiplier = 1.82; break;
      case 14: multiplier = 1.72; break;
      case 15: multiplier = 1.62; break;
      case 16: multiplier = 1.56; break;
      default: multiplier = 1.50; break;
    }
  }
  return 1.0 + params_.voice_surge_scale * (multiplier - 1.0);
}

double PolicyTimeline::data_demand_multiplier(SimDay day) const {
  switch (iso_week(day)) {
    case 10: return 1.08;
    case 11: return 1.06;
    default: return 1.0;
  }
}

bool PolicyTimeline::content_throttling(SimDay day) const {
  // Major video platforms reduced EU streaming quality around 20 March.
  return day >= params_.closure_day;
}

}  // namespace cellscope::mobility
