#include "mobility/place.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace cellscope::mobility {

namespace {
// Neighbourhood samplers: "local" places sit within walking/short-drive
// range, "wide" places are the cross-town destinations that give urban users
// their higher entropy.
constexpr double kLocalMaxKm = 6.0;
constexpr double kLocalDecayKm = 3.0;
constexpr double kWideMaxKm = 30.0;
constexpr double kWideDecayKm = 10.0;
}  // namespace

PlacesBuilder::PlacesBuilder(const geo::UkGeography& geography)
    : geography_(geography) {
  std::vector<double> getaway_weights;
  for (const auto& county : geography.counties()) {
    if (county.getaway_attraction <= 0.0) continue;
    getaway_counties_.push_back(county.id);
    getaway_weights.push_back(county.getaway_attraction);
  }
  getaway_sampler_ = DiscreteSampler{getaway_weights};

  county_leisure_districts_.resize(geography.counties().size());
  for (const auto& district : geography.districts()) {
    auto& list = county_leisure_districts_[district.county.value()];
    list.push_back(district.id.value());
  }
}

LatLon PlacesBuilder::sample_point_in(const geo::DistrictInfo& district,
                                      Rng& rng) {
  const double r = district.radius_km * std::sqrt(rng.uniform());
  const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
  return offset_km(district.center, r * std::cos(angle), r * std::sin(angle));
}

PostcodeDistrictId PlacesBuilder::sample_nearby_district(
    PostcodeDistrictId anchor, double scale_km, bool by_visitors,
    Rng& rng) const {
  const auto& anchor_info = geography_.district(anchor);
  std::vector<double> weights;
  std::vector<std::uint32_t> candidates;
  const double max_km = scale_km > kLocalMaxKm ? kWideMaxKm : kLocalMaxKm;
  for (const auto& d : geography_.districts()) {
    const double dist = distance_km(anchor_info.center, d.center);
    if (dist > max_km) continue;
    const double pull = by_visitors ? std::max(d.visitor_weight, 0.05) : 1.0;
    candidates.push_back(d.id.value());
    weights.push_back(pull * std::exp(-dist / scale_km));
  }
  if (candidates.empty()) return anchor;
  return PostcodeDistrictId{
      candidates[rng.categorical(std::span<const double>(weights))]};
}

UserPlaces PlacesBuilder::build(const population::Subscriber& user,
                                Rng& user_rng) const {
  UserPlaces out;
  const geo::OacTraits& traits = geo::oac_traits(user.home_cluster);

  const auto add_place = [&](PlaceKind kind, PostcodeDistrictId district_id,
                             double weight) -> std::uint8_t {
    const auto& info = geography_.district(district_id);
    Place place;
    place.kind = kind;
    place.district = district_id;
    place.county = info.county;
    place.location = sample_point_in(info, user_rng);
    place.weight = weight;
    out.places.push_back(place);
    return static_cast<std::uint8_t>(out.places.size() - 1);
  };

  // Home first (index 0, required by UserPlaces).
  add_place(PlaceKind::kHome, user.home_district, 1.0);

  // Workplace / campus.
  if (user.work_district.valid())
    out.work_index = add_place(PlaceKind::kWork, user.work_district, 1.0);

  // Two errand places close to home (open even in lockdown). Reach scales
  // with the cluster's range: rural residents drive to the market town,
  // cosmopolitans walk to the corner shop.
  for (int i = 0; i < 2; ++i) {
    const auto district = sample_nearby_district(
        user.home_district,
        kLocalDecayKm * std::pow(traits.range_factor, 1.5),
        /*by_visitors=*/false, user_rng);
    out.errand_indices.push_back(
        add_place(PlaceKind::kErrand, district, 1.0 / (1.0 + i)));
  }

  // Leisure places: count and reach scale with the home cluster's variety
  // and range traits (Cosmopolitans: many, scattered; Rural: fewer, farther
  // apart but fixed).
  const int leisure_count = std::clamp(
      static_cast<int>(std::lround(
          2.0 * traits.variety_factor + user_rng.uniform(-0.5, 1.5))),
      1, 4);
  for (int i = 0; i < leisure_count; ++i) {
    // Some leisure anchors near work (after-office places), most near home.
    const PostcodeDistrictId anchor =
        (out.has_work() && user_rng.chance(0.35))
            ? out.places[out.work_index].district
            : user.home_district;
    const double scale =
        (user_rng.chance(0.3 * traits.variety_factor) ? kWideDecayKm
                                                      : kLocalDecayKm) *
        traits.range_factor;
    const auto district = sample_nearby_district(anchor, scale,
                                                 /*by_visitors=*/true,
                                                 user_rng);
    out.leisure_indices.push_back(add_place(
        PlaceKind::kLeisure, district,
        1.0 / std::pow(double(i + 1), 0.8)));  // Zipf-ish popularity
  }

  // Getaway destination (weekend trips): everyone gets one, drawn from the
  // getaway counties; second-home owners anchor it in their second-home
  // county. Rarely visited unless the policy timeline makes it attractive.
  if (!getaway_counties_.empty() && user.native) {
    CountyId county = user.second_home
                          ? user.second_home_county
                          : getaway_counties_[getaway_sampler_.sample(user_rng)];
    const auto& candidates = county_leisure_districts_[county.value()];
    if (!candidates.empty()) {
      const auto district = PostcodeDistrictId{
          candidates[user_rng.uniform_index(candidates.size())]};
      out.getaway_index = add_place(PlaceKind::kGetaway, district, 1.0);
      // The refuge for temporary relocation is the same property for
      // second-home owners; students' refuge (family home) is created by the
      // relocation model only if/when they leave.
      if (user.second_home)
        out.refuge_index = add_place(PlaceKind::kRefuge, district, 1.0);
    }
  }

  return out;
}

}  // namespace cellscope::mobility
