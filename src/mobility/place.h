// Important places.
//
// The paper filters each user's footprint to their top-20 cell towers and
// notes that people have between 3 and 6 (rarely more than 8) important
// places [17, 20]. The synthetic mobility model works the other way around:
// it *gives* each subscriber a small set of important places — home,
// workplace/campus, errand spots, leisure spots, an occasional getaway and a
// potential relocation refuge — and daily routines then visit subsets of
// them. Places carry real coordinates inside their postcode district so the
// radio layer can pin each one to a serving cell.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geodesy.h"
#include "common/ids.h"
#include "common/rng.h"
#include "geo/uk_model.h"
#include "population/subscriber.h"

namespace cellscope::mobility {

enum class PlaceKind : std::uint8_t {
  kHome = 0,
  kWork,     // workplace or school/campus
  kErrand,   // supermarket, pharmacy... (stays allowed in lockdown)
  kLeisure,  // bar, gym, restaurant, park...
  kGetaway,  // weekend-trip destination in another county
  kRefuge,   // second home / family home used for temporary relocation
};

struct Place {
  PlaceKind kind = PlaceKind::kHome;
  PostcodeDistrictId district;
  CountyId county;
  LatLon location;
  // Relative propensity to pick this place among alternatives of its kind.
  double weight = 1.0;
};

// One subscriber's place set. Index 0 is always home; work (if any) is
// index kWorkIndex. The simulator resolves each entry to a serving cell once
// and the trajectory generator addresses places by local index.
struct UserPlaces {
  static constexpr std::uint8_t kHomeIndex = 0;

  std::vector<Place> places;
  std::uint8_t work_index = kNone;
  std::uint8_t getaway_index = kNone;
  std::uint8_t refuge_index = kNone;
  std::vector<std::uint8_t> errand_indices;
  std::vector<std::uint8_t> leisure_indices;

  static constexpr std::uint8_t kNone = 0xff;

  [[nodiscard]] bool has_work() const { return work_index != kNone; }
  [[nodiscard]] bool has_getaway() const { return getaway_index != kNone; }
  [[nodiscard]] bool has_refuge() const { return refuge_index != kNone; }
  [[nodiscard]] std::size_t size() const { return places.size(); }
};

class PlacesBuilder {
 public:
  explicit PlacesBuilder(const geo::UkGeography& geography);

  // Deterministic per user: draws come from a per-user RNG fork.
  [[nodiscard]] UserPlaces build(const population::Subscriber& user,
                                 Rng& user_rng) const;

  // Uniform point inside a district's disc.
  [[nodiscard]] static LatLon sample_point_in(const geo::DistrictInfo& district,
                                              Rng& rng);

 private:
  // Picks a leisure/errand district near an anchor district, preferring
  // high-visitor-weight districts; scale_km widens with the cluster's
  // range factor.
  [[nodiscard]] PostcodeDistrictId sample_nearby_district(
      PostcodeDistrictId anchor, double scale_km, bool by_visitors,
      Rng& rng) const;

  const geo::UkGeography& geography_;
  // Getaway-county sampler (counties with getaway_attraction > 0).
  std::vector<CountyId> getaway_counties_;
  DiscreteSampler getaway_sampler_;
  // For each county, the districts with the most leisure pull (precomputed).
  std::vector<std::vector<std::uint32_t>> county_leisure_districts_;
};

}  // namespace cellscope::mobility
