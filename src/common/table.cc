#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace cellscope {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("TextTable: need at least one column");
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

TextTable& TextTable::cell(std::string text) {
  if (rows_.empty()) row();
  if (rows_.back().size() >= headers_.size())
    throw std::logic_error("TextTable: more cells than columns");
  rows_.back().push_back(std::move(text));
  return *this;
}

TextTable& TextTable::cell(const char* text) { return cell(std::string{text}); }

TextTable& TextTable::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return cell(std::string{buf});
}

TextTable& TextTable::cell(long long value) {
  return cell(std::to_string(value));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      os << "  ";
      os << text;
      for (std::size_t pad = text.size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
}

void TextTable::print_csv(std::ostream& os) const {
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& r : rows_) emit_row(r);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

void print_claim(std::ostream& os, const std::string& claim,
                 const std::string& paper_value,
                 const std::string& measured_value, bool ok) {
  os << "  [" << (ok ? "SHAPE-OK" : "MISMATCH") << "] " << claim
     << " | paper: " << paper_value << " | measured: " << measured_value
     << '\n';
}

}  // namespace cellscope
