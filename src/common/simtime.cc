#include "common/simtime.h"

#include <cstdio>

namespace cellscope {

namespace {
// 2020 is a leap year.
constexpr std::array<int, 12> kDaysInMonth2020 = {31, 29, 31, 30, 31, 30,
                                                  31, 31, 30, 31, 30, 31};
}  // namespace

CalendarDate calendar_date(SimDay day) {
  // Epoch is 2020-02-03. Walk forward month by month.
  int month = 2;
  int dom = 3 + day;
  int year = 2020;
  while (dom > kDaysInMonth2020[month - 1]) {
    dom -= kDaysInMonth2020[month - 1];
    ++month;
    if (month > 12) {  // the study window never leaves 2020, but be safe
      month = 1;
      ++year;
    }
  }
  while (dom < 1) {
    --month;
    if (month < 1) {
      month = 12;
      --year;
    }
    dom += kDaysInMonth2020[month - 1];
  }
  return CalendarDate{year, month, dom};
}

std::string format_date(SimDay day) {
  const CalendarDate d = calendar_date(day);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

std::string_view weekday_name(Weekday wd) {
  static constexpr std::array<std::string_view, 7> kNames = {
      "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  return kNames[static_cast<int>(wd)];
}

std::string describe_day(SimDay day) {
  std::string out{weekday_name(weekday(day))};
  out += ' ';
  out += format_date(day);
  out += " (wk ";
  out += std::to_string(iso_week(day));
  out += ')';
  return out;
}

}  // namespace cellscope
