// Simulation time axis.
//
// The whole framework runs on a discrete hourly clock. Hour 0 is
// Monday 2020-02-03 00:00 local time, the first hour of ISO week 6 of 2020.
// That start gives a February warm-up long enough for the paper's home
// detection (>= 14 nights during February, Section 2.3) before the analysis
// window of ISO weeks 9..19 opens.
//
// The paper indexes everything by 2020 week number; helpers here convert
// between sim days/hours, ISO weeks, calendar dates and the paper's special
// windows (4-hour mobility bins, nighttime home-detection window).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace cellscope {

// Days since the simulation epoch (Mon 2020-02-03).
using SimDay = std::int32_t;
// Hours since the simulation epoch.
using SimHour = std::int64_t;

inline constexpr int kHoursPerDay = 24;
inline constexpr int kDaysPerWeek = 7;

// ISO week of 2020 containing sim day 0.
inline constexpr int kEpochIsoWeek = 6;

// Calendar anchors (sim day indices) for the UK COVID-19 timeline the paper
// narrates in Section 1.
namespace timeline {
// 2020-03-11, WHO declares pandemic (week 11).
inline constexpr SimDay kPandemicDeclared = 37;
// 2020-03-16, government recommends working from home (week 12).
inline constexpr SimDay kWorkFromHomeAdvice = 42;
// 2020-03-20, closure of schools, bars, restaurants, gyms (week 12).
inline constexpr SimDay kVenueClosures = 46;
// 2020-03-23, full stay-at-home order (first day of week 13).
inline constexpr SimDay kLockdownOrder = 49;
}  // namespace timeline

// Monday=0 .. Sunday=6 (the epoch is a Monday).
enum class Weekday : std::uint8_t {
  kMonday = 0,
  kTuesday,
  kWednesday,
  kThursday,
  kFriday,
  kSaturday,
  kSunday,
};

[[nodiscard]] constexpr SimDay day_of(SimHour hour) {
  return static_cast<SimDay>(hour / kHoursPerDay);
}
[[nodiscard]] constexpr int hour_of_day(SimHour hour) {
  return static_cast<int>(hour % kHoursPerDay);
}
[[nodiscard]] constexpr SimHour first_hour(SimDay day) {
  return static_cast<SimHour>(day) * kHoursPerDay;
}

[[nodiscard]] constexpr Weekday weekday(SimDay day) {
  return static_cast<Weekday>(day % kDaysPerWeek);
}
[[nodiscard]] constexpr bool is_weekend(SimDay day) {
  const auto wd = weekday(day);
  return wd == Weekday::kSaturday || wd == Weekday::kSunday;
}

// ISO 2020 week number of a sim day (week 6 + elapsed whole weeks).
[[nodiscard]] constexpr int iso_week(SimDay day) {
  return kEpochIsoWeek + day / kDaysPerWeek;
}
// First sim day (Monday) of an ISO 2020 week.
[[nodiscard]] constexpr SimDay week_start_day(int iso_week_number) {
  return (iso_week_number - kEpochIsoWeek) * kDaysPerWeek;
}

// The paper computes mobility statistics "over six disjoint 4-hour bins of
// the day" (Section 2.3). Bin 0 covers 00:00-04:00, bin 5 covers 20:00-24:00.
inline constexpr int kFourHourBinsPerDay = 6;
[[nodiscard]] constexpr int four_hour_bin(int hour_of_day_value) {
  return hour_of_day_value / 4;
}

// Home-detection nighttime window: midnight through 8 AM (Section 2.3).
[[nodiscard]] constexpr bool is_nighttime(int hour_of_day_value) {
  return hour_of_day_value < 8;
}

// February 2020 = sim days [-2 .. 26], but the simulation starts at day 0
// (Feb 3). Home detection therefore uses days [0, 27) = Feb 3..Feb 29 (the
// portion of February the clock covers), which comfortably exceeds the
// 14-night requirement.
inline constexpr SimDay kFebruaryFirstDay = 0;
inline constexpr SimDay kFebruaryEndDay = 27;  // exclusive

// Gregorian calendar date of a sim day (for report labeling).
struct CalendarDate {
  int year = 2020;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  friend constexpr auto operator<=>(const CalendarDate&, const CalendarDate&) = default;
};

[[nodiscard]] CalendarDate calendar_date(SimDay day);

// "2020-03-23" style label.
[[nodiscard]] std::string format_date(SimDay day);
// "Mon 2020-03-23 (wk 13)" style label used in bench output.
[[nodiscard]] std::string describe_day(SimDay day);
[[nodiscard]] std::string_view weekday_name(Weekday wd);

}  // namespace cellscope
