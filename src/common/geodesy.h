// Geographic primitives.
//
// The synthetic UK lives on real WGS84-style coordinates so that radius of
// gyration (paper Eq. 2) comes out in kilometres. Distances use the
// equirectangular approximation, which is accurate to well under 1% at UK
// latitudes and trip scales, and is what makes the per-user-day gyration
// loop cheap enough to run over the whole population.
#pragma once

#include <cmath>
#include <numbers>
#include <vector>

namespace cellscope {

inline constexpr double kEarthRadiusKm = 6371.0;

struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend constexpr bool operator==(const LatLon&, const LatLon&) = default;
};

[[nodiscard]] constexpr double deg2rad(double deg) {
  return deg * std::numbers::pi / 180.0;
}

// Equirectangular-approximation great-circle distance in km.
[[nodiscard]] inline double distance_km(const LatLon& a, const LatLon& b) {
  const double mean_lat = deg2rad(0.5 * (a.lat_deg + b.lat_deg));
  const double dx = deg2rad(b.lon_deg - a.lon_deg) * std::cos(mean_lat);
  const double dy = deg2rad(b.lat_deg - a.lat_deg);
  return kEarthRadiusKm * std::sqrt(dx * dx + dy * dy);
}

// Exact haversine distance in km (reference implementation; used by tests to
// bound the equirectangular error and available to callers that need it).
[[nodiscard]] double haversine_km(const LatLon& a, const LatLon& b);

// Time-weighted center of mass of a trajectory, as used by Eq. 2:
// l_cm = (1/T) * sum(t_j * l_j). Weights must be non-negative; returns the
// unweighted first point if all weights are zero.
[[nodiscard]] LatLon weighted_centroid(const std::vector<LatLon>& points,
                                       const std::vector<double>& weights);

// Axis-aligned bounding box in degrees; used to lay out synthetic districts.
struct BoundingBox {
  double min_lat = 0.0;
  double min_lon = 0.0;
  double max_lat = 0.0;
  double max_lon = 0.0;

  [[nodiscard]] bool contains(const LatLon& p) const {
    return p.lat_deg >= min_lat && p.lat_deg <= max_lat &&
           p.lon_deg >= min_lon && p.lon_deg <= max_lon;
  }
  [[nodiscard]] LatLon center() const {
    return {0.5 * (min_lat + max_lat), 0.5 * (min_lon + max_lon)};
  }
  [[nodiscard]] double width_deg() const { return max_lon - min_lon; }
  [[nodiscard]] double height_deg() const { return max_lat - min_lat; }
};

// Point at a given km offset (east, north) from an origin.
[[nodiscard]] LatLon offset_km(const LatLon& origin, double east_km,
                               double north_km);

}  // namespace cellscope
