#include "common/json_read.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cellscope::common {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::runtime_error("json: " + what + " at byte " +
                           std::to_string(pos));
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      fail(pos_, std::string("expected '") + c + "', got '" + peek() + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          JsonValue v;
          v.type_ = JsonValue::Type::kBool;
          v.bool_ = true;
          return v;
        }
        fail(pos_, "bad literal");
      case 'f':
        if (consume_literal("false")) {
          JsonValue v;
          v.type_ = JsonValue::Type::kBool;
          v.bool_ = false;
          return v;
        }
        fail(pos_, "bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue{};
        fail(pos_, "bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              fail(pos_ - 1, "bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point. Surrogate pairs are not
          // reassembled — our own writers never emit them.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(pos_ - 1, "bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail(pos_, "expected number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail(pos_, "expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) fail(pos_, "expected exponent digits");
    }
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                            nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}

std::int64_t JsonValue::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("json: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  return array_;
}

bool JsonValue::has(const std::string& key) const {
  return find(key) != nullptr;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr)
    throw std::runtime_error("json: missing key '" + key + "'");
  return *v;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->number_ : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->string_ : fallback;
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_ : fallback;
}

JsonValue json_parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

JsonValue json_parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("json: cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return json_parse(buf.str());
}

}  // namespace cellscope::common
