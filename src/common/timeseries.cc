#include "common/timeseries.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "common/stats.h"

namespace cellscope {

DailySeries::DailySeries(SimDay first_day, SimDay last_day)
    : first_day_(first_day), last_day_(last_day) {
  if (last_day < first_day)
    throw std::invalid_argument("DailySeries: last_day before first_day");
  const auto n = static_cast<std::size_t>(last_day - first_day + 1);
  sums_.assign(n, 0.0);
  counts_.assign(n, 0);
}

std::size_t DailySeries::index(SimDay day) const {
  assert(day >= first_day_ && day <= last_day_);
  return static_cast<std::size_t>(day - first_day_);
}

void DailySeries::set(SimDay day, double value) {
  const auto i = index(day);
  sums_[i] = value;
  counts_[i] = 1;
}

void DailySeries::add(SimDay day, double value) {
  const auto i = index(day);
  sums_[i] += value;
  ++counts_[i];
}

bool DailySeries::has(SimDay day) const {
  if (day < first_day_ || day > last_day_) return false;
  return counts_[index(day)] > 0;
}

double DailySeries::value(SimDay day) const {
  if (!has(day))
    throw std::out_of_range("DailySeries::value: no data for day " +
                            std::to_string(day) +
                            " (use has()/value_or() for gap-tolerant reads)");
  const auto i = index(day);
  return sums_[i] / static_cast<double>(counts_[i]);
}

double DailySeries::value_or(SimDay day, double fallback) const {
  return has(day) ? value(day) : fallback;
}

std::size_t DailySeries::count(SimDay day) const {
  if (day < first_day_ || day > last_day_) return 0;
  return counts_[index(day)];
}

double DailySeries::day_sum(SimDay day) const {
  if (day < first_day_ || day > last_day_) return 0.0;
  return sums_[index(day)];
}

void DailySeries::restore(SimDay day, double sum, std::size_t count) {
  if (day < first_day_ || day > last_day_) return;
  const auto i = index(day);
  sums_[i] = sum;
  counts_[i] = count;
}

std::vector<double> DailySeries::week_values(int iso_week_number) const {
  std::vector<double> out;
  const SimDay start = week_start_day(iso_week_number);
  for (SimDay d = start; d < start + kDaysPerWeek; ++d)
    if (has(d)) out.push_back(value(d));
  return out;
}

double DailySeries::week_mean(int iso_week_number) const {
  return stats::mean(week_values(iso_week_number));
}

double DailySeries::week_median(int iso_week_number) const {
  return stats::median(week_values(iso_week_number));
}

int DailySeries::week_covered_days(int iso_week_number) const {
  int covered = 0;
  const SimDay start = week_start_day(iso_week_number);
  for (SimDay d = start; d < start + kDaysPerWeek; ++d)
    if (has(d)) ++covered;
  return covered;
}

std::vector<DayPoint> daily_delta_percent(const DailySeries& series,
                                          double baseline) {
  std::vector<DayPoint> out;
  for (SimDay d = series.first_day(); d <= series.last_day(); ++d)
    if (series.has(d))
      out.push_back({d, stats::delta_percent(series.value(d), baseline)});
  return out;
}

std::vector<WeekPoint> weekly_median_delta_percent(const DailySeries& series,
                                                   double baseline,
                                                   int from_week, int to_week,
                                                   int min_samples) {
  std::vector<WeekPoint> out;
  const auto threshold = static_cast<std::size_t>(std::max(min_samples, 1));
  for (int w = from_week; w <= to_week; ++w) {
    const auto values = series.week_values(w);
    if (values.size() < threshold) continue;
    out.push_back({w, stats::delta_percent(stats::median(values), baseline)});
  }
  return out;
}

std::vector<WeekPoint> weekly_mean_delta_percent(const DailySeries& series,
                                                 double baseline,
                                                 int from_week, int to_week,
                                                 int min_samples) {
  std::vector<WeekPoint> out;
  const auto threshold = static_cast<std::size_t>(std::max(min_samples, 1));
  for (int w = from_week; w <= to_week; ++w) {
    const auto values = series.week_values(w);
    if (values.size() < threshold) continue;
    out.push_back({w, stats::delta_percent(stats::mean(values), baseline)});
  }
  return out;
}

}  // namespace cellscope
