// Daily / weekly time-series containers.
//
// Every figure in the paper is one of two shapes:
//   * a per-day series of "% change vs the week-9 reference" (Figs 3, 7), or
//   * a per-week series of the *median* daily value, again as % change vs
//     week 9 (Figs 5, 6, 8..12).
// DailySeries holds the raw per-day values (averaging repeated adds, since
// the paper reports the average daily value across users); the free
// functions derive the two figure shapes from it.
#pragma once

#include <cstddef>
#include <vector>

#include "common/simtime.h"

namespace cellscope {

class DailySeries {
 public:
  DailySeries() = default;
  // Covers days [first_day, last_day], both inclusive.
  DailySeries(SimDay first_day, SimDay last_day);

  // Overwrites the day's value.
  void set(SimDay day, double value);
  // Accumulates; value(day) then returns the mean of everything added.
  void add(SimDay day, double value);

  [[nodiscard]] bool has(SimDay day) const;
  // Mean of added values (or the set value). A missing day is NOT zero:
  // querying a day with no data (or outside the window) throws
  // std::out_of_range. Callers that genuinely want zero-filling (or any
  // other sentinel) must say so via value_or().
  [[nodiscard]] double value(SimDay day) const;
  // value(day) if the day has data, `fallback` otherwise.
  [[nodiscard]] double value_or(SimDay day, double fallback = 0.0) const;
  [[nodiscard]] std::size_t count(SimDay day) const;

  [[nodiscard]] SimDay first_day() const { return first_day_; }
  [[nodiscard]] SimDay last_day() const { return last_day_; }
  [[nodiscard]] bool empty() const { return sums_.empty(); }

  // Mean / median of recorded daily values within an ISO week. Missing days
  // are skipped, not zero-filled; a week with no data at all returns 0
  // (check week_covered_days() when that matters).
  [[nodiscard]] double week_mean(int iso_week_number) const;
  [[nodiscard]] double week_median(int iso_week_number) const;

  // All recorded daily values within an ISO week, in day order.
  [[nodiscard]] std::vector<double> week_values(int iso_week_number) const;

  // Number of days with data within an ISO week (0..7): the per-week
  // coverage a degraded feed leaves behind.
  [[nodiscard]] int week_covered_days(int iso_week_number) const;

  [[nodiscard]] int first_week() const { return iso_week(first_day_); }
  [[nodiscard]] int last_week() const { return iso_week(last_day_); }

  // Raw accumulator access for serialization (store/dataset_io). value()
  // divides sum by count, so a bitwise round trip must move the raw sum.
  // Days outside the window return 0 / are ignored.
  [[nodiscard]] double day_sum(SimDay day) const;
  void restore(SimDay day, double sum, std::size_t count);

 private:
  [[nodiscard]] std::size_t index(SimDay day) const;

  SimDay first_day_ = 0;
  SimDay last_day_ = -1;
  std::vector<double> sums_;
  std::vector<std::size_t> counts_;
};

// One point of a weekly figure line.
struct WeekPoint {
  int week = 0;       // ISO 2020 week number
  double value = 0.0; // typically a delta-% already
};

// Per-day % change of `series` vs `baseline` (paper: "percentage of change
// in the average daily value compared to average weekly value in week 9").
// Days without data are skipped.
struct DayPoint {
  SimDay day = 0;
  double value = 0.0;
};
[[nodiscard]] std::vector<DayPoint> daily_delta_percent(
    const DailySeries& series, double baseline);

// Per-week % change of the weekly *median* daily value vs `baseline`
// (the reduction used throughout Section 4's figures). Weeks with fewer
// than `min_samples` covered days are omitted entirely — a median over one
// or two surviving days of a mostly-dark week is noise, not signal.
[[nodiscard]] std::vector<WeekPoint> weekly_median_delta_percent(
    const DailySeries& series, double baseline, int from_week, int to_week,
    int min_samples = 1);

// Same but reducing each week by the mean (the documented ablation).
[[nodiscard]] std::vector<WeekPoint> weekly_mean_delta_percent(
    const DailySeries& series, double baseline, int from_week, int to_week,
    int min_samples = 1);

}  // namespace cellscope
