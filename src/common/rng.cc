#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <numbers>
#include <stdexcept>

namespace cellscope {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::fork(std::string_view stream_name) const {
  return Rng{seed_ ^ fnv1a(stream_name)};
}

Rng Rng::fork(std::string_view stream_name, std::uint64_t index) const {
  std::uint64_t mix = seed_ ^ fnv1a(stream_name);
  mix += index * 0x9e3779b97f4a7c15ULL;
  return Rng{splitmix64(mix)};
}

std::uint64_t Rng::next() {
  // xoshiro256++
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 uniform bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection-free for our (non-adversarial) purposes: the bias
  // of a plain modulo with 64-bit input and n <= 2^32 is immeasurably small,
  // but use the widening multiply anyway.
  const unsigned __int128 product =
      static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(n);
  return static_cast<std::uint64_t>(product >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::chance(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return uniform() < probability;
}

double Rng::normal() {
  // Box-Muller; discard the second variate to keep the generator stateless.
  const double u1 = std::max(uniform(), 0x1.0p-60);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) {
  const double u = std::max(uniform(), 0x1.0p-60);
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's product method.
    const double threshold = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > threshold);
    return k - 1;
  }
  // Normal approximation for large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  assert(n > 0);
  // Inverse-CDF over the (small) support; n is at most a few dozen wherever
  // this is used (important places, app catalog), so linear scan is fine.
  double norm = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(double(k), s);
  double u = uniform() * norm;
  for (std::uint64_t k = 1; k <= n; ++k) {
    u -= 1.0 / std::pow(double(k), s);
    if (u <= 0.0) return k - 1;
  }
  return n - 1;
}

std::size_t Rng::categorical(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("categorical: weights sum to zero");
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  cumulative_.reserve(weights.size());
  double running = 0.0;
  for (const double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument("DiscreteSampler: negative weight");
    running += w;
    cumulative_.push_back(running);
  }
  if (!cumulative_.empty() && running <= 0.0)
    throw std::invalid_argument("DiscreteSampler: weights sum to zero");
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  assert(!cumulative_.empty());
  const double u = rng.uniform() * cumulative_.back();
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(cumulative_.size()) - 1));
}

}  // namespace cellscope
