// Statistics kernel.
//
// Everything the paper reports is a reduction over large samples: per-cell
// daily *medians* of hourly KPIs (Section 2.4), per-day *averages* of
// per-user mobility metrics (Section 2.3), percentile bands, a Pearson
// correlation (Fig 4, Section 4.4) and one least-squares fit with r-squared
// (Fig 2). This header implements exactly those reductions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cellscope::stats {

// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean(std::span<const double> sample);

// Sample (Bessel-corrected, n-1 divisor) variance / standard deviation;
// 0 for fewer than 2 points — the guard and the divisor agree on sample
// semantics, since every caller works with a sample of a larger process.
[[nodiscard]] double variance(std::span<const double> sample);
[[nodiscard]] double stddev(std::span<const double> sample);

// Exact median via nth_element on a copy; 0 for an empty sample. Even-sized
// samples return the midpoint of the two central order statistics.
// Non-finite values (NaN/Inf) are excluded from the order statistics: NaN
// comparisons would make nth_element UB, so gap markers that leak in as
// NaN are treated as missing data, never as data.
[[nodiscard]] double median(std::span<const double> sample);

// Linear-interpolated quantile, q in [0, 1]; 0 for an empty sample.
// Non-finite values are excluded (see median()).
[[nodiscard]] double quantile(std::span<const double> sample, double q);

// Pearson product-moment correlation coefficient in [-1, 1];
// 0 when either side is (numerically) constant or sizes mismatch/empty.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

// Ordinary least squares y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  // coefficient of determination
  std::size_t n = 0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> x,
                                   std::span<const double> y);

// Percentage change of `value` relative to `baseline`
// ("delta variation percentage" in the paper's figure captions).
// Returns 0 when the baseline is 0.
[[nodiscard]] double delta_percent(double value, double baseline);

// Welford online accumulator: single pass mean/variance/min/max/count.
class Running {
 public:
  void add(double value);
  void merge(const Running& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Distribution snapshot used for the figures' percentile commentary
// ("all percentiles are close to the median", Section 3.2).
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double p10 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
};
[[nodiscard]] Summary summarize(std::span<const double> sample);

// Accumulates raw values and produces both median and mean reductions.
// The paper reduces hourly KPIs to the *daily median per cell*; benches also
// report the mean as the documented ablation (DESIGN.md Section 5).
class SampleBuffer {
 public:
  void add(double value) { values_.push_back(value); }
  void clear() { values_.clear(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] double median() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] Summary summarize() const;
  [[nodiscard]] std::span<const double> values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace cellscope::stats
