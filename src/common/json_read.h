// Minimal JSON reader for cellscope's own machine-readable artifacts.
//
// The obs layer *writes* JSON by hand (manifests, timelines, traces); the
// perf-regression gate has to *read* it back — run manifests, google-
// benchmark reports and the checked-in BENCH_cellscope.json baseline. This
// is a small recursive-descent parser over a DOM of JsonValue nodes: full
// JSON syntax (objects, arrays, strings with escapes, numbers, booleans,
// null), no streaming, no SAX, no external dependency. Inputs are our own
// small documents (kilobytes), so simplicity beats speed.
//
// Parse errors throw std::runtime_error with a byte offset; lookups on the
// wrong type throw too, so a malformed baseline fails the gate loudly
// instead of comparing garbage.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cellscope::common {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;  // truncates
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;

  // Object lookups. has()/find() probe; at() throws when absent.
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  [[nodiscard]] const JsonValue& at(const std::string& key) const;

  // Convenience lookups with defaults (absent key or wrong type -> fallback).
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;

 private:
  friend JsonValue json_parse(std::string_view text);
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  // Insertion-ordered keys are irrelevant for our lookups; a map keeps the
  // implementation tiny.
  std::map<std::string, JsonValue> object_;
};

// Parses a complete JSON document (trailing whitespace allowed, trailing
// garbage rejected). Throws std::runtime_error with a byte offset on error.
[[nodiscard]] JsonValue json_parse(std::string_view text);

// Reads and parses a JSON file; throws std::runtime_error when the file
// cannot be read or does not parse.
[[nodiscard]] JsonValue json_parse_file(const std::string& path);

}  // namespace cellscope::common
