// Strong identifier types used across the framework.
//
// Every entity that the measurement infrastructure of the paper talks about
// (subscribers, cells, cell sites, postcode districts, ...) gets its own
// non-interconvertible integer id so that a CellId can never be passed where
// a UserId is expected. Ids are trivially hashable and ordered so they can
// key flat maps and be sorted into deterministic report order.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace cellscope {

// CRTP-free strong typedef over a 32/64-bit integer. `Tag` makes distinct
// instantiations distinct types; `Rep` picks the width.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  // An id that compares unequal to every id a generator hands out.
  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{kInvalid}; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  static constexpr Rep kInvalid = std::numeric_limits<Rep>::max();
  Rep value_ = kInvalid;
};

struct UserIdTag {};
struct CellIdTag {};
struct SiteIdTag {};
struct SectorIdTag {};
struct PostcodeDistrictIdTag {};
struct LadIdTag {};
struct CountyIdTag {};
struct RegionIdTag {};
struct PlaceIdTag {};
struct TacTag {};

// Anonymized subscriber id (the paper's "anonymized user ID", Section 2.2).
using UserId = StrongId<UserIdTag>;
// One logical radio cell (one carrier on one sector of one site).
using CellId = StrongId<CellIdTag>;
// Physical cell site ("cell tower", Section 2.1).
using SiteId = StrongId<SiteIdTag>;
// Radio sector of a site; KPI granularity in the Radio Network Performance feed.
using SectorId = StrongId<SectorIdTag>;
// Postcode district (e.g. "EC1" -> modeled as one district id).
using PostcodeDistrictId = StrongId<PostcodeDistrictIdTag>;
// Local Authority District, the Fig. 2 validation granularity.
using LadId = StrongId<LadIdTag>;
// County (Fig. 7 mobility-matrix granularity).
using CountyId = StrongId<CountyIdTag>;
// Named analysis region (Inner London, West Yorkshire, ...).
using RegionId = StrongId<RegionIdTag>;
// One important place of one user (home, work, ...).
using PlaceId = StrongId<PlaceIdTag>;
// Type Allocation Code: first 8 IMEI digits, keys the device catalog.
using Tac = StrongId<TacTag>;

}  // namespace cellscope

// Hash support so strong ids can key unordered containers.
namespace std {
template <typename Tag, typename Rep>
struct hash<cellscope::StrongId<Tag, Rep>> {
  size_t operator()(cellscope::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
