// Plain-text table rendering for bench / example output.
//
// Every bench binary regenerates one paper figure as rows of numbers; this
// tiny formatter keeps that output aligned and diff-friendly, and can also
// emit CSV so series can be re-plotted outside the repo.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cellscope {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Starts a new row; subsequent cell() calls fill it left to right.
  TextTable& row();
  TextTable& cell(std::string text);
  TextTable& cell(const char* text);
  // Fixed-precision numeric cell (default matches the paper's 1-decimal
  // delta-% style).
  TextTable& cell(double value, int precision = 1);
  TextTable& cell(long long value);
  TextTable& cell(int value) { return cell(static_cast<long long>(value)); }
  TextTable& cell(std::size_t value) {
    return cell(static_cast<long long>(value));
  }

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  // Aligned monospace rendering with a header rule.
  void print(std::ostream& os) const;
  // RFC-4180-ish CSV (no quoting needed for our content).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Section banner used by benches: "== Figure 3a: ... ==".
void print_banner(std::ostream& os, const std::string& title);

// One "paper vs measured" comparison line; benches use this to record the
// headline numbers EXPERIMENTS.md tracks. `ok` is the caller's shape check.
void print_claim(std::ostream& os, const std::string& claim,
                 const std::string& paper_value,
                 const std::string& measured_value, bool ok);

}  // namespace cellscope
