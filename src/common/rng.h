// Deterministic random number generation.
//
// Every stochastic component of the simulator draws from an Rng that is
// forked by name from a single scenario seed. Forking (rather than sharing
// one generator) means modules consume independent streams: adding a draw in
// the mobility model cannot perturb the traffic model, so experiments stay
// reproducible across code evolution as long as stream names are stable.
//
// The core generator is xoshiro256++, seeded through splitmix64 — small,
// fast, and statistically solid for simulation (not cryptographic) use.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace cellscope {

// splitmix64 step; used for seeding and for hashing stream names.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a over a string, for deriving per-stream seeds from names.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  // Named fork: independent stream derived from this stream's seed and a
  // stable name. Forking does not consume randomness from the parent.
  [[nodiscard]] Rng fork(std::string_view stream_name) const;
  // Indexed fork, e.g. one stream per user.
  [[nodiscard]] Rng fork(std::string_view stream_name, std::uint64_t index) const;

  [[nodiscard]] std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <random> if desired).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform();
  // Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  // Uniform integer in [0, n). n must be > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n);
  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Bernoulli trial.
  [[nodiscard]] bool chance(double probability);

  // Standard normal via Box-Muller (no state carried between calls).
  [[nodiscard]] double normal();
  [[nodiscard]] double normal(double mean, double stddev);
  // Log-normal with the given parameters of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma);
  // Exponential with the given mean (not rate).
  [[nodiscard]] double exponential(double mean);
  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64).
  [[nodiscard]] std::uint64_t poisson(double mean);
  // Zipf-like rank draw in [0, n) with exponent s (rank 0 most likely).
  [[nodiscard]] std::uint64_t zipf(std::uint64_t n, double s);
  // Index drawn proportionally to the (non-negative) weights.
  [[nodiscard]] std::size_t categorical(std::span<const double> weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[uniform_index(i)]);
    }
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t s_[4] = {};
};

// Precomputed alias-free sampler for repeated categorical draws over a fixed
// weight vector (cumulative distribution + binary search).
class DiscreteSampler {
 public:
  DiscreteSampler() = default;
  explicit DiscreteSampler(std::span<const double> weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cumulative_.size(); }
  [[nodiscard]] bool empty() const { return cumulative_.empty(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace cellscope
