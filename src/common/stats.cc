#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace cellscope::stats {

double mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double total = 0.0;
  for (const double v : sample) total += v;
  return total / static_cast<double>(sample.size());
}

double variance(std::span<const double> sample) {
  if (sample.size() < 2) return 0.0;
  const double m = mean(sample);
  double accum = 0.0;
  for (const double v : sample) accum += (v - m) * (v - m);
  return accum / static_cast<double>(sample.size() - 1);
}

double stddev(std::span<const double> sample) {
  return std::sqrt(variance(sample));
}

namespace {

// Copies only the finite values: NaN breaks strict weak ordering, making
// nth_element/sort UB, so non-finite entries never enter a scratch buffer.
std::vector<double> finite_scratch(std::span<const double> sample) {
  std::vector<double> scratch;
  scratch.reserve(sample.size());
  for (const double v : sample)
    if (std::isfinite(v)) scratch.push_back(v);
  return scratch;
}

// Quantile on a scratch copy we are allowed to reorder.
double quantile_inplace(std::vector<double>& scratch, double q) {
  if (scratch.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(scratch.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, scratch.size() - 1);
  std::nth_element(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(lo),
                   scratch.end());
  const double lo_value = scratch[lo];
  if (hi == lo) return lo_value;
  // nth_element leaves [lo+1, end) all >= lo_value; the hi-th order statistic
  // is the minimum of that suffix.
  const double hi_value =
      *std::min_element(scratch.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                        scratch.end());
  const double frac = pos - static_cast<double>(lo);
  return lo_value + (hi_value - lo_value) * frac;
}
}  // namespace

double quantile(std::span<const double> sample, double q) {
  std::vector<double> scratch = finite_scratch(sample);
  return quantile_inplace(scratch, q);
}

double median(std::span<const double> sample) { return quantile(sample, 0.5); }

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  LinearFit fit;
  if (x.size() != y.size() || x.size() < 2) return fit;
  fit.n = x.size();
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy <= 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double delta_percent(double value, double baseline) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (value - baseline) / baseline;
}

void Running::add(double value) {
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

void Running::merge(const Running& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) / static_cast<double>(total);
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double Running::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Running::stddev() const { return std::sqrt(variance()); }

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.n = sample.size();
  if (sample.empty()) return s;
  s.mean = mean(sample);
  std::vector<double> scratch = finite_scratch(sample);
  if (scratch.empty()) return s;
  std::sort(scratch.begin(), scratch.end());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(scratch.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, scratch.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return scratch[lo] + (scratch[hi] - scratch[lo]) * frac;
  };
  s.p10 = at(0.10);
  s.p25 = at(0.25);
  s.median = at(0.50);
  s.p75 = at(0.75);
  s.p90 = at(0.90);
  return s;
}

double SampleBuffer::median() const { return stats::median(values_); }
double SampleBuffer::mean() const { return stats::mean(values_); }
double SampleBuffer::quantile(double q) const { return stats::quantile(values_, q); }
Summary SampleBuffer::summarize() const { return stats::summarize(values_); }

}  // namespace cellscope::stats
