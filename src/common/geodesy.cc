#include "common/geodesy.h"

#include <cassert>

namespace cellscope {

double haversine_km(const LatLon& a, const LatLon& b) {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

LatLon weighted_centroid(const std::vector<LatLon>& points,
                         const std::vector<double>& weights) {
  assert(points.size() == weights.size());
  if (points.empty()) return {};
  double total = 0.0;
  double lat = 0.0;
  double lon = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    assert(weights[i] >= 0.0);
    total += weights[i];
    lat += weights[i] * points[i].lat_deg;
    lon += weights[i] * points[i].lon_deg;
  }
  if (total <= 0.0) return points.front();
  return {lat / total, lon / total};
}

LatLon offset_km(const LatLon& origin, double east_km, double north_km) {
  const double dlat = north_km / kEarthRadiusKm * 180.0 / std::numbers::pi;
  // The local-tangent-plane approximation divides by cos(lat), which
  // vanishes at the poles and would turn any eastward offset into an
  // infinite longitude. Clamp the shrinking parallel radius to its value
  // 0.1 degrees off the pole: exact for every inhabited latitude (Shetland
  // is ~60.5 degrees, cos ~0.49) and finite, monotonic degradation beyond.
  constexpr double kMinCosLat = 0.0017453283658983088;  // cos(89.9 deg)
  const double cos_lat =
      std::max(std::cos(deg2rad(origin.lat_deg)), kMinCosLat);
  const double dlon =
      east_km / (kEarthRadiusKm * cos_lat) * 180.0 / std::numbers::pi;
  return {origin.lat_deg + dlat, origin.lon_deg + dlon};
}

}  // namespace cellscope
