// Crash-safe file publication.
//
// Every durable artifact cellscope writes (CSF1 shards, store manifests,
// checkpoints, obs exports) follows the same discipline: write the full
// contents to `<path>.tmp`, fsync, rename over `<path>`, fsync the parent
// directory. A reader can then rely on a simple invariant — any file at its
// final name is complete — and a crashed writer leaves behind only `*.tmp`
// litter that the next run sweeps away. docs/RECOVERY.md describes the
// recovery contract built on top of this.
#pragma once

#include <cstddef>
#include <string>

namespace cellscope {

// Appended to the final path to form the scratch name. Everything that
// writes through this module (or hand-rolls the same protocol, like the
// streaming shard writer) uses this suffix so the sweep finds it.
inline constexpr const char* kTmpSuffix = ".tmp";

// Writes `size` bytes to `path + kTmpSuffix`, fsyncs, renames onto `path`
// and fsyncs the parent directory. Throws std::runtime_error (with errno
// text) if any step fails; on failure the temp file is unlinked best-effort
// and `path` is untouched.
void write_file_atomic(const std::string& path, const void* data,
                       std::size_t size);
void write_file_atomic(const std::string& path, const std::string& contents);

// Flushes `fd` and renames `tmp_path` onto `final_path` (+ parent-dir
// fsync). The fd is NOT closed. Used by streaming writers that build the
// temp file incrementally. Throws std::runtime_error on failure.
void publish_file_atomic(int fd, const std::string& tmp_path,
                         const std::string& final_path);

// Deletes every `*.tmp` file directly inside `dir` (non-recursive); these
// are by construction unpublished leftovers from a crashed writer. Returns
// the number removed. A missing directory counts as empty.
std::size_t remove_stale_tmp_files(const std::string& dir);

}  // namespace cellscope
