#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cellscope {
namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// Durability for the rename itself: without flushing the directory a crash
// can roll back to the old entry. Best-effort — some filesystems refuse
// fsync on directories and the rename is still atomic for readers.
void sync_parent_dir(const std::string& path) {
  const int dir_fd = ::open(parent_dir(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return;
  ::fsync(dir_fd);
  ::close(dir_fd);
}

}  // namespace

void write_file_atomic(const std::string& path, const void* data,
                       std::size_t size) {
  const std::string tmp = path + kTmpSuffix;
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) fail("atomic write: cannot create", tmp);

  const char* cursor = static_cast<const char*>(data);
  std::size_t left = size;
  while (left > 0) {
    const ::ssize_t n = ::write(fd, cursor, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("atomic write: short write to", tmp);
    }
    cursor += n;
    left -= static_cast<std::size_t>(n);
  }
  try {
    publish_file_atomic(fd, tmp, path);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
}

void write_file_atomic(const std::string& path, const std::string& contents) {
  write_file_atomic(path, contents.data(), contents.size());
}

void publish_file_atomic(int fd, const std::string& tmp_path,
                         const std::string& final_path) {
  if (::fsync(fd) != 0) fail("atomic write: fsync failed for", tmp_path);
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0)
    fail("atomic write: rename failed for", final_path);
  sync_parent_dir(final_path);
}

std::size_t remove_stale_tmp_files(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return 0;
  std::size_t removed = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= std::string_view{kTmpSuffix}.size() ||
        !name.ends_with(kTmpSuffix))
      continue;
    if (fs::remove(entry.path(), ec)) ++removed;
  }
  return removed;
}

}  // namespace cellscope
