// Minimal self-describing-free binary serialization for checkpoints.
//
// The crash-safety layer (docs/RECOVERY.md) snapshots the simulator's
// resumable state at day boundaries. That state is a mix of counters,
// IEEE-754 accumulators and small structs; the encoding here is the same
// family the CSF1 store uses — LEB128 varints for unsigned integers,
// zigzag for signed, raw little-endian bits for doubles (bit-exactness is
// part of the resume contract) — but header-only and dependency-free so
// both src/sim (which produces the state) and src/store (which persists
// it) can use it without a layering cycle.
//
// There is no schema or tagging: writer and reader must agree on field
// order, guarded by the checkpoint's version field. Truncated or trailing
// input surfaces as BlobError, never as UB.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cellscope {

class BlobError : public std::runtime_error {
 public:
  explicit BlobError(const std::string& what) : std::runtime_error(what) {}
};

class BlobWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }

  // LEB128 varint.
  void u64(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) { u64(v); }

  // Zigzag + varint; small magnitudes of either sign stay small.
  void i64(std::int64_t v) {
    u64((static_cast<std::uint64_t>(v) << 1) ^
        static_cast<std::uint64_t>(v >> 63));
  }

  // Raw bit pattern, little-endian: resume must reproduce accumulators
  // bit for bit, so no decimal round-trip is allowed.
  void f64(double v) {
    std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(bits));
      bits >>= 8;
    }
  }

  void bytes(std::string_view s) {
    u64(s.size());
    out_.insert(out_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return out_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class BlobReader {
 public:
  explicit BlobReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) throw BlobError{"checkpoint blob: varint overflow"};
      const std::uint8_t byte = u8();
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::uint32_t u32() {
    const std::uint64_t v = u64();
    if (v > 0xffffffffull) throw BlobError{"checkpoint blob: u32 overflow"};
    return static_cast<std::uint32_t>(v);
  }

  std::int64_t i64() {
    const std::uint64_t z = u64();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  double f64() {
    need(8);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
      bits |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return std::bit_cast<double>(bits);
  }

  std::string bytes() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::uint64_t n) const {
    if (n > data_.size() - pos_)
      throw BlobError{"checkpoint blob: truncated input"};
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace cellscope
