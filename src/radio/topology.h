// Radio network topology generation and daily snapshots.
//
// Sites are deployed per postcode district proportionally to expected
// subscriber presence (residents + commuter jobs + visitors), mirroring how
// operators dimension capacity for daytime population. The topology also
// serves the paper's "Radio Network Topology" data feed: a daily snapshot of
// every site's metadata and active/inactive status (Section 2.2), including
// the occasional maintenance outage so downstream code must handle status.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/simtime.h"
#include "geo/uk_model.h"
#include "radio/cell.h"

namespace cellscope::radio {

struct TopologyConfig {
  // Target subscribers per site; sites per district scale with this.
  double users_per_site = 90.0;
  // Expected subscriber count (drives the absolute number of sites).
  std::uint32_t expected_subscribers = 30'000;
  // Legacy RAT deployment probabilities per site.
  double site_has_3g = 0.6;
  double site_has_2g = 0.4;
  // Per-day probability that a site is down for maintenance.
  double outage_probability = 0.002;
  std::uint64_t seed = 2020;
};

// One row of the daily topology feed.
struct TopologySnapshotRow {
  SiteId site;
  PostcodeDistrictId district;
  LatLon location;
  bool active = true;
};

class RadioTopology {
 public:
  static RadioTopology build(const geo::UkGeography& geography,
                             const TopologyConfig& config = {});

  [[nodiscard]] const std::vector<CellSite>& sites() const { return sites_; }
  [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }

  [[nodiscard]] const CellSite& site(SiteId id) const;
  [[nodiscard]] const Cell& cell(CellId id) const;

  // Sites in a district, in id order (every district has at least one).
  [[nodiscard]] const std::vector<SiteId>& sites_in(
      PostcodeDistrictId district) const;

  // Nearest site to a location within its district.
  [[nodiscard]] SiteId nearest_site(PostcodeDistrictId district,
                                    const LatLon& location) const;

  // Serving cell for a location: nearest site, sector by bearing, cell by
  // RAT (falls back to 4G when the site lacks the requested legacy RAT).
  [[nodiscard]] CellId serving_cell(PostcodeDistrictId district,
                                    const LatLon& location, Rat rat) const;

  // Daily "Radio Network Topology" feed with maintenance outages applied.
  // Deterministic per (seed, day).
  [[nodiscard]] std::vector<TopologySnapshotRow> snapshot(SimDay day) const;

  // 4G cells only — the KPI universe of Section 2.4.
  [[nodiscard]] const std::vector<CellId>& lte_cells() const {
    return lte_cells_;
  }

 private:
  std::vector<CellSite> sites_;
  std::vector<Cell> cells_;
  std::vector<std::vector<SiteId>> sites_by_district_;
  std::vector<CellId> lte_cells_;
  double outage_probability_ = 0.0;
  std::uint64_t seed_ = 0;
};

}  // namespace cellscope::radio
