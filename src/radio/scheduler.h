// LTE MAC scheduler model.
//
// Produces, per 4G cell and hour, exactly the KPIs Section 2.4 defines:
// UL/DL volume over QCI 1..8 bearers, average number of active DL users,
// radio load as TTI utilization, average user DL throughput, seconds with
// active data, and the conversational-voice (QCI 1) split with its packet
// loss rates. The input is the hour's aggregated offered load, accumulated
// by the simulator from per-user traffic demand; the scheduler applies the
// cell's capacity, derives utilization, and caps per-user throughput at the
// fair share — which is how the paper's "application-limited throughput"
// observation becomes measurable: when demand per user is below the fair
// share, throughput tracks the application, not the network.
#pragma once

#include <cstdint>

#include "radio/cell.h"

namespace cellscope::radio {

// Offered load accumulated for one (cell, hour).
struct CellHourLoad {
  // Data-bearer demand (QCI 2..8), MB for the hour.
  double offered_dl_mb = 0.0;
  double offered_ul_mb = 0.0;
  // Sum over users of seconds with data in the DL buffer this hour.
  double active_dl_user_seconds = 0.0;
  // Mean application-limited per-user DL rate while active, Mbit/s
  // (already reflects provider throttling); <= 0 means "unbounded".
  double app_limited_dl_mbps = 0.0;
  // Distinct users camped on the cell during the hour (active + idle).
  double connected_users = 0.0;
  // Conversational voice (QCI 1).
  double voice_dl_mb = 0.0;
  double voice_ul_mb = 0.0;
  double voice_user_seconds = 0.0;  // sum of in-call seconds
  // Fraction of this cell's voice minutes crossing the inter-MNO trunks.
  double offnet_voice_fraction = 0.0;
};

// Field-wise addition of one accumulator's (cell, hour) load into another.
// The simulator reduces per-chunk load buffers through this in chunk-index
// order, which makes the summation order — and therefore the float bits —
// a function of the chunk grid alone, never of the thread count.
// offnet_voice_fraction is a last-writer value, not a sum: the serial loop
// overwrites it per voice event, so a merge applies `from`'s value only
// when `from` actually carried voice.
inline void merge_load(CellHourLoad& into, const CellHourLoad& from) {
  into.offered_dl_mb += from.offered_dl_mb;
  into.offered_ul_mb += from.offered_ul_mb;
  into.active_dl_user_seconds += from.active_dl_user_seconds;
  into.app_limited_dl_mbps += from.app_limited_dl_mbps;
  into.connected_users += from.connected_users;
  into.voice_dl_mb += from.voice_dl_mb;
  into.voice_ul_mb += from.voice_ul_mb;
  into.voice_user_seconds += from.voice_user_seconds;
  if (from.voice_user_seconds > 0.0)
    into.offnet_voice_fraction = from.offnet_voice_fraction;
}

// The hour's KPI record for one 4G cell (pre-aggregation; the telemetry
// layer reduces these to per-day medians).
struct CellHourKpi {
  double dl_volume_mb = 0.0;   // served, all bearers QCI 1..8
  double ul_volume_mb = 0.0;
  double data_dl_mb = 0.0;     // data bearers only (QCI 2..8)
  double data_ul_mb = 0.0;
  double active_dl_users = 0.0;        // avg users with DL data per TTI proxy
  double tti_utilization = 0.0;        // radio load in [0, 1]
  double user_dl_throughput_mbps = 0.0;
  double active_data_seconds = 0.0;
  double connected_users = 0.0;
  // Voice KPIs (QCI 1).
  double voice_volume_mb = 0.0;
  double simultaneous_voice_users = 0.0;
  double voice_dl_loss_pct = 0.0;
  double voice_ul_loss_pct = 0.0;
};

struct SchedulerParams {
  // Fraction of nominal capacity usable for user-plane data.
  double capacity_efficiency = 0.85;
  // Control-plane TTI overhead per connected (active or idle) user:
  // paging, reference signals, RRC keep-alives. Keeps radio load from
  // tracking data volume one-to-one (Fig 8: load falls less than volume).
  double per_user_overhead = 0.00007;
  // Baseline radio-interface voice packet loss (percent) at zero load.
  double base_voice_loss_pct = 0.15;
  // How strongly cell load inflates radio-interface loss. Expressed per
  // unit of TTI utilization; large because scaled-down cells run at tiny
  // absolute utilization (documented in DESIGN.md).
  double load_loss_slope_pct = 25.0;
};

class LteScheduler {
 public:
  explicit LteScheduler(const SchedulerParams& params = {});

  // `interconnect_dl_loss_pct` is the current loss on the inter-MNO voice
  // trunks (applies to the off-net share of DL voice only; Section 4.2).
  [[nodiscard]] CellHourKpi schedule_hour(
      const Cell& cell, const CellHourLoad& load,
      double interconnect_dl_loss_pct) const;

  [[nodiscard]] const SchedulerParams& params() const { return params_; }

  // Observability: cell-hours scheduled (all calls) and cell-hours whose
  // offered DL demand exceeded capacity and was clipped. The simulator
  // publishes these into the metrics registry; not thread-safe — each
  // serial scheduling context owns its scheduler.
  [[nodiscard]] std::uint64_t hours_scheduled() const {
    return hours_scheduled_;
  }
  [[nodiscard]] std::uint64_t hours_dl_saturated() const {
    return hours_dl_saturated_;
  }

 private:
  SchedulerParams params_;
  mutable std::uint64_t hours_scheduled_ = 0;
  mutable std::uint64_t hours_dl_saturated_ = 0;
};

}  // namespace cellscope::radio
