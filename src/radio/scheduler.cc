#include "radio/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cellscope::radio {

namespace {
constexpr double kSecondsPerHour = 3600.0;
}  // namespace

LteScheduler::LteScheduler(const SchedulerParams& params) : params_(params) {}

CellHourKpi LteScheduler::schedule_hour(const Cell& cell,
                                        const CellHourLoad& load,
                                        double interconnect_dl_loss_pct) const {
  CellHourKpi kpi;
  ++hours_scheduled_;

  // Mbit/s of usable capacity -> MB deliverable in one hour.
  const double dl_cap_mb = cell.dl_capacity_mbps * params_.capacity_efficiency *
                           kSecondsPerHour / 8.0;
  const double ul_cap_mb = cell.ul_capacity_mbps * params_.capacity_efficiency *
                           kSecondsPerHour / 8.0;

  // Voice is QCI 1: strictly prioritized, always served (GBR bearer).
  kpi.voice_volume_mb = load.voice_dl_mb + load.voice_ul_mb;
  kpi.simultaneous_voice_users = load.voice_user_seconds / kSecondsPerHour;

  // Data bearers get the remaining capacity.
  const double dl_for_data = std::max(0.0, dl_cap_mb - load.voice_dl_mb);
  const double ul_for_data = std::max(0.0, ul_cap_mb - load.voice_ul_mb);
  if (load.offered_dl_mb > dl_for_data) ++hours_dl_saturated_;
  kpi.data_dl_mb = std::min(load.offered_dl_mb, dl_for_data);
  kpi.data_ul_mb = std::min(load.offered_ul_mb, ul_for_data);
  kpi.dl_volume_mb = kpi.data_dl_mb + load.voice_dl_mb;
  kpi.ul_volume_mb = kpi.data_ul_mb + load.voice_ul_mb;

  // Radio load as TTI utilization: fraction of scheduler resources in use
  // (DL dominated; voice contributes via its GBR share).
  kpi.tti_utilization = std::clamp(
      (kpi.dl_volume_mb + 0.5 * kpi.ul_volume_mb) / std::max(dl_cap_mb, 1e-9) +
          params_.per_user_overhead * load.connected_users,
      0.0, 1.0);

  kpi.active_dl_users = load.active_dl_user_seconds / kSecondsPerHour;
  kpi.active_data_seconds = load.active_dl_user_seconds;
  kpi.connected_users = load.connected_users;

  // Average user DL throughput: the application rate capped by the fair
  // share of cell capacity among simultaneously active users.
  if (load.active_dl_user_seconds > 0.0) {
    const double fair_share_mbps =
        cell.dl_capacity_mbps * params_.capacity_efficiency /
        std::max(1.0, kpi.active_dl_users);
    const double app_rate =
        load.app_limited_dl_mbps > 0.0
            ? load.app_limited_dl_mbps
            : std::numeric_limits<double>::max();
    kpi.user_dl_throughput_mbps = std::min(app_rate, fair_share_mbps);
  }

  // Voice packet loss. Uplink loss is radio-limited and scales with cell
  // load; downlink adds the inter-MNO interconnect loss on the off-net
  // share of calls (Section 4.2's congestion episode).
  if (load.voice_user_seconds > 0.0) {
    const double radio_loss =
        params_.base_voice_loss_pct +
        params_.load_loss_slope_pct * kpi.tti_utilization;
    kpi.voice_ul_loss_pct = radio_loss;
    kpi.voice_dl_loss_pct =
        radio_loss +
        load.offnet_voice_fraction * interconnect_dl_loss_pct;
  }
  return kpi;
}

}  // namespace cellscope::radio
