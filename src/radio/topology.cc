#include "radio/topology.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cellscope::radio {

namespace {
// Daytime-population proxy used to apportion sites across districts. The
// job/visitor contribution is capped: real operators densify city cores
// further, but at simulation scale that would leave core cells with too few
// subscribers for meaningful per-cell medians.
double district_demand(const geo::DistrictInfo& d) {
  return static_cast<double>(d.residents) +
         25'000.0 * std::min(d.job_weight, 8.0) +
         10'000.0 * std::min(d.visitor_weight, 6.0);
}
}  // namespace

std::string_view rat_name(Rat rat) {
  switch (rat) {
    case Rat::k2G: return "2G";
    case Rat::k3G: return "3G";
    case Rat::k4G: return "4G";
  }
  return "?";
}

RadioTopology RadioTopology::build(const geo::UkGeography& geography,
                                   const TopologyConfig& config) {
  if (config.users_per_site <= 0.0)
    throw std::invalid_argument("TopologyConfig: users_per_site must be > 0");

  RadioTopology topo;
  topo.outage_probability_ = config.outage_probability;
  topo.seed_ = config.seed;
  Rng root{config.seed};
  Rng rng = root.fork("radio-topology");

  const auto& districts = geography.districts();
  topo.sites_by_district_.resize(districts.size());

  double total_demand = 0.0;
  for (const auto& d : districts) total_demand += district_demand(d);
  const double total_sites =
      static_cast<double>(config.expected_subscribers) / config.users_per_site;

  for (const auto& district : districts) {
    const double share = district_demand(district) / total_demand;
    const int site_count =
        std::max(1, static_cast<int>(std::lround(share * total_sites)));
    for (int s = 0; s < site_count; ++s) {
      CellSite site;
      site.id = SiteId{static_cast<std::uint32_t>(topo.sites_.size())};
      site.district = district.id;
      site.county = district.county;
      site.region = district.region;
      // Spread sites across the district disc (ring layout + jitter).
      const double angle =
          2.0 * std::numbers::pi * s / site_count + rng.uniform(0.0, 0.5);
      const double r = s == 0 ? 0.0
                              : district.radius_km *
                                    (0.3 + 0.6 * rng.uniform());
      site.location = offset_km(district.center, r * std::cos(angle),
                                r * std::sin(angle));
      site.sector_count = 3;
      site.has_3g = rng.chance(config.site_has_3g);
      site.has_2g = rng.chance(config.site_has_2g);

      site.cells_by_sector.resize(site.sector_count);
      for (std::uint8_t sector = 0; sector < site.sector_count; ++sector) {
        auto& row = site.cells_by_sector[sector];
        row.fill(CellId::invalid());
        const auto add_cell = [&](Rat rat, double dl_mbps, double ul_mbps) {
          Cell cell;
          cell.id = CellId{static_cast<std::uint32_t>(topo.cells_.size())};
          cell.site = site.id;
          cell.sector = sector;
          cell.rat = rat;
          cell.dl_capacity_mbps = dl_mbps;
          cell.ul_capacity_mbps = ul_mbps;
          row[static_cast<int>(rat)] = cell.id;
          if (rat == Rat::k4G) topo.lte_cells_.push_back(cell.id);
          topo.cells_.push_back(cell);
        };
        add_cell(Rat::k4G, 75.0, 25.0);
        if (site.has_3g) add_cell(Rat::k3G, 8.0, 2.0);
        if (site.has_2g) add_cell(Rat::k2G, 0.3, 0.1);
      }
      topo.sites_by_district_[district.id.value()].push_back(site.id);
      topo.sites_.push_back(std::move(site));
    }
  }
  return topo;
}

const CellSite& RadioTopology::site(SiteId id) const {
  return sites_.at(id.value());
}
const Cell& RadioTopology::cell(CellId id) const {
  return cells_.at(id.value());
}

const std::vector<SiteId>& RadioTopology::sites_in(
    PostcodeDistrictId district) const {
  return sites_by_district_.at(district.value());
}

SiteId RadioTopology::nearest_site(PostcodeDistrictId district,
                                   const LatLon& location) const {
  const auto& candidates = sites_in(district);
  SiteId best = candidates.front();
  double best_km = std::numeric_limits<double>::max();
  for (const auto id : candidates) {
    const double d = distance_km(sites_[id.value()].location, location);
    if (d < best_km) {
      best_km = d;
      best = id;
    }
  }
  return best;
}

CellId RadioTopology::serving_cell(PostcodeDistrictId district,
                                   const LatLon& location, Rat rat) const {
  const auto& s = site(nearest_site(district, location));
  // Sector by bearing from the site to the user.
  const double dy = location.lat_deg - s.location.lat_deg;
  const double dx = location.lon_deg - s.location.lon_deg;
  double bearing = std::atan2(dy, dx);  // [-pi, pi]
  if (bearing < 0) bearing += 2.0 * std::numbers::pi;
  const auto sector = static_cast<std::uint8_t>(
      std::min<int>(s.sector_count - 1,
                    static_cast<int>(bearing / (2.0 * std::numbers::pi) *
                                     s.sector_count)));
  const auto& row = s.cells_by_sector[sector];
  const CellId requested = row[static_cast<int>(rat)];
  return requested.valid() ? requested : row[static_cast<int>(Rat::k4G)];
}

std::vector<TopologySnapshotRow> RadioTopology::snapshot(SimDay day) const {
  std::vector<TopologySnapshotRow> rows;
  rows.reserve(sites_.size());
  Rng day_rng = Rng{seed_}.fork("topology-outage", static_cast<std::uint64_t>(day));
  for (const auto& site : sites_) {
    TopologySnapshotRow row;
    row.site = site.id;
    row.district = site.district;
    row.location = site.location;
    row.active = !day_rng.chance(outage_probability_);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace cellscope::radio
