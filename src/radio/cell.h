// Radio access network entities.
//
// A cell *site* ("cell tower") hosts up to three 120-degree sectors; each
// sector carries one cell per radio technology deployed at the site. The
// paper's mobility pipeline works at tower granularity while the network
// performance pipeline works at 4G cell granularity (Section 2.4) — both
// are addressable here.
#pragma once

#include <cstdint>
#include <array>
#include <string_view>
#include <vector>

#include "common/geodesy.h"
#include "common/ids.h"
#include "geo/admin.h"

namespace cellscope::radio {

enum class Rat : std::uint8_t { k2G = 0, k3G, k4G };
inline constexpr int kRatCount = 3;

[[nodiscard]] std::string_view rat_name(Rat rat);

struct Cell {
  CellId id;
  SiteId site;
  // Sector index within the site (0..2).
  std::uint8_t sector = 0;
  Rat rat = Rat::k4G;
  // Link capacities of the cell in Mbit/s (shared among its users).
  double dl_capacity_mbps = 75.0;
  double ul_capacity_mbps = 25.0;
};

struct CellSite {
  SiteId id;
  PostcodeDistrictId district;
  CountyId county;
  geo::Region region = geo::Region::kRestOfUk;
  LatLon location;
  std::uint8_t sector_count = 3;
  bool has_2g = false;
  bool has_3g = false;
  bool active = true;
  // Cell ids by [sector][rat]; invalid id when the RAT is absent.
  std::vector<std::array<CellId, kRatCount>> cells_by_sector;
};

}  // namespace cellscope::radio
