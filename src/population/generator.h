// Population synthesis.
//
// Places subscribers on the synthetic UK proportionally to census residents
// (so that Fig 2's inferred-vs-census comparison can recover the configured
// market share), assigns behavioural archetypes from the home district's
// OAC cluster, picks workplaces by a gravity model over district job
// weights, and sprinkles in the M2M SIMs and inbound roamers that the
// analysis layer must filter out.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "geo/uk_model.h"
#include "population/device.h"
#include "population/subscriber.h"

namespace cellscope::population {

struct PopulationConfig {
  // Native human subscribers to synthesize.
  std::uint32_t num_users = 30'000;
  // Extra SIMs, as fractions of num_users.
  double m2m_fraction = 0.08;
  double roamer_fraction = 0.04;
  // Share of eligible households with access to an out-of-town second home.
  double second_home_fraction = 0.04;
  std::uint64_t seed = 2020;
};

class PopulationGenerator {
 public:
  PopulationGenerator(const geo::UkGeography& geography,
                      const DeviceCatalog& catalog);

  [[nodiscard]] Population generate(const PopulationConfig& config) const;

 private:
  const geo::UkGeography& geography_;
  const DeviceCatalog& catalog_;
};

// Archetype mix for a home district's OAC cluster (order = Archetype enum).
// Exposed for tests.
[[nodiscard]] std::array<double, kArchetypeCount> archetype_weights(
    geo::OacCluster cluster);

}  // namespace cellscope::population
