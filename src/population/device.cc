#include "population/device.h"

#include <array>
#include <cmath>

namespace cellscope::population {

namespace {
constexpr std::array<std::string_view, 10> kSmartphoneVendors = {
    "Samsung", "Apple",  "Huawei", "Xiaomi", "OnePlus",
    "Google",  "Sony",   "Nokia",  "Motorola", "Oppo"};
constexpr std::array<std::string_view, 4> kM2mVendors = {
    "Telit", "Quectel", "Sierra Wireless", "u-blox"};
// Zipf exponent for handset model market share (a few models dominate).
constexpr double kModelShareExponent = 1.05;
}  // namespace

DeviceCatalog DeviceCatalog::build(std::uint64_t seed, int smartphone_models) {
  DeviceCatalog catalog;
  Rng rng{seed};
  Rng r = rng.fork("device-catalog");

  // Real TACs start with a reporting-body digit; 35 is common. Keep the
  // numeric shape without colliding with any real allocation scheme.
  catalog.tac_base_ = 35'000'000;

  const int feature_models = smartphone_models / 8;
  const int m2m_models = smartphone_models / 5;

  std::vector<double> handset_weights;
  std::vector<double> m2m_weights;

  auto add_device = [&](DeviceClass cls, int index_in_class) {
    DeviceInfo info;
    info.tac = Tac{catalog.tac_base_ +
                   static_cast<std::uint32_t>(catalog.devices_.size())};
    info.device_class = cls;
    switch (cls) {
      case DeviceClass::kSmartphone: {
        const auto& vendor =
            kSmartphoneVendors[r.uniform_index(kSmartphoneVendors.size())];
        info.vendor = std::string{vendor};
        info.model = std::string{vendor} + " SP-" +
                     std::to_string(index_in_class + 1);
        info.os = vendor == "Apple" ? "iOS" : "Android";
        break;
      }
      case DeviceClass::kFeaturePhone: {
        info.vendor = "Nokia";
        info.model = "Feature F-" + std::to_string(index_in_class + 1);
        info.os = "proprietary";
        info.supports_4g = false;
        break;
      }
      case DeviceClass::kM2m: {
        const auto& vendor = kM2mVendors[r.uniform_index(kM2mVendors.size())];
        info.vendor = std::string{vendor};
        info.model = std::string{vendor} + " M2M-" +
                     std::to_string(index_in_class + 1);
        info.os = "RTOS";
        break;
      }
    }
    catalog.devices_.push_back(std::move(info));
  };

  // Smartphones: Zipf-shaped market share over models.
  for (int i = 0; i < smartphone_models; ++i) {
    add_device(DeviceClass::kSmartphone, i);
    catalog.handset_index_.push_back(catalog.devices_.size() - 1);
    handset_weights.push_back(1.0 /
                              std::pow(double(i + 1), kModelShareExponent));
  }
  // Feature phones: small residual share of the handset market (~3%).
  double smartphone_total = 0.0;
  for (const double w : handset_weights) smartphone_total += w;
  for (int i = 0; i < feature_models; ++i) {
    add_device(DeviceClass::kFeaturePhone, i);
    catalog.handset_index_.push_back(catalog.devices_.size() - 1);
    handset_weights.push_back(0.03 * smartphone_total / feature_models);
  }
  // M2M devices: drawn only for M2M SIMs.
  for (int i = 0; i < m2m_models; ++i) {
    add_device(DeviceClass::kM2m, i);
    catalog.m2m_index_.push_back(catalog.devices_.size() - 1);
    m2m_weights.push_back(1.0 / double(i + 1));
  }

  catalog.handset_sampler_ = DiscreteSampler{handset_weights};
  catalog.m2m_sampler_ = DiscreteSampler{m2m_weights};
  return catalog;
}

std::optional<DeviceInfo> DeviceCatalog::lookup(Tac tac) const {
  if (!tac.valid() || tac.value() < tac_base_) return std::nullopt;
  const auto offset = tac.value() - tac_base_;
  if (offset >= devices_.size()) return std::nullopt;
  return devices_[offset];
}

bool DeviceCatalog::is_smartphone(Tac tac) const {
  const auto info = lookup(tac);
  return info && info->device_class == DeviceClass::kSmartphone;
}

Tac DeviceCatalog::sample_handset(Rng& rng) const {
  return devices_[handset_index_[handset_sampler_.sample(rng)]].tac;
}

Tac DeviceCatalog::sample_m2m(Rng& rng) const {
  return devices_[m2m_index_[m2m_sampler_.sample(rng)]].tac;
}

}  // namespace cellscope::population
