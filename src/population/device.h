// Synthetic GSMA device catalog.
//
// The paper joins signaling events against a commercial GSMA database that
// maps the TAC (first 8 IMEI digits) to device properties, and uses it to
// keep only smartphones — "likely used as primary devices" — while dropping
// M2M devices (Section 2.2/2.3). This module synthesizes an equivalent
// catalog: a fixed population of TACs with vendor/model metadata, a device
// class, and market-share weights to draw devices for subscribers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace cellscope::population {

enum class DeviceClass : std::uint8_t {
  kSmartphone = 0,
  kFeaturePhone,
  kM2m,  // smart meters, trackers, telematics...
};

struct DeviceInfo {
  Tac tac;
  std::string vendor;
  std::string model;
  std::string os;  // "Android", "iOS", "RTOS", "proprietary"
  DeviceClass device_class = DeviceClass::kSmartphone;
  // 2G/3G/4G support flags; all smartphones in the catalog support 4G.
  bool supports_2g = true;
  bool supports_3g = true;
  bool supports_4g = true;
};

class DeviceCatalog {
 public:
  // Builds a catalog with the given number of smartphone TAC entries plus
  // proportional feature-phone and M2M entries. Deterministic in the seed.
  static DeviceCatalog build(std::uint64_t seed, int smartphone_models = 220);

  [[nodiscard]] const std::vector<DeviceInfo>& devices() const {
    return devices_;
  }
  [[nodiscard]] std::optional<DeviceInfo> lookup(Tac tac) const;
  [[nodiscard]] bool is_smartphone(Tac tac) const;

  // Draws the TAC for a new human subscriber (smartphone- and
  // feature-phone-weighted) or for an M2M SIM.
  [[nodiscard]] Tac sample_handset(Rng& rng) const;
  [[nodiscard]] Tac sample_m2m(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return devices_.size(); }

 private:
  std::vector<DeviceInfo> devices_;  // indexed by tac-offset
  DiscreteSampler handset_sampler_;
  std::vector<std::size_t> handset_index_;  // sampler slot -> devices_ index
  DiscreteSampler m2m_sampler_;
  std::vector<std::size_t> m2m_index_;
  std::uint32_t tac_base_ = 0;
};

}  // namespace cellscope::population
