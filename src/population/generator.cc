#include "population/generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace cellscope::population {

namespace {
// Commuting gravity: workplace attraction decays with distance from home.
// Rural residents routinely commute much farther than metro dwellers
// (Section 3.3 / Fig 6a: rural gyration sits above the national average).
constexpr double kMaxCommuteKm = 60.0;
// Job capacity of a district per unit of job_weight (people).
constexpr double kJobsPerWeight = 25'000.0;

double commute_decay_km(geo::UrbanProfile profile) {
  switch (profile) {
    case geo::UrbanProfile::kMetroCore: return 9.0;
    case geo::UrbanProfile::kMetro: return 11.0;
    case geo::UrbanProfile::kTown: return 16.0;
    case geo::UrbanProfile::kRural: return 28.0;
  }
  return 12.0;
}
}  // namespace

std::string_view archetype_name(Archetype archetype) {
  switch (archetype) {
    case Archetype::kOfficeWorker: return "office worker";
    case Archetype::kRemoteWorker: return "remote worker";
    case Archetype::kKeyWorker: return "key worker";
    case Archetype::kStudent: return "student";
    case Archetype::kRetiree: return "retiree";
    case Archetype::kSeasonalResident: return "seasonal resident";
  }
  return "?";
}

std::array<double, kArchetypeCount> archetype_weights(
    geo::OacCluster cluster) {
  const geo::OacTraits& traits = geo::oac_traits(cluster);
  // Student share is the defining feature of Cosmopolitan areas (Table 1);
  // retirees dominate Suburbanites / Rural Residents.
  double students = 0.05;
  double retirees = 0.14;
  switch (cluster) {
    case geo::OacCluster::kCosmopolitans: students = 0.22; retirees = 0.04; break;
    case geo::OacCluster::kEthnicityCentral: students = 0.12; retirees = 0.05; break;
    case geo::OacCluster::kRuralResidents: students = 0.02; retirees = 0.30; break;
    case geo::OacCluster::kSuburbanites: students = 0.04; retirees = 0.28; break;
    case geo::OacCluster::kConstrainedCityDwellers: retirees = 0.20; break;
    case geo::OacCluster::kHardPressedLiving: retirees = 0.18; break;
    default: break;
  }
  const double seasonal = traits.seasonal_fraction;
  const double key_workers = 0.18;
  const double remote = 0.05;
  double office = 1.0 - students - retirees - seasonal - key_workers - remote;
  office = std::max(0.05, office);

  return {office, remote, key_workers, students, retirees, seasonal};
}

PopulationGenerator::PopulationGenerator(const geo::UkGeography& geography,
                                         const DeviceCatalog& catalog)
    : geography_(geography), catalog_(catalog) {}

Population PopulationGenerator::generate(const PopulationConfig& config) const {
  if (config.num_users == 0)
    throw std::invalid_argument("PopulationConfig: num_users must be > 0");

  Population population;
  const auto& districts = geography_.districts();
  Rng root{config.seed};
  Rng rng = root.fork("population");

  // --- Home placement sampler (census-proportional). ---
  const DiscreteSampler home_sampler{geography_.resident_weights()};

  // --- Per-district workplace samplers (gravity model). Two variants:
  // office jobs concentrate in high-job-weight districts (EC towers);
  // essential jobs (hospitals, logistics, retail) are spread across the
  // fabric, so key workers keep commuting to ordinary districts during
  // lockdown rather than into the emptied centres. ---
  std::vector<DiscreteSampler> work_samplers(districts.size());
  std::vector<DiscreteSampler> essential_samplers(districts.size());
  std::vector<std::vector<std::uint32_t>> work_candidates(districts.size());
  for (const auto& home : districts) {
    std::vector<double> weights;
    std::vector<double> essential_weights;
    auto& candidates = work_candidates[home.id.value()];
    const double decay =
        commute_decay_km(geography_.county(home.county).profile);
    for (const auto& work : districts) {
      const double d = distance_km(home.center, work.center);
      if (d > kMaxCommuteKm) continue;
      const double capacity = work.job_weight * kJobsPerWeight;
      if (capacity <= 0.0) continue;
      candidates.push_back(work.id.value());
      weights.push_back(capacity * std::exp(-d / decay));
      essential_weights.push_back(std::min(work.job_weight, 1.2) *
                                  kJobsPerWeight * std::exp(-d / decay));
    }
    if (!candidates.empty()) {
      work_samplers[home.id.value()] = DiscreteSampler{weights};
      essential_samplers[home.id.value()] = DiscreteSampler{essential_weights};
    }
  }

  // --- Getaway-county sampler for second homes. ---
  std::vector<double> getaway_weights;
  std::vector<CountyId> getaway_counties;
  for (const auto& county : geography_.counties()) {
    if (county.getaway_attraction <= 0.0) continue;
    getaway_counties.push_back(county.id);
    getaway_weights.push_back(county.getaway_attraction);
  }
  const DiscreteSampler getaway_sampler{getaway_weights};

  const auto next_id = [&] {
    return UserId{static_cast<std::uint32_t>(population.subscribers.size())};
  };

  const auto place_user = [&](Subscriber& user,
                              PostcodeDistrictId district_id) {
    const auto& district = geography_.district(district_id);
    user.home_district = district_id;
    user.home_county = district.county;
    user.home_region = district.region;
    user.home_cluster = district.cluster;
  };

  // --- Native human subscribers. ---
  for (std::uint32_t i = 0; i < config.num_users; ++i) {
    Subscriber user;
    user.id = next_id();
    user.tac = catalog_.sample_handset(rng);
    user.native = true;
    user.smartphone = catalog_.is_smartphone(user.tac);
    place_user(user, PostcodeDistrictId{static_cast<std::uint32_t>(
                         home_sampler.sample(rng))});

    const auto weights = archetype_weights(user.home_cluster);
    user.archetype = static_cast<Archetype>(
        rng.categorical(std::span<const double>(weights)));

    const bool needs_workplace = user.archetype == Archetype::kOfficeWorker ||
                                 user.archetype == Archetype::kKeyWorker ||
                                 user.archetype == Archetype::kStudent;
    if (needs_workplace) {
      const auto& sampler = user.archetype == Archetype::kKeyWorker
                                ? essential_samplers[user.home_district.value()]
                                : work_samplers[user.home_district.value()];
      if (!sampler.empty()) {
        const auto slot = sampler.sample(rng);
        user.work_district = PostcodeDistrictId{
            work_candidates[user.home_district.value()][slot]};
      }
    }
    if (user.archetype == Archetype::kOfficeWorker) {
      user.wfh_capable =
          rng.chance(geo::oac_traits(user.home_cluster).wfh_capable);
    } else if (user.archetype == Archetype::kRemoteWorker) {
      user.wfh_capable = true;
    }

    // Second homes concentrate among non-student adults; the fraction is
    // doubled in Inner London (the Fig 7 relocation reservoir: affluent
    // residents with country/coastal properties).
    const bool second_home_eligible =
        user.archetype == Archetype::kOfficeWorker ||
        user.archetype == Archetype::kRemoteWorker ||
        user.archetype == Archetype::kRetiree;
    if (second_home_eligible && !getaway_counties.empty()) {
      const double p = config.second_home_fraction *
                       (user.home_region == geo::Region::kInnerLondon ? 2.5
                                                                      : 1.0);
      if (rng.chance(p)) {
        // A "second home" that can host a relocation must be in another
        // county (an intra-county property would not register in Fig 7).
        for (int attempt = 0; attempt < 8; ++attempt) {
          const auto county = getaway_counties[getaway_sampler.sample(rng)];
          if (county == user.home_county) continue;
          user.second_home = true;
          user.second_home_county = county;
          break;
        }
      }
    }
    population.subscribers.push_back(user);
  }

  // --- M2M SIMs (dropped by the mobility filter). ---
  const auto m2m_count = static_cast<std::uint32_t>(
      std::llround(config.m2m_fraction * config.num_users));
  for (std::uint32_t i = 0; i < m2m_count; ++i) {
    Subscriber sim;
    sim.id = next_id();
    sim.tac = catalog_.sample_m2m(rng);
    sim.native = true;
    sim.smartphone = false;
    place_user(sim, PostcodeDistrictId{static_cast<std::uint32_t>(
                        home_sampler.sample(rng))});
    sim.archetype = Archetype::kRetiree;  // static: M2M devices do not move
    population.subscribers.push_back(sim);
  }

  // --- Inbound roamers (dropped by the mobility filter). They cluster in
  // visitor-heavy districts and behave like seasonal residents. ---
  std::vector<double> visitor_weights(districts.size(), 0.0);
  for (const auto& d : districts)
    visitor_weights[d.id.value()] =
        d.visitor_weight * static_cast<double>(std::max<std::int64_t>(
                               d.residents, 10'000));
  const DiscreteSampler visitor_sampler{visitor_weights};
  const auto roamer_count = static_cast<std::uint32_t>(
      std::llround(config.roamer_fraction * config.num_users));
  for (std::uint32_t i = 0; i < roamer_count; ++i) {
    Subscriber roamer;
    roamer.id = next_id();
    roamer.tac = catalog_.sample_handset(rng);
    roamer.native = false;
    roamer.smartphone = catalog_.is_smartphone(roamer.tac);
    place_user(roamer, PostcodeDistrictId{static_cast<std::uint32_t>(
                           visitor_sampler.sample(rng))});
    roamer.archetype = Archetype::kSeasonalResident;
    population.subscribers.push_back(roamer);
  }

  return population;
}

std::size_t Population::eligible_count() const {
  std::size_t count = 0;
  for (const auto& s : subscribers)
    if (s.native && s.smartphone) ++count;
  return count;
}

}  // namespace cellscope::population
