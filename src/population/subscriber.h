// Subscriber records.
//
// A subscriber is one SIM of the MNO. Human subscribers carry a behavioural
// archetype that the mobility model turns into daily routines and that the
// policy timeline modulates during the pandemic (office workers start
// working from home, students leave campuses, seasonal residents leave
// London, ...). M2M SIMs and inbound roamers exist so that the analysis
// layer has something to *filter out*, exactly as Section 2.3 does.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "geo/admin.h"

namespace cellscope::population {

enum class Archetype : std::uint8_t {
  // Commutes to a workplace; may switch to WFH under government advice
  // depending on the job's WFH capability.
  kOfficeWorker = 0,
  // Already worked from home pre-pandemic.
  kRemoteWorker,
  // Healthcare / logistics / retail-essential: keeps commuting in lockdown.
  kKeyWorker,
  // Attends school or university until closures; may leave the city after.
  kStudent,
  // No workplace; local errands and leisure only.
  kRetiree,
  // Long-stay tourist or temporary resident (dense in Cosmopolitan areas);
  // likely to leave the country/city during the lockdown.
  kSeasonalResident,
};
inline constexpr int kArchetypeCount = 6;

[[nodiscard]] std::string_view archetype_name(Archetype archetype);

struct Subscriber {
  UserId id;
  Tac tac;
  // Inbound international roamers are captured by the probes but dropped
  // from the mobility statistics (Section 2.3).
  bool native = true;
  // False for M2M SIMs (also dropped from mobility statistics).
  bool smartphone = true;

  PostcodeDistrictId home_district;
  CountyId home_county;
  geo::Region home_region = geo::Region::kRestOfUk;
  geo::OacCluster home_cluster = geo::OacCluster::kUrbanites;

  Archetype archetype = Archetype::kOfficeWorker;
  // Workplace / campus district; invalid for archetypes without one.
  PostcodeDistrictId work_district = PostcodeDistrictId::invalid();
  // Whether this worker's job can be done from home (drawn against the home
  // cluster's wfh_capable trait at synthesis time).
  bool wfh_capable = false;
  // Owns / has access to an out-of-town second home (relocation candidate).
  bool second_home = false;
  CountyId second_home_county = CountyId::invalid();
};

// The synthesized population plus the index structures the simulator needs.
struct Population {
  std::vector<Subscriber> subscribers;

  // Subscribers that the mobility pipeline keeps: native smartphones.
  [[nodiscard]] std::size_t eligible_count() const;
};

}  // namespace cellscope::population
