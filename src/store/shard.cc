#include "store/shard.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/atomic_file.h"

namespace cellscope::store {

namespace {

// Fixed sizes of the on-disk structures (see docs/STORAGE.md).
constexpr std::size_t kFileHeaderBytes = 8;       // magic + version + pad
constexpr std::size_t kShardHeaderBytes = 32;     // magic,ncols,rows,days
constexpr std::size_t kColumnDirEntryBytes = 16;  // encoding + pad + bytes
constexpr std::size_t kFooterEntryBytes = 48;
constexpr std::size_t kTailBytes = 16;  // body_len u64 + crc u32 + magic u32

}  // namespace

// ---------------------------------------------------------------- writer

FeedFileWriter::FeedFileWriter(const std::string& path,
                               std::vector<Encoding> schema,
                               std::size_t max_rows_per_shard)
    : path_(path), max_rows_per_shard_(max_rows_per_shard) {
  if (schema.empty())
    throw std::runtime_error("store: feed schema needs at least one column");
  if (max_rows_per_shard_ == 0) max_rows_per_shard_ = 1;
  columns_.reserve(schema.size());
  for (const auto encoding : schema) columns_.push_back({encoding, {}, 0});

  // Stream into the scratch name; close() publishes with fsync + rename.
  const std::string tmp = path_ + kTmpSuffix;
  fd_ = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0)
    throw std::runtime_error("store: cannot create " + tmp + ": " +
                             std::strerror(errno));
  std::vector<std::uint8_t> header;
  put_u32(header, kFileMagic);
  header.push_back(static_cast<std::uint8_t>(kFormatVersion & 0xff));
  header.push_back(static_cast<std::uint8_t>(kFormatVersion >> 8));
  header.push_back(0);
  header.push_back(0);
  write_all(header.data(), header.size());
}

FeedFileWriter::~FeedFileWriter() {
  if (!closed_ && fd_ >= 0) {
    // Abandoned writer (unwound without close()): nothing is published.
    // Drop the scratch file; a SIGKILLed process leaves it for the sweep.
    ::close(fd_);
    ::unlink((path_ + kTmpSuffix).c_str());
  }
}

void FeedFileWriter::write_all(const std::uint8_t* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t wrote = ::write(fd_, data + done, n - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("store: write failed for " + path_ + ": " +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(wrote);
  }
  file_offset_ += n;
}

void FeedFileWriter::u64(std::size_t col, std::uint64_t value) {
  Column& c = columns_[col];
  if (c.encoding == Encoding::kRaw64) {
    put_u64(c.payload, value);
  } else {
    put_varint(c.payload, value);
  }
}

void FeedFileWriter::i64(std::size_t col, std::int64_t value) {
  Column& c = columns_[col];
  put_varint(c.payload, zigzag_encode(value - c.prev));
  c.prev = value;
}

void FeedFileWriter::f64(std::size_t col, double value) {
  put_double_bits(columns_[col].payload, value);
}

void FeedFileWriter::bytes(std::size_t col, const void* data, std::size_t n) {
  auto& payload = columns_[col].payload;
  const auto* p = static_cast<const std::uint8_t*>(data);
  payload.insert(payload.end(), p, p + n);
}

void FeedFileWriter::end_row(std::int64_t day) {
  if (rows_in_shard_ == 0) {
    min_day_ = day;
    max_day_ = day;
  } else {
    min_day_ = std::min(min_day_, day);
    max_day_ = std::max(max_day_, day);
  }
  ++rows_in_shard_;
  ++rows_written_;
  if (rows_in_shard_ >= max_rows_per_shard_) flush_shard();
}

void FeedFileWriter::flush_shard() {
  if (rows_in_shard_ == 0) return;

  std::vector<std::uint8_t> shard;
  std::size_t payload_bytes = 0;
  for (const Column& c : columns_) payload_bytes += c.payload.size();
  shard.reserve(kShardHeaderBytes + columns_.size() * kColumnDirEntryBytes +
                payload_bytes);
  put_u32(shard, kShardMagic);
  put_u32(shard, static_cast<std::uint32_t>(columns_.size()));
  put_u64(shard, rows_in_shard_);
  put_u64(shard, static_cast<std::uint64_t>(min_day_));
  put_u64(shard, static_cast<std::uint64_t>(max_day_));
  for (const Column& c : columns_) {
    shard.push_back(static_cast<std::uint8_t>(c.encoding));
    for (int i = 0; i < 7; ++i) shard.push_back(0);
    put_u64(shard, c.payload.size());
  }
  for (Column& c : columns_) {
    shard.insert(shard.end(), c.payload.begin(), c.payload.end());
    c.payload.clear();
    c.prev = 0;  // each shard is self-contained
  }

  ShardIndexEntry entry;
  entry.offset = file_offset_;
  entry.length = shard.size();
  entry.rows = rows_in_shard_;
  entry.min_day = min_day_;
  entry.max_day = max_day_;
  entry.crc = crc32c(shard.data(), shard.size());
  index_.push_back(entry);

  write_all(shard.data(), shard.size());
  rows_in_shard_ = 0;
}

std::uint64_t FeedFileWriter::close() {
  if (closed_) return file_offset_;
  flush_shard();

  std::vector<std::uint8_t> body;
  put_u64(body, index_.size());
  for (const ShardIndexEntry& e : index_) {
    put_u64(body, e.offset);
    put_u64(body, e.length);
    put_u64(body, e.rows);
    put_u64(body, static_cast<std::uint64_t>(e.min_day));
    put_u64(body, static_cast<std::uint64_t>(e.max_day));
    put_u32(body, e.crc);
    put_u32(body, 0);
  }
  std::vector<std::uint8_t> tail;
  put_u64(tail, body.size());
  put_u32(tail, crc32c(body.data(), body.size()));
  put_u32(tail, kTailMagic);

  write_all(body.data(), body.size());
  write_all(tail.data(), tail.size());
  closed_ = true;
  publish_file_atomic(fd_, path_ + kTmpSuffix, path_);
  const int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0)
    throw std::runtime_error("store: close failed for " + path_ + ": " +
                             std::strerror(errno));
  return file_offset_;
}

// ---------------------------------------------------------------- cursor

bool ColumnCursor::next_u64(std::uint64_t& value) {
  if (column_.encoding == Encoding::kRaw64) {
    if (pos_ + 8 > end_) return false;
    value = read_u64(pos_);
    pos_ += 8;
    return true;
  }
  return get_varint(pos_, end_, value);
}

bool ColumnCursor::next_i64(std::int64_t& value) {
  std::uint64_t raw = 0;
  if (!get_varint(pos_, end_, raw)) return false;
  prev_ += zigzag_decode(raw);
  value = prev_;
  return true;
}

bool ColumnCursor::next_bytes(std::size_t n, const std::uint8_t*& out) {
  if (static_cast<std::size_t>(end_ - pos_) < n) return false;
  out = pos_;
  pos_ += n;
  return true;
}

bool ColumnCursor::next_f64(double& value) {
  if (pos_ + 8 > end_) return false;
  value = std::bit_cast<double>(read_u64(pos_));
  pos_ += 8;
  return true;
}

// ---------------------------------------------------------------- reader

FeedFileReader::FeedFileReader(const std::string& path) { validate(path); }

FeedFileReader::~FeedFileReader() {
  if (data_ != nullptr)
    ::munmap(const_cast<std::uint8_t*>(data_), static_cast<std::size_t>(size_));
}

void FeedFileReader::validate(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    status_ = Status::kMissing;
    error_ = "cannot open " + path + ": " + std::strerror(errno);
    return;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    error_ = "cannot stat " + path;
    return;
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
  if (size_ < kFileHeaderBytes + kTailBytes) {
    ::close(fd);
    error_ = path + ": truncated (" + std::to_string(size_) + " bytes)";
    return;
  }
  void* map = ::mmap(nullptr, static_cast<std::size_t>(size_), PROT_READ,
                     MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    error_ = "mmap failed for " + path + ": " + std::strerror(errno);
    return;
  }
  data_ = static_cast<const std::uint8_t*>(map);

  // Header.
  if (read_u32(data_) != kFileMagic) {
    error_ = path + ": bad file magic";
    return;
  }
  const std::uint16_t version =
      static_cast<std::uint16_t>(data_[4] | (data_[5] << 8));
  if (version != kFormatVersion) {
    error_ = path + ": unsupported format version " + std::to_string(version);
    return;
  }

  // Tail: [body_len u64][crc u32][magic u32] at the very end. A truncated
  // file loses the tail magic first, so truncation is detected before any
  // shard byte is trusted.
  const std::uint8_t* tail = data_ + size_ - kTailBytes;
  if (read_u32(tail + 12) != kTailMagic) {
    error_ = path + ": missing tail magic (file truncated?)";
    return;
  }
  const std::uint64_t body_len = read_u64(tail);
  const std::uint32_t body_crc = read_u32(tail + 8);
  if (body_len < 8 ||
      body_len > size_ - kFileHeaderBytes - kTailBytes) {
    error_ = path + ": footer length out of range";
    return;
  }
  const std::uint8_t* body = tail - body_len;
  if (crc32c(body, static_cast<std::size_t>(body_len)) != body_crc) {
    error_ = path + ": footer checksum mismatch";
    return;
  }
  const std::uint64_t shard_count = read_u64(body);
  if (8 + shard_count * kFooterEntryBytes != body_len) {
    error_ = path + ": footer entry count inconsistent";
    return;
  }

  // Footer is sound: the file is structurally readable. Validate each
  // shard independently so one flipped bit costs one shard, not the file.
  status_ = Status::kOk;
  const std::uint64_t data_end = size_ - kTailBytes - body_len;
  for (std::uint64_t s = 0; s < shard_count; ++s) {
    const std::uint8_t* e = body + 8 + s * kFooterEntryBytes;
    ShardIndexEntry entry;
    entry.offset = read_u64(e);
    entry.length = read_u64(e + 8);
    entry.rows = read_u64(e + 16);
    entry.min_day = static_cast<std::int64_t>(read_u64(e + 24));
    entry.max_day = static_cast<std::int64_t>(read_u64(e + 32));
    entry.crc = read_u32(e + 40);

    const auto quarantine = [&](const std::string& why) {
      ++quarantined_;
      quarantine_log_.push_back(path + " shard " + std::to_string(s) + ": " +
                                why);
    };

    if (entry.offset < kFileHeaderBytes || entry.length < kShardHeaderBytes ||
        entry.offset + entry.length > data_end) {
      quarantine("offset/length outside file data region");
      continue;
    }
    const std::uint8_t* shard = data_ + entry.offset;
    if (crc32c(shard, static_cast<std::size_t>(entry.length)) != entry.crc) {
      quarantine("CRC32C mismatch");
      continue;
    }
    // CRC passed: structural fields should agree with the footer; treat
    // any disagreement as corruption anyway (defense in depth).
    if (read_u32(shard) != kShardMagic) {
      quarantine("bad shard magic");
      continue;
    }
    const std::uint32_t ncols = read_u32(shard + 4);
    const std::uint64_t rows = read_u64(shard + 8);
    if (rows != entry.rows) {
      quarantine("row count disagrees with footer");
      continue;
    }
    const std::size_t dir_end =
        kShardHeaderBytes + ncols * kColumnDirEntryBytes;
    if (ncols == 0 || dir_end > entry.length) {
      quarantine("column directory exceeds shard");
      continue;
    }
    ShardView view;
    view.rows = rows;
    view.min_day = static_cast<std::int64_t>(read_u64(shard + 16));
    view.max_day = static_cast<std::int64_t>(read_u64(shard + 24));
    std::uint64_t payload_offset = dir_end;
    bool ok = true;
    for (std::uint32_t c = 0; c < ncols; ++c) {
      const std::uint8_t* d = shard + kShardHeaderBytes +
                              c * kColumnDirEntryBytes;
      ColumnView column;
      const std::uint8_t encoding = d[0];
      if (encoding > static_cast<std::uint8_t>(Encoding::kBytes)) {
        ok = false;
        break;
      }
      column.encoding = static_cast<Encoding>(encoding);
      column.bytes = read_u64(d + 8);
      if (payload_offset + column.bytes > entry.length) {
        ok = false;
        break;
      }
      column.data = shard + payload_offset;
      payload_offset += column.bytes;
      view.columns.push_back(column);
    }
    if (!ok || payload_offset != entry.length) {
      quarantine("column payload layout inconsistent");
      continue;
    }
    total_rows_ += rows;
    shards_.push_back(std::move(view));
  }
}

}  // namespace cellscope::store
