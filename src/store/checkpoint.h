// Durable, digest-keyed checkpoint records: the store side of
// checkpoint/resume (sim/checkpoint.h has the simulator side and the
// bitwise resume contract; docs/RECOVERY.md has the operator story).
//
// One file, `checkpoint.ckpt`, in the store directory, rewritten whole
// after every completed day through the same tmp + fsync + rename
// discipline as the feed shards (common/atomic_file.h) — a crash at any
// instant leaves either the previous day's record or the new one, never a
// torn mix. On-disk layout (integers little-endian):
//
//   u32  magic "CKPT"
//   u32  version
//   u32  digest length, then the scenario config digest bytes
//   i64  high-water mark (last fully completed day)
//   u64  payload length, then the opaque simulator blob
//   u32  CRC32C over everything above
//
// The digest keys the record to the scenario: a checkpoint written under a
// different config (or a corrupt/truncated file) is ignored and the run
// starts fresh — resuming someone else's state would be worse than
// restarting. clear() removes the file once the run publishes its final
// manifest, so a completed store carries no checkpoint.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/checkpoint.h"

namespace cellscope::store {

class CheckpointManager final : public sim::CheckpointSink {
 public:
  // Loads any resumable state from `dir`/checkpoint.ckpt whose digest
  // matches `config_digest`. Mismatched, corrupt, or absent records leave
  // the manager empty (fresh run); they are never an error.
  CheckpointManager(std::string dir, std::string config_digest);

  [[nodiscard]] std::span<const std::uint8_t> resume_payload() const override;
  [[nodiscard]] SimDay resume_day() const override;
  void on_day_complete(SimDay day,
                      const std::vector<std::uint8_t>& state) override;

  // Removes the checkpoint file; call after the final manifest publishes.
  void clear();

  // Crash-injection hook (CELLSCOPE_CRASH_AT_DAY, threaded through
  // StoreRunOptions): after the n-th successful on_day_complete() save the
  // process SIGKILLs itself — no destructors, no atexit, exactly the crash
  // the resume contract is tested against. 0 disables.
  void set_kill_after_days(int n) { kill_after_days_ = n; }

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string digest_;
  SimDay resume_day_ = -1;
  std::vector<std::uint8_t> payload_;
  int kill_after_days_ = 0;
  int days_saved_ = 0;
};

}  // namespace cellscope::store
