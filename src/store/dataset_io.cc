#include "store/dataset_io.h"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string_view>
#include <map>
#include <memory>
#include <utility>

#include "common/atomic_file.h"
#include "geo/admin.h"
#include "geo/oac.h"
#include "obs/runtime.h"
#include "store/checkpoint.h"
#include "store/shard.h"

namespace cellscope::store {

namespace {

// ------------------------------------------------------------ feed schemas

// Series ids of the `series` feed: every DailySeries-shaped field of the
// Dataset, grouped ones first. The on-disk id is part of the format.
enum SeriesId : std::uint64_t {
  kEntropyNational = 0,
  kGyrationNational,
  kEntropyByRegion,
  kGyrationByRegion,
  kEntropyByCluster,
  kGyrationByCluster,
  kEntropyByBin,
  kGyrationByBin,
  kOffnetBusyHour,
  kInterconnectLoss,
  kRoamersActive,
};

enum DistId : std::uint64_t { kGyrationDist = 0, kEntropyDist = 1 };

enum MatrixRowKind : std::uint64_t { kPresenceRow = 0, kObservationsRow = 1 };

enum QualityRowKind : std::uint64_t { kFeedTotalsRow = 0, kFeedDayRow = 1 };

// Scalar ids of the `scalars` feed; each row is (id, double bits, u64).
enum ScalarId : std::uint64_t {
  kLteTimeShare = 0,
  kEligibleUsers,
  kLondonResidents,
  kLondonPresent,
  kLondonHomeCounty,
  kMatrixFirstDay,
  kMatrixLastDay,
  kFitSlope,
  kFitIntercept,
  kFitRSquared,
  kFitN,
  kExpectedMarketShare,
  kKpiRowCount,
  kHomeRowCount,
  kSignalingDayCount,
  kVoiceDayCount,
};

using E = Encoding;

std::vector<E> kpi_schema() {
  // day, cell, then the 11 KPI metrics as raw IEEE 754 bits.
  std::vector<E> schema{E::kDeltaZigzagVarint, E::kDeltaZigzagVarint};
  for (int m = 0; m < telemetry::kKpiMetricCount; ++m)
    schema.push_back(E::kRaw64);
  return schema;
}

std::vector<E> signaling_schema() {
  // day, then per event type: total, failures.
  std::vector<E> schema{E::kDeltaZigzagVarint};
  for (int t = 0; t < traffic::kSignalingEventTypeCount; ++t) {
    schema.push_back(E::kVarint);
    schema.push_back(E::kVarint);
  }
  return schema;
}

const std::vector<E> kHomesSchema{E::kDeltaZigzagVarint, E::kVarint,
                                  E::kVarint, E::kVarint, E::kRaw64,
                                  E::kVarint};
const std::vector<E> kValidationSchema{
    E::kDeltaZigzagVarint, E::kDeltaZigzagVarint, E::kDeltaZigzagVarint};
// series_id, group, day, raw sum, count.
const std::vector<E> kSeriesSchema{E::kVarint, E::kVarint,
                                   E::kDeltaZigzagVarint, E::kRaw64,
                                   E::kVarint};
// dist_id, day, n, mean, p10, p25, median, p75, p90.
const std::vector<E> kDistributionSchema{
    E::kVarint, E::kDeltaZigzagVarint, E::kVarint, E::kRaw64, E::kRaw64,
    E::kRaw64,  E::kRaw64,             E::kRaw64,  E::kRaw64};
// kind, county, day, presence, observations.
const std::vector<E> kMatrixSchema{E::kVarint, E::kVarint,
                                   E::kDeltaZigzagVarint, E::kRaw64,
                                   E::kVarint};
// kind, feed name (length-framed blob), day, a, b, c, d.
const std::vector<E> kQualitySchema{E::kVarint,  E::kBytes, E::kDeltaZigzagVarint,
                                    E::kVarint,  E::kVarint, E::kVarint,
                                    E::kVarint};
// day, attempts, completed, blocked, dropped.
const std::vector<E> kVoiceSchema{E::kDeltaZigzagVarint, E::kVarint,
                                  E::kVarint, E::kVarint, E::kVarint};
// id, double bits, u64 value.
const std::vector<E> kScalarSchema{E::kVarint, E::kRaw64, E::kVarint};

std::string feed_path(const std::string& dir, const std::string& feed) {
  return dir + "/" + feed_file_name(feed);
}

void write_kpi_row(FeedFileWriter& w, const telemetry::CellDayRecord& r) {
  w.i64(0, r.day);
  w.i64(1, r.cell.value());
  for (int m = 0; m < telemetry::kKpiMetricCount; ++m)
    w.f64(static_cast<std::size_t>(2 + m),
          telemetry::kpi_value(r, static_cast<telemetry::KpiMetric>(m)));
  w.end_row(r.day);
}

}  // namespace

const std::vector<std::string>& dataset_feeds() {
  static const std::vector<std::string> kFeeds = {
      "kpis",   "signaling",     "homes",  "validation", "series",
      "distributions", "matrix", "quality", "voice", "scalars"};
  return kFeeds;
}

// ----------------------------------------------------------------- writer

struct DatasetWriter::Impl {
  std::string dir;
  std::unique_ptr<FeedFileWriter> kpis;
  std::uint64_t streamed_rows = 0;
  bool finished = false;
};

DatasetWriter::DatasetWriter(std::string dir) : impl_(new Impl) {
  impl_->dir = obs::ensure_obs_dir(dir);
  // A crashed writer leaves only *.tmp files behind (feed files publish
  // exclusively via close()'s rename); sweep the orphans before opening
  // fresh ones so a resumed run starts from a clean directory.
  remove_stale_tmp_files(impl_->dir);
  impl_->kpis = std::make_unique<FeedFileWriter>(feed_path(impl_->dir, "kpis"),
                                                 kpi_schema());
}

DatasetWriter::~DatasetWriter() = default;

void DatasetWriter::on_kpi_day(SimDay day,
                               std::span<const telemetry::CellDayRecord> rows) {
  const auto span = obs::tracer().span("store.flush", "store", day);
  const bool obs_on = obs::enabled();
  const auto flush_start = std::chrono::steady_clock::now();
  for (const auto& r : rows) write_kpi_row(*impl_->kpis, r);
  impl_->streamed_rows += rows.size();
  if (obs_on) {
    const double flush_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - flush_start)
                                .count();
    obs::metrics().histogram("store.flush_ms").record(flush_ms);
    obs::timeline().record_flush_ms(flush_ms);
    obs::track_bytes(obs::Subsystem::kStore,
                     rows.size() * sizeof(telemetry::CellDayRecord));
  }
}

WriteStats DatasetWriter::finish(const sim::Dataset& ds) {
  if (impl_->finished)
    throw std::logic_error("DatasetWriter: finish() called twice");
  impl_->finished = true;

  const auto span = obs::tracer().span("store.flush", "store");
  WriteStats stats;
  const auto close_feed = [&](FeedFileWriter& w) {
    stats.rows_written += w.rows_written();
    stats.shards_written += w.shards_written();
    stats.bytes_written += w.close();
  };

  // KPI feed: already streamed day-by-day when this writer rode along as
  // the simulation's sink; written from the materialized store otherwise.
  if (impl_->streamed_rows == 0) {
    for (const auto& r : ds.kpis.records()) write_kpi_row(*impl_->kpis, r);
  }
  close_feed(*impl_->kpis);
  impl_->kpis.reset();

  const auto open = [&](const std::string& feed, std::vector<E> schema) {
    return FeedFileWriter{feed_path(impl_->dir, feed), std::move(schema)};
  };

  {
    auto w = open("signaling", signaling_schema());
    for (const auto& d : ds.signaling.days()) {
      w.i64(0, d.day);
      for (int t = 0; t < traffic::kSignalingEventTypeCount; ++t) {
        w.u64(static_cast<std::size_t>(1 + 2 * t), d.total[t]);
        w.u64(static_cast<std::size_t>(2 + 2 * t), d.failures[t]);
      }
      w.end_row(d.day);
    }
    close_feed(w);
  }

  {
    auto w = open("homes", kHomesSchema);
    for (const auto& h : ds.homes) {
      w.i64(0, h.user.value());
      w.u64(1, h.home_site.value());
      w.u64(2, h.home_district.value());
      w.u64(3, h.home_county.value());
      w.f64(4, h.night_hours);
      w.u64(5, static_cast<std::uint64_t>(h.nights_observed));
      w.end_row(0);
    }
    close_feed(w);
  }

  {
    auto w = open("validation", kValidationSchema);
    for (const auto& p : ds.home_validation.points) {
      w.i64(0, p.lad.value());
      w.i64(1, p.census_population);
      w.i64(2, p.inferred_residents);
      w.end_row(0);
    }
    close_feed(w);
  }

  {
    auto w = open("series", kSeriesSchema);
    const auto put_daily = [&](SeriesId id, std::uint64_t group,
                               const DailySeries& s) {
      if (s.empty()) return;
      for (SimDay day = s.first_day(); day <= s.last_day(); ++day) {
        const std::size_t count = s.count(day);
        if (count == 0) continue;  // untouched day: default state, not data
        w.u64(0, id);
        w.u64(1, group);
        w.i64(2, day);
        w.f64(3, s.day_sum(day));
        w.u64(4, count);
        w.end_row(day);
      }
    };
    const auto put_grouped = [&](SeriesId id,
                                 const analysis::GroupedDailySeries& g) {
      for (std::size_t group = 0; group < g.group_count(); ++group)
        put_daily(id, group, g.group(group));
    };
    put_grouped(kEntropyNational, ds.entropy_national);
    put_grouped(kGyrationNational, ds.gyration_national);
    put_grouped(kEntropyByRegion, ds.entropy_by_region);
    put_grouped(kGyrationByRegion, ds.gyration_by_region);
    put_grouped(kEntropyByCluster, ds.entropy_by_cluster);
    put_grouped(kGyrationByCluster, ds.gyration_by_cluster);
    put_grouped(kEntropyByBin, ds.entropy_by_bin);
    put_grouped(kGyrationByBin, ds.gyration_by_bin);
    put_daily(kOffnetBusyHour, 0, ds.offnet_busy_hour_minutes);
    put_daily(kInterconnectLoss, 0, ds.interconnect_busy_hour_loss_pct);
    put_daily(kRoamersActive, 0, ds.roamers_active);
    close_feed(w);
  }

  {
    auto w = open("distributions", kDistributionSchema);
    const auto put = [&](DistId id, const analysis::DistributionSeries& d) {
      if (d.last_day() < d.first_day()) return;  // default-constructed
      for (SimDay day = d.first_day(); day <= d.last_day(); ++day) {
        // Sealed days are state even at n == 0 (the sealed flag itself must
        // round-trip); unsealed days are default state and are skipped.
        if (!d.sealed_day(day)) continue;
        const stats::Summary& s = d.day_summary(day);
        w.u64(0, id);
        w.i64(1, day);
        w.u64(2, s.n);
        w.f64(3, s.mean);
        w.f64(4, s.p10);
        w.f64(5, s.p25);
        w.f64(6, s.median);
        w.f64(7, s.p75);
        w.f64(8, s.p90);
        w.end_row(day);
      }
    };
    put(kGyrationDist, ds.gyration_distribution);
    put(kEntropyDist, ds.entropy_distribution);
    close_feed(w);
  }

  {
    auto w = open("matrix", kMatrixSchema);
    if (ds.london_matrix != nullptr) {
      const auto& m = *ds.london_matrix;
      const auto counties = ds.geography->counties().size();
      for (std::uint32_t c = 0; c < counties; ++c) {
        for (SimDay day = m.first_day(); day <= m.last_day(); ++day) {
          const double presence = m.presence(CountyId{c}, day);
          if (presence == 0.0) continue;
          w.u64(0, kPresenceRow);
          w.u64(1, c);
          w.i64(2, day);
          w.f64(3, presence);
          w.u64(4, 0);
          w.end_row(day);
        }
      }
      for (SimDay day = m.first_day(); day <= m.last_day(); ++day) {
        const std::size_t observations = m.day_observations(day);
        if (observations == 0) continue;
        w.u64(0, kObservationsRow);
        w.u64(1, 0);
        w.i64(2, day);
        w.f64(3, 0.0);
        w.u64(4, observations);
        w.end_row(day);
      }
    }
    close_feed(w);
  }

  {
    auto w = open("quality", kQualitySchema);
    for (std::size_t i = 0; i < ds.quality.feeds().size(); ++i) {
      const telemetry::FeedQuality& f = ds.quality.feeds()[i];
      w.u64(0, kFeedTotalsRow);
      w.u64(1, f.name.size());
      w.bytes(1, f.name.data(), f.name.size());
      w.i64(2, 0);
      w.u64(3, f.expected_records);
      w.u64(4, f.observed_records);
      w.u64(5, f.quarantined_records);
      w.u64(6, f.duplicate_records);
      w.end_row(0);
      for (const auto& [day, counts] : f.days) {
        w.u64(0, kFeedDayRow);
        w.u64(1, 0);  // no name payload
        w.i64(2, day);
        w.u64(3, i);
        w.u64(4, counts.expected);
        w.u64(5, counts.observed);
        w.u64(6, 0);
        w.end_row(day);
      }
    }
    close_feed(w);
  }

  {
    auto w = open("voice", kVoiceSchema);
    for (const auto& d : ds.voice_calls.days()) {
      w.i64(0, d.day);
      w.u64(1, d.attempts);
      w.u64(2, d.completed);
      w.u64(3, d.blocked);
      w.u64(4, d.dropped);
      w.end_row(d.day);
    }
    close_feed(w);
  }

  {
    auto w = open("scalars", kScalarSchema);
    const auto put = [&](ScalarId id, double fvalue, std::uint64_t uvalue) {
      w.u64(0, id);
      w.f64(1, fvalue);
      w.u64(2, uvalue);
      w.end_row(0);
    };
    put(kLteTimeShare, ds.measured_lte_time_share, 0);
    put(kEligibleUsers, 0.0, ds.eligible_users);
    put(kLondonResidents, 0.0, ds.london_residents_tracked);
    put(kLondonPresent, 0.0, ds.london_matrix != nullptr ? 1 : 0);
    if (ds.london_matrix != nullptr) {
      put(kLondonHomeCounty, 0.0, ds.london_matrix->home_county().value());
      put(kMatrixFirstDay, 0.0,
          static_cast<std::uint64_t>(ds.london_matrix->first_day()));
      put(kMatrixLastDay, 0.0,
          static_cast<std::uint64_t>(ds.london_matrix->last_day()));
    }
    put(kFitSlope, ds.home_validation.fit.slope, 0);
    put(kFitIntercept, ds.home_validation.fit.intercept, 0);
    put(kFitRSquared, ds.home_validation.fit.r_squared, 0);
    put(kFitN, 0.0, ds.home_validation.fit.n);
    put(kExpectedMarketShare, ds.home_validation.expected_market_share, 0);
    put(kKpiRowCount, 0.0, ds.kpis.records().size());
    put(kHomeRowCount, 0.0, ds.homes.size());
    put(kSignalingDayCount, 0.0, ds.signaling.days().size());
    put(kVoiceDayCount, 0.0, ds.voice_calls.days().size());
    close_feed(w);
  }

  // Manifest last, and atomically: its presence marks a completely written
  // store, so it must never be observable half-written — a crash during
  // publish leaves either no manifest (store incomplete, re-simulated) or
  // the previous complete one.
  {
    std::string manifest;
    manifest += "cellstore-v1\n";
    manifest += "digest=" + sim::config_digest(ds.config) + "\n";
    manifest += "feeds=";
    for (std::size_t i = 0; i < dataset_feeds().size(); ++i) {
      if (i) manifest += ",";
      manifest += dataset_feeds()[i];
    }
    manifest += "\n";
    // Physical accounting for the store-reconcile audit law: what was
    // written must be what reads back. Readers that predate these lines
    // skip unknown manifest rows, so the format stays backward-compatible.
    manifest += "rows=" + std::to_string(stats.rows_written) + "\n";
    manifest += "bytes=" + std::to_string(stats.bytes_written) + "\n";
    write_file_atomic(impl_->dir + "/" + kManifestFile, manifest);
  }

  if (obs::enabled()) {
    auto& registry = obs::metrics();
    registry.add("store.bytes_written", stats.bytes_written);
    registry.add("store.rows_written", stats.rows_written);
    registry.add("store.shards_written", stats.shards_written);
    obs::track_bytes(obs::Subsystem::kStore, stats.bytes_written);
  }
  return stats;
}

WriteStats write_dataset(const sim::Dataset& ds, const std::string& dir) {
  DatasetWriter writer{dir};
  return writer.finish(ds);
}

sim::Dataset simulate_to_store(const sim::ScenarioConfig& config,
                               const std::string& dir) {
  return simulate_to_store(config, dir, StoreRunOptions{});
}

sim::Dataset simulate_to_store(const sim::ScenarioConfig& config,
                               const std::string& dir,
                               const StoreRunOptions& options) {
  // The writer first (its ctor sweeps stale *.tmp orphans), then the
  // checkpoint record, which lives in the same directory keyed by the
  // scenario digest: a record from a crashed run of the SAME scenario
  // fast-forwards the simulator; anything else starts fresh.
  DatasetWriter writer{dir};
  CheckpointManager checkpoint{obs::ensure_obs_dir(dir),
                               sim::config_digest(config)};
  checkpoint.set_kill_after_days(options.kill_after_days);
  sim::Simulator simulator{config};
  sim::Dataset ds = simulator.run(&writer, &checkpoint);
  writer.finish(ds);
  // Manifest published: the run is complete and no longer resumable state.
  checkpoint.clear();
  return ds;
}

// ----------------------------------------------------------------- reader

std::string stored_digest(const std::string& dir) {
  std::ifstream manifest(dir + "/" + kManifestFile, std::ios::binary);
  if (!manifest) return "";
  std::string line;
  if (!std::getline(manifest, line) || line != "cellstore-v1") return "";
  while (std::getline(manifest, line)) {
    if (line.rfind("digest=", 0) == 0) return line.substr(7);
  }
  return "";
}

namespace {

// Cursors over one shard, one per column.
struct ShardCursors {
  explicit ShardCursors(const ShardView& shard) {
    cursors.reserve(shard.columns.size());
    for (const auto& column : shard.columns) cursors.emplace_back(column);
  }
  std::vector<ColumnCursor> cursors;
  ColumnCursor& operator[](std::size_t i) { return cursors[i]; }
};

// Per-feed load driver: opens the feed, accounts bytes/quarantines into the
// outcome, and hands each valid shard to `decode`, which must return false
// (without side effects on the dataset) when a row fails to decode — the
// shard is then quarantined rather than half-applied.
class FeedLoader {
 public:
  FeedLoader(const std::string& dir, ReadOutcome& out) : dir_(dir), out_(out) {}

  template <typename DecodeShard>
  void load(const std::string& feed, std::size_t expected_columns,
            DecodeShard&& decode) {
    FeedFileReader reader{feed_path(dir_, feed)};
    for (const auto& entry : reader.quarantine_log())
      out_.quarantine_log.push_back(entry);
    if (reader.status() != FeedFileReader::Status::kOk) {
      // The whole feed is unreadable: one quarantine unit, zero rows.
      ++out_.shards_quarantined;
      out_.quarantine_log.push_back(feed + ": " + reader.error());
      return;
    }
    out_.bytes_read += reader.file_bytes();
    out_.shards_quarantined += reader.quarantined_shards();
    for (const auto& shard : reader.shards()) {
      if (shard.columns.size() != expected_columns || !decode(shard)) {
        ++out_.shards_quarantined;
        out_.quarantine_log.push_back(feed + ": shard failed row decode");
        continue;
      }
      out_.rows_read += shard.rows;
    }
  }

 private:
  const std::string& dir_;
  ReadOutcome& out_;
};

// Decodes one KPI shard into `rows` (cleared first). Returns false — with
// no partial output consumed — on any row that fails to decode, so callers
// quarantine the shard instead of applying half of it.
bool decode_kpi_shard(const ShardView& shard,
                      std::vector<telemetry::CellDayRecord>& rows) {
  ShardCursors c{shard};
  rows.clear();
  rows.reserve(shard.rows);
  for (std::uint64_t i = 0; i < shard.rows; ++i) {
    std::int64_t day = 0, cell = 0;
    if (!c[0].next_i64(day) || !c[1].next_i64(cell)) return false;
    if (cell < 0 || day < std::numeric_limits<SimDay>::min() ||
        day > std::numeric_limits<SimDay>::max())
      return false;
    telemetry::CellDayRecord r;
    r.day = static_cast<SimDay>(day);
    r.cell = CellId{static_cast<std::uint32_t>(cell)};
    std::array<double, telemetry::kKpiMetricCount> values{};
    for (int m = 0; m < telemetry::kKpiMetricCount; ++m)
      if (!c[static_cast<std::size_t>(2 + m)].next_f64(
              values[static_cast<std::size_t>(m)]))
        return false;
    r.dl_volume_mb = values[0];
    r.ul_volume_mb = values[1];
    r.active_dl_users = values[2];
    r.tti_utilization = values[3];
    r.user_dl_throughput_mbps = values[4];
    r.active_data_seconds = values[5];
    r.connected_users = values[6];
    r.voice_volume_mb = values[7];
    r.simultaneous_voice_users = values[8];
    r.voice_dl_loss_pct = values[9];
    r.voice_ul_loss_pct = values[10];
    rows.push_back(r);
  }
  return true;
}

}  // namespace

ScanStats scan_kpis(
    const std::string& dir,
    const std::function<void(const telemetry::CellDayRecord&)>& row) {
  ScanStats stats;
  FeedFileReader reader{feed_path(dir, "kpis")};
  if (reader.status() != FeedFileReader::Status::kOk) {
    ++stats.shards_quarantined;
    return stats;
  }
  stats.bytes = reader.file_bytes();
  stats.shards_quarantined = reader.quarantined_shards();
  std::vector<telemetry::CellDayRecord> rows;
  for (const auto& shard : reader.shards()) {
    if (shard.columns.size() != kpi_schema().size() ||
        !decode_kpi_shard(shard, rows)) {
      ++stats.shards_quarantined;
      continue;
    }
    for (const auto& r : rows) row(r);
    stats.rows += rows.size();
    // Out-of-core scans cross no day boundary for hours on a big store:
    // the low-rate wall-clock fallback keeps the health timeline alive.
    obs::timeline().maybe_sample();
  }
  return stats;
}

ReadOutcome read_dataset(const std::string& dir,
                         const sim::ScenarioConfig& config) {
  ReadOutcome out;
  const std::string digest = stored_digest(dir);
  if (digest.empty()) {
    out.status = ReadOutcome::Status::kMissing;
    out.error = "no readable manifest in " + dir;
    return out;
  }
  const std::string want = sim::config_digest(config);
  if (digest != want) {
    out.status = ReadOutcome::Status::kDigestMismatch;
    out.error = "stored digest " + digest + " != scenario digest " + want;
    return out;
  }

  const auto span = obs::tracer().span("store.load", "store");

  // The substrate derives from the config alone; only measured state is
  // read back from disk.
  sim::Dataset ds;
  ds.config = config;
  sim::build_substrate(config, ds);

  const SimDay first_day = config.first_day();
  const SimDay last_day = config.last_day();
  ds.entropy_national = analysis::GroupedDailySeries{1, first_day, last_day};
  ds.gyration_national = analysis::GroupedDailySeries{1, first_day, last_day};
  ds.entropy_by_region = analysis::GroupedDailySeries{
      static_cast<std::size_t>(geo::kRegionCount), first_day, last_day};
  ds.gyration_by_region = analysis::GroupedDailySeries{
      static_cast<std::size_t>(geo::kRegionCount), first_day, last_day};
  ds.entropy_by_cluster = analysis::GroupedDailySeries{
      static_cast<std::size_t>(geo::kOacClusterCount), first_day, last_day};
  ds.gyration_by_cluster = analysis::GroupedDailySeries{
      static_cast<std::size_t>(geo::kOacClusterCount), first_day, last_day};
  if (config.collect_binned_mobility) {
    ds.entropy_by_bin = analysis::GroupedDailySeries{
        static_cast<std::size_t>(kFourHourBinsPerDay), first_day, last_day};
    ds.gyration_by_bin = analysis::GroupedDailySeries{
        static_cast<std::size_t>(kFourHourBinsPerDay), first_day, last_day};
  }
  ds.offnet_busy_hour_minutes = DailySeries{first_day, last_day};
  ds.interconnect_busy_hour_loss_pct = DailySeries{first_day, last_day};
  ds.roamers_active = DailySeries{first_day, last_day};
  ds.gyration_distribution =
      analysis::DistributionSeries{first_day, last_day};
  ds.entropy_distribution = analysis::DistributionSeries{first_day, last_day};

  FeedLoader loader{dir, out};

  // Scalars first: they carry the matrix shape and the expected row counts
  // that make silent truncation detectable.
  std::map<std::uint64_t, std::pair<double, std::uint64_t>> scalars;
  loader.load("scalars", kScalarSchema.size(), [&](const ShardView& shard) {
    ShardCursors c{shard};
    std::map<std::uint64_t, std::pair<double, std::uint64_t>> rows;
    for (std::uint64_t i = 0; i < shard.rows; ++i) {
      std::uint64_t id = 0, uvalue = 0;
      double fvalue = 0.0;
      if (!c[0].next_u64(id) || !c[1].next_f64(fvalue) ||
          !c[2].next_u64(uvalue))
        return false;
      rows[id] = {fvalue, uvalue};
    }
    for (const auto& [id, value] : rows) scalars[id] = value;
    return true;
  });
  const auto scalar_f = [&](ScalarId id) {
    const auto it = scalars.find(id);
    return it == scalars.end() ? 0.0 : it->second.first;
  };
  const auto scalar_u = [&](ScalarId id) -> std::uint64_t {
    const auto it = scalars.find(id);
    return it == scalars.end() ? 0 : it->second.second;
  };

  ds.measured_lte_time_share = scalar_f(kLteTimeShare);
  ds.eligible_users = scalar_u(kEligibleUsers);
  ds.london_residents_tracked = scalar_u(kLondonResidents);
  ds.home_validation.fit.slope = scalar_f(kFitSlope);
  ds.home_validation.fit.intercept = scalar_f(kFitIntercept);
  ds.home_validation.fit.r_squared = scalar_f(kFitRSquared);
  ds.home_validation.fit.n = scalar_u(kFitN);
  ds.home_validation.expected_market_share = scalar_f(kExpectedMarketShare);
  const std::size_t county_count = ds.geography->counties().size();
  if (scalar_u(kLondonPresent) != 0 &&
      scalar_u(kLondonHomeCounty) < county_count) {
    ds.london_matrix = std::make_unique<analysis::MobilityMatrix>(
        *ds.geography,
        CountyId{static_cast<std::uint32_t>(scalar_u(kLondonHomeCounty))},
        static_cast<SimDay>(scalar_u(kMatrixFirstDay)),
        static_cast<SimDay>(scalar_u(kMatrixLastDay)));
  }

  // KPI rows, re-grouped into per-day add_day() batches. A quarantined
  // shard can leave the surviving stream with out-of-order remnants of a
  // split day; those rows are dropped (and counted) instead of throwing —
  // the outcome is already degraded at that point.
  std::uint64_t kpi_rows_applied = 0;
  std::uint64_t kpi_rows_dropped = 0;
  {
    std::vector<telemetry::CellDayRecord> day_batch;
    SimDay last_flushed = std::numeric_limits<SimDay>::min();
    const auto flush = [&] {
      if (day_batch.empty()) return;
      last_flushed = day_batch.front().day;
      kpi_rows_applied += day_batch.size();
      ds.kpis.add_day(std::move(day_batch));
      day_batch = {};
    };
    loader.load("kpis", kpi_schema().size(), [&](const ShardView& shard) {
      std::vector<telemetry::CellDayRecord> rows;
      if (!decode_kpi_shard(shard, rows)) return false;
      for (const auto& r : rows) {
        if (!day_batch.empty() && r.day != day_batch.front().day) flush();
        if (day_batch.empty() && r.day <= last_flushed) {
          ++kpi_rows_dropped;  // out-of-order remnant of a quarantined gap
          continue;
        }
        day_batch.push_back(r);
      }
      return true;
    });
    flush();
  }

  {
    SimDay last_signaling_day = std::numeric_limits<SimDay>::min();
    bool any_signaling = false;
    loader.load("signaling", signaling_schema().size(),
                [&](const ShardView& shard) {
      ShardCursors c{shard};
      std::vector<telemetry::DailySignalingCounts> rows;
      rows.reserve(shard.rows);
      for (std::uint64_t i = 0; i < shard.rows; ++i) {
        std::int64_t day = 0;
        if (!c[0].next_i64(day)) return false;
        telemetry::DailySignalingCounts counts;
        counts.day = static_cast<SimDay>(day);
        for (int t = 0; t < traffic::kSignalingEventTypeCount; ++t) {
          if (!c[static_cast<std::size_t>(1 + 2 * t)].next_u64(
                  counts.total[t]) ||
              !c[static_cast<std::size_t>(2 + 2 * t)].next_u64(
                  counts.failures[t]))
            return false;
        }
        rows.push_back(counts);
      }
      for (const auto& counts : rows) {
        // The probe's day list is chronological by construction; skip any
        // out-of-order remnant a quarantined shard left behind.
        if (any_signaling && counts.day <= last_signaling_day) continue;
        ds.signaling.restore_day(counts);
        last_signaling_day = counts.day;
        any_signaling = true;
      }
      return true;
    });
  }

  {
    SimDay last_voice_day = std::numeric_limits<SimDay>::min();
    bool any_voice = false;
    loader.load("voice", kVoiceSchema.size(), [&](const ShardView& shard) {
      ShardCursors c{shard};
      std::vector<traffic::VoiceDayCalls> rows;
      rows.reserve(shard.rows);
      for (std::uint64_t i = 0; i < shard.rows; ++i) {
        std::int64_t day = 0;
        traffic::VoiceDayCalls d;
        if (!c[0].next_i64(day) || !c[1].next_u64(d.attempts) ||
            !c[2].next_u64(d.completed) || !c[3].next_u64(d.blocked) ||
            !c[4].next_u64(d.dropped))
          return false;
        d.day = static_cast<SimDay>(day);
        rows.push_back(d);
      }
      for (const auto& d : rows) {
        // Ledger days are chronological by construction; skip any
        // out-of-order remnant a quarantined shard left behind.
        if (any_voice && d.day <= last_voice_day) continue;
        ds.voice_calls.record_day(d);
        last_voice_day = d.day;
        any_voice = true;
      }
      return true;
    });
  }

  loader.load("homes", kHomesSchema.size(), [&](const ShardView& shard) {
    ShardCursors c{shard};
    std::vector<analysis::HomeRecord> rows;
    rows.reserve(shard.rows);
    for (std::uint64_t i = 0; i < shard.rows; ++i) {
      std::int64_t user = 0;
      std::uint64_t site = 0, district = 0, county = 0, nights = 0;
      double night_hours = 0.0;
      if (!c[0].next_i64(user) || !c[1].next_u64(site) ||
          !c[2].next_u64(district) || !c[3].next_u64(county) ||
          !c[4].next_f64(night_hours) || !c[5].next_u64(nights))
        return false;
      if (user < 0) return false;
      analysis::HomeRecord h;
      h.user = UserId{static_cast<std::uint32_t>(user)};
      h.home_site = SiteId{static_cast<std::uint32_t>(site)};
      h.home_district = PostcodeDistrictId{static_cast<std::uint32_t>(district)};
      h.home_county = CountyId{static_cast<std::uint32_t>(county)};
      h.night_hours = night_hours;
      h.nights_observed = static_cast<int>(nights);
      rows.push_back(h);
    }
    ds.homes.insert(ds.homes.end(), rows.begin(), rows.end());
    return true;
  });

  loader.load("validation", kValidationSchema.size(),
              [&](const ShardView& shard) {
    ShardCursors c{shard};
    std::vector<analysis::LadValidationPoint> rows;
    rows.reserve(shard.rows);
    for (std::uint64_t i = 0; i < shard.rows; ++i) {
      std::int64_t lad = 0, census = 0, inferred = 0;
      if (!c[0].next_i64(lad) || !c[1].next_i64(census) ||
          !c[2].next_i64(inferred))
        return false;
      if (lad < 0) return false;
      analysis::LadValidationPoint p;
      p.lad = LadId{static_cast<std::uint32_t>(lad)};
      p.census_population = census;
      p.inferred_residents = inferred;
      rows.push_back(p);
    }
    ds.home_validation.points.insert(ds.home_validation.points.end(),
                                     rows.begin(), rows.end());
    return true;
  });

  {
    const auto series_target = [&](std::uint64_t id,
                                   std::uint64_t group) -> DailySeries* {
      const auto grouped = [&](analysis::GroupedDailySeries& g) {
        return group < g.group_count() ? &g.group_mutable(group) : nullptr;
      };
      switch (id) {
        case kEntropyNational: return grouped(ds.entropy_national);
        case kGyrationNational: return grouped(ds.gyration_national);
        case kEntropyByRegion: return grouped(ds.entropy_by_region);
        case kGyrationByRegion: return grouped(ds.gyration_by_region);
        case kEntropyByCluster: return grouped(ds.entropy_by_cluster);
        case kGyrationByCluster: return grouped(ds.gyration_by_cluster);
        case kEntropyByBin: return grouped(ds.entropy_by_bin);
        case kGyrationByBin: return grouped(ds.gyration_by_bin);
        case kOffnetBusyHour: return &ds.offnet_busy_hour_minutes;
        case kInterconnectLoss: return &ds.interconnect_busy_hour_loss_pct;
        case kRoamersActive: return &ds.roamers_active;
        default: return nullptr;
      }
    };
    loader.load("series", kSeriesSchema.size(), [&](const ShardView& shard) {
      ShardCursors c{shard};
      struct Row {
        std::uint64_t id, group, count;
        std::int64_t day;
        double sum;
      };
      std::vector<Row> rows;
      rows.reserve(shard.rows);
      for (std::uint64_t i = 0; i < shard.rows; ++i) {
        Row r{};
        if (!c[0].next_u64(r.id) || !c[1].next_u64(r.group) ||
            !c[2].next_i64(r.day) || !c[3].next_f64(r.sum) ||
            !c[4].next_u64(r.count))
          return false;
        rows.push_back(r);
      }
      for (const auto& r : rows) {
        DailySeries* target = series_target(r.id, r.group);
        if (target == nullptr) continue;
        target->restore(static_cast<SimDay>(r.day), r.sum,
                        static_cast<std::size_t>(r.count));
      }
      return true;
    });
  }

  loader.load("distributions", kDistributionSchema.size(),
              [&](const ShardView& shard) {
    ShardCursors c{shard};
    struct Row {
      std::uint64_t id;
      std::int64_t day;
      stats::Summary summary;
    };
    std::vector<Row> rows;
    rows.reserve(shard.rows);
    for (std::uint64_t i = 0; i < shard.rows; ++i) {
      Row r{};
      std::uint64_t n = 0;
      if (!c[0].next_u64(r.id) || !c[1].next_i64(r.day) ||
          !c[2].next_u64(n) || !c[3].next_f64(r.summary.mean) ||
          !c[4].next_f64(r.summary.p10) || !c[5].next_f64(r.summary.p25) ||
          !c[6].next_f64(r.summary.median) || !c[7].next_f64(r.summary.p75) ||
          !c[8].next_f64(r.summary.p90))
        return false;
      r.summary.n = static_cast<std::size_t>(n);
      rows.push_back(r);
    }
    for (const auto& r : rows) {
      auto* target = r.id == kGyrationDist ? &ds.gyration_distribution
                     : r.id == kEntropyDist ? &ds.entropy_distribution
                                            : nullptr;
      if (target == nullptr) continue;
      target->restore_day(static_cast<SimDay>(r.day), r.summary);
    }
    return true;
  });

  loader.load("matrix", kMatrixSchema.size(), [&](const ShardView& shard) {
    ShardCursors c{shard};
    struct Row {
      std::uint64_t kind, county, observations;
      std::int64_t day;
      double presence;
    };
    std::vector<Row> rows;
    rows.reserve(shard.rows);
    for (std::uint64_t i = 0; i < shard.rows; ++i) {
      Row r{};
      if (!c[0].next_u64(r.kind) || !c[1].next_u64(r.county) ||
          !c[2].next_i64(r.day) || !c[3].next_f64(r.presence) ||
          !c[4].next_u64(r.observations))
        return false;
      rows.push_back(r);
    }
    if (ds.london_matrix == nullptr) return true;
    for (const auto& r : rows) {
      const auto day = static_cast<SimDay>(r.day);
      if (r.kind == kPresenceRow && r.county < county_count) {
        ds.london_matrix->restore_presence(
            CountyId{static_cast<std::uint32_t>(r.county)}, day, r.presence);
      } else if (r.kind == kObservationsRow) {
        ds.london_matrix->restore_observations(
            day, static_cast<std::size_t>(r.observations));
      }
    }
    return true;
  });

  {
    std::vector<std::string> quality_feed_names;
    loader.load("quality", kQualitySchema.size(), [&](const ShardView& shard) {
      ShardCursors c{shard};
      struct Row {
        std::uint64_t kind, a, b, cc, d;
        std::int64_t day;
        std::string name;
      };
      std::vector<Row> rows;
      rows.reserve(shard.rows);
      for (std::uint64_t i = 0; i < shard.rows; ++i) {
        Row r{};
        std::uint64_t name_len = 0;
        if (!c[0].next_u64(r.kind) || !c[1].next_u64(name_len)) return false;
        if (name_len > 4096) return false;
        if (name_len > 0) {
          const std::uint8_t* name = nullptr;
          if (!c[1].next_bytes(static_cast<std::size_t>(name_len), name))
            return false;
          r.name.assign(reinterpret_cast<const char*>(name),
                        static_cast<std::size_t>(name_len));
        }
        if (!c[2].next_i64(r.day) || !c[3].next_u64(r.a) ||
            !c[4].next_u64(r.b) || !c[5].next_u64(r.cc) ||
            !c[6].next_u64(r.d))
          return false;
        rows.push_back(r);
      }
      for (const auto& r : rows) {
        if (r.kind == kFeedTotalsRow) {
          telemetry::FeedQuality& f = ds.quality.feed(r.name);
          f.expected_records = r.a;
          f.observed_records = r.b;
          f.quarantined_records = r.cc;
          f.duplicate_records = r.d;
          quality_feed_names.push_back(r.name);
        } else if (r.kind == kFeedDayRow &&
                   r.a < quality_feed_names.size()) {
          telemetry::FeedQuality& f =
              ds.quality.feed(quality_feed_names[r.a]);
          f.days[static_cast<SimDay>(r.day)] = {r.b, r.cc};
        }
      }
      return true;
    });
  }

  // Completeness cross-check: the scalar feed records how many rows each
  // variable-size feed should hold, so a quarantined shard (or a clipped
  // file) can never masquerade as a complete dataset.
  if (kpi_rows_applied + kpi_rows_dropped !=
      scalar_u(kKpiRowCount)) {
    out.quarantine_log.push_back(
        "kpis: row count mismatch (stored " +
        std::to_string(scalar_u(kKpiRowCount)) + ", decoded " +
        std::to_string(kpi_rows_applied + kpi_rows_dropped) + ")");
  }
  const bool complete =
      out.shards_quarantined == 0 && kpi_rows_dropped == 0 &&
      kpi_rows_applied == scalar_u(kKpiRowCount) &&
      ds.homes.size() == scalar_u(kHomeRowCount) &&
      ds.signaling.days().size() == scalar_u(kSignalingDayCount) &&
      ds.voice_calls.days().size() == scalar_u(kVoiceDayCount);

  if (!complete) {
    // The store degraded like any other feed: account the damage in the
    // quality ledger and mark the outcome so callers re-simulate rather
    // than trust partial data.
    ds.quality.quarantine("store",
                          out.shards_quarantined > 0 ? out.shards_quarantined
                                                     : 1);
    out.status = ReadOutcome::Status::kDegraded;
    out.error = out.quarantine_log.empty()
                    ? "stored feed row counts inconsistent"
                    : out.quarantine_log.front();
  } else {
    out.status = ReadOutcome::Status::kOk;
  }

  if (obs::enabled()) {
    auto& registry = obs::metrics();
    registry.add("store.bytes_read", out.bytes_read);
    registry.add("store.rows_read", out.rows_read);
    registry.add("store.shards_quarantined", out.shards_quarantined);
    obs::track_bytes(obs::Subsystem::kStore, out.bytes_read);
  }

  out.dataset = std::move(ds);
  return out;
}

// ------------------------------------------------------------ store audit

audit::AuditReport audit_store(const std::string& dir) {
  audit::AuditReport report;
  constexpr std::string_view kLaw = "store-reconcile";

  // Parse the manifest ourselves (not just stored_digest) because the audit
  // needs the feed list and the writer's physical accounting.
  std::vector<std::string> feeds;
  bool have_rows = false, have_bytes = false;
  std::uint64_t manifest_rows = 0, manifest_bytes = 0;
  {
    report.add_checks(kLaw);
    std::ifstream manifest(dir + "/" + kManifestFile, std::ios::binary);
    std::string line;
    if (!manifest || !std::getline(manifest, line) ||
        line != "cellstore-v1") {
      report.add_violation({std::string(kLaw), dir + "/" + kManifestFile,
                            0.0, 0.0,
                            "manifest missing or not cellstore-v1"});
      return report;
    }
    while (std::getline(manifest, line)) {
      if (line.rfind("feeds=", 0) == 0) {
        std::string list = line.substr(6);
        std::size_t start = 0;
        while (start <= list.size()) {
          const std::size_t comma = list.find(',', start);
          const std::size_t end =
              comma == std::string::npos ? list.size() : comma;
          if (end > start) feeds.push_back(list.substr(start, end - start));
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
      } else if (line.rfind("rows=", 0) == 0) {
        manifest_rows = std::strtoull(line.c_str() + 5, nullptr, 10);
        have_rows = true;
      } else if (line.rfind("bytes=", 0) == 0) {
        manifest_bytes = std::strtoull(line.c_str() + 6, nullptr, 10);
        have_bytes = true;
      }
    }
    if (feeds.empty()) {
      report.add_violation({std::string(kLaw), dir + "/" + kManifestFile,
                            0.0, 0.0, "manifest lists no feeds"});
      return report;
    }
  }

  std::uint64_t rows_read = 0;
  std::uint64_t bytes_read = 0;
  for (const std::string& feed : feeds) {
    report.add_checks(kLaw);
    FeedFileReader reader{feed_path(dir, feed)};
    if (reader.status() != FeedFileReader::Status::kOk) {
      report.add_violation({std::string(kLaw), feed, 0.0, 0.0,
                            "feed unreadable: " + reader.error()});
      continue;
    }
    if (reader.quarantined_shards() > 0) {
      report.add_violation(
          {std::string(kLaw), feed, 0.0,
           static_cast<double>(reader.quarantined_shards()),
           "quarantined shards in stored feed"});
    }
    rows_read += reader.total_rows();
    bytes_read += reader.file_bytes();
  }

  // Writer-side vs reader-side physical totals. Stores written before the
  // accounting lines existed carry no rows=/bytes=; the reconciliation is
  // then unavailable rather than violated.
  if (have_rows) {
    report.add_checks(kLaw);
    if (rows_read != manifest_rows) {
      report.add_violation({std::string(kLaw), "rows",
                            static_cast<double>(manifest_rows),
                            static_cast<double>(rows_read),
                            "rows read back != rows the writer recorded"});
    }
  }
  if (have_bytes) {
    report.add_checks(kLaw);
    if (bytes_read != manifest_bytes) {
      report.add_violation({std::string(kLaw), "bytes",
                            static_cast<double>(manifest_bytes),
                            static_cast<double>(bytes_read),
                            "bytes read back != bytes the writer recorded"});
    }
  }
  return report;
}

}  // namespace cellscope::store
