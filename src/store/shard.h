// Columnar shard files: the physical layer of the cellstore feed store.
//
// One FeedFileWriter produces one `<feed>.csf` file: a fixed header, then
// append-only shards (each a self-contained batch of rows, encoded column
// by column), then a footer indexing every shard with its row count, day
// range and CRC32C. Writing is bounded-memory: rows buffer into per-column
// encoders and flush as a shard every `max_rows_per_shard` rows, so a feed
// of millions of rows never holds more than one shard's worth in RAM.
//
// One FeedFileReader memory-maps a feed file and validates it back to
// front: tail magic, footer checksum, then a per-shard CRC over the mapped
// bytes. Shards that fail validation are *quarantined* — counted, reported
// with a reason, and skipped — while every intact shard stays readable;
// the dataset layer (dataset_io.h) routes those counts into the
// telemetry/quality ledger so a corrupted store degrades exactly like a
// degraded measurement feed. Column payloads are decoded straight out of
// the mapping (zero-copy); ColumnCursor is the sequential decoder.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "store/format.h"

namespace cellscope::store {

// -------------------------------------------------------------- writing

class FeedFileWriter {
 public:
  // Opens `path + ".tmp"` (truncating) and writes the file header there;
  // close() fsyncs and atomically renames the temp file onto `path`, so a
  // crashed writer never leaves a partial file at the published name —
  // only `.tmp` litter the next run sweeps (common/atomic_file.h).
  // `schema` fixes the column count and encodings for every shard of this
  // file. Throws std::runtime_error when the file cannot be opened.
  FeedFileWriter(const std::string& path, std::vector<Encoding> schema,
                 std::size_t max_rows_per_shard = kDefaultRowsPerShard);
  ~FeedFileWriter();

  FeedFileWriter(const FeedFileWriter&) = delete;
  FeedFileWriter& operator=(const FeedFileWriter&) = delete;

  // Appends one value to a column of the current row. Each row must touch
  // its columns in any order but exactly once each (unchecked; the feed
  // schemas in dataset_io.cc are straight-line code).
  void u64(std::size_t col, std::uint64_t value);    // kVarint / kRaw64
  void i64(std::size_t col, std::int64_t value);     // kDeltaZigzagVarint
  void f64(std::size_t col, double value);           // kRaw64 (IEEE bits)
  void bytes(std::size_t col, const void* data, std::size_t n);  // kBytes

  // Closes the current row, tagging it with `day` for the shard's min/max
  // day index. Auto-flushes a shard at max_rows_per_shard.
  void end_row(std::int64_t day);

  // Encodes buffered rows as one shard now (no-op with zero rows).
  void flush_shard();

  // Flushes, writes the footer, fsyncs and renames the temp file onto its
  // final path. Returns the final file size in bytes. This is the ONLY way
  // a feed file gets published: a writer destroyed without close() (stack
  // unwind, interrupt) discards its temp file and leaves any previously
  // published file untouched. Throws std::runtime_error on write failure.
  std::uint64_t close();

  [[nodiscard]] std::uint64_t rows_written() const { return rows_written_; }
  [[nodiscard]] std::uint64_t shards_written() const {
    return index_.size();
  }

  static constexpr std::size_t kDefaultRowsPerShard = 8192;

 private:
  struct Column {
    Encoding encoding;
    std::vector<std::uint8_t> payload;
    std::int64_t prev = 0;  // delta state, reset each shard
  };

  std::string path_;
  int fd_ = -1;
  std::vector<Column> columns_;
  std::size_t max_rows_per_shard_;
  std::uint64_t rows_in_shard_ = 0;
  std::uint64_t rows_written_ = 0;
  std::int64_t min_day_ = 0;
  std::int64_t max_day_ = 0;
  std::uint64_t file_offset_ = 0;
  std::vector<ShardIndexEntry> index_;
  bool closed_ = false;

  void write_all(const std::uint8_t* data, std::size_t n);
};

// -------------------------------------------------------------- reading

struct ColumnView {
  Encoding encoding = Encoding::kRaw64;
  const std::uint8_t* data = nullptr;
  std::size_t bytes = 0;
};

struct ShardView {
  std::uint64_t rows = 0;
  std::int64_t min_day = 0;
  std::int64_t max_day = 0;
  std::vector<ColumnView> columns;
};

// Sequential decoder over one column of one shard. All reads are
// bounds-checked against the mapped payload: a decode overrun returns
// false instead of walking off the mapping, and the caller quarantines.
class ColumnCursor {
 public:
  explicit ColumnCursor(const ColumnView& column) : column_(column) {
    pos_ = column.data;
    end_ = column.data + column.bytes;
  }

  bool next_u64(std::uint64_t& value);
  bool next_i64(std::int64_t& value);
  bool next_f64(double& value);
  // kBytes columns framed as [varint length][bytes]...: consumes `n` raw
  // bytes, pointing `out` into the mapping.
  bool next_bytes(std::size_t n, const std::uint8_t*& out);
  // kBytes columns: the whole payload as one blob.
  [[nodiscard]] std::span<const std::uint8_t> blob() const {
    return {column_.data, column_.bytes};
  }

 private:
  ColumnView column_;
  const std::uint8_t* pos_;
  const std::uint8_t* end_;
  std::int64_t prev_ = 0;
};

class FeedFileReader {
 public:
  enum class Status {
    kOk,        // footer valid; zero or more shards quarantined
    kMissing,   // file does not exist
    kCorrupt,   // header/tail/footer invalid — nothing is readable
  };

  // Opens, maps and validates `path`. Never throws on bad input — the
  // status/quarantine API reports what survived.
  explicit FeedFileReader(const std::string& path);
  ~FeedFileReader();

  FeedFileReader(const FeedFileReader&) = delete;
  FeedFileReader& operator=(const FeedFileReader&) = delete;

  [[nodiscard]] Status status() const { return status_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  // Shards that passed CRC + structural validation, in file order.
  [[nodiscard]] const std::vector<ShardView>& shards() const {
    return shards_;
  }
  // Shards (or, for kCorrupt files, the whole file as one unit) that
  // failed validation, with reasons.
  [[nodiscard]] std::uint64_t quarantined_shards() const {
    return quarantined_;
  }
  [[nodiscard]] const std::vector<std::string>& quarantine_log() const {
    return quarantine_log_;
  }

  [[nodiscard]] std::uint64_t total_rows() const { return total_rows_; }
  [[nodiscard]] std::uint64_t file_bytes() const { return size_; }

 private:
  Status status_ = Status::kCorrupt;
  std::string error_;
  const std::uint8_t* data_ = nullptr;
  std::uint64_t size_ = 0;
  std::vector<ShardView> shards_;
  std::uint64_t quarantined_ = 0;
  std::uint64_t total_rows_ = 0;
  std::vector<std::string> quarantine_log_;

  void validate(const std::string& path);
};

}  // namespace cellscope::store
