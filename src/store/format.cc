#include "store/format.h"

#include <array>

namespace cellscope::store {

namespace {

// Byte-at-a-time table for the reflected Castagnoli polynomial.
constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    table[i] = crc;
  }
  return table;
}

constexpr auto kCrc32cTable = make_crc32c_table();

}  // namespace

std::uint32_t crc32c(const std::uint8_t* data, std::size_t n,
                     std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < n; ++i)
    crc = (crc >> 8) ^ kCrc32cTable[(crc ^ data[i]) & 0xff];
  return ~crc;
}

}  // namespace cellscope::store
