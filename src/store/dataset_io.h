// Dataset <-> store directory: the logical layer of cellstore.
//
// A store directory holds one serialized simulation run: a plain-text
// `store.manifest` carrying the scenario's config digest, plus one columnar
// feed file (shard.h) per logical feed — the per-cell daily KPI rows (the
// dominant feed, streamed day by day while the simulation runs), signaling
// counters, detected homes, census validation points, every daily series,
// distribution bands, the London relocation matrix, the quality ledger and
// a scalar feed for the leftover fields.
//
// The substrate (geography, population, topology, policy) is NOT
// serialized: it derives deterministically from the config seed, so
// read_dataset() rebuilds it with sim::build_substrate() and restores only
// measured state on top. Doubles travel as raw IEEE 754 bits, integer
// accumulators verbatim — write-then-read is bitwise identical on every
// Dataset field (test_store_replay enforces this).
//
// Corruption never throws: shards that fail CRC/structural validation (and
// feed files that are missing or unreadable) are quarantined into the
// dataset's telemetry/quality ledger under the "store" feed, the intact
// remainder is loaded, and the outcome is marked kDegraded — partial data
// is never silently served as complete (load_or_run re-simulates instead).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "audit/report.h"
#include "sim/simulator.h"

namespace cellscope::store {

// Feed files inside a store directory, in write order.
[[nodiscard]] const std::vector<std::string>& dataset_feeds();

// Name of the manifest file inside a store directory.
inline constexpr const char* kManifestFile = "store.manifest";

struct WriteStats {
  std::uint64_t bytes_written = 0;
  std::uint64_t rows_written = 0;
  std::uint64_t shards_written = 0;
};

// Streaming writer: give it to run_scenario() as the DatasetSink so the
// KPI feed (cells x days rows — everything else is small) is flushed to
// disk shard by shard while the simulation runs, then call finish() with
// the completed dataset to write the remaining feeds and the manifest.
class DatasetWriter final : public sim::DatasetSink {
 public:
  // Creates `dir` (and parents) if needed. Throws std::runtime_error when
  // the directory or a feed file cannot be created.
  explicit DatasetWriter(std::string dir);
  ~DatasetWriter() override;

  void on_kpi_day(SimDay day,
                  std::span<const telemetry::CellDayRecord> rows) override;

  // Writes every non-streamed feed plus the manifest and closes all files.
  // KPI rows not already streamed through on_kpi_day() are written from
  // `ds.kpis` here, so finish() alone serializes a materialized dataset.
  WriteStats finish(const sim::Dataset& ds);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Serializes a materialized dataset into `dir` (convenience over
// DatasetWriter for datasets that were not simulated with a sink).
WriteStats write_dataset(const sim::Dataset& ds, const std::string& dir);

// Crash-safety options for simulate_to_store().
struct StoreRunOptions {
  // Crash injection (tests, the CI crash-resume job): SIGKILL the process
  // right after the n-th day's checkpoint publishes. 0 disables.
  int kill_after_days = 0;
};

// Runs the scenario with a DatasetWriter attached: the store is written
// while the simulation runs, and the materialized dataset is returned.
//
// The run is crash-safe (docs/RECOVERY.md): a digest-keyed day-granular
// checkpoint (store/checkpoint.h) rides in `dir`, so a killed or
// interrupted run re-invoked with the same config and dir resumes at the
// first incomplete day and produces a byte-identical store. The checkpoint
// is removed once the manifest publishes.
[[nodiscard]] sim::Dataset simulate_to_store(const sim::ScenarioConfig& config,
                                             const std::string& dir);
[[nodiscard]] sim::Dataset simulate_to_store(const sim::ScenarioConfig& config,
                                             const std::string& dir,
                                             const StoreRunOptions& options);

struct ReadOutcome {
  enum class Status {
    kMissing,         // no manifest — nothing stored here
    kDigestMismatch,  // stored run is a different scenario
    kOk,              // complete, bitwise-faithful dataset
    kDegraded,        // dataset loaded but data was quarantined/missing
  };

  Status status = Status::kMissing;
  std::string error;  // human-readable detail for non-kOk outcomes
  std::uint64_t bytes_read = 0;
  std::uint64_t rows_read = 0;
  std::uint64_t shards_quarantined = 0;
  std::vector<std::string> quarantine_log;
  // Present for kOk and kDegraded. A degraded dataset carries its losses in
  // dataset->quality (feed "store") like any degraded measurement feed.
  std::optional<sim::Dataset> dataset;

  [[nodiscard]] bool complete() const { return status == Status::kOk; }
};

// Loads the dataset stored in `dir` for `config`. The substrate is rebuilt
// from the config; the stored digest must match config_digest(config).
[[nodiscard]] ReadOutcome read_dataset(const std::string& dir,
                                       const sim::ScenarioConfig& config);

// The digest recorded in `dir`'s manifest, or "" when absent/unreadable.
[[nodiscard]] std::string stored_digest(const std::string& dir);

struct ScanStats {
  std::uint64_t rows = 0;
  std::uint64_t bytes = 0;  // on-disk feed bytes scanned
  std::uint64_t shards_quarantined = 0;
};

// Out-of-core scan over the stored KPI feed (the dominant one): decodes
// shard by shard straight off the file mapping and invokes `row` for each
// record in store order, holding at most one shard of decoded rows in
// memory — a feed far larger than RAM streams through fine. Corrupt shards
// (or a wholly unreadable feed) are skipped and counted, never thrown.
ScanStats scan_kpis(
    const std::string& dir,
    const std::function<void(const telemetry::CellDayRecord&)>& row);

// Physical store audit: the store-reconcile conservation law. Re-reads
// every feed listed in `dir`'s manifest and checks that (a) the manifest is
// present and well-formed, (b) every feed opens with zero quarantined
// shards, and (c) the total rows and bytes read back equal the rows=/bytes=
// accounting the writer recorded at finish() — what was written is what
// reads back, with nothing lost, truncated or grown in between. Stores
// written before the accounting lines existed skip check (c) (the lines
// are absent, not zero). Read-only; never throws on corruption — damage
// becomes violations.
[[nodiscard]] audit::AuditReport audit_store(const std::string& dir);

}  // namespace cellscope::store
