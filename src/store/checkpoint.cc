#include "store/checkpoint.h"

#include <csignal>
#include <cstdio>
#include <unistd.h>

#include "common/atomic_file.h"
#include "store/format.h"

namespace cellscope::store {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x54504b43;  // "CKPT"
constexpr std::uint32_t kCheckpointVersion = 1;

// Reads the whole file; empty result on any I/O trouble (the caller treats
// every load failure identically: no resumable state).
std::vector<std::uint8_t> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  return bytes;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string dir, std::string config_digest)
    : path_(std::move(dir) + "/checkpoint.ckpt"),
      digest_(std::move(config_digest)) {
  const std::vector<std::uint8_t> bytes = slurp(path_);
  // Fixed prelude: magic + version + digest length.
  if (bytes.size() < 12) return;
  const std::uint8_t* p = bytes.data();
  if (read_u32(p) != kCheckpointMagic) return;
  if (read_u32(p + 4) != kCheckpointVersion) return;
  const std::uint32_t digest_len = read_u32(p + 8);
  std::size_t off = 12;
  if (bytes.size() - off < digest_len) return;
  const std::string digest(reinterpret_cast<const char*>(p + off), digest_len);
  off += digest_len;
  if (bytes.size() - off < 8 + 8) return;
  const std::int64_t hwm = static_cast<std::int64_t>(read_u64(p + off));
  off += 8;
  const std::uint64_t payload_len = read_u64(p + off);
  off += 8;
  if (bytes.size() - off < payload_len + 4) return;
  const std::size_t crc_off = off + payload_len;
  if (crc32c(p, crc_off) != read_u32(p + crc_off)) return;
  // A record for a different scenario is valid but not ours: start fresh.
  if (digest != digest_) return;
  resume_day_ = static_cast<SimDay>(hwm);
  payload_.assign(p + off, p + crc_off);
}

std::span<const std::uint8_t> CheckpointManager::resume_payload() const {
  return {payload_.data(), payload_.size()};
}

SimDay CheckpointManager::resume_day() const { return resume_day_; }

void CheckpointManager::on_day_complete(SimDay day,
                                        const std::vector<std::uint8_t>& state) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(32 + digest_.size() + state.size());
  put_u32(bytes, kCheckpointMagic);
  put_u32(bytes, kCheckpointVersion);
  put_u32(bytes, static_cast<std::uint32_t>(digest_.size()));
  bytes.insert(bytes.end(), digest_.begin(), digest_.end());
  put_u64(bytes, static_cast<std::uint64_t>(static_cast<std::int64_t>(day)));
  put_u64(bytes, static_cast<std::uint64_t>(state.size()));
  bytes.insert(bytes.end(), state.begin(), state.end());
  put_u32(bytes, crc32c(bytes.data(), bytes.size()));
  write_file_atomic(path_, bytes.data(), bytes.size());

  if (kill_after_days_ > 0 && ++days_saved_ >= kill_after_days_) {
    // Crash injection: die the hard way, mid-run, with the checkpoint just
    // published — the exact scenario test_crash_resume and the CI
    // crash-resume job resume from.
    ::kill(::getpid(), SIGKILL);
  }
}

void CheckpointManager::clear() {
  std::remove(path_.c_str());
  resume_day_ = -1;
  payload_.clear();
}

}  // namespace cellscope::store
