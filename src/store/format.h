// cellstore binary format primitives.
//
// The on-disk feed store (docs/STORAGE.md) is a dependency-free columnar
// format: one file per feed, each file a sequence of self-describing shards
// followed by a footer that indexes them (offset, length, row count, day
// range, CRC32C). This header holds the building blocks every layer above
// shares: the magic numbers, the per-column encoding ids, LEB128 varints
// with zigzag for signed deltas, and the CRC32C (Castagnoli) checksum the
// footer carries per shard.
//
// Integers are little-endian on disk. Doubles are raw IEEE 754 bits
// (std::bit_cast through std::uint64_t), never printed and re-parsed, so a
// value survives a write/read round trip bit-for-bit — the replay
// determinism contract (test_store_replay) depends on exactly this.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace cellscope::store {

// File layout magics ("CSF1" file header, "SHRD" shard header, "CSFE" file
// tail), spelled as little-endian u32 constants.
inline constexpr std::uint32_t kFileMagic = 0x31465343;   // "CSF1"
inline constexpr std::uint32_t kShardMagic = 0x44524853;  // "SHRD"
inline constexpr std::uint32_t kTailMagic = 0x45465343;   // "CSFE"
inline constexpr std::uint16_t kFormatVersion = 1;

// Per-column payload encodings.
enum class Encoding : std::uint8_t {
  // 8 bytes per value, little-endian. Used for doubles (IEEE 754 bits) and
  // for unsigned values that do not compress (none currently).
  kRaw64 = 0,
  // Unsigned LEB128 varint per value (no delta). Counts, small ids.
  kVarint = 1,
  // Per-value delta against the previous value, zigzag-mapped, then LEB128.
  // Timestamps (day columns) and sorted id columns collapse to ~1 byte per
  // row under this.
  kDeltaZigzagVarint = 2,
  // One opaque byte blob for the whole column (row count gives the number
  // of logical entries; framing is the feed schema's business). Used for
  // string tables.
  kBytes = 3,
};

// ---------------------------------------------------------------- varints

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

inline constexpr std::uint64_t zigzag_encode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

inline constexpr std::int64_t zigzag_decode(std::uint64_t value) {
  return static_cast<std::int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

// Bounds-checked varint decode; returns false on overrun or a varint wider
// than 64 bits (both only reachable through corruption, which the caller
// quarantines).
inline bool get_varint(const std::uint8_t*& p, const std::uint8_t* end,
                       std::uint64_t& value) {
  value = 0;
  int shift = 0;
  while (p < end && shift < 64) {
    const std::uint8_t byte = *p++;
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

// ------------------------------------------------------------ fixed width

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

inline void put_double_bits(std::vector<std::uint8_t>& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

inline std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i)
    value |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return value;
}

inline std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return value;
}

// --------------------------------------------------------------- CRC32C

// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum the shard footer stores per shard. Software table
// implementation; the store is I/O-bound, not checksum-bound.
[[nodiscard]] std::uint32_t crc32c(const std::uint8_t* data, std::size_t n,
                                   std::uint32_t seed = 0);

// ---------------------------------------------------------------- footer

// One footer entry: everything the reader needs to locate and validate a
// shard without touching its bytes first.
struct ShardIndexEntry {
  std::uint64_t offset = 0;  // from start of file
  std::uint64_t length = 0;  // shard bytes (header + payloads)
  std::uint64_t rows = 0;
  std::int64_t min_day = 0;
  std::int64_t max_day = 0;
  std::uint32_t crc = 0;  // CRC32C over the shard bytes
};

// Conventional file name of a feed inside a store directory.
[[nodiscard]] inline std::string feed_file_name(const std::string& feed) {
  return feed + ".csf";
}

}  // namespace cellscope::store
