#include "traffic/voice.h"

#include <array>
#include <cmath>

namespace cellscope::traffic {

namespace {
// Voice concentrates in daytime and early evening.
constexpr std::array<double, 24> kVoiceDiurnal = {
    0.05, 0.03, 0.02, 0.02, 0.03, 0.10, 0.35, 0.80,  // 00-07
    1.30, 1.60, 1.70, 1.70, 1.60, 1.55, 1.50, 1.45,  // 08-15
    1.50, 1.65, 1.80, 1.70, 1.35, 0.95, 0.55, 0.20,  // 16-23
};
}  // namespace

VoiceModel::VoiceModel(const mobility::PolicyTimeline& policy,
                       const VoiceParams& params)
    : policy_(policy), params_(params) {}

double VoiceModel::diurnal_weight(int hour_of_day) {
  return kVoiceDiurnal[hour_of_day];
}

HourVoice VoiceModel::sample_hour(const population::Subscriber& user,
                                  SimDay day, int hour_of_day,
                                  Rng& rng) const {
  HourVoice voice;
  if (!user.smartphone) return voice;  // M2M SIMs carry no conversations

  // Archetype appetite: retirees call more, students less.
  double appetite = 1.0;
  switch (user.archetype) {
    case population::Archetype::kRetiree: appetite = 1.5; break;
    case population::Archetype::kStudent: appetite = 0.6; break;
    case population::Archetype::kSeasonalResident: appetite = 0.8; break;
    default: break;
  }

  const double mean_minutes = params_.daily_minutes / 24.0 * appetite *
                              diurnal_weight(hour_of_day) *
                              policy_.voice_demand_multiplier(day);
  // Call minutes arrive in bursts: Poisson call count x exponential holding.
  const auto calls = rng.poisson(mean_minutes / 3.0);
  for (std::uint64_t c = 0; c < calls; ++c)
    voice.minutes += rng.exponential(3.0);
  if (voice.minutes <= 0.0) return voice;
  voice.minutes = std::min(voice.minutes, 60.0);

  voice.dl_mb = voice.minutes * params_.mb_per_minute;
  voice.ul_mb = voice.minutes * params_.mb_per_minute;
  voice.in_call_seconds = voice.minutes * 60.0;
  voice.offnet_fraction = params_.offnet_fraction;
  return voice;
}

void VoiceCallLedger::record_day(const VoiceDayCalls& day) {
  days_.push_back(day);
  total_attempts_ += day.attempts;
}

const VoiceDayCalls* VoiceCallLedger::day(SimDay day) const {
  for (const auto& d : days_)
    if (d.day == day) return &d;
  return nullptr;
}

}  // namespace cellscope::traffic
