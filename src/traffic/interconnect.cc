#include "traffic/interconnect.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cellscope::traffic {

VoiceInterconnect::VoiceInterconnect(const InterconnectParams& params)
    : params_(params) {
  if (params_.baseline_capacity <= 0.0)
    throw std::invalid_argument(
        "InterconnectParams: baseline_capacity must be > 0");
}

void VoiceInterconnect::calibrate(double busy_hour_offnet_minutes,
                                  double headroom) {
  if (busy_hour_offnet_minutes <= 0.0)
    throw std::invalid_argument(
        "VoiceInterconnect::calibrate: busy-hour minutes must be > 0");
  params_.baseline_capacity = busy_hour_offnet_minutes * (1.0 + headroom);
}

double VoiceInterconnect::capacity(SimDay day) const {
  return day >= params_.upgrade_day
             ? params_.baseline_capacity * params_.upgrade_factor
             : params_.baseline_capacity;
}

double VoiceInterconnect::dl_loss_pct(SimDay day,
                                      double offered_offnet_minutes) const {
  ++hours_evaluated_;
  if (offered_offnet_minutes <= 0.0) return 0.0;
  const double util = offered_offnet_minutes / capacity(day);
  const double loss =
      params_.base_loss_pct *
      std::exp(params_.steepness * (util - params_.knee_utilization));
  if (loss >= params_.max_loss_pct) ++hours_saturated_;
  return std::clamp(loss, 0.0, params_.max_loss_pct);
}

}  // namespace cellscope::traffic
