// Inter-MNO voice interconnection infrastructure.
//
// MNOs exchange off-net voice traffic over dimensioned trunk groups.
// Section 4.2 attributes the weeks-10..12 downlink voice packet loss spike
// to this infrastructure: the surge exceeded trunk capacity until operators
// expanded it ("rapid response of the network operations"). The model keeps
// a national trunk group with a capacity timeline (baseline dimensioning,
// then an emergency expansion effective with week 13) and converts hourly
// utilization into a loss percentage via a soft-congestion curve.
#pragma once

#include <cstdint>

#include "common/simtime.h"

namespace cellscope::traffic {

struct InterconnectParams {
  // Trunk capacity in off-net voice minutes per hour. Dimensioned with
  // ~15% headroom over the pre-pandemic busy-hour load; set by calibrate().
  double baseline_capacity = 1.0;
  // Capacity multiplier once the emergency expansion is live.
  double upgrade_factor = 2.6;
  // First day the expanded capacity is in service (week 13 Monday).
  SimDay upgrade_day = timeline::kLockdownOrder;
  // Soft congestion curve: loss_pct = base * exp(steepness * (util - knee)),
  // capped. Gives a small residual loss in normal operation and a steep
  // rise past the knee; the cap models alternate routing / overflow trunks
  // bounding the damage.
  double base_loss_pct = 0.12;
  double knee_utilization = 0.90;
  double steepness = 7.0;
  double max_loss_pct = 1.2;
};

class VoiceInterconnect {
 public:
  explicit VoiceInterconnect(const InterconnectParams& params = {});

  // Sets baseline_capacity to (1 + headroom) x the given busy-hour off-net
  // minutes (the operator's dimensioning exercise).
  void calibrate(double busy_hour_offnet_minutes, double headroom = 0.08);

  [[nodiscard]] double capacity(SimDay day) const;

  // Loss on the interconnect for the hour, given offered off-net minutes.
  [[nodiscard]] double dl_loss_pct(SimDay day,
                                   double offered_offnet_minutes) const;

  [[nodiscard]] const InterconnectParams& params() const { return params_; }

  // Observability: hours evaluated and hours whose loss hit the max_loss
  // cap (alternate-routing overflow — the Section 4.2 congestion episode in
  // counter form). Published into the metrics registry by the simulator;
  // not thread-safe — the interconnect lives on the serial scheduling path.
  [[nodiscard]] std::uint64_t hours_evaluated() const {
    return hours_evaluated_;
  }
  [[nodiscard]] std::uint64_t hours_saturated() const {
    return hours_saturated_;
  }

 private:
  InterconnectParams params_;
  mutable std::uint64_t hours_evaluated_ = 0;
  mutable std::uint64_t hours_saturated_ = 0;
};

}  // namespace cellscope::traffic
