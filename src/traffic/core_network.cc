#include "traffic/core_network.h"

#include <algorithm>
#include <array>

namespace cellscope::traffic {

namespace {
constexpr std::array<std::string_view, kSignalingEventTypeCount> kEventNames =
    {"Attach",          "Authentication",        "Session establishment",
     "Bearer setup",    "Bearer release",        "Tracking Area Update",
     "ECM-IDLE",        "Service request",       "Handover",
     "Detach"};
}  // namespace

std::string_view signaling_event_name(SignalingEventType type) {
  return kEventNames[static_cast<int>(type)];
}

SignalingGenerator::SignalingGenerator(const SignalingParams& params)
    : params_(params) {}

void SignalingGenerator::generate_day(const population::Subscriber& user,
                                      std::span<const CellStay> stays,
                                      SimDay day, int active_data_hours,
                                      int voice_calls, Rng& rng,
                                      SignalingSink& sink) const {
  if (stays.empty()) return;

  SignalingEvent event;
  event.user = user.id;
  event.tac = user.tac;
  if (user.native) {
    event.mcc = params_.home_mcc;
    event.mnc = params_.home_mnc;
  } else {
    // Inbound roamer: a foreign PLMN.
    event.mcc = static_cast<std::uint16_t>(200 + rng.uniform_index(150));
    event.mnc = static_cast<std::uint16_t>(rng.uniform_index(30));
  }

  const auto emit = [&](SignalingEventType type, CellId cell, int hour,
                        bool success = true) {
    event.type = type;
    event.cell = cell;
    event.hour = first_hour(day) + hour;
    event.success = success;
    sink.on_event(event);
  };

  // Morning attach (devices re-attach after overnight idle / flight mode).
  const CellStay& first = stays.front();
  const bool attach_ok = !rng.chance(params_.attach_failure_rate);
  emit(SignalingEventType::kAttach, first.cell, first.start_hour, attach_ok);
  emit(SignalingEventType::kAuthentication, first.cell, first.start_hour);
  emit(SignalingEventType::kSessionEstablishment, first.cell,
       first.start_hour);

  // Mobility events at every cell change.
  for (std::size_t i = 1; i < stays.size(); ++i) {
    if (stays[i].cell == stays[i - 1].cell) continue;
    const bool handover = rng.chance(params_.handover_share);
    emit(handover ? SignalingEventType::kHandover
                  : SignalingEventType::kTrackingAreaUpdate,
         stays[i].cell, stays[i].start_hour);
  }

  // Data activity: each active hour wakes the UE (Service Request) and
  // later returns it to idle (ECM-IDLE transition). Attribute events to the
  // stay covering the hour, walking stays and hours together.
  std::size_t stay_idx = 0;
  int remaining = active_data_hours;
  for (int hour = 0; hour < kHoursPerDay && remaining > 0; ++hour) {
    while (stay_idx + 1 < stays.size() && stays[stay_idx].end_hour <= hour)
      ++stay_idx;
    // Spread active hours across the day roughly evenly.
    if (rng.chance(static_cast<double>(remaining) /
                   static_cast<double>(kHoursPerDay - hour))) {
      emit(SignalingEventType::kServiceRequest, stays[stay_idx].cell, hour);
      emit(SignalingEventType::kEcmIdleTransition, stays[stay_idx].cell, hour);
      --remaining;
    }
  }

  // Voice calls ride dedicated QCI-1 bearers.
  for (int c = 0; c < voice_calls; ++c) {
    const auto hour = static_cast<int>(rng.uniform_index(kHoursPerDay));
    std::size_t idx = 0;
    while (idx + 1 < stays.size() && stays[idx].end_hour <= hour) ++idx;
    emit(SignalingEventType::kDedicatedBearerSetup, stays[idx].cell, hour);
    emit(SignalingEventType::kDedicatedBearerRelease, stays[idx].cell, hour);
  }

  if (rng.chance(params_.daily_detach_probability)) {
    const CellStay& last = stays.back();
    emit(SignalingEventType::kDetach, last.cell,
         std::max<int>(last.start_hour, 23));
  }
}

}  // namespace cellscope::traffic
