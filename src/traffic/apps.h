// Application traffic classes.
//
// The cellular bearers of Section 2.4 carry a mix of applications with very
// different downlink/uplink symmetry and rate needs. The paper's traffic
// findings hinge on that mix: downlink-heavy video streaming migrated to
// home WiFi (cellular DL -24%), symmetric conferencing/voice grew, and
// content providers throttled video quality ("application limited"
// throughput). This module defines the app classes, their QCI mapping,
// diurnal activity profiles and the mix shifts the pandemic induced.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/simtime.h"

namespace cellscope::traffic {

enum class AppClass : std::uint8_t {
  kVideoStreaming = 0,  // QCI 8, DL-heavy
  kWebSocial,           // QCI 8, DL-leaning
  kConferencing,        // QCI 7, symmetric (video calls, VoIP-over-data)
  kGaming,              // QCI 7, light but latency-sensitive
  kBackground,          // QCI 9-ish; modeled within QCI 8 bucket
};
inline constexpr int kAppClassCount = 5;

[[nodiscard]] std::string_view app_name(AppClass app);

struct AppProfile {
  // LTE QoS Class Identifier of the bearer this app rides on (2..8 here;
  // QCI 1 is conversational voice, owned by the voice model).
  int qci = 8;
  // Typical application-limited DL rate while active, Mbit/s.
  double dl_rate_mbps = 2.0;
  // UL volume as a fraction of DL volume.
  double ul_ratio = 0.08;
};

[[nodiscard]] const AppProfile& app_profile(AppClass app);

// Hour-of-day activity weight (sums to 24 over the day): morning shoulder,
// evening peak. Weekends are flatter with a later start.
[[nodiscard]] double diurnal_weight(int hour_of_day, bool weekend);

// App mix (fractions of cellular data volume) for a given day: under
// restrictions, streaming's cellular share shrinks and conferencing's
// grows. `restricted` = venues closed / lockdown in force.
[[nodiscard]] std::array<double, kAppClassCount> app_mix(bool restricted);

// Mean application-limited DL rate of the mix, Mbit/s; `throttled` applies
// the providers' pandemic quality reduction to streaming-class apps.
[[nodiscard]] double mix_app_rate_mbps(const std::array<double, kAppClassCount>& mix,
                                       bool throttled);

// UL/DL ratio of the mix.
[[nodiscard]] double mix_ul_ratio(const std::array<double, kAppClassCount>& mix);

}  // namespace cellscope::traffic
