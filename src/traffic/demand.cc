#include "traffic/demand.h"

#include <algorithm>
#include <cmath>

namespace cellscope::traffic {

WifiContext wifi_context(mobility::PlaceKind kind) {
  switch (kind) {
    case mobility::PlaceKind::kHome:
    case mobility::PlaceKind::kRefuge:
      return WifiContext::kHomeWifi;
    case mobility::PlaceKind::kWork:
      return WifiContext::kWorkWifi;
    case mobility::PlaceKind::kErrand:
    case mobility::PlaceKind::kLeisure:
    case mobility::PlaceKind::kGetaway:
      return WifiContext::kNoWifi;
  }
  return WifiContext::kNoWifi;
}

DemandModel::DemandModel(const mobility::PolicyTimeline& policy,
                         const DemandParams& params)
    : policy_(policy), params_(params) {}

double DemandModel::home_residue_multiplier(geo::OacCluster cluster) {
  switch (cluster) {
    case geo::OacCluster::kEthnicityCentral: return 3.2;
    case geo::OacCluster::kMulticulturalMetropolitans: return 3.2;
    case geo::OacCluster::kConstrainedCityDwellers: return 2.4;
    case geo::OacCluster::kHardPressedLiving: return 2.2;
    case geo::OacCluster::kRuralResidents: return 1.8;  // patchy coverage
    case geo::OacCluster::kUrbanites: return 1.3;
    case geo::OacCluster::kCosmopolitans: return 0.50;  // fibre-served flats
    default: return 1.0;  // Suburbanites: well-served homes
  }
}

double DemandModel::activity_factor(mobility::PlaceKind kind,
                                    SimDay day) const {
  const bool restricted = !policy_.venues_open(day);
  switch (kind) {
    case mobility::PlaceKind::kErrand: return restricted ? 0.28 : 0.60;
    case mobility::PlaceKind::kLeisure: return restricted ? 0.24 : 0.90;
    case mobility::PlaceKind::kGetaway: return restricted ? 0.50 : 0.80;
    default: return 1.0;
  }
}

HourDemand DemandModel::sample_hour(const population::Subscriber& user,
                                    WifiContext context, SimDay day,
                                    int hour_of_day, Rng& rng,
                                    double activity_factor) const {
  HourDemand demand;
  if (!user.smartphone) {
    // M2M: short telemetry bursts, UL-leaning, context-independent. Kept
    // brief so meters do not distort the active-seconds-weighted per-cell
    // application rate.
    demand.dl_mb = 0.02;
    demand.ul_mb = 0.08;
    demand.active_dl_seconds = 2.0;
    demand.app_dl_rate_mbps = 0.10;
    return demand;
  }

  const bool restricted = !policy_.venues_open(day);
  const bool throttled = policy_.content_throttling(day);
  const auto mix = app_mix(restricted);

  double dl_residue = 1.0;
  double ul_residue = 1.0;
  switch (context) {
    case WifiContext::kHomeWifi: {
      const double reliance = home_residue_multiplier(user.home_cluster);
      dl_residue = params_.home_dl_residue * reliance;
      ul_residue = params_.home_ul_residue * reliance;
      break;
    }
    case WifiContext::kWorkWifi:
      dl_residue = params_.work_dl_residue;
      ul_residue = params_.work_ul_residue;
      break;
    case WifiContext::kNoWifi:
      break;
  }

  const double diurnal = diurnal_weight(hour_of_day, is_weekend(day));
  const double boost = restricted ? params_.restricted_usage_boost : 1.0;
  // Lognormal multiplicative noise with mean 1.
  const double noise = rng.lognormal(
      -0.5 * params_.noise_sigma * params_.noise_sigma, params_.noise_sigma);

  const double gross_dl = params_.away_dl_mb_per_hour * diurnal * boost *
                          noise * activity_factor *
                          policy_.data_demand_multiplier(day);
  demand.dl_mb = gross_dl * dl_residue;
  demand.ul_mb = gross_dl * mix_ul_ratio(mix) * ul_residue;

  demand.app_dl_rate_mbps = mix_app_rate_mbps(mix, throttled);
  if (demand.app_dl_rate_mbps > 0.0) {
    demand.active_dl_seconds =
        std::min(3600.0, demand.dl_mb * 8.0 / demand.app_dl_rate_mbps);
  }
  return demand;
}

}  // namespace cellscope::traffic
