#include "traffic/apps.h"

namespace cellscope::traffic {

namespace {
constexpr std::array<std::string_view, kAppClassCount> kNames = {
    "video streaming", "web/social", "conferencing", "gaming", "background"};

constexpr std::array<AppProfile, kAppClassCount> kProfiles = {{
    {.qci = 8, .dl_rate_mbps = 4.5, .ul_ratio = 0.03},  // video streaming
    {.qci = 8, .dl_rate_mbps = 2.0, .ul_ratio = 0.10},  // web/social
    {.qci = 7, .dl_rate_mbps = 1.5, .ul_ratio = 0.85},  // conferencing
    {.qci = 7, .dl_rate_mbps = 1.0, .ul_ratio = 0.30},  // gaming
    {.qci = 8, .dl_rate_mbps = 0.8, .ul_ratio = 0.25},  // background
}};

// Hourly activity weights (normalized to mean 1.0 across 24 h).
constexpr std::array<double, 24> kWeekdayDiurnal = {
    0.20, 0.12, 0.08, 0.06, 0.08, 0.20, 0.55, 0.95,  // 00-07
    1.20, 1.25, 1.20, 1.25, 1.40, 1.35, 1.25, 1.25,  // 08-15
    1.35, 1.55, 1.75, 1.90, 1.95, 1.75, 1.20, 0.60,  // 16-23
};
constexpr std::array<double, 24> kWeekendDiurnal = {
    0.30, 0.18, 0.10, 0.07, 0.07, 0.10, 0.25, 0.55,  // 00-07
    0.90, 1.15, 1.30, 1.40, 1.45, 1.40, 1.35, 1.35,  // 08-15
    1.40, 1.50, 1.65, 1.80, 1.85, 1.70, 1.25, 0.75,  // 16-23
};
// Throttling factor on streaming DL rate (EU quality reduction: SD instead
// of HD on cellular, where rates were already adaptive).
constexpr double kThrottleFactor = 0.90;
}  // namespace

std::string_view app_name(AppClass app) {
  return kNames[static_cast<int>(app)];
}

const AppProfile& app_profile(AppClass app) {
  return kProfiles[static_cast<int>(app)];
}

double diurnal_weight(int hour_of_day, bool weekend) {
  return (weekend ? kWeekendDiurnal : kWeekdayDiurnal)[hour_of_day];
}

std::array<double, kAppClassCount> app_mix(bool restricted) {
  // Cellular volume shares. Under restrictions the heavy streaming happens
  // at home on WiFi; what remains on cellular leans to web/social and
  // conferencing.
  if (!restricted) return {0.48, 0.30, 0.08, 0.06, 0.08};
  return {0.46, 0.30, 0.10, 0.06, 0.08};
}

double mix_app_rate_mbps(const std::array<double, kAppClassCount>& mix,
                         bool throttled) {
  double rate = 0.0;
  for (int i = 0; i < kAppClassCount; ++i) {
    double r = kProfiles[i].dl_rate_mbps;
    if (throttled && static_cast<AppClass>(i) == AppClass::kVideoStreaming)
      r *= kThrottleFactor;
    rate += mix[i] * r;
  }
  return rate;
}

double mix_ul_ratio(const std::array<double, kAppClassCount>& mix) {
  double ratio = 0.0;
  for (int i = 0; i < kAppClassCount; ++i)
    ratio += mix[i] * kProfiles[i].ul_ratio;
  return ratio;
}

}  // namespace cellscope::traffic
