// Per-user data traffic demand.
//
// For every (user, hour, place-context) the model produces the cellular
// data demand offered to the serving cell. The central mechanism behind the
// paper's Section 4.1 findings is *context*: at home (and partially at the
// office) traffic offloads to WiFi, so the cellular network only sees a
// residue; away from WiFi the full demand hits the cell. Lockdown moves
// people home, so cellular DL volume falls ~25% even though total Internet
// usage rose — exactly the counterpoint to the residential-ISP surge the
// paper cites.
#pragma once

#include "common/rng.h"
#include "common/simtime.h"
#include "mobility/place.h"
#include "mobility/policy.h"
#include "population/subscriber.h"
#include "traffic/apps.h"

namespace cellscope::traffic {

// Where the user is, WiFi-wise.
enum class WifiContext : std::uint8_t {
  kHomeWifi = 0,   // home / refuge: bulk offload
  kWorkWifi,       // office / campus: partial offload
  kNoWifi,         // errand, leisure, getaway, transit
};

[[nodiscard]] WifiContext wifi_context(mobility::PlaceKind kind);

struct DemandParams {
  // Mean cellular DL demand rate while away from WiFi, MB per *active* hour
  // at diurnal weight 1 (before noise).
  double away_dl_mb_per_hour = 28.0;
  // Fraction of demand remaining on cellular under WiFi coverage. The home
  // residue is for a household with good fixed broadband; it is scaled up
  // by home_residue_multiplier() in areas where fixed-line adoption is low
  // and phones are the primary Internet access (the mechanism behind the
  // paper's N-district and Multicultural-Metropolitans traffic GROWTH
  // during lockdown, Figs 11-12).
  double home_dl_residue = 0.025;
  double home_ul_residue = 0.045;  // messaging/photo upload stays on cellular
  double work_dl_residue = 0.35;
  double work_ul_residue = 0.45;
  // Lognormal noise sigma on hourly demand.
  double noise_sigma = 0.65;
  // Overall usage growth during restrictions (people idle at home use their
  // phones more, WiFi or not).
  double restricted_usage_boost = 1.15;
};

// One (user, hour) demand sample.
struct HourDemand {
  double dl_mb = 0.0;
  double ul_mb = 0.0;
  // Seconds of the hour with data in the DL buffer.
  double active_dl_seconds = 0.0;
  // Application-limited DL rate while active, Mbit/s.
  double app_dl_rate_mbps = 0.0;
};

class DemandModel {
 public:
  DemandModel(const mobility::PolicyTimeline& policy,
              const DemandParams& params = {});

  // `activity_factor` scales gross demand by what the user is doing at the
  // place (errand walks generate far less traffic than a commute or couch).
  [[nodiscard]] HourDemand sample_hour(const population::Subscriber& user,
                                       WifiContext context, SimDay day,
                                       int hour_of_day, Rng& rng,
                                       double activity_factor = 1.0) const;

  // Mobile-reliance multiplier on the home residues for a home OAC cluster
  // (deprived / young-renter areas have markedly lower fixed-broadband
  // adoption, so "offload to WiFi" barely applies there).
  [[nodiscard]] static double home_residue_multiplier(geo::OacCluster cluster);

  // Demand intensity while at a place of this kind on this day. Under venue
  // closures, out-of-home time is walks and supermarket queues rather than
  // cafe/venue dwell, so the same away-hour generates far less traffic —
  // the mechanism that lets cellular volume fall while out-of-home trips
  // only halve.
  [[nodiscard]] double activity_factor(mobility::PlaceKind kind,
                                       SimDay day) const;

  [[nodiscard]] const DemandParams& params() const { return params_; }

 private:
  const mobility::PolicyTimeline& policy_;
  DemandParams params_;
};

}  // namespace cellscope::traffic
