// Conversational voice (QCI 1) model.
//
// Voice is the paper's headline anomaly: while data shrank, 4G voice
// (VoLTE) volume spiked ~+140% around week 12 — "seven years of growth in
// the space of a few days" — congesting the inter-MNO interconnect.
// The model produces per-(user, hour) call minutes from a diurnal profile,
// the archetype's baseline appetite, and the policy's voice multiplier;
// minutes convert to VoLTE volume at a constant codec rate, symmetric
// UL/DL. A fraction of minutes is off-net and traverses the interconnect.
#pragma once

#include "common/rng.h"
#include "common/simtime.h"
#include "mobility/policy.h"
#include "population/subscriber.h"

namespace cellscope::traffic {

struct VoiceParams {
  // Baseline daily conversational minutes per (adult) user.
  double daily_minutes = 12.0;
  // VoLTE volume per minute per direction (AMR-WB + RTP/IP overhead), MB.
  double mb_per_minute = 0.16;
  // Fraction of minutes terminating on another operator's network.
  double offnet_fraction = 0.55;
};

struct HourVoice {
  double minutes = 0.0;
  double dl_mb = 0.0;
  double ul_mb = 0.0;
  double in_call_seconds = 0.0;
  double offnet_fraction = 0.0;
};

class VoiceModel {
 public:
  VoiceModel(const mobility::PolicyTimeline& policy,
             const VoiceParams& params = {});

  [[nodiscard]] HourVoice sample_hour(const population::Subscriber& user,
                                      SimDay day, int hour_of_day,
                                      Rng& rng) const;

  // Hourly voice activity weight (normalized to mean 1 over 24h).
  [[nodiscard]] static double diurnal_weight(int hour_of_day);

  [[nodiscard]] const VoiceParams& params() const { return params_; }

 private:
  const mobility::PolicyTimeline& policy_;
  VoiceParams params_;
};

}  // namespace cellscope::traffic
