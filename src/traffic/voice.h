// Conversational voice (QCI 1) model.
//
// Voice is the paper's headline anomaly: while data shrank, 4G voice
// (VoLTE) volume spiked ~+140% around week 12 — "seven years of growth in
// the space of a few days" — congesting the inter-MNO interconnect.
// The model produces per-(user, hour) call minutes from a diurnal profile,
// the archetype's baseline appetite, and the policy's voice multiplier;
// minutes convert to VoLTE volume at a constant codec rate, symmetric
// UL/DL. A fraction of minutes is off-net and traverses the interconnect.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/simtime.h"
#include "mobility/policy.h"
#include "population/subscriber.h"

namespace cellscope::traffic {

struct VoiceParams {
  // Baseline daily conversational minutes per (adult) user.
  double daily_minutes = 12.0;
  // VoLTE volume per minute per direction (AMR-WB + RTP/IP overhead), MB.
  double mb_per_minute = 0.16;
  // Fraction of minutes terminating on another operator's network.
  double offnet_fraction = 0.55;
};

struct HourVoice {
  double minutes = 0.0;
  double dl_mb = 0.0;
  double ul_mb = 0.0;
  double in_call_seconds = 0.0;
  double offnet_fraction = 0.0;
};

class VoiceModel {
 public:
  VoiceModel(const mobility::PolicyTimeline& policy,
             const VoiceParams& params = {});

  [[nodiscard]] HourVoice sample_hour(const population::Subscriber& user,
                                      SimDay day, int hour_of_day,
                                      Rng& rng) const;

  // Hourly voice activity weight (normalized to mean 1 over 24h).
  [[nodiscard]] static double diurnal_weight(int hour_of_day);

  [[nodiscard]] const VoiceParams& params() const { return params_; }

 private:
  const mobility::PolicyTimeline& policy_;
  VoiceParams params_;
};

// One KPI day of the national call-accounting ledger: every call attempt
// classified as completed, blocked (off-net attempts turned away when the
// offered interconnect load exceeds trunk capacity) or dropped (calls cut
// by in-call trunk loss). The audit subsystem's voice-accounting law
// requires attempts == completed + blocked + dropped to hold exactly —
// an attempt that lands in no bucket (or two) is double-counting between
// the voice model and the interconnect.
struct VoiceDayCalls {
  SimDay day = 0;
  std::uint64_t attempts = 0;
  std::uint64_t completed = 0;
  std::uint64_t blocked = 0;
  std::uint64_t dropped = 0;
};

// Chronological per-day call accounting for the KPI window. Model-side
// bookkeeping (what subscribers attempted), so measurement-plane fault
// injection never perturbs it — a degraded feed loses records, not calls.
class VoiceCallLedger {
 public:
  // Appends one day's classified counts. Days must arrive in order.
  void record_day(const VoiceDayCalls& day);

  [[nodiscard]] const std::vector<VoiceDayCalls>& days() const {
    return days_;
  }
  [[nodiscard]] const VoiceDayCalls* day(SimDay day) const;
  [[nodiscard]] bool empty() const { return days_.empty(); }

  // Lifetime attempt count across every recorded day, accumulated
  // independently of the per-day rows so serialization bugs that clip a
  // day cannot go unnoticed (the audit cross-checks the two).
  [[nodiscard]] std::uint64_t total_attempts() const {
    return total_attempts_;
  }

 private:
  std::vector<VoiceDayCalls> days_;
  std::uint64_t total_attempts_ = 0;
};

}  // namespace cellscope::traffic
