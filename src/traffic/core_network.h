// Core-network signaling generation.
//
// The paper's General Signaling Dataset (Section 2.2) captures control-plane
// events — Attach, Authentication, Session establishment, dedicated bearer
// establishment/deletion, TAU, ECM-IDLE transitions, Service Requests,
// Handover, Detach — each tagged with the anonymized user id, SIM MCC/MNC,
// device TAC, serving sector, timestamp and result code. This module
// generates that event stream from the day's (cell-resolved) stays and the
// hour's data/voice activity, streaming into a sink so that memory stays
// bounded at national scale.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/rng.h"
#include "common/simtime.h"
#include "population/subscriber.h"

namespace cellscope::traffic {

enum class SignalingEventType : std::uint8_t {
  kAttach = 0,
  kAuthentication,
  kSessionEstablishment,
  kDedicatedBearerSetup,    // e.g. QCI-1 bearer for a VoLTE call
  kDedicatedBearerRelease,
  kTrackingAreaUpdate,
  kEcmIdleTransition,
  kServiceRequest,
  kHandover,
  kDetach,
};
inline constexpr int kSignalingEventTypeCount = 10;

[[nodiscard]] std::string_view signaling_event_name(SignalingEventType type);

struct SignalingEvent {
  UserId user;
  Tac tac;
  std::uint16_t mcc = 0;
  std::uint16_t mnc = 0;
  CellId cell;
  SimHour hour = 0;
  SignalingEventType type = SignalingEventType::kAttach;
  bool success = true;
};

// Where generated events go (telemetry probes implement this).
class SignalingSink {
 public:
  virtual ~SignalingSink() = default;
  virtual void on_event(const SignalingEvent& event) = 0;
};

// A user's stay resolved to its serving cell.
struct CellStay {
  CellId cell;
  std::uint8_t start_hour = 0;
  std::uint8_t end_hour = 24;
};

struct SignalingParams {
  // Home-network identity (O2 UK uses MCC 234 / MNC 10).
  std::uint16_t home_mcc = 234;
  std::uint16_t home_mnc = 10;
  double attach_failure_rate = 0.004;
  double handover_share = 0.35;  // cell changes that are active-mode HOs
  double daily_detach_probability = 0.10;
};

class SignalingGenerator {
 public:
  explicit SignalingGenerator(const SignalingParams& params = {});

  // Emits the control-plane events for one user-day. `stays` must be the
  // day's cell-resolved stays in time order; `active_data_hours` and
  // `voice_calls` shape Service Request / dedicated-bearer event volumes.
  void generate_day(const population::Subscriber& user,
                    std::span<const CellStay> stays, SimDay day,
                    int active_data_hours, int voice_calls, Rng& rng,
                    SignalingSink& sink) const;

  [[nodiscard]] const SignalingParams& params() const { return params_; }

 private:
  SignalingParams params_;
};

}  // namespace cellscope::traffic
