// Mobility matrix: residents of one county observed across all counties.
//
// Section 3.4 / Fig 7: for each Inner London resident, take the counties of
// their top-20 visited locations each day; if the home county is absent,
// the resident has (temporarily) relocated. The matrix row for county C on
// day D is the number of tracked residents present in C on D, reported as
// the percentage change against the county's median over the reference
// week. The "home county" row reveals the sustained ~10% relocation; the
// getaway-county rows reveal weekend trips, the pre-lockdown rush and the
// relocation destinations.
#pragma once

#include <span>
#include <vector>

#include "common/ids.h"
#include "common/simtime.h"
#include "common/timeseries.h"
#include "geo/uk_model.h"
#include "telemetry/observation.h"

namespace cellscope::analysis {

class MobilityMatrix {
 public:
  // Tracks residents of `home_county` over days [first_day, last_day].
  MobilityMatrix(const geo::UkGeography& geography, CountyId home_county,
                 SimDay first_day, SimDay last_day);

  // Records one tracked resident's day: marks presence in every county
  // hosting one of the observation's (top-20) towers. Days outside the
  // window and empty observations are ignored.
  void observe(const telemetry::UserDayObservation& observation,
               int top_k = 20);

  // Number of tracked residents present in `county` on `day`.
  [[nodiscard]] double presence(CountyId county, SimDay day) const;

  // Observations recorded on `day` (0 = the feed delivered nothing — the
  // day is uncovered and excluded from baselines and delta rows, because a
  // probe-outage day of zero presence is a gap, not an exodus).
  [[nodiscard]] std::size_t day_observations(SimDay day) const;
  // Days inside the window with at least one observation.
  [[nodiscard]] int covered_days() const;

  // Residents present in their home county on `day` (the Fig 7 headline row).
  [[nodiscard]] double home_presence(SimDay day) const;

  struct Row {
    CountyId county;
    double baseline = 0.0;             // median presence over baseline week
    std::vector<DayPoint> delta_pct;   // per-day % change vs baseline
  };

  // Matrix rows: the home county plus the top `top_n` receiving counties by
  // baseline-week average presence, each as delta-% vs the baseline week's
  // median (paper uses week 9).
  [[nodiscard]] std::vector<Row> rows(int baseline_week, int top_n = 10) const;

  [[nodiscard]] CountyId home_county() const { return home_county_; }
  [[nodiscard]] SimDay first_day() const { return first_day_; }
  [[nodiscard]] SimDay last_day() const { return last_day_; }

  // Serialization access (store/dataset_io): restore one presence cell /
  // one day's observation count exactly as observe() accumulated them.
  // Out-of-window days are ignored.
  void restore_presence(CountyId county, SimDay day, double presence);
  void restore_observations(SimDay day, std::size_t observations);

 private:
  const geo::UkGeography& geography_;
  CountyId home_county_;
  SimDay first_day_;
  SimDay last_day_;
  // presence_[county][day - first_day]
  std::vector<std::vector<double>> presence_;
  // observations_[day - first_day]: feed records seen per day.
  std::vector<std::size_t> observations_;
};

}  // namespace cellscope::analysis
