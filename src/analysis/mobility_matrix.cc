#include "analysis/mobility_matrix.h"

#include <algorithm>

#include "common/stats.h"

namespace cellscope::analysis {

MobilityMatrix::MobilityMatrix(const geo::UkGeography& geography,
                               CountyId home_county, SimDay first_day,
                               SimDay last_day)
    : geography_(geography),
      home_county_(home_county),
      first_day_(first_day),
      last_day_(last_day) {
  const auto days = static_cast<std::size_t>(last_day - first_day + 1);
  presence_.assign(geography.counties().size(),
                   std::vector<double>(days, 0.0));
  observations_.assign(days, 0);
}

void MobilityMatrix::observe(const telemetry::UserDayObservation& observation,
                             int top_k) {
  if (observation.day < first_day_ || observation.day > last_day_) return;
  if (observation.stays.empty()) return;
  const auto day_index = static_cast<std::size_t>(observation.day - first_day_);
  ++observations_[day_index];

  // Top-K towers by dwell (the paper checks the top-20 locations).
  std::vector<const telemetry::TowerStay*> stays;
  stays.reserve(observation.stays.size());
  for (const auto& s : observation.stays) stays.push_back(&s);
  if (top_k > 0 && stays.size() > static_cast<std::size_t>(top_k)) {
    std::nth_element(stays.begin(), stays.begin() + (top_k - 1), stays.end(),
                     [](const auto* a, const auto* b) {
                       return a->hours > b->hours;
                     });
    stays.resize(static_cast<std::size_t>(top_k));
  }

  // Mark each distinct county once.
  std::vector<std::uint32_t> seen;
  for (const auto* stay : stays) {
    const auto county = stay->county.value();
    if (std::find(seen.begin(), seen.end(), county) != seen.end()) continue;
    seen.push_back(county);
    presence_[county][day_index] += 1.0;
  }
}

void MobilityMatrix::restore_presence(CountyId county, SimDay day,
                                      double presence) {
  if (day < first_day_ || day > last_day_) return;
  presence_[county.value()][static_cast<std::size_t>(day - first_day_)] =
      presence;
}

void MobilityMatrix::restore_observations(SimDay day,
                                          std::size_t observations) {
  if (day < first_day_ || day > last_day_) return;
  observations_[static_cast<std::size_t>(day - first_day_)] = observations;
}

double MobilityMatrix::presence(CountyId county, SimDay day) const {
  if (day < first_day_ || day > last_day_) return 0.0;
  return presence_[county.value()][static_cast<std::size_t>(day - first_day_)];
}

double MobilityMatrix::home_presence(SimDay day) const {
  return presence(home_county_, day);
}

std::size_t MobilityMatrix::day_observations(SimDay day) const {
  if (day < first_day_ || day > last_day_) return 0;
  return observations_[static_cast<std::size_t>(day - first_day_)];
}

int MobilityMatrix::covered_days() const {
  int covered = 0;
  for (const auto n : observations_)
    if (n > 0) ++covered;
  return covered;
}

std::vector<MobilityMatrix::Row> MobilityMatrix::rows(int baseline_week,
                                                      int top_n) const {
  const SimDay week_start = week_start_day(baseline_week);

  // Baseline: the MEAN daily presence over the reference week. The paper
  // uses the median of week 9; at full operator scale the two coincide, but
  // at simulation scale counties that only receive weekend visitors have a
  // zero median (4+ weekdays of 0), which would erase exactly the rows
  // Fig 7 is about. DESIGN.md documents this substitution.
  const auto baseline_of = [&](std::uint32_t county) {
    std::vector<double> values;
    for (SimDay d = week_start; d < week_start + kDaysPerWeek; ++d)
      if (d >= first_day_ && d <= last_day_ &&
          observations_[static_cast<std::size_t>(d - first_day_)] > 0)
        values.push_back(
            presence_[county][static_cast<std::size_t>(d - first_day_)]);
    return stats::mean(values);
  };

  // Rank receiving counties (everything except home) by baseline presence.
  std::vector<std::pair<double, std::uint32_t>> ranked;
  for (std::uint32_t c = 0; c < presence_.size(); ++c) {
    if (c == home_county_.value()) continue;
    ranked.emplace_back(baseline_of(c), c);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (ranked.size() > static_cast<std::size_t>(top_n))
    ranked.resize(static_cast<std::size_t>(top_n));

  std::vector<Row> rows;
  const auto emit = [&](std::uint32_t county) {
    Row row;
    row.county = CountyId{county};
    row.baseline = baseline_of(county);
    for (SimDay d = first_day_; d <= last_day_; ++d) {
      // An uncovered day (no observations at all) is a feed gap, not an
      // exodus to -100%: omit the point instead of fabricating one.
      if (observations_[static_cast<std::size_t>(d - first_day_)] == 0)
        continue;
      const double value =
          presence_[county][static_cast<std::size_t>(d - first_day_)];
      row.delta_pct.push_back(
          {d, stats::delta_percent(value, row.baseline)});
    }
    rows.push_back(std::move(row));
  };

  emit(home_county_.value());
  for (const auto& [baseline, county] : ranked) emit(county);
  return rows;
}

}  // namespace cellscope::analysis
