#include "analysis/distribution.h"

#include <cassert>
#include <stdexcept>

namespace cellscope::analysis {

DistributionSeries::DistributionSeries(SimDay first_day, SimDay last_day)
    : first_day_(first_day), last_day_(last_day) {
  if (last_day < first_day)
    throw std::invalid_argument("DistributionSeries: bad day range");
  const auto n = static_cast<std::size_t>(last_day - first_day + 1);
  buffers_.resize(n);
  summaries_.resize(n);
  sealed_.assign(n, false);
}

std::size_t DistributionSeries::index(SimDay day) const {
  assert(day >= first_day_ && day <= last_day_);
  return static_cast<std::size_t>(day - first_day_);
}

void DistributionSeries::add(SimDay day, double value) {
  const auto i = index(day);
  if (sealed_[i])
    throw std::logic_error("DistributionSeries: day already sealed");
  buffers_[i].add(value);
}

void DistributionSeries::seal_day(SimDay day) {
  const auto i = index(day);
  if (sealed_[i]) return;
  summaries_[i] = buffers_[i].summarize();
  buffers_[i].clear();
  buffers_[i] = stats::SampleBuffer{};  // release capacity
  sealed_[i] = true;
}

bool DistributionSeries::sealed_day(SimDay day) const {
  if (day < first_day_ || day > last_day_) return false;
  return sealed_[index(day)];
}

void DistributionSeries::restore_day(SimDay day, const stats::Summary& summary) {
  if (day < first_day_ || day > last_day_) return;
  const auto i = index(day);
  summaries_[i] = summary;
  buffers_[i] = stats::SampleBuffer{};
  sealed_[i] = true;
}

bool DistributionSeries::has(SimDay day) const {
  if (day < first_day_ || day > last_day_) return false;
  const auto i = index(day);
  return sealed_[i] && summaries_[i].n > 0;
}

const stats::Summary& DistributionSeries::day_summary(SimDay day) const {
  return summaries_.at(index(day));
}

double DistributionSeries::week_band(int iso_week, Band band) const {
  double sum = 0.0;
  int n = 0;
  const SimDay start = week_start_day(iso_week);
  for (SimDay d = start; d < start + kDaysPerWeek; ++d) {
    if (!has(d)) continue;
    const stats::Summary& s = day_summary(d);
    switch (band) {
      case Band::kP10: sum += s.p10; break;
      case Band::kP25: sum += s.p25; break;
      case Band::kMedian: sum += s.median; break;
      case Band::kP75: sum += s.p75; break;
      case Band::kP90: sum += s.p90; break;
      case Band::kMean: sum += s.mean; break;
    }
    ++n;
  }
  return n ? sum / n : 0.0;
}

double DistributionSeries::week_iqr_ratio(int iso_week) const {
  const double median = week_band(iso_week, Band::kMedian);
  if (median == 0.0) return 0.0;
  return (week_band(iso_week, Band::kP75) - week_band(iso_week, Band::kP25)) /
         median;
}

}  // namespace cellscope::analysis
