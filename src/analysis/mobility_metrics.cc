#include "analysis/mobility_metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace cellscope::analysis {

double entropy_from_dwell(std::span<const double> hours) {
  double total = 0.0;
  for (const double h : hours) total += h;
  if (total <= 0.0) return 0.0;
  double e = 0.0;
  for (const double h : hours) {
    if (h <= 0.0) continue;
    const double p = h / total;
    e -= p * std::log(p);
  }
  return e;
}

double gyration_from_stays(std::span<const LatLon> locations,
                           std::span<const double> hours) {
  if (locations.size() != hours.size() || locations.empty()) return 0.0;
  double total = 0.0;
  for (const double h : hours) total += h;
  if (total <= 0.0) return 0.0;

  // Time-weighted centre of mass.
  double lat = 0.0, lon = 0.0;
  for (std::size_t j = 0; j < locations.size(); ++j) {
    lat += hours[j] * locations[j].lat_deg;
    lon += hours[j] * locations[j].lon_deg;
  }
  const LatLon cm{lat / total, lon / total};

  double accum = 0.0;
  for (std::size_t j = 0; j < locations.size(); ++j) {
    const double d = distance_km(locations[j], cm);
    accum += hours[j] * d * d;
  }
  return std::sqrt(accum / total);
}

std::optional<DayMetrics> compute_day_metrics(
    const telemetry::UserDayObservation& observation,
    const MobilityMetricOptions& options) {
  // Extract dwell time per tower in the selected window.
  struct Entry {
    LatLon location;
    double hours;
  };
  std::vector<Entry> entries;
  entries.reserve(observation.stays.size());
  for (const auto& stay : observation.stays) {
    const double h =
        options.four_hour_bin
            ? static_cast<double>(stay.bin_hours[static_cast<std::size_t>(
                  *options.four_hour_bin)])
            : static_cast<double>(stay.hours);
    if (h > 0.0) entries.push_back({stay.location, h});
  }
  if (entries.empty()) return std::nullopt;

  // Top-K towers by dwell time (Section 2.3 keeps the top 20).
  if (options.top_k > 0 &&
      entries.size() > static_cast<std::size_t>(options.top_k)) {
    std::nth_element(entries.begin(),
                     entries.begin() + (options.top_k - 1), entries.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.hours > b.hours;
                     });
    entries.resize(static_cast<std::size_t>(options.top_k));
  }

  std::vector<LatLon> locations;
  std::vector<double> hours;
  locations.reserve(entries.size());
  hours.reserve(entries.size());
  double total = 0.0;
  for (const auto& e : entries) {
    locations.push_back(e.location);
    hours.push_back(e.hours);
    total += e.hours;
  }

  DayMetrics metrics;
  metrics.entropy = entropy_from_dwell(hours);
  metrics.gyration_km = gyration_from_stays(locations, hours);
  metrics.towers_visited = static_cast<int>(entries.size());
  metrics.hours_observed = total;
  return metrics;
}

}  // namespace cellscope::analysis
