#include "analysis/import.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "analysis/network_metrics.h"
#include "obs/runtime.h"

namespace cellscope::analysis {

namespace {

// Strips the '\r' a CRLF-terminated dump leaves behind: std::getline
// splits on '\n' only, and a stray '\r' would otherwise poison the last
// field of every row (and, in lenient mode, quarantine the entire file).
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

// Splits one CSV line (no quoting in our schema) into at most `max` fields.
std::vector<std::string_view> split_csv(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const auto comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

double parse_double(std::string_view text, std::size_t line_number) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw std::runtime_error("kpis csv: bad number '" + std::string(text) +
                             "' on line " + std::to_string(line_number));
  return value;
}

long long parse_int(std::string_view text, std::size_t line_number) {
  long long value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw std::runtime_error("kpis csv: bad integer '" + std::string(text) +
                             "' on line " + std::to_string(line_number));
  return value;
}

// Parses one data line into a record; throws std::runtime_error with the
// line number on any malformed field (both modes share this; lenient mode
// turns the throw into a quarantine entry).
telemetry::CellDayRecord parse_record(std::string_view line,
                                      std::size_t line_number) {
  const auto fields = split_csv(line);
  if (fields.size() != 15)
    throw std::runtime_error("kpis csv: expected 15 fields, got " +
                             std::to_string(fields.size()) + " on line " +
                             std::to_string(line_number));
  telemetry::CellDayRecord record;
  record.day = static_cast<SimDay>(parse_int(fields[0], line_number));
  record.cell =
      CellId{static_cast<std::uint32_t>(parse_int(fields[2], line_number))};
  // fields[1] date, [3] site, [4] district: human columns, ignored.
  record.dl_volume_mb = parse_double(fields[5], line_number);
  record.ul_volume_mb = parse_double(fields[6], line_number);
  record.active_dl_users = parse_double(fields[7], line_number);
  record.tti_utilization = parse_double(fields[8], line_number);
  record.user_dl_throughput_mbps = parse_double(fields[9], line_number);
  record.connected_users = parse_double(fields[10], line_number);
  record.voice_volume_mb = parse_double(fields[11], line_number);
  record.simultaneous_voice_users = parse_double(fields[12], line_number);
  record.voice_dl_loss_pct = parse_double(fields[13], line_number);
  record.voice_ul_loss_pct = parse_double(fields[14], line_number);
  if (record.day < 0)
    throw std::runtime_error("kpis csv: negative day on line " +
                             std::to_string(line_number));
  return record;
}

void read_header(std::istream& is, std::string& line,
                 std::size_t& line_number) {
  if (!std::getline(is, line))
    throw std::runtime_error("kpis csv: empty input");
  ++line_number;
  strip_cr(line);
  if (line.rfind("day,date,cell", 0) != 0)
    throw std::runtime_error("kpis csv: unexpected header '" + line + "'");
}

KpiImportResult import_kpis_strict(std::istream& is) {
  KpiImportResult result;
  std::string line;
  std::size_t line_number = 0;
  read_header(is, line, line_number);

  std::vector<telemetry::CellDayRecord> day_buffer;
  SimDay current_day = -1;
  const auto flush = [&] {
    if (!day_buffer.empty()) {
      result.store.add_day(std::move(day_buffer));
      day_buffer = {};
    }
  };

  while (std::getline(is, line)) {
    ++line_number;
    strip_cr(line);
    if (line.empty()) continue;
    telemetry::CellDayRecord record;
    try {
      record = parse_record(line, line_number);
    } catch (const std::runtime_error& error) {
      // A parse failure on an unterminated final line is the signature of
      // a feed clipped mid-write; say so instead of a generic field error.
      if (is.eof())
        throw std::runtime_error(std::string(error.what()) +
                                 " (unterminated final line — input "
                                 "truncated mid-write?)");
      throw;
    }
    if (record.day != current_day) {
      if (record.day < current_day)
        throw std::runtime_error("kpis csv: days out of order on line " +
                                 std::to_string(line_number));
      flush();
      current_day = record.day;
    }
    result.cell_count =
        std::max(result.cell_count,
                 static_cast<std::size_t>(record.cell.value()) + 1);
    ++result.rows;
    day_buffer.push_back(record);
  }
  flush();
  return result;
}

KpiImportResult import_kpis_lenient(std::istream& is,
                                    const ImportOptions& options) {
  constexpr std::string_view kFeed = "kpi-import";
  KpiImportResult result;
  std::string line;
  std::size_t line_number = 0;
  read_header(is, line, line_number);

  // Collect every parseable row first; tolerate disorder by sorting.
  struct Parsed {
    telemetry::CellDayRecord record;
    std::size_t line = 0;
  };
  std::vector<Parsed> parsed;
  while (std::getline(is, line)) {
    ++line_number;
    strip_cr(line);
    if (line.empty()) continue;
    try {
      parsed.push_back({parse_record(line, line_number), line_number});
    } catch (const std::runtime_error& error) {
      ++result.quarantined;
      result.quality.quarantine(kFeed);
      if (result.quarantine_log.size() < options.max_quarantine_log) {
        std::string reason = error.what();
        if (is.eof())
          reason += " (unterminated final line — input truncated mid-write?)";
        result.quarantine_log.push_back({line_number, std::move(reason)});
      }
    }
  }
  // Stable sort keeps input order within a day, so "first occurrence wins"
  // for duplicates means first in the file.
  std::stable_sort(parsed.begin(), parsed.end(),
                   [](const Parsed& a, const Parsed& b) {
                     return a.record.day < b.record.day;
                   });

  std::vector<telemetry::CellDayRecord> day_buffer;
  std::unordered_set<std::uint32_t> cells_this_day;
  SimDay current_day = -1;
  const auto flush = [&] {
    if (!day_buffer.empty()) {
      result.store.add_day(std::move(day_buffer));
      day_buffer = {};
    }
    cells_this_day.clear();
  };

  for (const auto& row : parsed) {
    const auto& record = row.record;
    if (record.day != current_day) {
      flush();
      current_day = record.day;
    }
    result.quality.expect(kFeed, record.day);
    if (!cells_this_day.insert(record.cell.value()).second) {
      ++result.duplicates_dropped;
      result.quality.duplicate(kFeed);
      continue;
    }
    result.quality.observe(kFeed, record.day);
    result.cell_count =
        std::max(result.cell_count,
                 static_cast<std::size_t>(record.cell.value()) + 1);
    ++result.rows;
    day_buffer.push_back(record);
  }
  flush();
  return result;
}

}  // namespace

KpiImportResult import_kpis_csv(std::istream& is) {
  return import_kpis_csv(is, ImportOptions{});
}

KpiImportResult import_kpis_csv(std::istream& is,
                                const ImportOptions& options) {
  const auto span = obs::tracer().span(
      options.lenient ? "import.kpis.lenient" : "import.kpis.strict",
      "analysis");
  auto result = options.lenient ? import_kpis_lenient(is, options)
                                : import_kpis_strict(is);
  if (obs::enabled()) {
    auto& metrics = obs::metrics();
    metrics.add("import.rows", result.rows);
    metrics.add("import.quarantined", result.quarantined);
    metrics.add("import.duplicates_dropped", result.duplicates_dropped);
    obs::track_bytes(obs::Subsystem::kAnalysis,
                     result.rows * sizeof(telemetry::CellDayRecord));
    // Imports can run for minutes with no day boundary in sight; the
    // wall-clock fallback keeps the health timeline sampled.
    obs::timeline().maybe_sample();
  }
  return result;
}

CellGrouping grouping_from_names(
    const std::vector<std::string>& group_of_cell) {
  CellGrouping grouping;
  grouping.group_of.assign(group_of_cell.size(), CellGrouping::kUngrouped);
  for (std::size_t cell = 0; cell < group_of_cell.size(); ++cell) {
    const std::string& name = group_of_cell[cell];
    if (name.empty()) continue;
    std::int32_t group = CellGrouping::kUngrouped;
    for (std::size_t g = 0; g < grouping.names.size(); ++g) {
      if (grouping.names[g] == name) {
        group = static_cast<std::int32_t>(g);
        break;
      }
    }
    if (group == CellGrouping::kUngrouped) {
      group = static_cast<std::int32_t>(grouping.names.size());
      grouping.names.push_back(name);
    }
    grouping.group_of[cell] = group;
  }
  return grouping;
}

}  // namespace cellscope::analysis
