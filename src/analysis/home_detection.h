// Home detection.
//
// Section 2.3: "we use the cell tower to which the user connects more time
// during nighttime hours (12:00 PM through 8:00 AM) for at least 14 days
// (not necessarily consecutive) during February 2020", yielding a home
// postcode per user. HomeDetector is a streaming accumulator: feed it every
// user-day observation from the calibration window, then finalize() to get
// each user's home tower/district/county (or nothing, if the user failed
// the night-count threshold — the paper resolves ~16M homes out of ~22M
// users this way).
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/simtime.h"
#include "telemetry/observation.h"

namespace cellscope::analysis {

struct HomeDetectionParams {
  // Nights with presence required inside the window (>= 14 in the paper).
  int min_nights = 14;
  // Calibration window [first_day, end_day) — February by default.
  SimDay first_day = kFebruaryFirstDay;
  SimDay end_day = kFebruaryEndDay;
};

struct HomeRecord {
  UserId user;
  SiteId home_site;
  PostcodeDistrictId home_district;
  CountyId home_county;
  double night_hours = 0.0;  // dwell at the winning tower
  int nights_observed = 0;
};

// Resolution accounting: how many users entered the night-count race and
// how many cleared the threshold. Under feed outages the candidate pool is
// unchanged but `below_threshold` grows — the paper's ~16M/22M resolution
// rate is the quantity to watch when nights go missing.
struct HomeDetectionStats {
  std::size_t candidates = 0;       // users with >= 1 observed night
  std::size_t resolved = 0;         // users clearing min_nights
  std::size_t below_threshold = 0;  // candidates - resolved
};

class HomeDetector {
 public:
  explicit HomeDetector(const HomeDetectionParams& params = {});

  // Observations outside the window are ignored, so callers can feed the
  // whole simulation stream.
  void observe(const telemetry::UserDayObservation& observation);

  // Users that satisfied the threshold, in UserId order.
  [[nodiscard]] std::vector<HomeRecord> finalize() const;

  // Convenience: per-user home lookup (nullopt = undetected).
  [[nodiscard]] std::optional<HomeRecord> home_of(UserId user) const;

  // Candidate/resolved counts for the current accumulator state.
  [[nodiscard]] HomeDetectionStats stats() const;

  [[nodiscard]] const HomeDetectionParams& params() const { return params_; }

  // Checkpoint support (docs/RECOVERY.md): mid-window accumulator state as
  // plain structs, sorted by user then site, so a resumed run rebuilds an
  // accumulator that finalizes to the exact same homes.
  struct SavedUserState {
    struct Site {
      std::uint32_t site = 0;
      double night_hours = 0.0;
      std::uint32_t district = 0;
      std::uint32_t county = 0;
    };
    std::uint32_t user = 0;
    std::uint32_t nights = 0;
    SimDay last_night_day = -1;
    std::vector<Site> sites;
  };
  [[nodiscard]] std::vector<SavedUserState> save_state() const;
  // Replaces the accumulator state (callers restore into a fresh detector).
  void restore_state(const std::vector<SavedUserState>& saved);

 private:
  struct UserAccumulator {
    // Night dwell hours per candidate tower. Ordered maps, deliberately:
    // finalize() breaks exact dwell ties by taking the first maximum, so
    // iteration order is part of the result — it must survive a checkpoint
    // save/restore cycle, which hash iteration order does not.
    std::map<std::uint32_t, double> site_night_hours;
    // Per-tower metadata (first observation wins; topology is stable).
    std::map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>>
        site_geo;  // site -> (district, county)
    std::uint32_t nights = 0;
    SimDay last_night_day = -1;
  };

  HomeDetectionParams params_;
  std::unordered_map<std::uint32_t, UserAccumulator> users_;
};

}  // namespace cellscope::analysis
