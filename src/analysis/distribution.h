// Per-day distribution bands.
//
// The figures plot medians, but the paper repeatedly comments on the
// distributions behind them: "metrics distributions have little variance in
// all regions, and all percentiles are close to the median" (Section 3.2),
// and the one exception it flags — the 90th percentile of active DL users
// shrinking during lockdown (Section 4.1). DistributionSeries captures a
// per-day Summary (p10/p25/median/p75/p90/mean) of a population of values,
// so those statements become checkable outputs instead of prose.
#pragma once

#include <vector>

#include "common/simtime.h"
#include "common/stats.h"

namespace cellscope::analysis {

class DistributionSeries {
 public:
  DistributionSeries() = default;
  DistributionSeries(SimDay first_day, SimDay last_day);

  // Accumulates one sample into `day`'s population.
  void add(SimDay day, double value);

  // Reduces and clears a day's buffered samples. The simulator calls this at
  // the end of each day so peak memory stays one day's population.
  void seal_day(SimDay day);

  [[nodiscard]] bool has(SimDay day) const;
  [[nodiscard]] const stats::Summary& day_summary(SimDay day) const;

  // Serialization access (store/dataset_io): whether a day has been sealed
  // (independent of its sample count — a sealed empty day is state too),
  // and the inverse of seal_day for restoring a saved summary.
  [[nodiscard]] bool sealed_day(SimDay day) const;
  void restore_day(SimDay day, const stats::Summary& summary);

  [[nodiscard]] SimDay first_day() const { return first_day_; }
  [[nodiscard]] SimDay last_day() const { return last_day_; }

  // Mean of a percentile across an ISO week (for weekly band tables).
  enum class Band { kP10, kP25, kMedian, kP75, kP90, kMean };
  [[nodiscard]] double week_band(int iso_week, Band band) const;

  // Relative band width (p75 - p25) / median for a week; the paper's
  // "percentiles close to the median" claim is a statement that this stays
  // small and roughly constant. Returns 0 for a zero median.
  [[nodiscard]] double week_iqr_ratio(int iso_week) const;

 private:
  [[nodiscard]] std::size_t index(SimDay day) const;

  SimDay first_day_ = 0;
  SimDay last_day_ = -1;
  std::vector<stats::SampleBuffer> buffers_;
  std::vector<stats::Summary> summaries_;
  std::vector<bool> sealed_;
};

}  // namespace cellscope::analysis
