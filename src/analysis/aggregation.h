// Grouped aggregation of per-user mobility metrics.
//
// Every mobility figure reports, per day or week, the average metric value
// over the users of some group — the whole country (Fig 3), a region
// (Fig 5) or a geodemographic cluster (Fig 6) — expressed as the percentage
// change against the (national or per-group) average in week 9.
// GroupedDailySeries is the streaming accumulator for that: the simulator
// adds each user-day metric to its group(s) as days complete, and the
// figure builders read out daily/weekly delta series at the end.
#pragma once

#include <cstddef>
#include <vector>

#include "common/simtime.h"
#include "common/timeseries.h"

namespace cellscope::analysis {

class GroupedDailySeries {
 public:
  GroupedDailySeries() = default;
  GroupedDailySeries(std::size_t group_count, SimDay first_day,
                     SimDay last_day);

  // Adds one sample to a group's day (value(day) averages the adds).
  void add(std::size_t group, SimDay day, double value);

  [[nodiscard]] std::size_t group_count() const { return series_.size(); }
  [[nodiscard]] const DailySeries& group(std::size_t index) const {
    return series_.at(index);
  }
  // Mutable group access for serialization (store/dataset_io restores raw
  // per-day sums via DailySeries::restore).
  [[nodiscard]] DailySeries& group_mutable(std::size_t index) {
    return series_.at(index);
  }

  // Samples recorded for a group's day (0 = the day is a gap, not a zero).
  [[nodiscard]] std::size_t day_samples(std::size_t group, SimDay day) const;

  // Average-per-day % change vs `baseline` (Fig 3 / Fig 7 shape). Days
  // without data are skipped, never zero-filled.
  [[nodiscard]] std::vector<DayPoint> daily_delta(std::size_t group,
                                                  double baseline) const;
  // Weekly-median % change vs `baseline` (Figs 5, 6, 8..12 shape). Weeks
  // with fewer than `min_samples` covered days are omitted.
  [[nodiscard]] std::vector<WeekPoint> weekly_delta(std::size_t group,
                                                    double baseline,
                                                    int from_week,
                                                    int to_week,
                                                    int min_samples = 1) const;

  // Mean of the group's daily averages over an ISO week — the reference
  // value figures baseline against (typically week 9). Missing days are
  // skipped, not averaged in as zeros.
  [[nodiscard]] double week_baseline(std::size_t group, int iso_week) const;

  // Coverage-checked baseline: throws std::runtime_error when the baseline
  // week has fewer than `min_days` covered days — a baseline computed over
  // a mostly-dark reference week silently corrupts every delta derived
  // from it, so the caller must opt in to anything below full coverage.
  [[nodiscard]] double week_baseline(std::size_t group, int iso_week,
                                     int min_days) const;

  // Covered days (0..7) of a group's ISO week.
  [[nodiscard]] int week_coverage(std::size_t group, int iso_week) const;

 private:
  std::vector<DailySeries> series_;
};

}  // namespace cellscope::analysis
