#include "analysis/export.h"

#include <ostream>

namespace cellscope::analysis {

void export_kpis_csv_header(std::ostream& os) {
  os << "day,date,cell,site,district,dl_mb,ul_mb,active_dl_users,"
        "tti_utilization,user_dl_tput_mbps,connected_users,voice_mb,"
        "voice_users,voice_dl_loss_pct,voice_ul_loss_pct\n";
}

void export_kpi_row_csv(std::ostream& os, const telemetry::CellDayRecord& r,
                        const radio::RadioTopology& topology,
                        const geo::UkGeography& geography) {
  const auto& cell = topology.cell(r.cell);
  const auto& site = topology.site(cell.site);
  os << r.day << ',' << format_date(r.day) << ',' << r.cell.value() << ','
     << site.id.value() << ',' << geography.district(site.district).name
     << ',' << r.dl_volume_mb << ',' << r.ul_volume_mb << ','
     << r.active_dl_users << ',' << r.tti_utilization << ','
     << r.user_dl_throughput_mbps << ',' << r.connected_users << ','
     << r.voice_volume_mb << ',' << r.simultaneous_voice_users << ','
     << r.voice_dl_loss_pct << ',' << r.voice_ul_loss_pct << '\n';
}

void export_kpis_csv(std::ostream& os, const telemetry::KpiStore& store,
                     const radio::RadioTopology& topology,
                     const geo::UkGeography& geography) {
  export_kpis_csv_header(os);
  for (const auto& r : store.records())
    export_kpi_row_csv(os, r, topology, geography);
}

void export_grouped_series_csv(std::ostream& os,
                               const GroupedDailySeries& series,
                               std::span<const std::string> group_names) {
  os << "day,date,group,value,count\n";
  for (std::size_t g = 0; g < series.group_count(); ++g) {
    const auto& daily = series.group(g);
    const std::string name =
        g < group_names.size() ? group_names[g] : std::to_string(g);
    for (SimDay d = daily.first_day(); d <= daily.last_day(); ++d) {
      if (!daily.has(d)) continue;
      os << d << ',' << format_date(d) << ',' << name << ',' << daily.value(d)
         << ',' << daily.count(d) << '\n';
    }
  }
}

void export_mobility_matrix_csv(std::ostream& os,
                                const MobilityMatrix& matrix,
                                const geo::UkGeography& geography,
                                int baseline_week, int top_n) {
  os << "county,day,date,presence_delta_pct,baseline\n";
  for (const auto& row : matrix.rows(baseline_week, top_n)) {
    const auto& county = geography.county(row.county);
    for (const auto& point : row.delta_pct) {
      os << county.name << ',' << point.day << ',' << format_date(point.day)
         << ',' << point.value << ',' << row.baseline << '\n';
    }
  }
}

void export_signaling_csv(std::ostream& os, const telemetry::SignalingProbe& probe) {
  os << "day,date,event,total,failures\n";
  for (const auto& day : probe.days()) {
    for (int type = 0; type < traffic::kSignalingEventTypeCount; ++type) {
      if (day.total[type] == 0) continue;
      os << day.day << ',' << format_date(day.day) << ','
         << traffic::signaling_event_name(
                static_cast<traffic::SignalingEventType>(type))
         << ',' << day.total[type] << ',' << day.failures[type] << '\n';
    }
  }
}

void export_quality_csv(std::ostream& os,
                        const telemetry::FeedQualityReport& report) {
  os << "feed,day,date,expected,observed,coverage,quarantined,duplicates\n";
  for (const auto& feed : report.feeds()) {
    for (const auto& [day, counts] : feed.days) {
      os << feed.name << ',' << day << ',' << format_date(day) << ','
         << counts.expected << ',' << counts.observed << ','
         << feed.coverage(day) << ",0,0\n";
    }
    os << feed.name << ",-1,total," << feed.expected_records << ','
       << feed.observed_records << ',' << feed.completeness() << ','
       << feed.quarantined_records << ',' << feed.duplicate_records << '\n';
  }
}

}  // namespace cellscope::analysis
