// CSV import of measurement feeds.
//
// The inverse of analysis/export.h: reconstructs a KpiStore (and the
// grouped series) from the CSV schema the exporters write. This is what
// makes the framework usable on *real* operator exports — any warehouse
// dump with the same columns feeds the identical figure pipeline, no
// simulator involved. Import is strict: malformed rows raise, because a
// silent parse failure in a measurement pipeline is a corrupted figure.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/network_metrics.h"
#include "telemetry/kpi.h"

namespace cellscope::analysis {

struct KpiImportResult {
  telemetry::KpiStore store;
  // Highest cell id seen + 1 (for sizing groupings built from the CSV).
  std::size_t cell_count = 0;
  std::size_t rows = 0;
};

// Parses the `export_kpis_csv` schema:
//   day,date,cell,site,district,dl_mb,ul_mb,active_dl_users,
//   tti_utilization,user_dl_tput_mbps,connected_users,voice_mb,
//   voice_users,voice_dl_loss_pct,voice_ul_loss_pct
// The `date`, `site` and `district` columns are carried for humans and
// ignored here; rows must be grouped by day in ascending order (as the
// exporter writes them). Throws std::runtime_error with the line number on
// malformed input.
[[nodiscard]] KpiImportResult import_kpis_csv(std::istream& is);

// Builds a grouping for an imported store from a per-cell group column:
// `group_of_cell[cell id] = group name`. Cells absent from the map are
// ungrouped. Group indices are assigned in first-appearance order.
[[nodiscard]] CellGrouping grouping_from_names(
    const std::vector<std::string>& group_of_cell);

}  // namespace cellscope::analysis
