// CSV import of measurement feeds.
//
// The inverse of analysis/export.h: reconstructs a KpiStore (and the
// grouped series) from the CSV schema the exporters write. This is what
// makes the framework usable on *real* operator exports — any warehouse
// dump with the same columns feeds the identical figure pipeline, no
// simulator involved. Import is strict by default: malformed rows raise,
// because a silent parse failure in a measurement pipeline is a corrupted
// figure. Lenient mode instead *quarantines* malformed rows (keeping line
// numbers and reasons), deduplicates repeated (cell, day) keys and reports
// everything through a FeedQualityReport, so a degraded warehouse dump can
// still feed the pipeline with its damage on the record.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/network_metrics.h"
#include "telemetry/kpi.h"
#include "telemetry/quality.h"

namespace cellscope::analysis {

struct ImportOptions {
  // Quarantine malformed rows instead of throwing. Out-of-order days and
  // duplicate (cell, day) keys are also tolerated (rows are re-sorted and
  // deduplicated, first occurrence wins).
  bool lenient = false;
  // Cap on per-row quarantine log entries kept (counters are exact).
  std::size_t max_quarantine_log = 20;
};

struct QuarantinedRow {
  std::size_t line = 0;  // 1-based line number in the input
  std::string reason;
};

struct KpiImportResult {
  telemetry::KpiStore store;
  // Highest cell id seen + 1 (for sizing groupings built from the CSV).
  std::size_t cell_count = 0;
  std::size_t rows = 0;  // rows kept in the store
  // Lenient-mode accounting (all zero / empty under strict import).
  std::size_t quarantined = 0;
  std::size_t duplicates_dropped = 0;
  std::vector<QuarantinedRow> quarantine_log;  // first max_quarantine_log
  telemetry::FeedQualityReport quality;
};

// Parses the `export_kpis_csv` schema:
//   day,date,cell,site,district,dl_mb,ul_mb,active_dl_users,
//   tti_utilization,user_dl_tput_mbps,connected_users,voice_mb,
//   voice_users,voice_dl_loss_pct,voice_ul_loss_pct
// The `date`, `site` and `district` columns are carried for humans and
// ignored here; rows must be grouped by day in ascending order (as the
// exporter writes them). Throws std::runtime_error with the line number on
// malformed input.
[[nodiscard]] KpiImportResult import_kpis_csv(std::istream& is);

// As above with explicit options. With `options.lenient` set, malformed
// data rows are quarantined (counted, first `max_quarantine_log` logged
// with line + reason), duplicate (cell, day) rows are dropped keeping the
// first occurrence, out-of-order days are re-sorted, and the result's
// `quality` report carries the per-day accounting under the feed name
// "kpi-import". A bad header still throws in both modes — a wrong schema
// is never partially salvageable.
[[nodiscard]] KpiImportResult import_kpis_csv(std::istream& is,
                                              const ImportOptions& options);

// Builds a grouping for an imported store from a per-cell group column:
// `group_of_cell[cell id] = group name`. Cells absent from the map are
// ungrouped. Group indices are assigned in first-appearance order.
[[nodiscard]] CellGrouping grouping_from_names(
    const std::vector<std::string>& group_of_cell);

}  // namespace cellscope::analysis
