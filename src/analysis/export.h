// CSV export of the measurement feeds.
//
// Everything the benches print can also be dumped as CSV so the series can
// be re-plotted or joined outside the repo (the same role the operator's
// data-warehouse exports play for the paper's authors). Exporters write
// through std::ostream so tests and callers can target files or buffers.
#pragma once

#include <iosfwd>

#include "analysis/aggregation.h"
#include "analysis/mobility_matrix.h"
#include "geo/uk_model.h"
#include "radio/topology.h"
#include "telemetry/kpi.h"
#include "telemetry/probes.h"
#include "telemetry/quality.h"

namespace cellscope::analysis {

// Per-cell-day KPI rows:
//   day,date,cell,site,district,dl_mb,ul_mb,active_dl_users,tti,...
void export_kpis_csv(std::ostream& os, const telemetry::KpiStore& store,
                     const radio::RadioTopology& topology,
                     const geo::UkGeography& geography);

// Streaming variant of the same schema, one call per record: the header
// line, then rows in whatever order the caller produces them. This is the
// out-of-core path — export_feeds streams KPI rows straight off a
// cellstore shard reader through these without materializing a KpiStore.
void export_kpis_csv_header(std::ostream& os);
void export_kpi_row_csv(std::ostream& os, const telemetry::CellDayRecord& r,
                        const radio::RadioTopology& topology,
                        const geo::UkGeography& geography);

// One grouped mobility series:
//   day,date,group,value,count
void export_grouped_series_csv(std::ostream& os,
                               const GroupedDailySeries& series,
                               std::span<const std::string> group_names);

// Fig 7-style matrix rows:
//   county,day,date,presence_delta_pct,baseline
void export_mobility_matrix_csv(std::ostream& os,
                                const MobilityMatrix& matrix,
                                const geo::UkGeography& geography,
                                int baseline_week, int top_n = 10);

// Daily signaling counters:
//   day,date,event,total,failures
void export_signaling_csv(std::ostream& os, const telemetry::SignalingProbe& probe);

// Data-quality accounting:
//   feed,day,date,expected,observed,coverage,quarantined,duplicates
// One row per tracked feed-day, then one totals row per feed (day -1,
// date "total") carrying the feed-level quarantine/duplicate counters and
// overall completeness in the coverage column.
void export_quality_csv(std::ostream& os,
                        const telemetry::FeedQualityReport& report);

}  // namespace cellscope::analysis
