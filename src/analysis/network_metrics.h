// Grouped network-performance series.
//
// Sections 4.1-4.5 and 5 slice the per-cell daily KPI records along three
// geographies: named regions (Fig 8), geodemographic clusters (Figs 10, 12)
// and London postal areas (Fig 11). This module builds, for any cell->group
// map, the per-day per-group *median across cells* of a KPI, and derives
// the weekly-median delta-% lines the figures plot. Group maps for the
// three geographies (plus "UK — all regions") are provided as helpers over
// the radio topology.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/timeseries.h"
#include "geo/uk_model.h"
#include "radio/topology.h"
#include "telemetry/kpi.h"

namespace cellscope::analysis {

// Cell-to-group assignment: groups[cell id] in [0, group_count), or
// kUngrouped to exclude the cell. A cell may additionally belong to the
// special "all" group when `all_group` is set (the "UK - all regions" line).
struct CellGrouping {
  static constexpr std::int32_t kUngrouped = -1;

  std::vector<std::int32_t> group_of;  // by CellId value
  std::vector<std::string> names;      // group display names
  std::int32_t all_group = kUngrouped; // optional catch-all group index

  [[nodiscard]] std::size_t group_count() const { return names.size(); }
};

// "UK - all regions" + the five Section 4.3 analysis counties.
[[nodiscard]] CellGrouping group_by_region(const geo::UkGeography& geography,
                                           const radio::RadioTopology& topology);

// The eight OAC supergroups (Fig 10). `restrict_to_county`, if valid,
// limits cells to that county (Fig 12: London clusters).
[[nodiscard]] CellGrouping group_by_cluster(
    const geo::UkGeography& geography, const radio::RadioTopology& topology,
    CountyId restrict_to_county = CountyId::invalid());

// Inner London postal areas (Fig 11: EC, WC, N, ... — the LADs of the
// Inner London county).
[[nodiscard]] CellGrouping group_by_london_postal_area(
    const geo::UkGeography& geography, const radio::RadioTopology& topology);

// One group per radio technology (2G/3G/4G). Only meaningful on stores
// collected with collect_legacy_kpis; the default store contains 4G only.
[[nodiscard]] CellGrouping group_by_rat(const radio::RadioTopology& topology);

// How the per-cell daily values reduce into the group's daily value.
// Per-cell KPI panels use the median across cells (the paper's "median
// variation per cluster"); totals ("the total number of users connected to
// the network", Section 4.4) use the sum.
enum class CellReduction : std::uint8_t { kMedian = 0, kMean, kSum };

// Per-day per-group reduction (across cells) of one KPI metric.
class KpiGroupSeries {
 public:
  KpiGroupSeries() = default;

  // Builds from the full KPI store; records must be day-ordered (KpiStore
  // guarantees this).
  KpiGroupSeries(const telemetry::KpiStore& store,
                 const CellGrouping& grouping, telemetry::KpiMetric metric,
                 CellReduction reduction = CellReduction::kMedian);

  [[nodiscard]] const DailySeries& group(std::size_t index) const {
    return series_.at(index);
  }
  [[nodiscard]] std::size_t group_count() const { return series_.size(); }

  // Cells that actually reported into the group's daily value (0 = the day
  // is a gap for that group — its cells were all dark, not all idle).
  [[nodiscard]] std::size_t cells_reporting(std::size_t group,
                                            SimDay day) const;

  // Weekly-median delta-% vs the group's own baseline-week median daily
  // value (the Fig 8..12 line shape). Weeks with fewer than `min_samples`
  // covered days are omitted rather than reduced over their remnants.
  [[nodiscard]] std::vector<WeekPoint> weekly_delta(std::size_t group,
                                                    int baseline_week,
                                                    int from_week,
                                                    int to_week,
                                                    int min_samples = 1) const;

  // The group's baseline: median of its daily values over `baseline_week`.
  [[nodiscard]] double baseline(std::size_t group, int baseline_week) const;

  // Coverage-checked baseline: throws std::runtime_error when the baseline
  // week has fewer than `min_days` covered days for the group.
  [[nodiscard]] double baseline(std::size_t group, int baseline_week,
                                int min_days) const;

 private:
  std::vector<DailySeries> series_;
  std::vector<DailySeries> cell_counts_;  // per-day cells reporting
};

}  // namespace cellscope::analysis
