// Control-plane intensity series.
//
// The General Signaling Dataset is the paper's raw material for mobility,
// but it is also an operational signal in its own right: handovers track
// physical movement, Tracking Area Updates track camping changes, dedicated
// QCI-1 bearer setups track call attempts, attach failures track core
// health. This module turns the probe's daily counters into the same
// DailySeries/delta machinery the figures use, so control-plane load can be
// plotted and compared against week 9 exactly like any KPI.
#pragma once

#include <vector>

#include "common/timeseries.h"
#include "telemetry/probes.h"

namespace cellscope::analysis {

// Daily totals of one signaling event type.
[[nodiscard]] DailySeries signaling_series(
    const telemetry::SignalingProbe& probe,
    traffic::SignalingEventType type);

// Daily totals across every event type.
[[nodiscard]] DailySeries signaling_total_series(
    const telemetry::SignalingProbe& probe);

// Daily failure rate (failures / total) of one event type, in percent.
[[nodiscard]] DailySeries signaling_failure_series(
    const telemetry::SignalingProbe& probe,
    traffic::SignalingEventType type);

// Weekly delta-% of an event type's daily totals vs a baseline week — the
// figure-shaped view ("handovers vs week 9").
[[nodiscard]] std::vector<WeekPoint> signaling_weekly_delta(
    const telemetry::SignalingProbe& probe,
    traffic::SignalingEventType type, int baseline_week, int from_week,
    int to_week);

}  // namespace cellscope::analysis
