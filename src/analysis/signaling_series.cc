#include "analysis/signaling_series.h"

namespace cellscope::analysis {

namespace {

// Probe days are chronological; an empty probe yields an empty series.
DailySeries make_series(const telemetry::SignalingProbe& probe) {
  if (probe.days().empty()) return {};
  return DailySeries{probe.days().front().day, probe.days().back().day};
}

}  // namespace

DailySeries signaling_series(const telemetry::SignalingProbe& probe,
                             traffic::SignalingEventType type) {
  DailySeries series = make_series(probe);
  for (const auto& day : probe.days())
    series.set(day.day,
               static_cast<double>(day.total[static_cast<int>(type)]));
  return series;
}

DailySeries signaling_total_series(const telemetry::SignalingProbe& probe) {
  DailySeries series = make_series(probe);
  for (const auto& day : probe.days())
    series.set(day.day, static_cast<double>(day.total_events()));
  return series;
}

DailySeries signaling_failure_series(const telemetry::SignalingProbe& probe,
                                     traffic::SignalingEventType type) {
  DailySeries series = make_series(probe);
  for (const auto& day : probe.days())
    series.set(day.day, 100.0 * day.failure_rate(type));
  return series;
}

std::vector<WeekPoint> signaling_weekly_delta(
    const telemetry::SignalingProbe& probe,
    traffic::SignalingEventType type, int baseline_week, int from_week,
    int to_week) {
  const DailySeries series = signaling_series(probe, type);
  if (series.empty()) return {};
  return weekly_median_delta_percent(series, series.week_median(baseline_week),
                                     from_week, to_week);
}

}  // namespace cellscope::analysis
