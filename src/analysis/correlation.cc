#include "analysis/correlation.h"

#include <algorithm>

#include "common/stats.h"

namespace cellscope::analysis {

std::vector<ScatterPoint> entropy_cases_scatter(
    const DailySeries& national_entropy, double baseline,
    const mobility::EpidemicCurve& epidemic, SimDay from_day, SimDay to_day) {
  std::vector<ScatterPoint> points;
  for (SimDay d = std::max(from_day, national_entropy.first_day());
       d <= std::min(to_day, national_entropy.last_day()); ++d) {
    if (!national_entropy.has(d)) continue;
    ScatterPoint point;
    point.day = d;
    point.cumulative_cases = epidemic.cumulative_cases(d);
    point.entropy_delta_pct =
        stats::delta_percent(national_entropy.value(d), baseline);
    point.weekend = is_weekend(d);
    points.push_back(point);
  }
  return points;
}

double scatter_correlation(std::span<const ScatterPoint> points) {
  std::vector<double> x, y;
  x.reserve(points.size());
  y.reserve(points.size());
  for (const auto& p : points) {
    x.push_back(p.cumulative_cases);
    y.push_back(p.entropy_delta_pct);
  }
  return stats::pearson(x, y);
}

double series_correlation(const DailySeries& a, const DailySeries& b) {
  std::vector<double> x, y;
  const SimDay from = std::max(a.first_day(), b.first_day());
  const SimDay to = std::min(a.last_day(), b.last_day());
  for (SimDay d = from; d <= to; ++d) {
    if (!a.has(d) || !b.has(d)) continue;
    x.push_back(a.value(d));
    y.push_back(b.value(d));
  }
  return stats::pearson(x, y);
}

}  // namespace cellscope::analysis
