#include "analysis/validation.h"

namespace cellscope::analysis {

HomeValidation validate_homes(const geo::UkGeography& geography,
                              std::span<const HomeRecord> homes,
                              std::int64_t subscriber_count) {
  HomeValidation validation;

  std::vector<std::int64_t> counts(geography.lads().size(), 0);
  for (const auto& home : homes) {
    const auto& district = geography.district(home.home_district);
    ++counts[district.lad.value()];
  }

  std::vector<double> x, y;
  x.reserve(counts.size());
  y.reserve(counts.size());
  for (const auto& lad : geography.lads()) {
    LadValidationPoint point;
    point.lad = lad.id;
    point.census_population = lad.census_population;
    point.inferred_residents = counts[lad.id.value()];
    validation.points.push_back(point);
    x.push_back(static_cast<double>(point.census_population));
    y.push_back(static_cast<double>(point.inferred_residents));
  }
  validation.fit = stats::linear_fit(x, y);
  validation.expected_market_share =
      geo::expected_market_share(geography, subscriber_count);
  return validation;
}

}  // namespace cellscope::analysis
