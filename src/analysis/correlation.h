// Correlation studies.
//
// Two figures hinge on correlations:
//  * Fig 4 scatters the daily national entropy variation against the
//    cumulative SARS-CoV-2 case count and finds *no* correlation — mobility
//    responded to announcements, not to case numbers;
//  * Section 4.4 correlates the total number of connected users with the
//    downlink volume per geodemographic cluster (Cosmopolitans +0.973,
//    Ethnicity Central +0.816, Rural +0.299, Suburbanites -0.466).
#pragma once

#include <span>
#include <vector>

#include "common/simtime.h"
#include "common/timeseries.h"
#include "mobility/policy.h"

namespace cellscope::analysis {

struct ScatterPoint {
  SimDay day = 0;
  double cumulative_cases = 0.0;
  double entropy_delta_pct = 0.0;
  bool weekend = false;
};

// Builds the Fig 4 scatter from a national per-day entropy series, its
// baseline and the epidemic curve, over [from_day, to_day].
[[nodiscard]] std::vector<ScatterPoint> entropy_cases_scatter(
    const DailySeries& national_entropy, double baseline,
    const mobility::EpidemicCurve& epidemic, SimDay from_day, SimDay to_day);

// Pearson correlation over the scatter (cases vs entropy delta).
[[nodiscard]] double scatter_correlation(std::span<const ScatterPoint> points);

// Pearson correlation between two daily series over their common days
// (used for the Section 4.4 users-vs-volume cluster correlations).
[[nodiscard]] double series_correlation(const DailySeries& a,
                                        const DailySeries& b);

}  // namespace cellscope::analysis
