#include "analysis/network_metrics.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/stats.h"

namespace cellscope::analysis {

namespace {
// The five Section 4.3 counties, in figure order.
constexpr std::array<geo::Region, 5> kFigureRegions = {
    geo::Region::kOuterLondon, geo::Region::kInnerLondon,
    geo::Region::kGreaterManchester, geo::Region::kWestMidlands,
    geo::Region::kWestYorkshire};
}  // namespace

CellGrouping group_by_region(const geo::UkGeography& geography,
                             const radio::RadioTopology& topology) {
  (void)geography;
  CellGrouping grouping;
  grouping.names.emplace_back("UK - all regions");
  grouping.all_group = 0;
  for (const auto region : kFigureRegions)
    grouping.names.emplace_back(geo::region_name(region));

  grouping.group_of.assign(topology.cells().size(), CellGrouping::kUngrouped);
  for (const auto cell_id : topology.lte_cells()) {
    const auto& site = topology.site(topology.cell(cell_id).site);
    std::int32_t group = CellGrouping::kUngrouped;
    for (std::size_t r = 0; r < kFigureRegions.size(); ++r) {
      if (site.region == kFigureRegions[r]) {
        group = static_cast<std::int32_t>(r + 1);
        break;
      }
    }
    grouping.group_of[cell_id.value()] = group;
  }
  return grouping;
}

CellGrouping group_by_cluster(const geo::UkGeography& geography,
                              const radio::RadioTopology& topology,
                              CountyId restrict_to_county) {
  CellGrouping grouping;
  for (const auto cluster : geo::all_oac_clusters())
    grouping.names.emplace_back(geo::oac_name(cluster));

  grouping.group_of.assign(topology.cells().size(), CellGrouping::kUngrouped);
  for (const auto cell_id : topology.lte_cells()) {
    const auto& site = topology.site(topology.cell(cell_id).site);
    if (restrict_to_county.valid() && site.county != restrict_to_county)
      continue;
    const auto& district = geography.district(site.district);
    grouping.group_of[cell_id.value()] =
        static_cast<std::int32_t>(district.cluster);
  }
  return grouping;
}

CellGrouping group_by_london_postal_area(
    const geo::UkGeography& geography, const radio::RadioTopology& topology) {
  CellGrouping grouping;
  const auto inner = geography.county_by_name("Inner London");
  std::vector<std::int32_t> lad_to_group(geography.lads().size(),
                                         CellGrouping::kUngrouped);
  for (const auto& lad : geography.lads()) {
    if (!inner || lad.county != *inner) continue;
    lad_to_group[lad.id.value()] =
        static_cast<std::int32_t>(grouping.names.size());
    grouping.names.push_back(lad.name);
  }

  grouping.group_of.assign(topology.cells().size(), CellGrouping::kUngrouped);
  for (const auto cell_id : topology.lte_cells()) {
    const auto& site = topology.site(topology.cell(cell_id).site);
    const auto& district = geography.district(site.district);
    grouping.group_of[cell_id.value()] = lad_to_group[district.lad.value()];
  }
  return grouping;
}

CellGrouping group_by_rat(const radio::RadioTopology& topology) {
  CellGrouping grouping;
  grouping.names = {"2G", "3G", "4G"};
  grouping.group_of.assign(topology.cells().size(), CellGrouping::kUngrouped);
  for (const auto& cell : topology.cells())
    grouping.group_of[cell.id.value()] = static_cast<std::int32_t>(cell.rat);
  return grouping;
}

KpiGroupSeries::KpiGroupSeries(const telemetry::KpiStore& store,
                               const CellGrouping& grouping,
                               telemetry::KpiMetric metric,
                               CellReduction reduction) {
  if (store.empty()) return;
  series_.reserve(grouping.group_count());
  cell_counts_.reserve(grouping.group_count());
  for (std::size_t g = 0; g < grouping.group_count(); ++g) {
    series_.emplace_back(store.first_day(), store.last_day());
    cell_counts_.emplace_back(store.first_day(), store.last_day());
  }

  // Records are day-major: walk day runs and reduce each group per day.
  std::vector<stats::SampleBuffer> buffers(grouping.group_count());
  const auto reduce = [&](const stats::SampleBuffer& buffer) {
    switch (reduction) {
      case CellReduction::kMedian: return buffer.median();
      case CellReduction::kMean: return buffer.mean();
      case CellReduction::kSum: return buffer.mean() *
                                       static_cast<double>(buffer.size());
    }
    return buffer.median();
  };
  const auto flush_day = [&](SimDay day) {
    for (std::size_t g = 0; g < buffers.size(); ++g) {
      if (!buffers[g].empty()) {
        series_[g].set(day, reduce(buffers[g]));
        cell_counts_[g].set(day, static_cast<double>(buffers[g].size()));
      }
      buffers[g].clear();
    }
  };

  SimDay current = store.first_day();
  for (const auto& record : store.records()) {
    if (record.day != current) {
      flush_day(current);
      current = record.day;
    }
    const auto group = grouping.group_of[record.cell.value()];
    const double value = telemetry::kpi_value(record, metric);
    if (group != CellGrouping::kUngrouped)
      buffers[static_cast<std::size_t>(group)].add(value);
    if (grouping.all_group != CellGrouping::kUngrouped)
      buffers[static_cast<std::size_t>(grouping.all_group)].add(value);
  }
  flush_day(current);
}

std::size_t KpiGroupSeries::cells_reporting(std::size_t group,
                                            SimDay day) const {
  const auto& counts = cell_counts_.at(group);
  return counts.has(day) ? static_cast<std::size_t>(counts.value(day)) : 0;
}

std::vector<WeekPoint> KpiGroupSeries::weekly_delta(std::size_t group,
                                                    int baseline_week,
                                                    int from_week,
                                                    int to_week,
                                                    int min_samples) const {
  return weekly_median_delta_percent(series_.at(group),
                                     baseline(group, baseline_week),
                                     from_week, to_week, min_samples);
}

double KpiGroupSeries::baseline(std::size_t group, int baseline_week) const {
  return series_.at(group).week_median(baseline_week);
}

double KpiGroupSeries::baseline(std::size_t group, int baseline_week,
                                int min_days) const {
  const int covered = series_.at(group).week_covered_days(baseline_week);
  if (covered < min_days)
    throw std::runtime_error(
        "KpiGroupSeries::baseline: baseline week " +
        std::to_string(baseline_week) + " has " + std::to_string(covered) +
        " covered day(s) for group " + std::to_string(group) +
        ", fewer than the required " + std::to_string(min_days));
  return series_.at(group).week_median(baseline_week);
}

}  // namespace cellscope::analysis
