// Home-detection validation against the census (Fig 2).
//
// The paper validates home detection by assigning every detected user to a
// Local Authority District and regressing the inferred per-LAD subscriber
// counts against ONS population estimates: a linear relationship with
// r^2 = 0.955 certifies that the MNO's footprint is representative. The
// slope of that line is the operator's effective market share.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.h"
#include "analysis/home_detection.h"
#include "geo/census.h"
#include "geo/uk_model.h"

namespace cellscope::analysis {

struct LadValidationPoint {
  LadId lad;
  std::int64_t census_population = 0;
  std::int64_t inferred_residents = 0;
};

struct HomeValidation {
  std::vector<LadValidationPoint> points;  // LAD id order
  stats::LinearFit fit;                    // inferred = slope*census + b
  // Slope an unbiased detector should recover (subscribers / census total).
  double expected_market_share = 0.0;
};

// Assigns each detected home to its LAD and fits inferred vs census.
// `subscriber_count` is the number of users that entered home detection
// (used for the expected market share).
[[nodiscard]] HomeValidation validate_homes(
    const geo::UkGeography& geography, std::span<const HomeRecord> homes,
    std::int64_t subscriber_count);

}  // namespace cellscope::analysis
