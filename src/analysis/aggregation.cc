#include "analysis/aggregation.h"

#include <stdexcept>
#include <string>

namespace cellscope::analysis {

GroupedDailySeries::GroupedDailySeries(std::size_t group_count,
                                       SimDay first_day, SimDay last_day) {
  series_.reserve(group_count);
  for (std::size_t g = 0; g < group_count; ++g)
    series_.emplace_back(first_day, last_day);
}

void GroupedDailySeries::add(std::size_t group, SimDay day, double value) {
  series_.at(group).add(day, value);
}

std::size_t GroupedDailySeries::day_samples(std::size_t group,
                                            SimDay day) const {
  return series_.at(group).count(day);
}

std::vector<DayPoint> GroupedDailySeries::daily_delta(std::size_t group,
                                                      double baseline) const {
  return daily_delta_percent(series_.at(group), baseline);
}

std::vector<WeekPoint> GroupedDailySeries::weekly_delta(
    std::size_t group, double baseline, int from_week, int to_week,
    int min_samples) const {
  return weekly_median_delta_percent(series_.at(group), baseline, from_week,
                                     to_week, min_samples);
}

double GroupedDailySeries::week_baseline(std::size_t group,
                                         int iso_week) const {
  return series_.at(group).week_mean(iso_week);
}

double GroupedDailySeries::week_baseline(std::size_t group, int iso_week,
                                         int min_days) const {
  const int covered = week_coverage(group, iso_week);
  if (covered < min_days)
    throw std::runtime_error(
        "GroupedDailySeries::week_baseline: baseline week " +
        std::to_string(iso_week) + " has " + std::to_string(covered) +
        " covered day(s), fewer than the required " +
        std::to_string(min_days));
  return series_.at(group).week_mean(iso_week);
}

int GroupedDailySeries::week_coverage(std::size_t group, int iso_week) const {
  return series_.at(group).week_covered_days(iso_week);
}

}  // namespace cellscope::analysis
