#include "analysis/home_detection.h"

#include <algorithm>

namespace cellscope::analysis {

HomeDetector::HomeDetector(const HomeDetectionParams& params)
    : params_(params) {}

void HomeDetector::observe(const telemetry::UserDayObservation& observation) {
  if (observation.day < params_.first_day ||
      observation.day >= params_.end_day)
    return;

  bool any_night = false;
  UserAccumulator* accumulator = nullptr;
  for (const auto& stay : observation.stays) {
    if (stay.night_hours <= 0.0f) continue;
    if (accumulator == nullptr)
      accumulator = &users_[observation.user.value()];
    accumulator->site_night_hours[stay.site.value()] +=
        static_cast<double>(stay.night_hours);
    accumulator->site_geo.emplace(
        stay.site.value(),
        std::make_pair(stay.district.value(), stay.county.value()));
    any_night = true;
  }
  if (any_night && accumulator->last_night_day != observation.day) {
    ++accumulator->nights;
    accumulator->last_night_day = observation.day;
  }
}

std::vector<HomeRecord> HomeDetector::finalize() const {
  std::vector<HomeRecord> records;
  records.reserve(users_.size());
  for (const auto& [user_value, acc] : users_) {
    if (acc.nights < static_cast<std::uint32_t>(params_.min_nights)) continue;
    // Winning tower: maximum accumulated night dwell.
    const auto best = std::max_element(
        acc.site_night_hours.begin(), acc.site_night_hours.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    if (best == acc.site_night_hours.end()) continue;
    const auto geo = acc.site_geo.at(best->first);
    HomeRecord record;
    record.user = UserId{user_value};
    record.home_site = SiteId{best->first};
    record.home_district = PostcodeDistrictId{geo.first};
    record.home_county = CountyId{geo.second};
    record.night_hours = best->second;
    record.nights_observed = static_cast<int>(acc.nights);
    records.push_back(record);
  }
  std::sort(records.begin(), records.end(),
            [](const HomeRecord& a, const HomeRecord& b) {
              return a.user < b.user;
            });
  return records;
}

HomeDetectionStats HomeDetector::stats() const {
  HomeDetectionStats stats;
  stats.candidates = users_.size();
  for (const auto& [user_value, acc] : users_)
    if (acc.nights >= static_cast<std::uint32_t>(params_.min_nights) &&
        !acc.site_night_hours.empty())
      ++stats.resolved;
  stats.below_threshold = stats.candidates - stats.resolved;
  return stats;
}

std::vector<HomeDetector::SavedUserState> HomeDetector::save_state() const {
  std::vector<SavedUserState> saved;
  saved.reserve(users_.size());
  for (const auto& [user_value, acc] : users_) {
    SavedUserState s;
    s.user = user_value;
    s.nights = acc.nights;
    s.last_night_day = acc.last_night_day;
    s.sites.reserve(acc.site_night_hours.size());
    for (const auto& [site, hours] : acc.site_night_hours) {
      SavedUserState::Site entry;
      entry.site = site;
      entry.night_hours = hours;
      const auto geo = acc.site_geo.find(site);
      if (geo != acc.site_geo.end()) {
        entry.district = geo->second.first;
        entry.county = geo->second.second;
      }
      s.sites.push_back(entry);
    }
    saved.push_back(std::move(s));
  }
  std::sort(saved.begin(), saved.end(),
            [](const SavedUserState& a, const SavedUserState& b) {
              return a.user < b.user;
            });
  return saved;
}

void HomeDetector::restore_state(const std::vector<SavedUserState>& saved) {
  users_.clear();
  for (const SavedUserState& s : saved) {
    UserAccumulator& acc = users_[s.user];
    acc.nights = s.nights;
    acc.last_night_day = s.last_night_day;
    for (const auto& site : s.sites) {
      acc.site_night_hours[site.site] = site.night_hours;
      acc.site_geo[site.site] = {site.district, site.county};
    }
  }
}

std::optional<HomeRecord> HomeDetector::home_of(UserId user) const {
  const auto it = users_.find(user.value());
  if (it == users_.end()) return std::nullopt;
  const auto& acc = it->second;
  if (acc.nights < static_cast<std::uint32_t>(params_.min_nights))
    return std::nullopt;
  const auto best = std::max_element(
      acc.site_night_hours.begin(), acc.site_night_hours.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  if (best == acc.site_night_hours.end()) return std::nullopt;
  const auto geo = acc.site_geo.at(best->first);
  HomeRecord record;
  record.user = user;
  record.home_site = SiteId{best->first};
  record.home_district = PostcodeDistrictId{geo.first};
  record.home_county = CountyId{geo.second};
  record.night_hours = best->second;
  record.nights_observed = static_cast<int>(acc.nights);
  return record;
}

}  // namespace cellscope::analysis
