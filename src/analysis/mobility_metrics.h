// Mobility metrics: temporal-uncorrelated entropy and radius of gyration.
//
// Implements Section 2.3 of the paper.
//
// Entropy (Eq. 1):  e = -sum_j p(j) * log(p(j)),  where p(j) is the fraction
// of the (connected) time the user spent at the j-th visited tower.
//
// Radius of gyration (Eq. 2): the paper's formula reads
//   g = sqrt( (1/N) * sum_j (t_j l_j - l_cm)^2 ),  l_cm = (1/N) sum_j t_j l_j
// with t_j the time spent at tower j. Taken literally the time factor
// multiplies the *coordinates*; we implement the standard time-weighted
// radius of gyration the formula is understood to denote (and that the
// cited Gonzalez et al. use):
//   g = sqrt( sum_j t_j * ||l_j - l_cm||^2 / sum_j t_j ),
//   l_cm = sum_j t_j l_j / sum_j t_j
// which is dimensionally consistent and matches the paper's narrative
// ("an indication of the distance travelled"). This reading is recorded in
// DESIGN.md as an implementation note.
//
// Both metrics support the paper's preprocessing: keep only the top-K
// towers by dwell time (K=20 in the paper) and compute either over the full
// 24h window or over one of the six 4-hour bins.
#pragma once

#include <optional>
#include <span>

#include "telemetry/observation.h"

namespace cellscope::analysis {

struct MobilityMetricOptions {
  // Keep only the top_k towers by dwell time; <= 0 disables the filter.
  int top_k = 20;
  // Restrict to one 4-hour bin (0..5); nullopt = the whole day.
  std::optional<int> four_hour_bin;
};

struct DayMetrics {
  double entropy = 0.0;       // nats
  double gyration_km = 0.0;
  int towers_visited = 0;
  double hours_observed = 0.0;
};

// Computes both metrics for one user-day. Returns nullopt when the
// observation has no dwell time in the selected window (e.g. departed user).
[[nodiscard]] std::optional<DayMetrics> compute_day_metrics(
    const telemetry::UserDayObservation& observation,
    const MobilityMetricOptions& options = {});

// Entropy of a dwell-time vector (hours per tower); Eq. 1.
[[nodiscard]] double entropy_from_dwell(std::span<const double> hours);

// Time-weighted radius of gyration; Eq. 2 (see header comment).
[[nodiscard]] double gyration_from_stays(std::span<const LatLon> locations,
                                         std::span<const double> hours);

}  // namespace cellscope::analysis
