#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <utility>

#include "obs/csv.h"
#include "obs/json.h"

namespace cellscope::obs {

namespace {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Nesting level of live spans opened by this thread. Each thread tracks its
// own stack, so main-lane spans nest correctly and every worker thread
// starts at depth 0 on its own lane.
thread_local std::uint32_t t_live_depth = 0;

}  // namespace

Span::Span(Tracer* tracer, std::string name, std::string category,
           std::int64_t arg, std::uint32_t lane)
    : tracer_(tracer),
      name_(std::move(name)),
      category_(std::move(category)),
      arg_(arg),
      start_us_(tracer->now_us()),
      lane_(lane),
      depth_(t_live_depth) {
  ++t_live_depth;
  if (lane_ > 0)
    tracer_->open_worker_spans_.fetch_add(1, std::memory_order_relaxed);
}

Span::Span(Span&& other) noexcept
    : tracer_(std::exchange(other.tracer_, nullptr)),
      name_(std::move(other.name_)),
      category_(std::move(other.category_)),
      arg_(other.arg_),
      start_us_(other.start_us_),
      lane_(other.lane_),
      depth_(other.depth_) {}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    close();
    tracer_ = std::exchange(other.tracer_, nullptr);
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    arg_ = other.arg_;
    start_us_ = other.start_us_;
    lane_ = other.lane_;
    depth_ = other.depth_;
  }
  return *this;
}

void Span::close() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = std::exchange(tracer_, nullptr);
  --t_live_depth;
  if (lane_ > 0)
    tracer->open_worker_spans_.fetch_sub(1, std::memory_order_relaxed);
  SpanRecord record;
  record.name = std::move(name_);
  record.category = std::move(category_);
  record.arg = arg_;
  record.start_us = start_us_;
  record.duration_us = tracer->now_us() - start_us_;
  record.lane = lane_;
  record.depth = depth_;
  tracer->record(std::move(record));
}

Tracer::Tracer() : epoch_ns_(monotonic_ns()) {}

std::uint64_t Tracer::now_us() const {
  return (monotonic_ns() - epoch_ns_) / 1000;
}

Span Tracer::span(std::string name, std::string category, std::int64_t arg,
                  std::uint32_t lane) {
  if (!enabled_) return Span{};
  return Span{this, std::move(name), std::move(category), arg, lane};
}

void Tracer::record(SpanRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

void Tracer::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  epoch_ns_ = monotonic_ns();
  open_worker_spans_.store(0, std::memory_order_relaxed);
}

namespace {

std::vector<PhaseTotal> aggregate(const std::vector<SpanRecord>& records,
                                  bool top_level_only) {
  std::vector<PhaseTotal> totals;
  for (const auto& r : records) {
    if (top_level_only && (r.lane != 0 || r.depth != 0)) continue;
    PhaseTotal* total = nullptr;
    for (auto& t : totals) {
      if (t.name == r.name) {
        total = &t;
        break;
      }
    }
    if (total == nullptr) {
      totals.emplace_back();
      total = &totals.back();
      total->name = r.name;
      total->category = r.category;
    }
    ++total->count;
    total->total_ms += static_cast<double>(r.duration_us) / 1000.0;
  }
  return totals;
}

}  // namespace

std::vector<PhaseTotal> Tracer::phase_totals() const {
  return aggregate(records(), /*top_level_only=*/true);
}

std::vector<PhaseTotal> Tracer::all_totals() const {
  return aggregate(records(), /*top_level_only=*/false);
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  auto sorted = records();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_us < b.start_us;
                   });
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& r : sorted) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(r.name) << "\",\"cat\":\""
       << json_escape(r.category) << "\",\"ph\":\"X\",\"ts\":" << r.start_us
       << ",\"dur\":" << r.duration_us << ",\"pid\":1,\"tid\":" << r.lane;
    if (r.arg >= 0) os << ",\"args\":{\"day\":" << r.arg << "}";
    os << "}";
  }
  os << "\n]}\n";
}

void Tracer::write_phase_csv(std::ostream& os) const {
  os << "phase,category,count,total_ms,mean_ms\n";
  for (const auto& t : all_totals()) {
    os << csv_escape(t.name) << "," << csv_escape(t.category) << ","
       << t.count << "," << t.total_ms << "," << t.mean_ms() << "\n";
  }
}

}  // namespace cellscope::obs
