#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace cellscope::obs {

void Histogram::record(double value) {
  if (samples_.empty()) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  samples_.push_back(value);
  sum_ += value;
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest rank: the smallest value with at least p% of samples <= it.
  const auto rank = static_cast<std::size_t>(std::ceil(
      clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

MetricId MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i)
    if (counter_names_[i] == name)
      return MetricId{static_cast<std::uint32_t>(i)};
  counter_names_.emplace_back(name);
  counter_values_.push_back(0);
  return MetricId{static_cast<std::uint32_t>(counter_names_.size() - 1)};
}

void MetricsRegistry::add(MetricId id, std::uint64_t n) {
  if (!id.valid()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (id.index < counter_values_.size()) counter_values_[id.index] += n;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t n) {
  add(counter(name), n);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i)
    if (counter_names_[i] == name) return counter_values_[i];
  return 0;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [gauge_name, gauge_value] : gauges_) {
    if (gauge_name == name) {
      gauge_value = value;
      return;
    }
  }
  gauges_.emplace_back(std::string(name), value);
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [gauge_name, gauge_value] : gauges_)
    if (gauge_name == name) return gauge_value;
  return 0.0;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [hist_name, hist] : histograms_)
    if (hist_name == name) return *hist;
  histograms_.emplace_back(std::string(name), std::make_unique<Histogram>());
  return *histograms_.back().second;
}

void MetricsRegistry::merge(MetricsShard& shard) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto& values = shard.values();
  const std::size_t n = std::min(values.size(), counter_values_.size());
  for (std::size_t i = 0; i < n; ++i) counter_values_[i] += values[i];
  shard.clear();
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(counter_names_.size() + gauges_.size() + histograms_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    MetricSnapshot s;
    s.name = counter_names_[i];
    s.kind = MetricSnapshot::Kind::kCounter;
    s.count = counter_values_[i];
    out.push_back(std::move(s));
  }
  for (const auto& [name, value] : gauges_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.value = value;
    out.push_back(std::move(s));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kHistogram;
    s.count = hist->count();
    s.value = hist->sum();
    s.min = hist->min();
    s.max = hist->max();
    s.p50 = hist->percentile(50.0);
    s.p95 = hist->percentile(95.0);
    out.push_back(std::move(s));
  }
  return out;
}

bool MetricsRegistry::empty() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counter_names_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counter_names_.clear();
  counter_values_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace cellscope::obs
