// Phase/span tracing for the simulation pipeline.
//
// The paper's measurement platform accounts for where its probes spend
// effort; this is the same discipline applied to our own runtime. A Tracer
// collects coarse, RAII-scoped spans ("setup.topology", one "day" span per
// simulated day, per-worker shard spans) and exports them two ways: Chrome
// trace_event JSON (loadable in chrome://tracing or ui.perfetto.dev) and a
// flat per-phase CSV of aggregated wall times. Spans are deliberately
// coarse — a handful per simulated day — so the mutex protecting the record
// buffer is uncontended; per-user hot paths never open spans.
//
// A disabled tracer costs one branch on a cached bool per span() call and
// records nothing, so instrumented code can create spans unconditionally.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace cellscope::obs {

// One closed span. `lane` is a display track: 0 is the serial main lane,
// workers use 1..N. `depth` is the nesting level within the opening
// thread's stack of live spans (0 = top level).
struct SpanRecord {
  std::string name;
  std::string category;
  std::int64_t arg = -1;  // optional numeric tag (e.g. SimDay); < 0 = none
  std::uint64_t start_us = 0;  // relative to tracer epoch
  std::uint64_t duration_us = 0;
  std::uint32_t lane = 0;
  std::uint32_t depth = 0;
};

// Aggregated wall time of one phase (all spans sharing a name).
struct PhaseTotal {
  std::string name;
  std::string category;
  std::uint64_t count = 0;
  double total_ms = 0.0;

  [[nodiscard]] double mean_ms() const {
    return count ? total_ms / static_cast<double>(count) : 0.0;
  }
};

class Tracer;

// RAII scoped timer. Inert when default-constructed or obtained from a
// disabled tracer; otherwise records a SpanRecord when it closes.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  ~Span() { close(); }

  // Closes the span now (idempotent; the destructor calls this).
  void close();

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::string name, std::string category,
       std::int64_t arg, std::uint32_t lane);

  Tracer* tracer_ = nullptr;  // nullptr = inert
  std::string name_;
  std::string category_;
  std::int64_t arg_ = -1;
  std::uint64_t start_us_ = 0;
  std::uint32_t lane_ = 0;
  std::uint32_t depth_ = 0;
};

class Tracer {
 public:
  Tracer();

  // Enabling/disabling is serial-phase only (before/after a run); span()
  // may be called from worker threads while enabled.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // Opens a span on the given lane. Returns an inert span when disabled.
  [[nodiscard]] Span span(std::string name, std::string category = "sim",
                          std::int64_t arg = -1, std::uint32_t lane = 0);

  // Closed spans, in close order (children precede parents).
  [[nodiscard]] std::vector<SpanRecord> records() const;

  // Per-phase aggregation over *top-level main-lane* spans only (lane 0,
  // depth 0), in first-appearance order. These are disjoint in time, so
  // their totals sum to ~the traced wall time — the manifest's accounting.
  [[nodiscard]] std::vector<PhaseTotal> phase_totals() const;

  // Like phase_totals() but over every record (nested spans overlap their
  // parents; worker lanes overlap the main lane). The per-phase CSV.
  [[nodiscard]] std::vector<PhaseTotal> all_totals() const;

  // Chrome trace_event JSON ("X" complete events, sorted by start time).
  void write_chrome_trace(std::ostream& os) const;

  // Flat CSV: phase,category,count,total_ms,mean_ms (all spans).
  void write_phase_csv(std::ostream& os) const;

  // Drops every record and resets the epoch. Serial-phase only.
  void reset();

  // Microseconds since the tracer epoch (monotonic clock).
  [[nodiscard]] std::uint64_t now_us() const;

  // Number of worker-lane spans (lane > 0) currently open — i.e. worker
  // shards in flight right now. The timeline samples this as the run's
  // concurrency gauge. Relaxed; any thread may read.
  [[nodiscard]] std::uint32_t open_worker_spans() const {
    return open_worker_spans_.load(std::memory_order_relaxed);
  }

 private:
  friend class Span;
  void record(SpanRecord record);

  bool enabled_ = false;
  std::uint64_t epoch_ns_ = 0;
  std::atomic<std::uint32_t> open_worker_spans_{0};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
};

}  // namespace cellscope::obs
