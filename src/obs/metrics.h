// Metrics registry: named counters, gauges and histograms.
//
// The registry is the serial-phase aggregation point; the hot path never
// touches it. Worker threads accumulate counter increments into a private
// MetricsShard (a plain array indexed by MetricId — no locks, no atomics,
// no false sharing with other workers' shards) and the owner merges shards
// back into the registry at phase end (e.g. once per simulated day), under
// the registry mutex. Gauges and histograms are recorded directly on the
// registry from serial code.
//
// Histograms keep their samples (the populations here are small: one value
// per simulated day, per import, per bench repetition) so percentiles are
// exact nearest-rank, matching common/stats.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cellscope::obs {

// Handle to a registered counter. Invalid ids are ignored by shards, so
// instrumented code can hold unregistered handles when metrics are off.
struct MetricId {
  static constexpr std::uint32_t kInvalid =
      std::numeric_limits<std::uint32_t>::max();
  std::uint32_t index = kInvalid;

  [[nodiscard]] bool valid() const { return index != kInvalid; }
};

// Exact-percentile histogram over recorded samples.
class Histogram {
 public:
  void record(double value);

  [[nodiscard]] std::uint64_t count() const { return samples_.size(); }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count() ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count() ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count() ? sum_ / static_cast<double>(count()) : 0.0;
  }
  // Nearest-rank percentile, p in [0, 100]; 0 on an empty histogram.
  [[nodiscard]] double percentile(double p) const;

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// One metric's value at snapshot time, for reports and manifests.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t count = 0;  // counter value, or histogram sample count
  double value = 0.0;       // gauge value, or histogram sum
  // Histogram summary (zero for counters/gauges).
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

// Worker-private counter deltas; see the header comment for the protocol.
class MetricsShard {
 public:
  void add(MetricId id, std::uint64_t n = 1) {
    if (!id.valid()) return;
    if (id.index >= values_.size()) values_.resize(id.index + 1, 0);
    values_[id.index] += n;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& values() const {
    return values_;
  }
  void clear() { values_.assign(values_.size(), 0); }

 private:
  std::vector<std::uint64_t> values_;
};

class MetricsRegistry {
 public:
  // Registers (or finds) a counter and returns its handle. Serial phase.
  MetricId counter(std::string_view name);
  // Adds to a counter directly (serial code; takes the mutex).
  void add(MetricId id, std::uint64_t n = 1);
  void add(std::string_view name, std::uint64_t n = 1);
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  void set_gauge(std::string_view name, double value);
  [[nodiscard]] double gauge_value(std::string_view name) const;

  // Fetches (creating on first use) a histogram. The reference stays valid
  // for the registry's lifetime; record() through it is serial-phase only.
  Histogram& histogram(std::string_view name);

  // Folds a shard's counter deltas into the registry and clears the shard.
  void merge(MetricsShard& shard);

  // Every metric in registration order (counters, gauges, histograms).
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  [[nodiscard]] bool empty() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::vector<std::uint64_t> counter_values_;
  std::vector<std::pair<std::string, double>> gauges_;
  // Deque-like stability via unique_ptr: histogram references survive
  // later registrations.
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

}  // namespace cellscope::obs
