// Run manifest: one JSON document describing a completed run.
//
// The paper ships per-stage accounting next to its measurements; the
// manifest is our equivalent for the simulation itself — enough metadata
// (config digest, seed, build, thread count) to reproduce the run, plus
// enough accounting (per-phase wall time, throughput, metrics snapshot,
// feed-quality summary) to compare runs across commits. BENCH_*.json perf
// trajectories and the CI artifacts read these.
//
// The obs layer knows nothing about scenarios or feeds: callers translate
// their domain structures (ScenarioConfig, FeedQualityReport) into the
// plain fields below.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cellscope::obs {

struct RunManifest {
  // Identity / reproducibility.
  std::string name;           // run label, e.g. the bench slug
  std::string tool = "cellscope";
  std::string git_describe;   // build provenance (see build_describe())
  std::string config_digest;  // hex digest of the scenario config
  std::uint64_t seed = 0;
  std::uint64_t users = 0;
  int worker_threads = 1;
  int first_week = 0;
  int last_week = 0;

  // Accounting.
  double wall_seconds = 0.0;
  double user_days_per_sec = 0.0;
  long peak_rss_kb = 0;
  std::vector<PhaseTotal> phases;      // top-level, disjoint in time
  std::vector<MetricSnapshot> metrics;

  // Per-feed quality summary (mirrors telemetry::FeedQuality totals).
  struct FeedSummary {
    std::string name;
    std::uint64_t expected = 0;
    std::uint64_t observed = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t duplicates = 0;
    double completeness = 1.0;
  };
  std::vector<FeedSummary> feeds;

  // Conservation-audit summary (mirrors audit::AuditReport counts; the obs
  // layer stays below audit, so only plain counters cross over). Present in
  // the JSON only when the audit ran (audit_enabled).
  struct AuditLaw {
    std::string name;
    std::uint64_t checks = 0;
    std::uint64_t violations = 0;
  };
  bool audit_enabled = false;
  std::uint64_t audit_checks = 0;
  std::uint64_t audit_violations = 0;
  std::vector<AuditLaw> audit_laws;

  // Crash-safety summary (docs/RECOVERY.md). Always emitted — CI asserts on
  // these fields without probing for key presence. `interrupted` marks a run
  // cut short by SIGINT/SIGTERM (checkpoint flushed, resumable); `resumed`
  // marks a run that fast-forwarded from a checkpoint, in which case
  // `resumed_from_day` is the last restored day. The supervisor counters
  // mirror the `supervisor.*` metrics.
  // `day_failed` marks a run the supervisor gave up on (DayFailed, exit 5):
  // the manifest then accounts for the partial run up to the failed day.
  bool interrupted = false;
  bool day_failed = false;
  bool resumed = false;
  int resumed_from_day = -1;
  std::uint64_t supervisor_retries = 0;
  std::uint64_t supervisor_failures = 0;
  std::uint64_t supervisor_stalls = 0;

  // Run-health timeline summary (docs/OBSERVABILITY.md). Mirrors the
  // `<slug>.timeline.csv/.json` exports; emitted only when samples exist.
  struct TimelineSummary {
    std::uint64_t samples = 0;
    long steady_rss_kb = 0;
    double rss_slope_kb_per_day = 0.0;
    double rows_per_sec = 0.0;   // from the final sample
    double users_per_sec = 0.0;  // from the final sample
  };
  TimelineSummary timeline;
};

// Serializes the manifest as a single pretty-printed JSON object.
void write_manifest_json(std::ostream& os, const RunManifest& manifest);

}  // namespace cellscope::obs
