// Minimal RFC-4180 CSV field escaping shared by the obs exporters.
//
// Phase and metric names are caller-supplied strings; a comma, quote or
// newline in one must not shear the row it lands in. Fields that need no
// quoting pass through verbatim, so existing plain-name exports are
// byte-identical to before.
#pragma once

#include <string>
#include <string_view>

namespace cellscope::obs {

inline std::string csv_escape(std::string_view field) {
  if (field.find_first_of(",\"\n\r") == std::string_view::npos)
    return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';  // RFC 4180: double the quote
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace cellscope::obs
