// Process-wide observability runtime.
//
// One tracer and one metrics registry per process, shared by the simulator,
// the importers and the benches. Observability is opt-in and off by
// default: the instrumented code paths cost a branch on a cached bool when
// disabled, record nothing, and never perturb simulation results (tracing
// reads clocks; it never touches RNG streams or model state).
//
// The conventional switch is the CELLSCOPE_OBS_DIR environment variable:
// when set, benches enable the runtime and write their trace, per-phase CSV
// and run manifest into that directory. Library code never reads the
// environment on its own — enabling is always an explicit call.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace cellscope::obs {

// The process-wide instances. Construction is thread-safe (C++ magic
// statics); use is governed by the protocols in trace.h / metrics.h /
// timeline.h.
[[nodiscard]] Tracer& tracer();
[[nodiscard]] MetricsRegistry& metrics();
[[nodiscard]] Timeline& timeline();

// Fast path for instrumented code: is the runtime collecting?
[[nodiscard]] bool enabled();

// Turns collection on/off (serial phase only). Enabling resets nothing;
// call reset() for a clean slate.
void set_enabled(bool on);

// Clears the tracer, registry, timeline and tracked-byte counters (tests,
// or back-to-back runs).
void reset();

// CELLSCOPE_OBS_DIR, or an empty string when unset.
[[nodiscard]] std::string obs_dir_from_env();

// Enables the runtime iff CELLSCOPE_OBS_DIR is set; returns enabled().
bool enable_from_env();

// Creates `dir` (and parents) if needed, verifies it is actually writable
// with a probe file, and drops a `.gitignore` ignoring the whole directory,
// so an output dir inside a source tree can never be committed. Returns
// `dir`; throws std::runtime_error with the reason on any failure
// (uncreatable, not a directory, unwritable).
std::string ensure_obs_dir(const std::string& dir);

// Peak resident set size of this process in kB (0 where unsupported).
[[nodiscard]] long peak_rss_kb();

// Current resident set size in kB (/proc/self/statm on Linux; falls back
// to peak_rss_kb() where unsupported).
[[nodiscard]] long current_rss_kb();

// Build provenance: the `git describe` captured at configure time, or
// "unknown" when the build did not embed one.
[[nodiscard]] std::string build_describe();

}  // namespace cellscope::obs
