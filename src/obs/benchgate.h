// Perf-regression gate core: the BENCH_cellscope.json trajectory.
//
// The ROADMAP demands a checked-in perf trajectory future PRs read; this is
// it. A Trajectory aggregates one gate run — per-bench wall time, peak and
// steady RSS, the timeline's memory slope per simulated day, throughput
// gauges, and per-kernel ns/op from bench_perf_kernels — under the schema
// "cellscope-bench-trajectory/1", with the comparison tolerances embedded
// in the baseline file itself so the contract travels with the data.
//
// tools/perfgate orchestrates benches and calls into here; everything that
// can regress a gate decision (manifest extraction, benchmark-JSON
// extraction, the tolerance compare) lives in this library so tests can
// exercise it without running a single bench.
//
// Tolerance philosophy: ratios are wide (2-3x wall, 1.5x RSS) because CI
// machines are noisy and heterogeneous; the slope check is an *absolute*
// cap in kB per simulated day, because "RSS grows every day without bound"
// is a bug at any speed on any machine.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json_read.h"

namespace cellscope::obs {

// One figure-bench run, extracted from its run manifest (+ timeline block).
struct BenchRecord {
  std::string name;  // bench slug, e.g. "fig03-total-traffic"
  double wall_seconds = 0.0;
  long peak_rss_kb = 0;
  long steady_rss_kb = 0;
  double rss_slope_kb_per_day = 0.0;
  double rows_per_sec = 0.0;
  double users_per_sec = 0.0;
};

// One microbenchmark, extracted from the google-benchmark JSON report.
struct KernelRecord {
  std::string name;  // e.g. "BM_Entropy/4096"
  double ns_per_op = 0.0;
};

// Per-metric comparison tolerances. Ratios bound current/baseline (or
// baseline/current for throughput floors); the slope cap is absolute.
struct Tolerances {
  double wall_seconds_max_ratio = 2.5;
  double kernel_ns_max_ratio = 3.0;
  double peak_rss_max_ratio = 1.5;
  double steady_rss_max_ratio = 1.5;
  double rows_per_sec_min_ratio = 0.4;
  double users_per_sec_min_ratio = 0.4;
  double rss_slope_max_kb_per_day = 512.0;
};

struct Trajectory {
  std::string schema = "cellscope-bench-trajectory/1";
  std::string git_describe;
  Tolerances tolerances;
  std::vector<BenchRecord> benches;
  std::vector<KernelRecord> kernels;
};

// One gate verdict line. `regression` findings fail the gate; the rest are
// informational (e.g. a bench present now but absent from the baseline).
struct GateFinding {
  bool regression = false;
  std::string detail;
};

// Extracts a BenchRecord from a parsed run manifest
// (cellscope-run-manifest/1). Throws std::runtime_error on a manifest
// missing its identity fields.
[[nodiscard]] BenchRecord bench_from_manifest(
    const common::JsonValue& manifest);

// Extracts kernel records from a parsed google-benchmark JSON report
// (real_time, normalized to nanoseconds). Aggregate rows (_mean/_median/
// _stddev) are skipped.
[[nodiscard]] std::vector<KernelRecord> kernels_from_benchmark_json(
    const common::JsonValue& report);

// Serializes / parses the trajectory. parse_trajectory throws
// std::runtime_error on a missing or mismatched schema tag.
void write_trajectory_json(std::ostream& os, const Trajectory& t);
[[nodiscard]] Trajectory parse_trajectory(const common::JsonValue& doc);

// Compares `current` against `baseline` under the *baseline's* tolerances.
// Regressions: a baseline bench/kernel missing from current, a ratio bound
// exceeded, or a current slope above the absolute cap (checked even for
// benches the baseline has never seen). Benches new in `current` yield
// informational findings only.
[[nodiscard]] std::vector<GateFinding> compare_trajectories(
    const Trajectory& baseline, const Trajectory& current);

}  // namespace cellscope::obs
