#include "obs/benchgate.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "obs/json.h"

namespace cellscope::obs {

namespace {

std::string number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

double unit_to_ns(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;
}

std::string fmt_ratio(double current, double base) {
  return number(current) + " vs baseline " + number(base) + " (ratio " +
         number(base != 0.0 ? current / base : 0.0) + ")";
}

}  // namespace

BenchRecord bench_from_manifest(const common::JsonValue& manifest) {
  BenchRecord r;
  r.name = manifest.at("name").as_string();
  r.wall_seconds = manifest.number_or("wall_seconds", 0.0);
  r.peak_rss_kb = static_cast<long>(manifest.number_or("peak_rss_kb", 0.0));
  if (const auto* tl = manifest.find("timeline")) {
    r.steady_rss_kb = static_cast<long>(tl->number_or("steady_rss_kb", 0.0));
    r.rss_slope_kb_per_day = tl->number_or("rss_slope_kb_per_day", 0.0);
    r.rows_per_sec = tl->number_or("rows_per_sec", 0.0);
    r.users_per_sec = tl->number_or("users_per_sec", 0.0);
  }
  if (r.users_per_sec == 0.0)
    r.users_per_sec = manifest.number_or("user_days_per_sec", 0.0);
  return r;
}

std::vector<KernelRecord> kernels_from_benchmark_json(
    const common::JsonValue& report) {
  std::vector<KernelRecord> out;
  const auto* benchmarks = report.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) return out;
  for (const auto& b : benchmarks->as_array()) {
    // Skip repetition aggregates; plain runs either carry
    // run_type == "iteration" or (older formats) no run_type at all.
    if (b.string_or("run_type", "iteration") != "iteration") continue;
    KernelRecord k;
    k.name = b.string_or("name", "");
    if (k.name.empty()) continue;
    k.ns_per_op = b.number_or("real_time", 0.0) *
                  unit_to_ns(b.string_or("time_unit", "ns"));
    out.push_back(std::move(k));
  }
  return out;
}

void write_trajectory_json(std::ostream& os, const Trajectory& t) {
  os << "{\n";
  os << "  \"schema\": \"" << json_escape(t.schema) << "\",\n";
  os << "  \"git_describe\": \"" << json_escape(t.git_describe) << "\",\n";
  const auto& tol = t.tolerances;
  os << "  \"tolerances\": {\n"
     << "    \"wall_seconds_max_ratio\": " << number(tol.wall_seconds_max_ratio)
     << ",\n"
     << "    \"kernel_ns_max_ratio\": " << number(tol.kernel_ns_max_ratio)
     << ",\n"
     << "    \"peak_rss_max_ratio\": " << number(tol.peak_rss_max_ratio)
     << ",\n"
     << "    \"steady_rss_max_ratio\": " << number(tol.steady_rss_max_ratio)
     << ",\n"
     << "    \"rows_per_sec_min_ratio\": " << number(tol.rows_per_sec_min_ratio)
     << ",\n"
     << "    \"users_per_sec_min_ratio\": "
     << number(tol.users_per_sec_min_ratio) << ",\n"
     << "    \"rss_slope_max_kb_per_day\": "
     << number(tol.rss_slope_max_kb_per_day) << "\n  },\n";

  os << "  \"benches\": [";
  for (std::size_t i = 0; i < t.benches.size(); ++i) {
    const auto& b = t.benches[i];
    os << (i ? "," : "") << "\n    {\"name\": \"" << json_escape(b.name)
       << "\", \"wall_seconds\": " << number(b.wall_seconds)
       << ", \"peak_rss_kb\": " << b.peak_rss_kb
       << ", \"steady_rss_kb\": " << b.steady_rss_kb
       << ", \"rss_slope_kb_per_day\": " << number(b.rss_slope_kb_per_day)
       << ", \"rows_per_sec\": " << number(b.rows_per_sec)
       << ", \"users_per_sec\": " << number(b.users_per_sec) << "}";
  }
  os << (t.benches.empty() ? "" : "\n  ") << "],\n";

  os << "  \"kernels\": [";
  for (std::size_t i = 0; i < t.kernels.size(); ++i) {
    const auto& k = t.kernels[i];
    os << (i ? "," : "") << "\n    {\"name\": \"" << json_escape(k.name)
       << "\", \"ns_per_op\": " << number(k.ns_per_op) << "}";
  }
  os << (t.kernels.empty() ? "" : "\n  ") << "]\n}\n";
}

Trajectory parse_trajectory(const common::JsonValue& doc) {
  Trajectory t;
  const std::string schema = doc.string_or("schema", "");
  if (schema != t.schema)
    throw std::runtime_error("benchgate: unsupported trajectory schema '" +
                             schema + "'");
  t.git_describe = doc.string_or("git_describe", "unknown");
  if (const auto* tol = doc.find("tolerances")) {
    Tolerances defaults;
    t.tolerances.wall_seconds_max_ratio = tol->number_or(
        "wall_seconds_max_ratio", defaults.wall_seconds_max_ratio);
    t.tolerances.kernel_ns_max_ratio =
        tol->number_or("kernel_ns_max_ratio", defaults.kernel_ns_max_ratio);
    t.tolerances.peak_rss_max_ratio =
        tol->number_or("peak_rss_max_ratio", defaults.peak_rss_max_ratio);
    t.tolerances.steady_rss_max_ratio =
        tol->number_or("steady_rss_max_ratio", defaults.steady_rss_max_ratio);
    t.tolerances.rows_per_sec_min_ratio = tol->number_or(
        "rows_per_sec_min_ratio", defaults.rows_per_sec_min_ratio);
    t.tolerances.users_per_sec_min_ratio = tol->number_or(
        "users_per_sec_min_ratio", defaults.users_per_sec_min_ratio);
    t.tolerances.rss_slope_max_kb_per_day = tol->number_or(
        "rss_slope_max_kb_per_day", defaults.rss_slope_max_kb_per_day);
  }
  if (const auto* benches = doc.find("benches")) {
    for (const auto& b : benches->as_array()) {
      BenchRecord r;
      r.name = b.string_or("name", "");
      r.wall_seconds = b.number_or("wall_seconds", 0.0);
      r.peak_rss_kb = static_cast<long>(b.number_or("peak_rss_kb", 0.0));
      r.steady_rss_kb = static_cast<long>(b.number_or("steady_rss_kb", 0.0));
      r.rss_slope_kb_per_day = b.number_or("rss_slope_kb_per_day", 0.0);
      r.rows_per_sec = b.number_or("rows_per_sec", 0.0);
      r.users_per_sec = b.number_or("users_per_sec", 0.0);
      t.benches.push_back(std::move(r));
    }
  }
  if (const auto* kernels = doc.find("kernels")) {
    for (const auto& k : kernels->as_array()) {
      KernelRecord r;
      r.name = k.string_or("name", "");
      r.ns_per_op = k.number_or("ns_per_op", 0.0);
      t.kernels.push_back(std::move(r));
    }
  }
  return t;
}

std::vector<GateFinding> compare_trajectories(const Trajectory& baseline,
                                              const Trajectory& current) {
  std::vector<GateFinding> findings;
  const auto& tol = baseline.tolerances;

  auto regression = [&](std::string detail) {
    findings.push_back({true, std::move(detail)});
  };
  auto info = [&](std::string detail) {
    findings.push_back({false, std::move(detail)});
  };

  auto find_bench = [](const Trajectory& t,
                       const std::string& name) -> const BenchRecord* {
    for (const auto& b : t.benches)
      if (b.name == name) return &b;
    return nullptr;
  };
  auto find_kernel = [](const Trajectory& t,
                        const std::string& name) -> const KernelRecord* {
    for (const auto& k : t.kernels)
      if (k.name == name) return &k;
    return nullptr;
  };

  for (const auto& base : baseline.benches) {
    const BenchRecord* cur = find_bench(current, base.name);
    if (cur == nullptr) {
      regression("bench '" + base.name +
                 "' present in baseline but missing from this run");
      continue;
    }
    if (base.wall_seconds > 0.0 &&
        cur->wall_seconds > base.wall_seconds * tol.wall_seconds_max_ratio)
      regression("bench '" + base.name + "' wall_seconds " +
                 fmt_ratio(cur->wall_seconds, base.wall_seconds) +
                 " exceeds max ratio " + number(tol.wall_seconds_max_ratio));
    if (base.peak_rss_kb > 0 &&
        static_cast<double>(cur->peak_rss_kb) >
            static_cast<double>(base.peak_rss_kb) * tol.peak_rss_max_ratio)
      regression("bench '" + base.name + "' peak_rss_kb " +
                 fmt_ratio(static_cast<double>(cur->peak_rss_kb),
                           static_cast<double>(base.peak_rss_kb)) +
                 " exceeds max ratio " + number(tol.peak_rss_max_ratio));
    if (base.steady_rss_kb > 0 &&
        static_cast<double>(cur->steady_rss_kb) >
            static_cast<double>(base.steady_rss_kb) *
                tol.steady_rss_max_ratio)
      regression("bench '" + base.name + "' steady_rss_kb " +
                 fmt_ratio(static_cast<double>(cur->steady_rss_kb),
                           static_cast<double>(base.steady_rss_kb)) +
                 " exceeds max ratio " + number(tol.steady_rss_max_ratio));
    if (base.rows_per_sec > 0.0 &&
        cur->rows_per_sec < base.rows_per_sec * tol.rows_per_sec_min_ratio)
      regression("bench '" + base.name + "' rows_per_sec " +
                 fmt_ratio(cur->rows_per_sec, base.rows_per_sec) +
                 " below min ratio " + number(tol.rows_per_sec_min_ratio));
    if (base.users_per_sec > 0.0 &&
        cur->users_per_sec < base.users_per_sec * tol.users_per_sec_min_ratio)
      regression("bench '" + base.name + "' users_per_sec " +
                 fmt_ratio(cur->users_per_sec, base.users_per_sec) +
                 " below min ratio " + number(tol.users_per_sec_min_ratio));
  }

  // The slope cap is absolute and applies to every current bench, baseline
  // or not: unbounded per-day growth is a bug regardless of history.
  for (const auto& cur : current.benches) {
    if (cur.rss_slope_kb_per_day > tol.rss_slope_max_kb_per_day)
      regression("bench '" + cur.name + "' rss_slope_kb_per_day " +
                 number(cur.rss_slope_kb_per_day) + " exceeds absolute cap " +
                 number(tol.rss_slope_max_kb_per_day));
    if (find_bench(baseline, cur.name) == nullptr)
      info("bench '" + cur.name +
           "' is new (not in baseline); update the baseline to track it");
  }

  for (const auto& base : baseline.kernels) {
    const KernelRecord* cur = find_kernel(current, base.name);
    if (cur == nullptr) {
      regression("kernel '" + base.name +
                 "' present in baseline but missing from this run");
      continue;
    }
    if (base.ns_per_op > 0.0 &&
        cur->ns_per_op > base.ns_per_op * tol.kernel_ns_max_ratio)
      regression("kernel '" + base.name + "' ns_per_op " +
                 fmt_ratio(cur->ns_per_op, base.ns_per_op) +
                 " exceeds max ratio " + number(tol.kernel_ns_max_ratio));
  }
  for (const auto& cur : current.kernels) {
    if (find_kernel(baseline, cur.name) == nullptr)
      info("kernel '" + cur.name +
           "' is new (not in baseline); update the baseline to track it");
  }

  return findings;
}

}  // namespace cellscope::obs
