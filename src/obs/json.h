// Minimal JSON string escaping shared by the trace and manifest writers.
// The obs subsystem emits (never parses) JSON, and only flat documents, so
// a full JSON library would be dead weight.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace cellscope::obs {

inline std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace cellscope::obs
