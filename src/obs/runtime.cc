#include "obs/runtime.h"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace cellscope::obs {

namespace {
// Mirrors Tracer::enabled_ so enabled() needs no indirection and stays a
// single relaxed load even when called from worker threads.
std::atomic<bool> g_enabled{false};
}  // namespace

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

MetricsRegistry& metrics() {
  static MetricsRegistry instance;
  return instance;
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
  tracer().set_enabled(on);
}

void reset() {
  tracer().reset();
  metrics().reset();
}

std::string obs_dir_from_env() {
  const char* dir = std::getenv("CELLSCOPE_OBS_DIR");
  return dir ? std::string(dir) : std::string{};
}

bool enable_from_env() {
  if (!obs_dir_from_env().empty()) set_enabled(true);
  return enabled();
}

std::string ensure_obs_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    throw std::runtime_error("obs: cannot create output dir '" + dir +
                             "': " + ec.message());
  // Self-ignoring: even if the dir sits inside the repo (CELLSCOPE_OBS_DIR=
  // obs-out is the documented default), git never picks its contents up.
  const auto gitignore = std::filesystem::path(dir) / ".gitignore";
  if (!std::filesystem::exists(gitignore)) {
    std::ofstream out(gitignore);
    out << "*\n";
  }
  return dir;
}

long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return usage.ru_maxrss / 1024;  // bytes on macOS
#else
    return usage.ru_maxrss;  // kB on Linux
#endif
  }
#endif
  return 0;
}

std::string build_describe() {
#ifdef CELLSCOPE_GIT_DESCRIBE
  return CELLSCOPE_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

}  // namespace cellscope::obs
