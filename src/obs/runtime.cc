#include "obs/runtime.h"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace cellscope::obs {

namespace {
// Mirrors Tracer::enabled_ so enabled() needs no indirection and stays a
// single relaxed load even when called from worker threads.
std::atomic<bool> g_enabled{false};
}  // namespace

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

MetricsRegistry& metrics() {
  static MetricsRegistry instance;
  return instance;
}

Timeline& timeline() {
  static Timeline instance;
  return instance;
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
  tracer().set_enabled(on);
}

void reset() {
  tracer().reset();
  metrics().reset();
  timeline().reset();
  reset_tracked_bytes();
}

std::string obs_dir_from_env() {
  const char* dir = std::getenv("CELLSCOPE_OBS_DIR");
  return dir ? std::string(dir) : std::string{};
}

bool enable_from_env() {
  if (!obs_dir_from_env().empty()) set_enabled(true);
  return enabled();
}

std::string ensure_obs_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    throw std::runtime_error("obs: cannot create output dir '" + dir +
                             "': " + ec.message());
  if (!std::filesystem::is_directory(dir, ec))
    throw std::runtime_error("obs: output path '" + dir +
                             "' exists but is not a directory");
  // Probe writability up front so a bad CELLSCOPE_OBS_DIR fails the run
  // immediately with a reason, instead of degrading silently at the first
  // export hours later.
  const auto probe =
      std::filesystem::path(dir) / ".cellscope-obs-write-probe";
  {
    std::ofstream out(probe, std::ios::trunc);
    out << "probe\n";
    out.flush();
    if (!out)
      throw std::runtime_error("obs: output dir '" + dir +
                               "' is not writable");
  }
  std::filesystem::remove(probe, ec);  // best-effort cleanup
  // Self-ignoring: even if the dir sits inside the repo (CELLSCOPE_OBS_DIR=
  // obs-out is the documented default), git never picks its contents up.
  const auto gitignore = std::filesystem::path(dir) / ".gitignore";
  if (!std::filesystem::exists(gitignore)) {
    std::ofstream out(gitignore);
    out << "*\n";
    out.flush();
    if (!out)
      throw std::runtime_error("obs: cannot write '" +
                               gitignore.string() + "'");
  }
  return dir;
}

long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return usage.ru_maxrss / 1024;  // bytes on macOS
#else
    return usage.ru_maxrss;  // kB on Linux
#endif
  }
#endif
  return 0;
}

long current_rss_kb() {
#if defined(__linux__)
  // /proc/self/statm field 2 is the resident set in pages.
  std::ifstream statm("/proc/self/statm");
  long size_pages = 0, resident_pages = 0;
  if (statm >> size_pages >> resident_pages) {
    const long page_kb = sysconf(_SC_PAGESIZE) / 1024;
    return resident_pages * page_kb;
  }
#endif
  return peak_rss_kb();
}

std::string build_describe() {
#ifdef CELLSCOPE_GIT_DESCRIBE
  return CELLSCOPE_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

}  // namespace cellscope::obs
