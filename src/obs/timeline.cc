#include "obs/timeline.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <ostream>

#include "obs/runtime.h"

namespace cellscope::obs {

namespace {

std::array<std::atomic<std::uint64_t>, kSubsystemCount> g_tracked_bytes{};

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// JSON has no NaN/Inf; degenerate values serialize as 0.
double finite(double value) { return std::isfinite(value) ? value : 0.0; }

}  // namespace

const char* subsystem_name(Subsystem s) {
  switch (s) {
    case Subsystem::kSim: return "sim";
    case Subsystem::kStore: return "store";
    case Subsystem::kAnalysis: return "analysis";
  }
  return "unknown";
}

void track_bytes(Subsystem s, std::uint64_t bytes) {
  g_tracked_bytes[static_cast<std::size_t>(s)].fetch_add(
      bytes, std::memory_order_relaxed);
}

std::uint64_t tracked_bytes(Subsystem s) {
  return g_tracked_bytes[static_cast<std::size_t>(s)].load(
      std::memory_order_relaxed);
}

void reset_tracked_bytes() {
  for (auto& counter : g_tracked_bytes)
    counter.store(0, std::memory_order_relaxed);
}

double rss_slope_kb_per_day(std::span<const TimelineSample> samples) {
  // Least squares of rss_kb on day over day-boundary samples only: the
  // fallback samples carry day = -1 and would skew the fit.
  double n = 0.0, sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  for (const auto& s : samples) {
    if (s.day < 0) continue;
    const auto x = static_cast<double>(s.day);
    const auto y = static_cast<double>(s.rss_kb);
    n += 1.0;
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
  }
  if (n < 2.0) return 0.0;
  const double denom = n * sum_xx - sum_x * sum_x;
  if (denom == 0.0) return 0.0;
  return (n * sum_xy - sum_x * sum_y) / denom;
}

long steady_rss_kb(std::span<const TimelineSample> samples) {
  std::vector<long> rss;
  for (const auto& s : samples)
    if (s.day >= 0) rss.push_back(s.rss_kb);
  if (rss.empty()) return 0;
  // Second half of the run: past the setup/warm-up growth.
  std::vector<long> tail(rss.begin() + static_cast<std::ptrdiff_t>(rss.size() / 2),
                         rss.end());
  std::sort(tail.begin(), tail.end());
  return tail[tail.size() / 2];
}

void Timeline::append_sample(std::int64_t day) {
  // All reads are observational: clocks, /proc, registry counters and the
  // tracked-byte atomics. Nothing here can perturb a simulation.
  const std::uint64_t now = monotonic_ns();
  if (epoch_ns_ == 0) epoch_ns_ = now;
  TimelineSample s;
  s.day = day;
  s.elapsed_seconds = static_cast<double>(now - epoch_ns_) / 1e9;
  s.rss_kb = current_rss_kb();
  s.peak_rss_kb = peak_rss_kb();
  s.sim_bytes = tracked_bytes(Subsystem::kSim);
  s.store_bytes = tracked_bytes(Subsystem::kStore);
  s.analysis_bytes = tracked_bytes(Subsystem::kAnalysis);
  const auto& registry = metrics();
  if (s.elapsed_seconds > 0.0) {
    s.rows_per_sec = static_cast<double>(registry.counter_value(
                         "sim.kpi_rows")) /
                     s.elapsed_seconds;
    s.users_per_sec = static_cast<double>(registry.counter_value(
                          "sim.user_days")) /
                      s.elapsed_seconds;
  }
  s.checkpoint_ms = last_checkpoint_ms_;
  s.flush_ms = last_flush_ms_;
  s.open_worker_lanes = tracer().open_worker_spans();
  samples_.push_back(s);
}

void Timeline::sample_day(std::int64_t day) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  append_sample(day);
}

void Timeline::maybe_sample(double min_interval_seconds) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t now = monotonic_ns();
  if (!samples_.empty() && epoch_ns_ != 0) {
    const double since_last =
        static_cast<double>(now - epoch_ns_) / 1e9 -
        samples_.back().elapsed_seconds;
    if (since_last < min_interval_seconds) return;
  }
  append_sample(-1);
}

void Timeline::record_checkpoint_ms(double ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  last_checkpoint_ms_ = ms;
}

void Timeline::record_flush_ms(double ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  last_flush_ms_ = ms;
}

std::vector<TimelineSample> Timeline::samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

bool Timeline::empty() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return samples_.empty();
}

std::uint64_t Timeline::sample_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return samples_.size();
}

double Timeline::slope_kb_per_day() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rss_slope_kb_per_day(samples_);
}

long Timeline::steady_rss() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return steady_rss_kb(samples_);
}

void Timeline::write_csv(std::ostream& os) const {
  const auto snapshot = samples();
  os << "day,elapsed_seconds,rss_kb,peak_rss_kb,sim_bytes,store_bytes,"
        "analysis_bytes,rows_per_sec,users_per_sec,checkpoint_ms,flush_ms,"
        "open_worker_lanes\n";
  for (const auto& s : snapshot) {
    os << s.day << "," << s.elapsed_seconds << "," << s.rss_kb << ","
       << s.peak_rss_kb << "," << s.sim_bytes << "," << s.store_bytes << ","
       << s.analysis_bytes << "," << finite(s.rows_per_sec) << ","
       << finite(s.users_per_sec) << "," << finite(s.checkpoint_ms) << ","
       << finite(s.flush_ms) << "," << s.open_worker_lanes << "\n";
  }
}

void Timeline::write_json(std::ostream& os) const {
  const auto snapshot = samples();
  os << "{\n  \"schema\": \"cellscope-timeline/1\",\n";
  os << "  \"rss_slope_kb_per_day\": "
     << finite(rss_slope_kb_per_day(snapshot)) << ",\n";
  os << "  \"steady_rss_kb\": " << steady_rss_kb(snapshot) << ",\n";
  os << "  \"samples\": [";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const auto& s = snapshot[i];
    os << (i ? "," : "") << "\n    {\"day\": " << s.day
       << ", \"elapsed_seconds\": " << finite(s.elapsed_seconds)
       << ", \"rss_kb\": " << s.rss_kb
       << ", \"peak_rss_kb\": " << s.peak_rss_kb
       << ", \"sim_bytes\": " << s.sim_bytes
       << ", \"store_bytes\": " << s.store_bytes
       << ", \"analysis_bytes\": " << s.analysis_bytes
       << ", \"rows_per_sec\": " << finite(s.rows_per_sec)
       << ", \"users_per_sec\": " << finite(s.users_per_sec)
       << ", \"checkpoint_ms\": " << finite(s.checkpoint_ms)
       << ", \"flush_ms\": " << finite(s.flush_ms)
       << ", \"open_worker_lanes\": " << s.open_worker_lanes << "}";
  }
  os << (snapshot.empty() ? "" : "\n  ") << "]\n}\n";
}

void Timeline::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
  last_checkpoint_ms_ = 0.0;
  last_flush_ms_ = 0.0;
  epoch_ns_ = 0;
}

}  // namespace cellscope::obs
