// Run-health timeline: longitudinal resource accounting for long runs.
//
// The obs layer's manifest (PR 2) snapshots peak RSS once, at exit — memory
// growth over a 58-day run is invisible in it. The Timeline fixes that: a
// deterministic sampler that, at every simulated-day boundary (plus a
// low-rate wall-clock fallback for long phases without day boundaries —
// store scans, imports), appends one TimelineSample recording
//
//   * current and peak RSS,
//   * the per-subsystem tracked-allocation byte counters (sim / store /
//     analysis, below),
//   * cumulative rows/sec and user-days/sec gauges (read back from the
//     process MetricsRegistry — the timeline owns no counters of its own),
//   * the latest checkpoint-publish and store-flush latencies,
//   * the number of worker-lane spans open at sample time.
//
// Samples are append-only and export as `<slug>.timeline.csv` + `.json`
// next to the run manifest. Sampling reads clocks, /proc and counters —
// never RNG streams or model state — so a sampled run's Dataset is
// bit-identical to an unsampled one (enforced by test_determinism).
//
// The per-day RSS series is what the perf-regression gate regresses over:
// rss_slope_kb_per_day() fits a least-squares line through the day samples,
// catching an unbounded per-day allocation that a single peak number hides.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <span>
#include <vector>

namespace cellscope::obs {

// Tracked-allocation subsystems. Each reports coarse byte counts at its
// serial-phase accounting points (obs::track_bytes); the timeline samples
// the running totals. Coarse on purpose: the goal is "which layer grew this
// day", not a heap profiler.
enum class Subsystem : int { kSim = 0, kStore = 1, kAnalysis = 2 };
inline constexpr int kSubsystemCount = 3;

[[nodiscard]] const char* subsystem_name(Subsystem s);

// Adds to / reads a subsystem's tracked byte counter. Relaxed atomics, so
// any thread may call, but the instrumented call sites are serial-phase and
// gated on obs::enabled() like every other obs hook.
void track_bytes(Subsystem s, std::uint64_t bytes);
[[nodiscard]] std::uint64_t tracked_bytes(Subsystem s);
void reset_tracked_bytes();

struct TimelineSample {
  std::int64_t day = -1;        // simulated day; -1 = wall-clock fallback
  double elapsed_seconds = 0.0; // since the timeline epoch (enable/reset)
  long rss_kb = 0;              // current resident set
  long peak_rss_kb = 0;
  std::uint64_t sim_bytes = 0;       // tracked_bytes(kSim) at sample time
  std::uint64_t store_bytes = 0;     // tracked_bytes(kStore)
  std::uint64_t analysis_bytes = 0;  // tracked_bytes(kAnalysis)
  double rows_per_sec = 0.0;    // cumulative sim.kpi_rows / elapsed
  double users_per_sec = 0.0;   // cumulative sim.user_days / elapsed
  double checkpoint_ms = 0.0;   // latest checkpoint publish latency
  double flush_ms = 0.0;        // latest store flush latency
  std::uint32_t open_worker_lanes = 0;  // live worker-lane spans
};

// Least-squares slope of rss_kb over day for the day-boundary samples
// (fallback samples are excluded); 0 with fewer than two day samples.
// Free function so tests can fit synthetic series directly.
[[nodiscard]] double rss_slope_kb_per_day(
    std::span<const TimelineSample> samples);

// Steady-state RSS estimate: median rss_kb over the second half of the
// day-boundary samples (the run's plateau, past setup growth); 0 when no
// day samples exist.
[[nodiscard]] long steady_rss_kb(std::span<const TimelineSample> samples);

class Timeline {
 public:
  // Appends one day-boundary sample. Serial-phase (the simulator's day
  // tail); a no-op when the obs runtime is disabled.
  void sample_day(std::int64_t day);

  // Low-rate wall-clock fallback for long phases with no day boundary to
  // hook (store scans, imports): appends a day = -1 sample if at least
  // `min_interval_seconds` passed since the last sample of any kind.
  // No-op when disabled.
  void maybe_sample(double min_interval_seconds = 5.0);

  // Latest-latency feeds, recorded by the instrumented subsystems right
  // next to their registry histograms.
  void record_checkpoint_ms(double ms);
  void record_flush_ms(double ms);

  [[nodiscard]] std::vector<TimelineSample> samples() const;
  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::uint64_t sample_count() const;

  // Summary accessors over the current samples.
  [[nodiscard]] double slope_kb_per_day() const;
  [[nodiscard]] long steady_rss() const;

  // day,elapsed_seconds,rss_kb,peak_rss_kb,sim_bytes,store_bytes,
  // analysis_bytes,rows_per_sec,users_per_sec,checkpoint_ms,flush_ms,
  // open_worker_lanes — one row per sample, append order.
  void write_csv(std::ostream& os) const;
  // {"schema": "cellscope-timeline/1", "samples": [...]}.
  void write_json(std::ostream& os) const;

  // Drops every sample and restarts the epoch. Serial-phase only.
  void reset();

 private:
  void append_sample(std::int64_t day);

  mutable std::mutex mutex_;
  std::vector<TimelineSample> samples_;
  double last_checkpoint_ms_ = 0.0;
  double last_flush_ms_ = 0.0;
  std::uint64_t epoch_ns_ = 0;  // 0 = epoch not started yet
};

}  // namespace cellscope::obs
