#include "obs/manifest.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/json.h"

namespace cellscope::obs {

namespace {

// JSON has no NaN/Inf; degenerate values serialize as 0.
std::string number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

const char* kind_name(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter: return "counter";
    case MetricSnapshot::Kind::kGauge: return "gauge";
    case MetricSnapshot::Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

}  // namespace

void write_manifest_json(std::ostream& os, const RunManifest& m) {
  os << "{\n";
  os << "  \"schema\": \"cellscope-run-manifest/1\",\n";
  os << "  \"name\": \"" << json_escape(m.name) << "\",\n";
  os << "  \"tool\": \"" << json_escape(m.tool) << "\",\n";
  os << "  \"git_describe\": \"" << json_escape(m.git_describe) << "\",\n";
  os << "  \"config_digest\": \"" << json_escape(m.config_digest) << "\",\n";
  os << "  \"seed\": " << m.seed << ",\n";
  os << "  \"users\": " << m.users << ",\n";
  os << "  \"worker_threads\": " << m.worker_threads << ",\n";
  os << "  \"first_week\": " << m.first_week << ",\n";
  os << "  \"last_week\": " << m.last_week << ",\n";
  os << "  \"wall_seconds\": " << number(m.wall_seconds) << ",\n";
  os << "  \"user_days_per_sec\": " << number(m.user_days_per_sec) << ",\n";
  os << "  \"peak_rss_kb\": " << m.peak_rss_kb << ",\n";

  os << "  \"phases\": [";
  for (std::size_t i = 0; i < m.phases.size(); ++i) {
    const auto& p = m.phases[i];
    os << (i ? "," : "") << "\n    {\"name\": \"" << json_escape(p.name)
       << "\", \"category\": \"" << json_escape(p.category)
       << "\", \"count\": " << p.count
       << ", \"total_ms\": " << number(p.total_ms)
       << ", \"mean_ms\": " << number(p.mean_ms()) << "}";
  }
  os << (m.phases.empty() ? "" : "\n  ") << "],\n";

  os << "  \"metrics\": [";
  for (std::size_t i = 0; i < m.metrics.size(); ++i) {
    const auto& s = m.metrics[i];
    os << (i ? "," : "") << "\n    {\"name\": \"" << json_escape(s.name)
       << "\", \"kind\": \"" << kind_name(s.kind) << "\"";
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
        os << ", \"count\": " << s.count;
        break;
      case MetricSnapshot::Kind::kGauge:
        os << ", \"value\": " << number(s.value);
        break;
      case MetricSnapshot::Kind::kHistogram:
        os << ", \"count\": " << s.count << ", \"sum\": " << number(s.value)
           << ", \"min\": " << number(s.min) << ", \"max\": " << number(s.max)
           << ", \"p50\": " << number(s.p50)
           << ", \"p95\": " << number(s.p95);
        break;
    }
    os << "}";
  }
  os << (m.metrics.empty() ? "" : "\n  ") << "],\n";

  os << "  \"feeds\": [";
  for (std::size_t i = 0; i < m.feeds.size(); ++i) {
    const auto& f = m.feeds[i];
    os << (i ? "," : "") << "\n    {\"name\": \"" << json_escape(f.name)
       << "\", \"expected\": " << f.expected
       << ", \"observed\": " << f.observed
       << ", \"quarantined\": " << f.quarantined
       << ", \"duplicates\": " << f.duplicates
       << ", \"completeness\": " << number(f.completeness) << "}";
  }
  os << (m.feeds.empty() ? "" : "\n  ") << "],\n";

  os << "  \"recovery\": {\"interrupted\": "
     << (m.interrupted ? "true" : "false")
     << ", \"day_failed\": " << (m.day_failed ? "true" : "false")
     << ", \"resumed\": " << (m.resumed ? "true" : "false")
     << ", \"resumed_from_day\": " << m.resumed_from_day
     << ", \"supervisor_retries\": " << m.supervisor_retries
     << ", \"supervisor_failures\": " << m.supervisor_failures
     << ", \"supervisor_stalls\": " << m.supervisor_stalls << "}";

  if (m.timeline.samples > 0) {
    os << ",\n  \"timeline\": {\"samples\": " << m.timeline.samples
       << ", \"steady_rss_kb\": " << m.timeline.steady_rss_kb
       << ", \"rss_slope_kb_per_day\": "
       << number(m.timeline.rss_slope_kb_per_day)
       << ", \"rows_per_sec\": " << number(m.timeline.rows_per_sec)
       << ", \"users_per_sec\": " << number(m.timeline.users_per_sec) << "}";
  }

  if (m.audit_enabled) {
    os << ",\n  \"audit\": {\"enabled\": true, \"checks\": " << m.audit_checks
       << ", \"violations\": " << m.audit_violations << ", \"laws\": [";
    for (std::size_t i = 0; i < m.audit_laws.size(); ++i) {
      const auto& law = m.audit_laws[i];
      os << (i ? "," : "") << "\n    {\"name\": \"" << json_escape(law.name)
         << "\", \"checks\": " << law.checks
         << ", \"violations\": " << law.violations << "}";
    }
    os << (m.audit_laws.empty() ? "" : "\n  ") << "]}";
  }
  os << "\n}\n";
}

}  // namespace cellscope::obs
