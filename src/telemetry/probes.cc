#include "telemetry/probes.h"

namespace cellscope::telemetry {

std::uint64_t DailySignalingCounts::total_events() const {
  std::uint64_t sum = 0;
  for (const auto n : total) sum += n;
  return sum;
}

double DailySignalingCounts::failure_rate(
    traffic::SignalingEventType type) const {
  const auto i = static_cast<int>(type);
  if (total[i] == 0) return 0.0;
  return static_cast<double>(failures[i]) / static_cast<double>(total[i]);
}

void SignalingProbe::on_event(const traffic::SignalingEvent& event) {
  const SimDay day = day_of(event.hour);
  if (days_.empty() || days_.back().day != day) {
    days_.emplace_back();
    days_.back().day = day;
  }
  auto& counts = days_.back();
  const auto i = static_cast<int>(event.type);
  ++counts.total[i];
  if (!event.success) ++counts.failures[i];
  ++events_ingested_;
}

void SignalingProbe::merge(const SignalingProbe& other) {
  // Merge two day-sorted count lists.
  std::vector<DailySignalingCounts> merged;
  merged.reserve(days_.size() + other.days_.size());
  std::size_t a = 0, b = 0;
  while (a < days_.size() || b < other.days_.size()) {
    if (b >= other.days_.size() ||
        (a < days_.size() && days_[a].day < other.days_[b].day)) {
      merged.push_back(days_[a++]);
    } else if (a >= days_.size() || other.days_[b].day < days_[a].day) {
      merged.push_back(other.days_[b++]);
    } else {
      DailySignalingCounts combined = days_[a++];
      const DailySignalingCounts& extra = other.days_[b++];
      for (int t = 0; t < traffic::kSignalingEventTypeCount; ++t) {
        combined.total[t] += extra.total[t];
        combined.failures[t] += extra.failures[t];
      }
      merged.push_back(combined);
    }
  }
  days_ = std::move(merged);
  events_ingested_ += other.events_ingested_;
}

void SignalingProbe::restore_day(const DailySignalingCounts& counts) {
  days_.push_back(counts);
  events_ingested_ += counts.total_events();
}

const DailySignalingCounts* SignalingProbe::day(SimDay day) const {
  for (const auto& d : days_)
    if (d.day == day) return &d;
  return nullptr;
}

}  // namespace cellscope::telemetry
