#include "telemetry/kpi.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "common/stats.h"

namespace cellscope::telemetry {

namespace {
constexpr std::array<std::string_view, kKpiMetricCount> kMetricNames = {
    "DL data volume",        "UL data volume",
    "active DL users",       "TTI utilization",
    "user DL throughput",    "active data seconds",
    "connected users",       "voice volume",
    "simultaneous voice users", "voice DL loss",
    "voice UL loss"};
}  // namespace

std::string_view kpi_metric_name(KpiMetric metric) {
  return kMetricNames[static_cast<int>(metric)];
}

double kpi_value(const CellDayRecord& r, KpiMetric metric) {
  switch (metric) {
    case KpiMetric::kDlVolume: return r.dl_volume_mb;
    case KpiMetric::kUlVolume: return r.ul_volume_mb;
    case KpiMetric::kActiveDlUsers: return r.active_dl_users;
    case KpiMetric::kTtiUtilization: return r.tti_utilization;
    case KpiMetric::kUserDlThroughput: return r.user_dl_throughput_mbps;
    case KpiMetric::kActiveDataSeconds: return r.active_data_seconds;
    case KpiMetric::kConnectedUsers: return r.connected_users;
    case KpiMetric::kVoiceVolume: return r.voice_volume_mb;
    case KpiMetric::kSimultaneousVoiceUsers: return r.simultaneous_voice_users;
    case KpiMetric::kVoiceDlLoss: return r.voice_dl_loss_pct;
    case KpiMetric::kVoiceUlLoss: return r.voice_ul_loss_pct;
  }
  return 0.0;
}

KpiAggregator::KpiAggregator(std::size_t cell_count, DailyReduction reduction)
    : cell_count_(cell_count), reduction_(reduction) {
  samples_.assign(cell_count_ * kKpiMetricCount * kHoursPerDay, 0.0);
  hours_recorded_.assign(cell_count_, 0);
}

std::size_t KpiAggregator::slot(std::size_t cell, int metric,
                                int hour) const {
  return (cell * kKpiMetricCount + static_cast<std::size_t>(metric)) *
             kHoursPerDay +
         static_cast<std::size_t>(hour);
}

void KpiAggregator::begin_day(SimDay day) {
  if (day_open_)
    throw std::logic_error("KpiAggregator: previous day not finished");
  day_ = day;
  day_open_ = true;
  std::fill(samples_.begin(), samples_.end(), 0.0);
  std::fill(hours_recorded_.begin(), hours_recorded_.end(), 0);
}

void KpiAggregator::record_hour(CellId cell, const radio::CellHourKpi& kpi) {
  assert(day_open_);
  const std::size_t c = cell.value();
  assert(c < cell_count_);
  const int hour = hours_recorded_[c];
  if (hour >= kHoursPerDay)
    throw std::logic_error("KpiAggregator: more than 24 hours recorded");
  const std::array<double, kKpiMetricCount> values = {
      kpi.dl_volume_mb,        kpi.ul_volume_mb,
      kpi.active_dl_users,     kpi.tti_utilization,
      kpi.user_dl_throughput_mbps, kpi.active_data_seconds,
      kpi.connected_users,     kpi.voice_volume_mb,
      kpi.simultaneous_voice_users, kpi.voice_dl_loss_pct,
      kpi.voice_ul_loss_pct};
  for (int m = 0; m < kKpiMetricCount; ++m)
    samples_[slot(c, m, hour)] = values[static_cast<std::size_t>(m)];
  ++hours_recorded_[c];
}

std::vector<CellDayRecord> KpiAggregator::finish_day() {
  if (!day_open_)
    throw std::logic_error("KpiAggregator: no day in progress");
  day_open_ = false;

  std::vector<CellDayRecord> rows;
  rows.reserve(cell_count_);
  for (std::size_t c = 0; c < cell_count_; ++c) {
    const int n = hours_recorded_[c];
    if (n == 0) continue;  // cell not monitored today (e.g. legacy RAT)
    CellDayRecord row;
    row.cell = CellId{static_cast<std::uint32_t>(c)};
    row.day = day_;
    std::array<double, kKpiMetricCount> reduced{};
    for (int m = 0; m < kKpiMetricCount; ++m) {
      const std::span<const double> hours{&samples_[slot(c, m, 0)],
                                          static_cast<std::size_t>(n)};
      reduced[static_cast<std::size_t>(m)] =
          reduction_ == DailyReduction::kMedian ? stats::median(hours)
                                                : stats::mean(hours);
    }
    row.dl_volume_mb = reduced[0];
    row.ul_volume_mb = reduced[1];
    row.active_dl_users = reduced[2];
    row.tti_utilization = reduced[3];
    row.user_dl_throughput_mbps = reduced[4];
    row.active_data_seconds = reduced[5];
    row.connected_users = reduced[6];
    row.voice_volume_mb = reduced[7];
    row.simultaneous_voice_users = reduced[8];
    row.voice_dl_loss_pct = reduced[9];
    row.voice_ul_loss_pct = reduced[10];
    rows.push_back(row);
  }
  return rows;
}

void KpiStore::add_day(std::vector<CellDayRecord> rows) {
  if (rows.empty()) return;
  const SimDay day = rows.front().day;
  if (records_.empty()) {
    first_day_ = day;
  } else if (day <= last_day_) {
    // Gaps are allowed (real exports can miss days); going backwards or
    // splitting one day across add_day calls is a bug.
    throw std::logic_error("KpiStore: days must be added in increasing order");
  }
  last_day_ = day;
  records_.insert(records_.end(), rows.begin(), rows.end());
}

}  // namespace cellscope::telemetry
