// Radio Network Performance feed.
//
// Section 2.4: KPIs are collected hourly per 4G cell, then "aggregate[d]
// per day [by extracting] the (hourly) median value per cell", giving one
// value per metric per cell per day. KpiAggregator implements exactly that
// reduction (with the mean available as the documented ablation), and
// KpiStore holds the resulting daily records for the analysis layer.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/simtime.h"
#include "radio/scheduler.h"

namespace cellscope::telemetry {

// One cell-day row of the performance feed (daily medians of hourly KPIs).
struct CellDayRecord {
  CellId cell;
  SimDay day = 0;
  double dl_volume_mb = 0.0;
  double ul_volume_mb = 0.0;
  double active_dl_users = 0.0;
  double tti_utilization = 0.0;
  double user_dl_throughput_mbps = 0.0;
  double active_data_seconds = 0.0;
  double connected_users = 0.0;
  double voice_volume_mb = 0.0;
  double simultaneous_voice_users = 0.0;
  double voice_dl_loss_pct = 0.0;
  double voice_ul_loss_pct = 0.0;
};

enum class KpiMetric : std::uint8_t {
  kDlVolume = 0,
  kUlVolume,
  kActiveDlUsers,
  kTtiUtilization,
  kUserDlThroughput,
  kActiveDataSeconds,
  kConnectedUsers,
  kVoiceVolume,
  kSimultaneousVoiceUsers,
  kVoiceDlLoss,
  kVoiceUlLoss,
};
inline constexpr int kKpiMetricCount = 11;

[[nodiscard]] std::string_view kpi_metric_name(KpiMetric metric);
[[nodiscard]] double kpi_value(const CellDayRecord& record, KpiMetric metric);

enum class DailyReduction : std::uint8_t {
  kMedian = 0,  // what the paper reports
  kMean,        // ablation (DESIGN.md Section 5)
};

class KpiAggregator {
 public:
  // `cell_count` indexes cells densely by CellId value.
  KpiAggregator(std::size_t cell_count,
                DailyReduction reduction = DailyReduction::kMedian);

  void begin_day(SimDay day);
  void record_hour(CellId cell, const radio::CellHourKpi& kpi);
  // Reduces the day's 24 hourly samples per cell to one CellDayRecord each.
  // Cells with no recorded hours produce all-zero rows (idle rural cells).
  [[nodiscard]] std::vector<CellDayRecord> finish_day();

 private:
  std::size_t cell_count_;
  DailyReduction reduction_;
  SimDay day_ = 0;
  bool day_open_ = false;
  // [cell][metric][hour_slot] sample buffers, flattened.
  std::vector<double> samples_;
  std::vector<std::uint8_t> hours_recorded_;
  [[nodiscard]] std::size_t slot(std::size_t cell, int metric,
                                 int hour) const;
};

// All cell-day rows of the analysis window, with lookup helpers.
class KpiStore {
 public:
  void add_day(std::vector<CellDayRecord> rows);

  [[nodiscard]] const std::vector<CellDayRecord>& records() const {
    return records_;
  }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] SimDay first_day() const { return first_day_; }
  [[nodiscard]] SimDay last_day() const { return last_day_; }

 private:
  std::vector<CellDayRecord> records_;
  SimDay first_day_ = 0;
  SimDay last_day_ = -1;
};

}  // namespace cellscope::telemetry
