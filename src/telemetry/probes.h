// Passive signaling probes.
//
// The measurement infrastructure taps the MME / MSC / SGSN-SGW interfaces
// (Fig 1 of the paper) and sees every control-plane event. SignalingProbe
// is the in-memory aggregation point: per-day counters per event type and
// result code, so operations dashboards (and tests) can ask "how many
// attaches failed on day X" without retaining the raw event stream.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/simtime.h"
#include "traffic/core_network.h"

namespace cellscope::telemetry {

struct DailySignalingCounts {
  SimDay day = 0;
  std::array<std::uint64_t, traffic::kSignalingEventTypeCount> total{};
  std::array<std::uint64_t, traffic::kSignalingEventTypeCount> failures{};

  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] double failure_rate(traffic::SignalingEventType type) const;
};

class SignalingProbe final : public traffic::SignalingSink {
 public:
  void on_event(const traffic::SignalingEvent& event) override;

  // Days appear in insertion (chronological) order.
  [[nodiscard]] const std::vector<DailySignalingCounts>& days() const {
    return days_;
  }
  [[nodiscard]] const DailySignalingCounts* day(SimDay day) const;

  // Adds another probe's counters into this one (used to combine the
  // per-worker probes of a parallel simulation). Both probes must hold
  // chronologically ordered days.
  void merge(const SignalingProbe& other);

  // Serialization access (store/dataset_io): appends one saved day's
  // counters verbatim. Days must arrive in chronological order.
  void restore_day(const DailySignalingCounts& counts);

  // Observability: lifetime event count across every day this probe (and
  // any probes merged into it) ingested. The simulator publishes this into
  // the metrics registry after the per-worker merge.
  [[nodiscard]] std::uint64_t events_ingested() const {
    return events_ingested_;
  }

 private:
  std::vector<DailySignalingCounts> days_;
  std::uint64_t events_ingested_ = 0;
};

}  // namespace cellscope::telemetry
