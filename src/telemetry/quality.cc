#include "telemetry/quality.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace cellscope::telemetry {

double FeedQuality::completeness() const {
  if (expected_records == 0) return 1.0;
  return static_cast<double>(observed_records) /
         static_cast<double>(expected_records);
}

double FeedQuality::coverage(SimDay day) const {
  const auto it = days.find(day);
  if (it == days.end() || it->second.expected == 0) return 1.0;
  return static_cast<double>(it->second.observed) /
         static_cast<double>(it->second.expected);
}

int FeedQuality::largest_gap_days(double threshold) const {
  int largest = 0;
  int run = 0;
  SimDay previous = 0;
  bool first = true;
  for (const auto& [day, count] : days) {
    const double cov =
        count.expected == 0
            ? 1.0
            : static_cast<double>(count.observed) /
                  static_cast<double>(count.expected);
    // A break in the tracked-day sequence ends any running gap.
    if (!first && day != previous + 1) run = 0;
    first = false;
    previous = day;
    run = cov < threshold ? run + 1 : 0;
    largest = std::max(largest, run);
  }
  return largest;
}

FeedQuality& FeedQualityReport::feed(std::string_view name) {
  for (auto& f : feeds_)
    if (f.name == name) return f;
  feeds_.emplace_back();
  feeds_.back().name = std::string(name);
  return feeds_.back();
}

const FeedQuality* FeedQualityReport::find(std::string_view name) const {
  for (const auto& f : feeds_)
    if (f.name == name) return &f;
  return nullptr;
}

void FeedQualityReport::expect(std::string_view feed_name, SimDay day,
                               std::uint64_t n) {
  auto& f = feed(feed_name);
  f.expected_records += n;
  f.days[day].expected += n;
}

void FeedQualityReport::observe(std::string_view feed_name, SimDay day,
                                std::uint64_t n) {
  auto& f = feed(feed_name);
  f.observed_records += n;
  f.days[day].observed += n;
}

void FeedQualityReport::quarantine(std::string_view feed_name,
                                   std::uint64_t n) {
  feed(feed_name).quarantined_records += n;
}

void FeedQualityReport::duplicate(std::string_view feed_name,
                                  std::uint64_t n) {
  feed(feed_name).duplicate_records += n;
}

void FeedQualityReport::merge(const FeedQualityReport& other) {
  for (const auto& theirs : other.feeds_) {
    auto& ours = feed(theirs.name);
    ours.expected_records += theirs.expected_records;
    ours.observed_records += theirs.observed_records;
    ours.quarantined_records += theirs.quarantined_records;
    ours.duplicate_records += theirs.duplicate_records;
    for (const auto& [day, count] : theirs.days) {
      ours.days[day].expected += count.expected;
      ours.days[day].observed += count.observed;
    }
  }
}

void FeedQualityReport::print(std::ostream& os) const {
  os << "FeedQualityReport\n";
  if (feeds_.empty()) {
    os << "  (no feeds tracked)\n";
    return;
  }
  char line[256];
  std::snprintf(line, sizeof(line), "  %-12s %12s %12s %11s %10s %12s %9s\n",
                "feed", "expected", "observed", "quarantined", "duplicate",
                "completeness", "max gap");
  os << line;
  for (const auto& f : feeds_) {
    std::snprintf(line, sizeof(line),
                  "  %-12s %12llu %12llu %11llu %10llu %11.2f%% %7dd\n",
                  f.name.c_str(),
                  static_cast<unsigned long long>(f.expected_records),
                  static_cast<unsigned long long>(f.observed_records),
                  static_cast<unsigned long long>(f.quarantined_records),
                  static_cast<unsigned long long>(f.duplicate_records),
                  100.0 * f.completeness(), f.largest_gap_days());
    os << line;
  }
}

}  // namespace cellscope::telemetry
