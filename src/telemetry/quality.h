// Feed data-quality accounting.
//
// Before trusting any trend line, a measurement study has to know how much
// of each feed actually arrived (the paper's probes, like any passive
// deployment, lose hours and rows). FeedQualityReport is the ledger:
// per-feed expected-vs-observed record counts, per-day coverage fractions,
// quarantined (corrupted) and duplicated record counters, and the largest
// under-coverage gap. The simulator fills one in as days complete; the CSV
// importer fills one in from a warehouse dump; benches print it next to the
// figures so degraded runs are never mistaken for clean ones.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/simtime.h"

namespace cellscope::telemetry {

struct FeedQuality {
  struct DayCount {
    std::uint64_t expected = 0;
    std::uint64_t observed = 0;
  };

  std::string name;
  std::uint64_t expected_records = 0;
  std::uint64_t observed_records = 0;   // delivered, excluding duplicates
  std::uint64_t quarantined_records = 0;  // corrupted / unparseable, excluded
  std::uint64_t duplicate_records = 0;    // redundant copies dropped/flagged
  std::map<SimDay, DayCount> days;        // per-day expected/observed

  // observed / expected over the whole feed; 1 when nothing was expected.
  [[nodiscard]] double completeness() const;
  // observed / expected for one day; 1 when the day was never expected.
  [[nodiscard]] double coverage(SimDay day) const;
  // Longest run of consecutive tracked days whose coverage is strictly
  // below `threshold` (0 for a fully covered feed).
  [[nodiscard]] int largest_gap_days(double threshold = 0.5) const;
};

class FeedQualityReport {
 public:
  // Fetches (creating on first use) a feed ledger; insertion order is
  // stable, so reports print deterministically.
  FeedQuality& feed(std::string_view name);
  [[nodiscard]] const FeedQuality* find(std::string_view name) const;
  [[nodiscard]] const std::vector<FeedQuality>& feeds() const {
    return feeds_;
  }
  [[nodiscard]] bool empty() const { return feeds_.empty(); }

  void expect(std::string_view feed_name, SimDay day, std::uint64_t n = 1);
  void observe(std::string_view feed_name, SimDay day, std::uint64_t n = 1);
  void quarantine(std::string_view feed_name, std::uint64_t n = 1);
  void duplicate(std::string_view feed_name, std::uint64_t n = 1);

  // Adds another report's counters into this one (per-worker merge).
  void merge(const FeedQualityReport& other);

  // Human-readable summary table (benches print this).
  void print(std::ostream& os) const;

 private:
  std::vector<FeedQuality> feeds_;
};

}  // namespace cellscope::telemetry
