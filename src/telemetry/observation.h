// Per-user-day tower observations.
//
// Section 2.3: the mobility pipeline associates each anonymized user to the
// radio towers they touch, with the total connected duration per tower, the
// tower's location (from the topology feed), and the postcode/county from
// the administrative join. A UserDayObservation is that joined record for
// one user-day — the unit the analysis library (entropy, gyration, home
// detection, relocation matrix) computes on. The simulator streams these
// day by day so nothing user-level is retained beyond what an aggregation
// needs.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/geodesy.h"
#include "common/ids.h"
#include "common/simtime.h"

namespace cellscope::telemetry {

// A user's aggregate presence at one tower on one day.
struct TowerStay {
  SiteId site;
  LatLon location;       // tower location from the topology feed
  CountyId county;       // administrative join
  PostcodeDistrictId district;
  float hours = 0.0f;    // total connected duration (24h window)
  // Hours within each of the paper's six 4-hour bins.
  std::array<float, kFourHourBinsPerDay> bin_hours{};
  // Hours within the home-detection nighttime window (00:00-08:00).
  float night_hours = 0.0f;
};

struct UserDayObservation {
  UserId user;
  SimDay day = 0;
  std::vector<TowerStay> stays;

  [[nodiscard]] bool empty() const { return stays.empty(); }
  [[nodiscard]] float total_hours() const {
    float total = 0.0f;
    for (const auto& s : stays) total += s.hours;
    return total;
  }
};

}  // namespace cellscope::telemetry
