// audit_store: post-hoc conservation audit of a cellstore directory.
//
//   ./build/examples/audit_store <store-dir> [num_users] [seed]
//
// Runs the store-reconcile law over the directory's physical feeds (every
// shard re-read and CRC-checked, row/byte totals reconciled against the
// manifest's writer-side accounting), and — when the stored config digest
// matches the scenario the arguments describe — replays the dataset and
// runs the full conservation-law registry over it (docs/AUDIT.md): KPI
// partition/aggregation sums, voice call accounting, quality-ledger
// closure, signaling balance and metric ranges.
//
// num_users/seed default to the figure-bench scenario
// (sim::default_scenario, honoring CELLSCOPE_BENCH_USERS /
// CELLSCOPE_BENCH_SEED); pass the values the store was created with so the
// digests line up. A digest mismatch only skips the dataset laws — the
// physical audit always runs.
//
// Exit status: 0 clean, 2 usage/missing store, 3 violations found.
#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/dataset_audit.h"
#include "sim/scenario.h"
#include "store/dataset_io.h"

using namespace cellscope;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: audit_store <store-dir> [num_users] [seed]\n";
    return 2;
  }
  const std::string dir{argv[1]};
  const std::string digest = store::stored_digest(dir);
  if (digest.empty()) {
    std::cerr << "audit_store: no readable cellstore manifest in " << dir
              << "\n";
    return 2;
  }

  sim::ScenarioConfig config = sim::default_scenario();
  if (const char* users = std::getenv("CELLSCOPE_BENCH_USERS"))
    config.num_users = static_cast<std::uint32_t>(std::atoi(users));
  if (const char* seed = std::getenv("CELLSCOPE_BENCH_SEED"))
    config.seed = std::strtoull(seed, nullptr, 10);
  if (argc > 2)
    config.num_users = static_cast<std::uint32_t>(std::atoi(argv[2]));
  if (argc > 3) config.seed = std::strtoull(argv[3], nullptr, 10);

  // Physical audit first: runs regardless of what scenario is stored.
  audit::AuditReport report = store::audit_store(dir);

  if (sim::config_digest(config) == digest) {
    auto outcome = store::read_dataset(dir, config);
    if (outcome.dataset.has_value()) {
      report.merge(sim::audit_dataset(*outcome.dataset));
    } else {
      std::cout << "(dataset not replayable: " << outcome.error
                << " — physical audit only)\n";
    }
  } else {
    std::cout << "(stored digest " << digest
              << " != scenario digest for these arguments — skipping the "
                 "dataset laws, physical audit only)\n";
  }

  report.print(std::cout);
  return report.clean() ? 0 : 3;
}
