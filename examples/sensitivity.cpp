// sensitivity: one-at-a-time sensitivity analysis of the behavioural
// parameters behind the headline results. For each knob, rerun the scenario
// at low/default/high settings and report how the three numbers the paper
// leads with respond: the lockdown gyration trough, the UK DL-volume trough
// and the Inner-London residents-present level. This is the reviewer's
// question — "which of your calibrated constants actually matter?" —
// answered with the public API.
//
//   ./build/examples/sensitivity [num_users] [seed]
#include <cstdlib>
#include <functional>
#include <iostream>

#include "analysis/network_metrics.h"
#include "common/table.h"
#include "sim/simulator.h"

using namespace cellscope;

namespace {

struct Headlines {
  double gyration_trough = 0.0;  // % vs wk 9, weeks 13-16
  double dl_trough = 0.0;        // % vs wk 9, weeks 13-19 (UK median)
  double london_presence = 0.0;  // % vs wk 9, weeks 13+
};

Headlines measure(const sim::ScenarioConfig& config) {
  const sim::Dataset data = sim::run_scenario(config);
  Headlines h;

  const double g_base = data.gyration_baseline();
  for (int w = 13; w <= 16; ++w)
    h.gyration_trough = std::min(
        h.gyration_trough,
        stats::delta_percent(data.gyration_national.week_baseline(0, w),
                             g_base));

  const auto grouping =
      analysis::group_by_region(*data.geography, *data.topology);
  analysis::KpiGroupSeries dl{data.kpis, grouping,
                              telemetry::KpiMetric::kDlVolume};
  for (const auto& point : dl.weekly_delta(0, 9, 13, 19))
    h.dl_trough = std::min(h.dl_trough, point.value);

  if (data.london_matrix) {
    const auto inner = *data.geography->county_by_name("Inner London");
    double wk9 = 0.0;
    for (int i = 0; i < 7; ++i)
      wk9 += data.london_matrix->presence(inner, week_start_day(9) + i) / 7.0;
    double lockdown = 0.0;
    int days = 0;
    for (SimDay d = week_start_day(13); d <= data.config.last_day(); ++d) {
      lockdown += data.london_matrix->presence(inner, d);
      ++days;
    }
    h.london_presence =
        stats::delta_percent(lockdown / std::max(1, days), wk9);
  }
  return h;
}

struct Knob {
  std::string name;
  std::string setting;  // "low" / "default" / "high" description
  std::function<void(sim::ScenarioConfig&)> apply;
};

}  // namespace

int main(int argc, char** argv) {
  sim::ScenarioConfig base = sim::default_scenario();
  base.collect_signaling = false;
  if (argc > 1) base.num_users = static_cast<std::uint32_t>(std::atoi(argv[1]));
  if (argc > 2) base.seed = std::strtoull(argv[2], nullptr, 10);
  std::cout << "sensitivity: " << base.num_users << " subscribers, seed "
            << base.seed << "\n";

  const std::vector<Knob> knobs = {
      {"wfh_adoption", "0.6 (low)",
       [](sim::ScenarioConfig& c) { c.behavior.wfh_adoption = 0.6; }},
      {"wfh_adoption", "1.0 (high)",
       [](sim::ScenarioConfig& c) { c.behavior.wfh_adoption = 1.0; }},
      {"home_dl_residue", "0.0125 (half)",
       [](sim::ScenarioConfig& c) { c.demand.home_dl_residue = 0.0125; }},
      {"home_dl_residue", "0.05 (double)",
       [](sim::ScenarioConfig& c) { c.demand.home_dl_residue = 0.05; }},
      {"lockdown_errand", "0.3 (low)",
       [](sim::ScenarioConfig& c) { c.behavior.lockdown_errand = 0.3; }},
      {"lockdown_errand", "0.8 (high)",
       [](sim::ScenarioConfig& c) { c.behavior.lockdown_errand = 0.8; }},
      {"seasonal_leave", "0.15 (low)",
       [](sim::ScenarioConfig& c) { c.relocation.seasonal_leave = 0.15; }},
      {"seasonal_leave", "0.6 (high)",
       [](sim::ScenarioConfig& c) { c.relocation.seasonal_leave = 0.6; }},
      {"suppression_scale", "0.8 (lax)",
       [](sim::ScenarioConfig& c) { c.policy.suppression_scale = 0.8; }},
  };

  std::cout << "running the default + " << knobs.size()
            << " perturbed scenarios...\n";
  const Headlines reference = measure(base);

  TextTable table({"knob", "setting", "gyration trough %", "UK DL trough %",
                   "InnerLdn presence %"});
  table.row()
      .cell("(default)")
      .cell("-")
      .cell(reference.gyration_trough)
      .cell(reference.dl_trough)
      .cell(reference.london_presence);
  for (const auto& knob : knobs) {
    auto config = base;
    knob.apply(config);
    const Headlines h = measure(config);
    table.row()
        .cell(knob.name)
        .cell(knob.setting)
        .cell(h.gyration_trough)
        .cell(h.dl_trough)
        .cell(h.london_presence);
  }
  print_banner(std::cout, "One-at-a-time sensitivity");
  table.print(std::cout);

  std::cout
      << "\nReading: the qualitative conclusions (deep gyration drop,\n"
         "~-25% DL, ~-10%+ Inner London absence) survive every single-knob\n"
         "perturbation; magnitudes move in the physically expected\n"
         "direction (e.g. halving the home WiFi residue deepens the DL\n"
         "trough, higher seasonal departure deepens the London absence).\n";
  return 0;
}
