// export_feeds: simulate once into a cellstore, then dump every feed as
// CSV — the "data-warehouse export" entry point for anyone who wants to
// analyze or plot the synthetic measurement campaign with their own
// tooling.
//
//   ./build/examples/export_feeds <output-dir> [num_users] [seed]
//
// The run is backed by the on-disk feed store (docs/STORAGE.md): the
// simulation streams into a cellstore directory and the dominant feed
// (kpis.csv, one row per cell-day) is exported *out-of-core*, decoded
// shard by shard straight off the store's mmap reader instead of from the
// in-memory dataset. Re-running with the same scenario replays the cached
// store bitwise-identically and skips the simulation entirely.
//
// The store lives under $CELLSCOPE_STORE_DIR/<config-digest>/ when that
// variable is set (shareable cache across runs and benches), otherwise
// under <output-dir>/store/<config-digest>/.
//
// Writes: kpis.csv, mobility_national.csv, mobility_by_region.csv,
//         mobility_by_cluster.csv, london_matrix.csv, signaling.csv
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/export.h"
#include "sim/simulator.h"
#include "store/dataset_io.h"

using namespace cellscope;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: export_feeds <output-dir> [num_users] [seed]\n";
    return 2;
  }
  const std::filesystem::path out_dir{argv[1]};
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::cerr << "cannot create " << out_dir << ": " << ec.message() << "\n";
    return 2;
  }

  sim::ScenarioConfig config = sim::default_scenario();
  if (argc > 2) config.num_users = static_cast<std::uint32_t>(std::atoi(argv[2]));
  if (argc > 3) config.seed = std::strtoull(argv[3], nullptr, 10);

  const char* store_root = std::getenv("CELLSCOPE_STORE_DIR");
  const std::string store_dir =
      (store_root != nullptr && store_root[0] != '\0'
           ? std::string(store_root)
           : (out_dir / "store").string()) +
      "/" + sim::config_digest(config);

  auto outcome = store::read_dataset(store_dir, config);
  sim::Dataset data;
  if (outcome.complete()) {
    std::cout << "export_feeds: replaying cellstore " << store_dir << " ("
              << outcome.rows_read << " rows, no simulation)...\n";
    data = std::move(*outcome.dataset);
  } else {
    std::cout << "export_feeds: simulating " << config.num_users
              << " subscribers (seed " << config.seed << ") into "
              << store_dir << "...\n";
    data = store::simulate_to_store(config, store_dir);
  }

  const auto write = [&](const std::string& name, const auto& writer) {
    const auto path = out_dir / name;
    std::ofstream os{path};
    if (!os) {
      std::cerr << "cannot open " << path << "\n";
      std::exit(2);
    }
    writer(os);
    std::cout << "  wrote " << path.string() << "\n";
  };

  // The dominant feed is exported out-of-core: rows decode shard by shard
  // off the store file, never materializing more than one shard at a time.
  write("kpis.csv", [&](std::ostream& os) {
    analysis::export_kpis_csv_header(os);
    const auto stats =
        store::scan_kpis(store_dir, [&](const telemetry::CellDayRecord& r) {
          analysis::export_kpi_row_csv(os, r, *data.topology,
                                       *data.geography);
        });
    if (stats.shards_quarantined > 0)
      std::cerr << "  warning: " << stats.shards_quarantined
                << " kpi shard(s) quarantined during export\n";
  });

  write("mobility_national.csv", [&](std::ostream& os) {
    const std::vector<std::string> names = {"gyration_km"};
    analysis::export_grouped_series_csv(os, data.gyration_national, names);
  });

  write("mobility_by_region.csv", [&](std::ostream& os) {
    std::vector<std::string> names;
    for (int r = 0; r < geo::kRegionCount; ++r)
      names.emplace_back(geo::region_name(static_cast<geo::Region>(r)));
    analysis::export_grouped_series_csv(os, data.gyration_by_region, names);
  });

  write("mobility_by_cluster.csv", [&](std::ostream& os) {
    std::vector<std::string> names;
    for (const auto cluster : geo::all_oac_clusters())
      names.emplace_back(geo::oac_name(cluster));
    analysis::export_grouped_series_csv(os, data.entropy_by_cluster, names);
  });

  if (data.london_matrix) {
    write("london_matrix.csv", [&](std::ostream& os) {
      analysis::export_mobility_matrix_csv(os, *data.london_matrix,
                                           *data.geography, 9);
    });
  }

  write("signaling.csv", [&](std::ostream& os) {
    analysis::export_signaling_csv(os, data.signaling);
  });

  std::cout << "done: " << data.kpis.records().size()
            << " KPI rows across " << data.topology->lte_cells().size()
            << " cells (store: " << store_dir << ").\n";
  return 0;
}
