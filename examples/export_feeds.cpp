// export_feeds: run a scenario and dump every feed as CSV — the
// "data-warehouse export" entry point for anyone who wants to analyze or
// plot the synthetic measurement campaign with their own tooling.
//
//   ./build/examples/export_feeds <output-dir> [num_users] [seed]
//
// Writes: kpis.csv, mobility_national.csv, mobility_by_region.csv,
//         mobility_by_cluster.csv, london_matrix.csv, signaling.csv
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/export.h"
#include "sim/simulator.h"

using namespace cellscope;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: export_feeds <output-dir> [num_users] [seed]\n";
    return 2;
  }
  const std::filesystem::path out_dir{argv[1]};
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::cerr << "cannot create " << out_dir << ": " << ec.message() << "\n";
    return 2;
  }

  sim::ScenarioConfig config = sim::default_scenario();
  if (argc > 2) config.num_users = static_cast<std::uint32_t>(std::atoi(argv[2]));
  if (argc > 3) config.seed = std::strtoull(argv[3], nullptr, 10);

  std::cout << "export_feeds: simulating " << config.num_users
            << " subscribers (seed " << config.seed << ")...\n";
  const sim::Dataset data = sim::run_scenario(config);

  const auto write = [&](const std::string& name, const auto& writer) {
    const auto path = out_dir / name;
    std::ofstream os{path};
    if (!os) {
      std::cerr << "cannot open " << path << "\n";
      std::exit(2);
    }
    writer(os);
    std::cout << "  wrote " << path.string() << "\n";
  };

  write("kpis.csv", [&](std::ostream& os) {
    analysis::export_kpis_csv(os, data.kpis, *data.topology, *data.geography);
  });

  write("mobility_national.csv", [&](std::ostream& os) {
    const std::vector<std::string> names = {"gyration_km"};
    analysis::export_grouped_series_csv(os, data.gyration_national, names);
  });

  write("mobility_by_region.csv", [&](std::ostream& os) {
    std::vector<std::string> names;
    for (int r = 0; r < geo::kRegionCount; ++r)
      names.emplace_back(geo::region_name(static_cast<geo::Region>(r)));
    analysis::export_grouped_series_csv(os, data.gyration_by_region, names);
  });

  write("mobility_by_cluster.csv", [&](std::ostream& os) {
    std::vector<std::string> names;
    for (const auto cluster : geo::all_oac_clusters())
      names.emplace_back(geo::oac_name(cluster));
    analysis::export_grouped_series_csv(os, data.entropy_by_cluster, names);
  });

  if (data.london_matrix) {
    write("london_matrix.csv", [&](std::ostream& os) {
      analysis::export_mobility_matrix_csv(os, *data.london_matrix,
                                           *data.geography, 9);
    });
  }

  write("signaling.csv", [&](std::ostream& os) {
    analysis::export_signaling_csv(os, data.signaling);
  });

  std::cout << "done: " << data.kpis.records().size()
            << " KPI rows across " << data.topology->lte_cells().size()
            << " cells.\n";
  return 0;
}
