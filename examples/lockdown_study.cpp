// lockdown_study: the full Lutu et al. (IMC 2020) characterization in one
// run — an executive summary of every headline number of the paper, from
// mobility collapse to voice surge, produced via the public analysis API.
//
//   ./build/examples/lockdown_study [num_users] [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/correlation.h"
#include "analysis/network_metrics.h"
#include "common/table.h"
#include "sim/simulator.h"

using namespace cellscope;

namespace {

double week_delta(const analysis::GroupedDailySeries& series, std::size_t group,
                  double baseline, int week) {
  return stats::delta_percent(series.week_baseline(group, week), baseline);
}

double min_week_delta(const analysis::KpiGroupSeries& series, std::size_t group,
                      int from_week, int to_week) {
  double best = 0.0;
  for (const auto& point : series.weekly_delta(group, 9, from_week, to_week))
    best = std::min(best, point.value);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  sim::ScenarioConfig config = sim::default_scenario();
  if (argc > 1) config.num_users = static_cast<std::uint32_t>(std::atoi(argv[1]));
  if (argc > 2) config.seed = std::strtoull(argv[2], nullptr, 10);

  std::cout << "=========================================================\n"
            << " A Characterization of the COVID-19 Pandemic Impact on a\n"
            << " Mobile Network Operator Traffic - synthetic reproduction\n"
            << "=========================================================\n"
            << "subscribers: " << config.num_users << ", seed: " << config.seed
            << ", ISO weeks " << config.first_week << "-" << config.last_week
            << " of 2020\n\nsimulating...\n";

  const sim::Dataset data = sim::run_scenario(config);

  // ---------------------------------------------------------------- stats
  print_banner(std::cout, "Dataset (Section 2)");
  std::cout << "  subscribers simulated:        "
            << data.population->subscribers.size() << "\n"
            << "  native smartphones (kept):    " << data.eligible_users << "\n"
            << "  cell sites / 4G cells:        " << data.topology->sites().size()
            << " / " << data.topology->lte_cells().size() << "\n"
            << "  homes detected (February):    " << data.homes.size() << "\n"
            << "  home-vs-census fit r^2:       "
            << data.home_validation.fit.r_squared << " (paper: 0.955)\n";

  // -------------------------------------------------------------- mobility
  print_banner(std::cout, "Mobility (Section 3)");
  const double g_base = data.gyration_baseline();
  const double e_base = data.entropy_baseline();
  std::cout << "  week-9 gyration baseline:     " << g_base << " km\n"
            << "  week-9 entropy baseline:      " << e_base << " nats\n";
  TextTable mobility({"metric", "wk12 (advice)", "wk13-14 (lockdown)",
                      "wk18-19 (relax)", "paper"});
  const double g12 = week_delta(data.gyration_national, 0, g_base, 12);
  const double g13 = 0.5 * (week_delta(data.gyration_national, 0, g_base, 13) +
                            week_delta(data.gyration_national, 0, g_base, 14));
  const double g18 = 0.5 * (week_delta(data.gyration_national, 0, g_base, 18) +
                            week_delta(data.gyration_national, 0, g_base, 19));
  const double e13 = 0.5 * (week_delta(data.entropy_national, 0, e_base, 13) +
                            week_delta(data.entropy_national, 0, e_base, 14));
  mobility.row().cell("gyration %").cell(g12).cell(g13).cell(g18).cell(
      "-20 / -50 / slight relax");
  mobility.row().cell("entropy %").cell(
      week_delta(data.entropy_national, 0, e_base, 12)).cell(e13).cell(
      0.5 * (week_delta(data.entropy_national, 0, e_base, 18) +
             week_delta(data.entropy_national, 0, e_base, 19))).cell(
      "smaller than gyration");
  mobility.print(std::cout);

  // Fig 4: no case-count correlation.
  const auto scatter = analysis::entropy_cases_scatter(
      data.entropy_national.group(0), e_base, data.policy->epidemic(),
      week_start_day(9), week_start_day(19) - 1);
  std::cout << "  pearson r(cases, entropy):    "
            << analysis::scatter_correlation(scatter)
            << "  (mobility tracks orders, not case counts)\n";

  // Relocation (Fig 7).
  if (data.london_matrix) {
    const auto inner = *data.geography->county_by_name("Inner London");
    double wk9 = 0.0, lockdown = 0.0;
    int lockdown_days = 0;
    for (int i = 0; i < 7; ++i)
      wk9 += data.london_matrix->presence(inner, week_start_day(9) + i);
    wk9 /= 7.0;
    for (SimDay d = week_start_day(13); d <= data.config.last_day(); ++d) {
      lockdown += data.london_matrix->presence(inner, d);
      ++lockdown_days;
    }
    lockdown /= std::max(1, lockdown_days);
    std::cout << "  Inner London residents present during lockdown: "
              << stats::delta_percent(lockdown, wk9)
              << "% vs wk9 (paper: ~-10%)\n";
  }

  // ---------------------------------------------------------- network KPIs
  print_banner(std::cout, "Network performance (Section 4)");
  const auto regions = analysis::group_by_region(*data.geography, *data.topology);
  const auto series = [&](telemetry::KpiMetric metric) {
    return analysis::KpiGroupSeries{data.kpis, regions, metric};
  };
  const auto dl = series(telemetry::KpiMetric::kDlVolume);
  const auto ul = series(telemetry::KpiMetric::kUlVolume);
  const auto load = series(telemetry::KpiMetric::kTtiUtilization);
  const auto users = series(telemetry::KpiMetric::kActiveDlUsers);
  const auto tput = series(telemetry::KpiMetric::kUserDlThroughput);
  const auto voice = series(telemetry::KpiMetric::kVoiceVolume);
  const auto dl_loss = series(telemetry::KpiMetric::kVoiceDlLoss);

  TextTable network({"KPI (UK median per cell)", "measured", "paper"});
  network.row().cell("DL volume trough").cell(
      min_week_delta(dl, 0, 13, 19)).cell("-24% (wk17)");
  network.row().cell("UL volume trough").cell(
      min_week_delta(ul, 0, 13, 19)).cell("-7%..+1.5%");
  network.row().cell("radio load trough").cell(
      min_week_delta(load, 0, 13, 19)).cell("-15.1% (wk16)");
  network.row().cell("active DL users trough").cell(
      min_week_delta(users, 0, 13, 19)).cell("-28.6% (wk19)");
  network.row().cell("user DL throughput trough").cell(
      min_week_delta(tput, 0, 9, 19)).cell("-10% (app-limited)");
  network.print(std::cout);

  // Voice (Fig 9).
  double voice_peak = 0.0;
  int voice_peak_week = 0;
  for (const auto& point : voice.weekly_delta(0, 9, 10, 19)) {
    if (point.value > voice_peak) {
      voice_peak = point.value;
      voice_peak_week = point.week;
    }
  }
  double loss_peak = 0.0;
  for (const auto& point : dl_loss.weekly_delta(0, 9, 10, 12))
    loss_peak = std::max(loss_peak, point.value);
  std::cout << "  voice volume peak:            +" << voice_peak << "% in week "
            << voice_peak_week << " (paper: +140% in week 12)\n"
            << "  voice DL loss peak (wks10-12): +" << loss_peak
            << "% (paper: >+100%, interconnect congestion)\n";

  // Geodemographic contrast (Fig 10).
  const auto clusters =
      analysis::group_by_cluster(*data.geography, *data.topology);
  analysis::KpiGroupSeries cluster_dl{data.kpis, clusters,
                                      telemetry::KpiMetric::kDlVolume};
  const auto cosmo = static_cast<std::size_t>(geo::OacCluster::kCosmopolitans);
  const auto rural = static_cast<std::size_t>(geo::OacCluster::kRuralResidents);
  std::cout << "  Cosmopolitan DL trough:       "
            << min_week_delta(cluster_dl, cosmo, 13, 19)
            << "% (paper: dramatic drop, ~-60% dense urban)\n"
            << "  Rural residents DL trough:    "
            << min_week_delta(cluster_dl, rural, 13, 19)
            << "% (paper: largely stable)\n";

  std::cout << "\nStudy complete. Run the bench_* binaries for the full\n"
               "per-figure tables and shape checks.\n";
  return 0;
}
