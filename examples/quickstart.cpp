// Quickstart: run a small scenario end to end and print the headline
// numbers of the study — the lockdown's effect on mobility (entropy,
// gyration), on data traffic (DL/UL volume, radio load) and on voice.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdlib>
#include <iostream>

#include "analysis/network_metrics.h"
#include "common/table.h"
#include "sim/simulator.h"

using namespace cellscope;

int main(int argc, char** argv) {
  sim::ScenarioConfig config = sim::smoke_scenario();
  config.seed = 7;
  if (argc > 1) {
    // Optional scale override, e.g. ./quickstart 20000
    config = sim::default_scenario();
    config.num_users = static_cast<std::uint32_t>(std::atoi(argv[1]));
  }

  std::cout << "cellscope quickstart: simulating " << config.num_users
            << " subscribers, ISO weeks " << config.first_week << "-"
            << config.last_week << " of 2020...\n";
  sim::Dataset data = sim::run_scenario(config);

  std::cout << "eligible users (native smartphones): " << data.eligible_users
            << "\nhomes detected in February: " << data.homes.size()
            << "\nhome-vs-census fit: r^2 = " << data.home_validation.fit.r_squared
            << ", slope = " << data.home_validation.fit.slope
            << " (expected market share "
            << data.home_validation.expected_market_share << ")\n";

  // --- Mobility: weekly % change vs the week-9 national average. ---
  print_banner(std::cout, "Mobility vs week 9 (national averages)");
  TextTable mobility({"week", "gyration %", "entropy %"});
  const auto gyration = data.gyration_national.weekly_delta(
      0, data.gyration_baseline(), 9, config.last_week);
  const auto entropy = data.entropy_national.weekly_delta(
      0, data.entropy_baseline(), 9, config.last_week);
  for (std::size_t i = 0; i < gyration.size(); ++i) {
    mobility.row()
        .cell(gyration[i].week)
        .cell(gyration[i].value)
        .cell(entropy[i].value);
  }
  mobility.print(std::cout);

  // --- Network: UK-wide weekly KPI deltas. ---
  print_banner(std::cout, "Network KPIs vs week 9 (UK, median per cell)");
  const auto grouping = analysis::group_by_region(*data.geography,
                                                  *data.topology);
  TextTable kpis({"week", "DL vol %", "UL vol %", "radio load %",
                  "DL users %", "user tput %", "voice vol %"});
  const auto series_of = [&](telemetry::KpiMetric metric) {
    return analysis::KpiGroupSeries{data.kpis, grouping, metric}.weekly_delta(
        0, 9, 9, config.last_week);
  };
  const auto dl = series_of(telemetry::KpiMetric::kDlVolume);
  const auto ul = series_of(telemetry::KpiMetric::kUlVolume);
  const auto load = series_of(telemetry::KpiMetric::kTtiUtilization);
  const auto users = series_of(telemetry::KpiMetric::kActiveDlUsers);
  const auto tput = series_of(telemetry::KpiMetric::kUserDlThroughput);
  const auto voice = series_of(telemetry::KpiMetric::kVoiceVolume);
  for (std::size_t i = 0; i < dl.size(); ++i) {
    kpis.row()
        .cell(dl[i].week)
        .cell(dl[i].value)
        .cell(ul[i].value)
        .cell(load[i].value)
        .cell(users[i].value)
        .cell(tput[i].value)
        .cell(voice[i].value);
  }
  kpis.print(std::cout);

  if (data.london_matrix) {
    print_banner(std::cout, "Inner London presence (weekly mean of daily %)");
    const auto rows = data.london_matrix->rows(9, 3);
    for (const auto& row : rows) {
      const auto& county = data.geography->county(row.county);
      double sum = 0.0;
      int n = 0;
      for (const auto& p : row.delta_pct) {
        if (iso_week(p.day) >= 13) {
          sum += p.value;
          ++n;
        }
      }
      std::cout << "  " << county.name
                << ": avg delta from week 13 on = " << (n ? sum / n : 0.0)
                << "%\n";
    }
  }
  std::cout << "\nDone. See bench/ for the full figure reproductions.\n";
  return 0;
}
