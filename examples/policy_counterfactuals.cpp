// policy_counterfactuals: run the pandemic under alternative intervention
// timelines and compare what the *network* would have seen. The paper
// measures one history; the calibrated simulator lets us ask the questions
// the measurement cannot:
//   - what if the UK had never ordered the lockdown (voluntary only)?
//   - what if the order had come one week earlier?
//   - what if the weeks-18/19 regional relaxation had not happened?
//
//   ./build/examples/policy_counterfactuals [num_users] [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/network_metrics.h"
#include "common/table.h"
#include "sim/simulator.h"

using namespace cellscope;

namespace {

struct Outcome {
  std::string name;
  double gyration_trough_pct = 0.0;   // weeks 13-16 vs week 9
  double entropy_trough_pct = 0.0;
  double dl_trough_pct = 0.0;         // UK median per cell, weeks 13-19
  double london_relax_pp = 0.0;       // wks 18-19 minus wks 15-17 gyration
  double inner_london_presence = 0.0; // residents present, wks 13+ vs wk 9
};

Outcome evaluate(const std::string& name, sim::ScenarioConfig config) {
  std::cout << "  running '" << name << "'...\n";
  const sim::Dataset data = sim::run_scenario(config);
  Outcome outcome;
  outcome.name = name;

  const double g_base = data.gyration_baseline();
  const double e_base = data.entropy_baseline();
  double g_trough = 0.0, e_trough = 0.0;
  for (int w = 13; w <= 16; ++w) {
    g_trough = std::min(g_trough,
                        stats::delta_percent(
                            data.gyration_national.week_baseline(0, w), g_base));
    e_trough = std::min(e_trough,
                        stats::delta_percent(
                            data.entropy_national.week_baseline(0, w), e_base));
  }
  outcome.gyration_trough_pct = g_trough;
  outcome.entropy_trough_pct = e_trough;

  const auto grouping =
      analysis::group_by_region(*data.geography, *data.topology);
  analysis::KpiGroupSeries dl{data.kpis, grouping,
                              telemetry::KpiMetric::kDlVolume};
  double dl_trough = 0.0;
  for (const auto& point : dl.weekly_delta(0, 9, 13, 19))
    dl_trough = std::min(dl_trough, point.value);
  outcome.dl_trough_pct = dl_trough;

  const auto london = static_cast<std::size_t>(geo::Region::kInnerLondon);
  const auto mean_weeks = [&](int from, int to) {
    double sum = 0.0;
    int n = 0;
    for (int w = from; w <= to; ++w) {
      sum += stats::delta_percent(
          data.gyration_by_region.week_baseline(london, w), g_base);
      ++n;
    }
    return sum / n;
  };
  outcome.london_relax_pp = mean_weeks(18, 19) - mean_weeks(15, 17);

  if (data.london_matrix) {
    const auto inner = *data.geography->county_by_name("Inner London");
    double wk9 = 0.0;
    for (int i = 0; i < 7; ++i)
      wk9 += data.london_matrix->presence(inner, week_start_day(9) + i) / 7.0;
    double lockdown = 0.0;
    int days = 0;
    for (SimDay d = week_start_day(13); d <= data.config.last_day(); ++d) {
      lockdown += data.london_matrix->presence(inner, d);
      ++days;
    }
    outcome.inner_london_presence =
        stats::delta_percent(lockdown / std::max(1, days), wk9);
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  sim::ScenarioConfig base = sim::default_scenario();
  base.collect_signaling = false;
  if (argc > 1) base.num_users = static_cast<std::uint32_t>(std::atoi(argv[1]));
  if (argc > 2) base.seed = std::strtoull(argv[2], nullptr, 10);

  std::cout << "policy_counterfactuals: " << base.num_users
            << " subscribers, seed " << base.seed << "\n";

  std::vector<Outcome> outcomes;
  outcomes.push_back(evaluate("actual timeline", base));

  {
    auto config = base;
    config.policy.lockdown_enabled = false;
    outcomes.push_back(evaluate("no lockdown (voluntary only)", config));
  }
  {
    auto config = base;
    config.policy.advice_day = timeline::kWorkFromHomeAdvice - 7;
    config.policy.closure_day = timeline::kVenueClosures - 7;
    config.policy.lockdown_day = timeline::kLockdownOrder - 7;
    outcomes.push_back(evaluate("one week earlier", config));
  }
  {
    auto config = base;
    config.policy.regional_relaxation = false;
    outcomes.push_back(evaluate("no regional relaxation", config));
  }

  print_banner(std::cout, "Counterfactual comparison");
  TextTable table({"scenario", "gyration trough %", "entropy trough %",
                   "UK DL trough %", "London relax (pp)",
                   "InnerLdn presence %"});
  for (const auto& o : outcomes) {
    table.row()
        .cell(o.name)
        .cell(o.gyration_trough_pct)
        .cell(o.entropy_trough_pct)
        .cell(o.dl_trough_pct)
        .cell(o.london_relax_pp)
        .cell(o.inner_london_presence);
  }
  table.print(std::cout);

  std::cout
      << "\nReading:\n"
         "  * Without the order, mobility settles at the voluntary level\n"
         "    (roughly the paper's week-12 plateau) and the cellular DL\n"
         "    decline is far shallower - the lockdown, not the pandemic,\n"
         "    moved the traffic.\n"
         "  * Shifting every milestone a week earlier shifts the whole\n"
         "    response a week earlier; depths barely change.\n"
         "  * Disabling the regional relaxation removes the weeks-18/19\n"
         "    London/West-Yorkshire divergence the paper highlights.\n";
  return 0;
}
