// capacity_planning: use the voice interconnect model as a dimensioning
// tool — the exercise the O2 UK operations team had to do live in March
// 2020 (Section 4.2). We extract the simulated off-net voice offered load
// of the pandemic weeks and sweep trunk headroom and expansion lead time,
// asking: what dimensioning would have kept DL voice loss inside an SLA
// throughout the surge, and what does over-provisioning cost?
//
//   ./build/examples/capacity_planning [num_users] [seed]
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "sim/simulator.h"
#include "traffic/interconnect.h"

using namespace cellscope;

namespace {
constexpr double kSlaLossPct = 0.5;  // max acceptable trunk loss (percent)
}

int main(int argc, char** argv) {
  sim::ScenarioConfig config = sim::default_scenario();
  config.collect_signaling = false;  // only traffic needed here
  if (argc > 1) config.num_users = static_cast<std::uint32_t>(std::atoi(argv[1]));
  if (argc > 2) config.seed = std::strtoull(argv[2], nullptr, 10);

  std::cout << "capacity_planning: dimensioning the inter-MNO voice trunks\n"
            << "(simulating " << config.num_users << " subscribers...)\n";
  const sim::Dataset data = sim::run_scenario(config);

  // The simulated daily busy-hour off-net minutes are the offered load a
  // dimensioning exercise works from.
  const auto& offered = data.offnet_busy_hour_minutes;
  double week9_busy = 0.0;
  for (int i = 0; i < 7; ++i)
    week9_busy = std::max(week9_busy, offered.value(week_start_day(9) + i));
  std::cout << "\nweek-9 busy-hour off-net load: " << week9_busy
            << " minutes/hour\n";

  print_banner(std::cout, "Offered busy-hour load per week (minutes)");
  TextTable offered_table({"week", "peak offered", "vs wk9"});
  for (int w = 9; w <= 19; ++w) {
    double peak = 0.0;
    for (int i = 0; i < 7; ++i)
      peak = std::max(peak, offered.value(week_start_day(w) + i));
    offered_table.row().cell(w).cell(peak, 0).cell(
        stats::delta_percent(peak, week9_busy), 1);
  }
  offered_table.print(std::cout);

  // ---- Sweep: headroom x expansion lead time. For each design, replay the
  // offered series through a trunk group and record the worst loss and the
  // number of SLA-violation days.
  print_banner(std::cout,
               "Design sweep: SLA-violation days (loss > 0.5%) per design");
  const std::vector<double> headrooms = {0.05, 0.10, 0.20, 0.40, 0.80, 1.50};
  // Days after the WFH advice until doubled capacity is in service
  // (999 = never expanded).
  const std::vector<int> lead_times = {3, 7, 14, 999};

  std::vector<std::string> headers{"headroom"};
  for (const int lead : lead_times)
    headers.push_back(lead == 999 ? "no expansion"
                                  : "expand +" + std::to_string(lead) + "d");
  TextTable sweep{headers};

  struct Design {
    double headroom;
    int lead;
    double worst_loss;
    int sla_violation_days;
  };
  std::vector<Design> designs;

  for (const double headroom : headrooms) {
    sweep.row().cell(headroom, 2);
    for (const int lead : lead_times) {
      traffic::InterconnectParams params;
      params.baseline_capacity = week9_busy * (1.0 + headroom);
      params.upgrade_factor = 2.6;
      params.upgrade_day = lead == 999
                               ? SimDay{100000}
                               : timeline::kWorkFromHomeAdvice + lead;
      traffic::VoiceInterconnect trunk{params};

      double worst = 0.0;
      int violations = 0;
      for (SimDay d = week_start_day(10); d <= data.config.last_day(); ++d) {
        const double loss = trunk.dl_loss_pct(d, offered.value(d));
        worst = std::max(worst, loss);
        if (loss > kSlaLossPct) ++violations;
      }
      sweep.cell(static_cast<long long>(violations));
      designs.push_back({headroom, lead, worst, violations});
    }
  }
  sweep.print(std::cout);

  // ---- Recommendation: cheapest design meeting the SLA.
  print_banner(std::cout, "Recommendation");
  const Design* best = nullptr;
  for (const auto& design : designs) {
    if (design.sla_violation_days > 0) continue;
    // Cost proxy: installed capacity-days. Prefer small headroom, late
    // expansion.
    if (best == nullptr || design.headroom < best->headroom ||
        (design.headroom == best->headroom && design.lead > best->lead))
      best = &design;
  }
  if (best == nullptr) {
    std::cout << "  no swept design avoids SLA violations entirely: the\n"
                 "  surge begins in week 10, before any advice-triggered\n"
                 "  expansion can land - only pre-provisioned headroom "
                 "helps.\n";
    // Fall back to the design minimizing violation days.
    for (const auto& design : designs)
      if (best == nullptr ||
          design.sla_violation_days < best->sla_violation_days)
        best = &design;
    std::cout << "  least-bad design: " << best->headroom * 100
              << "% headroom, expansion "
              << (best->lead == 999 ? std::string("never")
                                    : "+" + std::to_string(best->lead) + "d")
              << " -> " << best->sla_violation_days << " violation days.\n";
  } else {
    std::cout << "  cheapest SLA-compliant design: " << best->headroom * 100
              << "% headroom with expansion "
              << (best->lead == 999 ? std::string("never")
                                    : "+" + std::to_string(best->lead) +
                                          " days after WFH advice")
              << " (worst loss " << best->worst_loss << "%).\n";
  }
  std::cout
      << "  The operator's actual posture (~8% headroom, expansion live\n"
         "  with week 13) reproduces the paper's weeks-10..12 loss episode:\n"
         "  dimensioning for a 7-year voice surge in advance is what the\n"
         "  paper calls 'seven years of growth... in the space of a few "
         "days'.\n";
  return 0;
}
