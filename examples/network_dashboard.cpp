// network_dashboard: an operations view over the measurement feeds — what a
// NOC engineer would watch during the pandemic weeks. Exercises the parts
// of the public API the figure benches do not: the signaling probe
// counters, the daily topology snapshot, per-cell KPI distribution
// summaries and the busiest-cell ranking.
//
//   ./build/examples/network_dashboard [num_users] [seed]
#include <algorithm>
#include <unordered_map>
#include <cstdlib>
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "sim/simulator.h"

using namespace cellscope;

int main(int argc, char** argv) {
  sim::ScenarioConfig config = sim::default_scenario();
  if (argc > 1) config.num_users = static_cast<std::uint32_t>(std::atoi(argv[1]));
  if (argc > 2) config.seed = std::strtoull(argv[2], nullptr, 10);

  std::cout << "network_dashboard: operations view, weeks 9-19 of 2020\n"
            << "(simulating " << config.num_users << " subscribers...)\n";
  const sim::Dataset data = sim::run_scenario(config);

  // ---------------------------------------------------- signaling counters
  print_banner(std::cout, "Control-plane load (General Signaling Dataset)");
  TextTable signaling({"week", "events/day", "attach fail %", "handovers/day",
                       "bearer setups/day"});
  for (int w = 9; w <= 19; ++w) {
    double events = 0.0, handovers = 0.0, bearers = 0.0;
    double attach_total = 0.0, attach_failed = 0.0;
    int days = 0;
    for (int i = 0; i < 7; ++i) {
      const auto* counts = data.signaling.day(week_start_day(w) + i);
      if (counts == nullptr) continue;
      ++days;
      events += static_cast<double>(counts->total_events());
      handovers += static_cast<double>(
          counts->total[static_cast<int>(
              traffic::SignalingEventType::kHandover)]);
      bearers += static_cast<double>(
          counts->total[static_cast<int>(
              traffic::SignalingEventType::kDedicatedBearerSetup)]);
      attach_total += static_cast<double>(
          counts->total[static_cast<int>(traffic::SignalingEventType::kAttach)]);
      attach_failed += static_cast<double>(
          counts->failures[static_cast<int>(
              traffic::SignalingEventType::kAttach)]);
    }
    if (days == 0) continue;
    signaling.row()
        .cell(w)
        .cell(events / days, 0)
        .cell(attach_total > 0 ? 100.0 * attach_failed / attach_total : 0.0, 2)
        .cell(handovers / days, 0)
        .cell(bearers / days, 0);
  }
  signaling.print(std::cout);
  std::cout << "  (handovers collapse with mobility; QCI-1 bearer setups\n"
               "   surge with the voice wave)\n";

  // ------------------------------------------------------- topology health
  print_banner(std::cout, "RAN health (Radio Network Topology feed)");
  int total_outage_site_days = 0;
  int snapshot_days = 0;
  for (SimDay d = week_start_day(9); d <= data.config.last_day(); ++d) {
    ++snapshot_days;
    for (const auto& row : data.topology->snapshot(d))
      total_outage_site_days += !row.active;
  }
  std::cout << "  sites: " << data.topology->sites().size()
            << ", 4G cells: " << data.topology->lte_cells().size() << "\n"
            << "  site-down days over the window: " << total_outage_site_days
            << " (" << snapshot_days << " daily snapshots)\n";

  // -------------------------------------------- per-cell KPI distributions
  // Section 3.2/4.1 note that distributions stay tight around the median;
  // summarize the per-cell DL volume distribution for two contrasting weeks.
  print_banner(std::cout, "Per-cell daily DL volume distribution (MB)");
  TextTable distribution(
      {"week", "p10", "p25", "median", "p75", "p90", "mean"});
  for (const int w : {9, 12, 15, 19}) {
    stats::SampleBuffer values;
    for (const auto& record : data.kpis.records())
      if (iso_week(record.day) == w) values.add(record.dl_volume_mb);
    const auto summary = values.summarize();
    distribution.row()
        .cell(w)
        .cell(summary.p10, 1)
        .cell(summary.p25, 1)
        .cell(summary.median, 1)
        .cell(summary.p75, 1)
        .cell(summary.p90, 1)
        .cell(summary.mean, 1);
  }
  distribution.print(std::cout);

  // ------------------------------------------------------ busiest cells
  print_banner(std::cout, "Busiest cells, week 9 vs week 15 (daily median DL)");
  const auto busiest = [&](int week) {
    // Average each cell's daily-median DL over the week, then rank.
    std::unordered_map<std::uint32_t, stats::Running> per_cell;
    for (const auto& record : data.kpis.records())
      if (iso_week(record.day) == week)
        per_cell[record.cell.value()].add(record.dl_volume_mb);
    std::vector<std::pair<double, std::uint32_t>> ranked;
    ranked.reserve(per_cell.size());
    for (const auto& [cell, acc] : per_cell)
      ranked.emplace_back(acc.mean(), cell);
    std::sort(ranked.begin(), ranked.end(), std::greater<>());
    return ranked;
  };
  const auto before = busiest(9);
  const auto during = busiest(15);
  TextTable top({"rank", "wk9 cell (district)", "wk9 MB", "wk15 cell (district)",
                 "wk15 MB"});
  const auto describe = [&](std::uint32_t cell_value) {
    const auto& cell = data.topology->cell(CellId{cell_value});
    const auto& site = data.topology->site(cell.site);
    return data.geography->district(site.district).name;
  };
  for (int r = 0; r < 5 && r < static_cast<int>(before.size()); ++r) {
    top.row()
        .cell(r + 1)
        .cell(describe(before[r].second))
        .cell(before[r].first, 0)
        .cell(describe(during[r].second))
        .cell(during[r].first, 0);
  }
  top.print(std::cout);
  std::cout << "  (pre-pandemic hotspots sit in commercial cores; lockdown\n"
               "   hotspots shift into residential districts — Section 5.1's\n"
               "   'hot spots moving within London')\n";
  return 0;
}
