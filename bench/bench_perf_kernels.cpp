// Microbenchmarks of the hot analysis kernels (google-benchmark), plus the
// top-K tower ablation called out in DESIGN.md Section 5.
//
// These quantify the per-record cost of the paper's pipeline stages:
// entropy (Eq 1), radius of gyration (Eq 2), the combined per-user-day
// metric computation at several top-K settings, the LTE scheduler hour and
// home-detection ingestion.
//
// With CELLSCOPE_OBS_DIR set, the full google-benchmark report (per-kernel
// ns/op) is additionally written to <dir>/perf_kernels.json — the
// machine-readable baseline the BENCH_*.json perf trajectory tracks.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/home_detection.h"
#include "analysis/mobility_metrics.h"
#include "common/rng.h"
#include "obs/runtime.h"
#include "radio/scheduler.h"
#include "sim/pool.h"
#include "store/shard.h"

using namespace cellscope;

namespace {

telemetry::UserDayObservation make_observation(int towers, Rng& rng) {
  telemetry::UserDayObservation obs;
  obs.user = UserId{7};
  obs.day = 30;
  double remaining = 24.0;
  for (int t = 0; t < towers; ++t) {
    telemetry::TowerStay stay;
    stay.site = SiteId{static_cast<std::uint32_t>(t)};
    stay.location = {51.5 + rng.uniform(-0.2, 0.2),
                     -0.1 + rng.uniform(-0.3, 0.3)};
    stay.county = CountyId{0};
    stay.district = PostcodeDistrictId{static_cast<std::uint32_t>(t % 5)};
    const double h =
        t + 1 == towers ? remaining : remaining * rng.uniform(0.2, 0.6);
    stay.hours = static_cast<float>(h);
    remaining -= h;
    stay.night_hours = static_cast<float>(h / 3.0);
    stay.bin_hours[0] = static_cast<float>(h / 6.0);
    obs.stays.push_back(stay);
  }
  return obs;
}

void BM_Entropy(benchmark::State& state) {
  Rng rng{1};
  std::vector<double> dwell(static_cast<std::size_t>(state.range(0)));
  for (auto& d : dwell) d = rng.uniform(0.1, 8.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::entropy_from_dwell(dwell));
}
BENCHMARK(BM_Entropy)->Arg(4)->Arg(8)->Arg(20);

void BM_Gyration(benchmark::State& state) {
  Rng rng{2};
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<LatLon> locations(n);
  std::vector<double> hours(n);
  for (std::size_t i = 0; i < n; ++i) {
    locations[i] = {51.0 + rng.uniform(0, 1), -1.0 + rng.uniform(0, 1)};
    hours[i] = rng.uniform(0.1, 8.0);
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::gyration_from_stays(locations, hours));
}
BENCHMARK(BM_Gyration)->Arg(4)->Arg(8)->Arg(20);

// Top-K ablation: K = 5, 10, 20 (paper), unlimited.
void BM_DayMetricsTopK(benchmark::State& state) {
  Rng rng{3};
  const auto obs = make_observation(24, rng);
  analysis::MobilityMetricOptions options;
  options.top_k = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::compute_day_metrics(obs, options));
}
BENCHMARK(BM_DayMetricsTopK)->Arg(5)->Arg(10)->Arg(20)->Arg(0);

void BM_SchedulerHour(benchmark::State& state) {
  radio::Cell cell;
  cell.id = CellId{1};
  radio::CellHourLoad load;
  load.offered_dl_mb = 900.0;
  load.offered_ul_mb = 80.0;
  load.active_dl_user_seconds = 2600.0;
  load.app_limited_dl_mbps = 2.8;
  load.connected_users = 45.0;
  load.voice_dl_mb = 4.0;
  load.voice_ul_mb = 4.0;
  load.voice_user_seconds = 1300.0;
  load.offnet_voice_fraction = 0.55;
  radio::LteScheduler scheduler;
  for (auto _ : state)
    benchmark::DoNotOptimize(scheduler.schedule_hour(cell, load, 0.4));
}
BENCHMARK(BM_SchedulerHour);

// Dispatch-overhead comparison for the day loop's two engine designs: the
// old per-day spawn/join of fresh std::thread objects vs one round of the
// persistent WorkerPool (sim/pool.h). The per-item work is tiny on purpose
// — what is measured is the cost of standing a day's fan-out up and tearing
// it down, which the simulator pays once per simulated day.
constexpr std::size_t kDispatchItems = 8'192;
constexpr std::size_t kDispatchChunk = 512;

void BM_DayDispatchThreadSpawn(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::atomic<std::uint64_t> sum{0};
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([w, workers, &sum] {
        std::uint64_t local = 0;
        for (std::size_t i = w; i < kDispatchItems; i += workers) local += i;
        sum.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (auto& t : threads) t.join();
    benchmark::DoNotOptimize(sum.load());
  }
}
BENCHMARK(BM_DayDispatchThreadSpawn)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_DayDispatchWorkerPool(benchmark::State& state) {
  sim::WorkerPool pool{static_cast<int>(state.range(0))};
  std::vector<std::uint64_t> partials(pool.window(), 0);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    pool.run(
        kDispatchItems, kDispatchChunk,
        [&partials](std::size_t, std::size_t slot, std::size_t begin,
                    std::size_t end, int) {
          std::uint64_t local = 0;
          for (std::size_t i = begin; i < end; ++i) local += i;
          partials[slot] = local;
        },
        [&partials, &sum](std::size_t, std::size_t slot) {
          sum += partials[slot];
        });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_DayDispatchWorkerPool)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// cellstore throughput over a KPI-shaped feed (2 delta-varint id columns +
// 11 raw64 metric columns — the store's dominant feed). Items = rows,
// bytes = on-disk feed bytes, so the JSON report carries rows/s and MB/s.
std::vector<store::Encoding> kpi_like_schema() {
  std::vector<store::Encoding> schema{store::Encoding::kDeltaZigzagVarint,
                                      store::Encoding::kDeltaZigzagVarint};
  for (int m = 0; m < 11; ++m) schema.push_back(store::Encoding::kRaw64);
  return schema;
}

struct KpiShapedRow {
  std::int64_t day = 0;
  std::int64_t cell = 0;
  double metrics[11] = {};
};

std::vector<KpiShapedRow> make_kpi_shaped_rows(std::size_t n) {
  Rng rng{11};
  std::vector<KpiShapedRow> rows(n);
  constexpr std::int64_t kCells = 512;  // day-major, cell-ascending layout
  for (std::size_t i = 0; i < n; ++i) {
    rows[i].day = static_cast<std::int64_t>(i) / kCells;
    rows[i].cell = static_cast<std::int64_t>(i) % kCells;
    for (auto& m : rows[i].metrics) m = rng.uniform(0.0, 500.0);
  }
  return rows;
}

std::string bench_store_path() {
  return (std::filesystem::temp_directory_path() / "cellscope_bench_kpis.csf")
      .string();
}

std::uint64_t write_kpi_shaped_feed(const std::string& path,
                                    const std::vector<KpiShapedRow>& rows) {
  store::FeedFileWriter writer{path, kpi_like_schema()};
  for (const auto& r : rows) {
    writer.i64(0, r.day);
    writer.i64(1, r.cell);
    for (int m = 0; m < 11; ++m)
      writer.f64(static_cast<std::size_t>(2 + m), r.metrics[m]);
    writer.end_row(r.day);
  }
  return writer.close();
}

void BM_StoreWriteKpis(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto rows = make_kpi_shaped_rows(n);
  const std::string path = bench_store_path();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    bytes = write_kpi_shaped_feed(path, rows);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
  std::filesystem::remove(path);
}
BENCHMARK(BM_StoreWriteKpis)->Arg(16'384)->Arg(131'072);

void BM_StoreReadKpis(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string path = bench_store_path();
  const std::uint64_t bytes =
      write_kpi_shaped_feed(path, make_kpi_shaped_rows(n));
  for (auto _ : state) {
    store::FeedFileReader reader{path};
    double sum = 0.0;
    std::uint64_t rows_read = 0;
    for (const auto& shard : reader.shards()) {
      store::ColumnCursor days{shard.columns[0]};
      store::ColumnCursor cells{shard.columns[1]};
      std::vector<store::ColumnCursor> metrics;
      for (int m = 0; m < 11; ++m)
        metrics.emplace_back(shard.columns[static_cast<std::size_t>(2 + m)]);
      for (std::uint64_t i = 0; i < shard.rows; ++i) {
        std::int64_t day = 0, cell = 0;
        double value = 0.0;
        if (!days.next_i64(day) || !cells.next_i64(cell)) break;
        for (auto& cursor : metrics) {
          cursor.next_f64(value);
          sum += value;
        }
        ++rows_read;
      }
    }
    benchmark::DoNotOptimize(sum);
    benchmark::DoNotOptimize(rows_read);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
  std::filesystem::remove(path);
}
BENCHMARK(BM_StoreReadKpis)->Arg(16'384)->Arg(131'072);

void BM_HomeDetectorObserve(benchmark::State& state) {
  Rng rng{4};
  std::vector<telemetry::UserDayObservation> observations;
  for (int i = 0; i < 64; ++i) {
    auto obs = make_observation(4, rng);
    obs.user = UserId{static_cast<std::uint32_t>(i % 16)};
    obs.day = i % 20;
    observations.push_back(std::move(obs));
  }
  for (auto _ : state) {
    analysis::HomeDetector detector;
    for (const auto& obs : observations) detector.observe(obs);
    benchmark::DoNotOptimize(detector.finalize());
  }
}
BENCHMARK(BM_HomeDetectorObserve);

}  // namespace

// BENCHMARK_MAIN(), plus JSON output into CELLSCOPE_OBS_DIR when set.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag;
  if (const char* dir = std::getenv("CELLSCOPE_OBS_DIR")) {
    // Hardened env-var contract: an unusable output dir is a configuration
    // error — report it and exit 2 rather than degrade silently.
    std::string obs_dir;
    try {
      obs_dir = cellscope::obs::ensure_obs_dir(dir);
    } catch (const std::runtime_error& error) {
      std::cerr << "CELLSCOPE_OBS_DIR: " << error.what() << "\n";
      return 2;
    }
    out_flag = "--benchmark_out=" + obs_dir + "/perf_kernels.json";
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int arg_count = static_cast<int>(args.size());
  benchmark::Initialize(&arg_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(arg_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
