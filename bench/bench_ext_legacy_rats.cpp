// Extension bench: the legacy radio layers (2G/3G).
//
// The paper's probes tap the 2G/3G interfaces (Gb, Iu-PS, A, Iu-CS —
// Section 2.1) but every network-performance figure is 4G-only, justified
// by the ~75% 4G time share. This extension turns on legacy KPI collection
// and asks what the 4G-only scope leaves out: how much traffic the old
// layers carry, whether the voice surge reached them (it did — CS voice
// rode the same behavioural wave), and whether their trends would have
// changed any conclusion (they would not).
#include <iostream>

#include "analysis/network_metrics.h"
#include "bench_util.h"

using namespace cellscope;

int main() {
  auto config = bench::figure_scenario(/*with_kpis=*/true);
  config.collect_legacy_kpis = true;
  config.collect_signaling = false;
  std::cout << "Extension: legacy-RAT KPIs (simulating " << config.num_users
            << " subscribers, seed " << config.seed << ")\n";
  const sim::Dataset data = sim::run_scenario(config);

  const auto grouping = analysis::group_by_rat(*data.topology);
  const auto panel = [&](telemetry::KpiMetric metric, const std::string& title,
                         analysis::CellReduction reduction) {
    analysis::KpiGroupSeries series{data.kpis, grouping, metric, reduction};
    std::vector<std::vector<WeekPoint>> lines;
    for (std::size_t g = 0; g < grouping.group_count(); ++g)
      lines.push_back(series.weekly_delta(g, 9, 9, 19));
    bench::print_week_table(std::cout, title + " (delta-% vs wk 9)",
                            grouping.names, lines);
    return series;
  };

  const auto dl = panel(telemetry::KpiMetric::kDlVolume,
                        "DL data volume per RAT (network totals)",
                        analysis::CellReduction::kSum);
  const auto voice = panel(telemetry::KpiMetric::kSimultaneousVoiceUsers,
                           "Simultaneous voice users per RAT (totals)",
                           analysis::CellReduction::kSum);

  // Absolute traffic split in week 9 (how much the 4G-only scope covers).
  print_banner(std::cout, "Week-9 DL volume share per RAT");
  double total = 0.0;
  std::array<double, 3> share{};
  for (std::size_t g = 0; g < 3; ++g) {
    share[g] = dl.group(g).week_median(9);
    total += share[g];
  }
  TextTable shares({"RAT", "DL share %"});
  for (std::size_t g = 0; g < 3; ++g)
    shares.row().cell(grouping.names[g]).cell(100.0 * share[g] / total, 1);
  shares.print(std::cout);

  bench::ClaimChecker claims;
  claims.check("4G carries the overwhelming majority of data",
               "4G-only KPI scope is justified (Section 2.4)",
               100.0 * share[2] / total, share[2] / total > 0.85);
  // CS voice on the legacy layers surges with the same wave as VoLTE.
  const auto voice_3g = voice.weekly_delta(1, 9, 9, 19);
  const double legacy_voice_peak =
      std::max(bench::week_value(voice_3g, 12), bench::week_value(voice_3g, 13));
  claims.check("the voice surge also reaches the legacy (CS) layers",
               "same behavioural wave", legacy_voice_peak,
               legacy_voice_peak > 40.0);
  // Legacy DL trend agrees in sign with the 4G trend (no hidden reversal).
  const auto dl_3g = dl.weekly_delta(1, 9, 13, 19);
  const auto dl_4g = dl.weekly_delta(2, 9, 13, 19);
  const double trough_3g = bench::min_over_weeks(dl_3g, 13, 19);
  const double trough_4g = bench::min_over_weeks(dl_4g, 13, 19);
  claims.check_text(
      "legacy data trends agree with 4G (nothing hidden by the 4G-only "
      "scope)",
      "same direction", bench::pct(trough_3g) + " vs " + bench::pct(trough_4g),
      trough_3g < 0.0 && trough_4g < 0.0);
  claims.summary();
  return 0;
}
