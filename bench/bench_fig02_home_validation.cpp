// Figure 2: inferred residential LAD population vs census population.
//
// Runs home detection over the February warm-up, assigns every detected
// user to a Local Authority District and regresses inferred counts against
// the synthetic census. The paper reports a linear relationship with
// r^2 = 0.955, validating the representativity of the MNO's footprint.
#include <iostream>

#include "bench_util.h"

using namespace cellscope;

int main() {
  auto data = bench::run_figure_scenario(
      /*with_kpis=*/false,
      "Figure 2: home-detection validation against the census");

  print_banner(std::cout, "Per-LAD inferred residents vs census");
  TextTable table({"LAD", "census", "inferred", "share"});
  for (const auto& point : data.home_validation.points) {
    const double share =
        point.census_population > 0
            ? static_cast<double>(point.inferred_residents) /
                  static_cast<double>(point.census_population)
            : 0.0;
    table.row()
        .cell(data.geography->lad(point.lad).name)
        .cell(static_cast<long long>(point.census_population))
        .cell(static_cast<long long>(point.inferred_residents))
        .cell(share, 5);
  }
  table.print(std::cout);

  const auto& fit = data.home_validation.fit;
  std::cout << "\nlinear fit: inferred = " << fit.slope << " * census + "
            << fit.intercept << "   (r^2 = " << fit.r_squared << ", n = "
            << fit.n << ")\n"
            << "expected market share: "
            << data.home_validation.expected_market_share << "\n"
            << "homes detected: " << data.homes.size() << " of "
            << data.eligible_users << " eligible users\n";

  bench::ClaimChecker claims;
  claims.check("linear relationship between inferred and census populations",
               "r^2 = 0.955", 100.0 * fit.r_squared, fit.r_squared > 0.90);
  const double slope_ratio =
      data.home_validation.expected_market_share > 0
          ? fit.slope / data.home_validation.expected_market_share
          : 0.0;
  claims.check("fit slope recovers the configured market share",
               "unbiased (ratio ~1)", 100.0 * slope_ratio,
               slope_ratio > 0.85 && slope_ratio < 1.15);
  const double coverage =
      data.eligible_users
          ? 100.0 * static_cast<double>(data.homes.size()) /
                static_cast<double>(data.eligible_users)
          : 0.0;
  claims.check("fraction of users with a detected home",
               "16M of 22M (~73%)", coverage, coverage > 60.0);
  claims.summary();
  return 0;
}
