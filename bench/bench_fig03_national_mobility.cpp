// Figure 3: national mobility — daily % change in average radius of
// gyration (3a) and mobility entropy (3b) per user, vs the week-9 average.
//
// Paper shape: -20% gyration already in week 12 (voluntary distancing),
// a steep drop to about -50% after the week-13 stay-at-home order, a
// smaller relative reduction for entropy than for gyration, and a slight
// relaxation from week 15.
#include <iostream>

#include "bench_util.h"

using namespace cellscope;

int main() {
  auto data = bench::run_figure_scenario(
      /*with_kpis=*/false, "Figure 3: national mobility (gyration & entropy)");

  const double gyration_baseline = data.gyration_baseline();
  const double entropy_baseline = data.entropy_baseline();
  std::cout << "week-9 baselines: gyration = " << gyration_baseline
            << " km, entropy = " << entropy_baseline << " nats\n";

  const auto gyration = data.gyration_national.daily_delta(0, gyration_baseline);
  const auto entropy = data.entropy_national.daily_delta(0, entropy_baseline);

  print_banner(std::cout, "Daily % change vs week-9 average (weeks 9-19)");
  TextTable table({"day", "weekend", "gyration %", "entropy %"});
  const SimDay start = week_start_day(9);
  for (std::size_t i = 0; i < gyration.size(); ++i) {
    if (gyration[i].day < start) continue;
    table.row()
        .cell(describe_day(gyration[i].day))
        .cell(is_weekend(gyration[i].day) ? "*" : "")
        .cell(gyration[i].value)
        .cell(entropy[i].value);
  }
  table.print(std::cout);

  // Weekly means for the claims.
  const auto gyration_week = [&](int w) {
    return stats::delta_percent(data.gyration_national.week_baseline(0, w),
                                gyration_baseline);
  };
  const auto entropy_week = [&](int w) {
    return stats::delta_percent(data.entropy_national.week_baseline(0, w),
                                entropy_baseline);
  };

  bench::ClaimChecker claims;
  const double g12 = gyration_week(12);
  claims.check("gyration decrease in week 12 (voluntary distancing)",
               "-20%", g12, g12 < -10.0 && g12 > -35.0);
  double g_trough = 0.0, e_trough = 0.0;
  for (int w = 13; w <= 14; ++w) {
    g_trough = std::min(g_trough, gyration_week(w));
    e_trough = std::min(e_trough, entropy_week(w));
  }
  claims.check("gyration drop after stay-at-home (weeks 13-14)", "-50%",
               g_trough, g_trough < -45.0 && g_trough > -75.0);
  claims.check("entropy drops too, but less than gyration",
               "smaller reduction", e_trough, e_trough > g_trough && e_trough < -25.0);
  const double g_relax = gyration_week(16) - gyration_week(14);
  claims.check("slight relaxation from week 15 despite lockdown",
               "marginal increase", g_relax, g_relax > -2.0);
  claims.summary();
  return 0;
}
