// Extension bench: degraded-feed resilience.
//
// The paper's pipeline assumes the probes and warehouse exports are
// complete. This bench runs the same scenario twice — once clean, once with
// deterministic fault injection (record loss on both feeds plus mild
// probe/cell outage activity) — prints the resulting data-quality report,
// and compares the headline weekly curves (Fig 3 mobility, Fig 8 UK
// downlink) between the two runs. The claim under test: with ~5% feed loss
// the gap-tolerant analysis keeps every weekly point within a few
// percentage points of the clean run, because missing days are skipped
// rather than zero-filled.
//
// Override the injected faults via CELLSCOPE_BENCH_FAULTS, e.g.
//   CELLSCOPE_BENCH_FAULTS=loss=0.10,sig_outages=1,kpi_outages=1
#include <algorithm>
#include <cmath>
#include <iostream>

#include "analysis/network_metrics.h"
#include "bench_util.h"

using namespace cellscope;

namespace {

struct WeeklyCurves {
  std::vector<WeekPoint> gyration;
  std::vector<WeekPoint> entropy;
  std::vector<WeekPoint> uk_dl;
};

// Weekly medians require at least 4 of 7 covered days; the baseline week
// must be at least as complete before any delta is trusted.
constexpr int kMinWeekDays = 4;

WeeklyCurves measure(const sim::Dataset& data) {
  WeeklyCurves curves;
  const double g_base =
      data.gyration_national.week_baseline(0, 9, kMinWeekDays);
  const double e_base =
      data.entropy_national.week_baseline(0, 9, kMinWeekDays);
  curves.gyration =
      data.gyration_national.weekly_delta(0, g_base, 10, 19, kMinWeekDays);
  curves.entropy =
      data.entropy_national.weekly_delta(0, e_base, 10, 19, kMinWeekDays);
  const auto grouping =
      analysis::group_by_region(*data.geography, *data.topology);
  const analysis::KpiGroupSeries dl{data.kpis, grouping,
                                    telemetry::KpiMetric::kDlVolume};
  (void)dl.baseline(0, 9, kMinWeekDays);  // coverage gate, throws if thin
  curves.uk_dl = dl.weekly_delta(0, 9, 10, 19, kMinWeekDays);
  return curves;
}

// Largest |clean - faulted| across the weeks both runs report.
double max_gap_pp(const std::vector<WeekPoint>& clean,
                  const std::vector<WeekPoint>& faulted) {
  double worst = 0.0;
  for (const auto& point : clean)
    for (const auto& other : faulted)
      if (other.week == point.week)
        worst = std::max(worst, std::abs(point.value - other.value));
  return worst;
}

}  // namespace

int main() {
  auto faulted_config = bench::figure_scenario(/*with_kpis=*/true);
  // Moderate scale so two full runs stay affordable.
  faulted_config.num_users =
      std::min<std::uint32_t>(faulted_config.num_users, 20'000);
  if (!faulted_config.faults.any())
    faulted_config.faults = sim::uniform_loss_faults(0.05);

  auto clean_config = faulted_config;
  clean_config.faults = sim::FaultConfig{};

  std::cout << "Extension: probe-outage resilience ("
            << faulted_config.num_users << " subscribers, seed "
            << faulted_config.seed << ")\n";
  std::cout << "  clean run...\n";
  const sim::Dataset clean = sim::run_scenario(clean_config);
  std::cout << "  degraded run (obs_loss="
            << faulted_config.faults.observation_loss_rate
            << ", kpi_loss=" << faulted_config.faults.kpi_record_loss_rate
            << ", sig_outages/wk="
            << faulted_config.faults.signaling_outages_per_week
            << ", kpi_outages/wk="
            << faulted_config.faults.kpi_outages_per_week
            << ", cell_daily=" << faulted_config.faults.cell_outage_daily_prob
            << ")...\n";
  const sim::Dataset faulted = sim::run_scenario(faulted_config);

  print_banner(std::cout, "Feed quality report (degraded run)");
  faulted.quality.print(std::cout);

  const WeeklyCurves clean_curves = measure(clean);
  const WeeklyCurves faulted_curves = measure(faulted);

  bench::print_week_table(
      std::cout, "Fig 3 mobility, clean vs degraded (delta % vs week 9)",
      {"gyration", "gyration (degraded)", "entropy", "entropy (degraded)"},
      {clean_curves.gyration, faulted_curves.gyration, clean_curves.entropy,
       faulted_curves.entropy});
  bench::print_week_table(
      std::cout, "Fig 8 UK downlink volume, clean vs degraded (delta %)",
      {"UK DL", "UK DL (degraded)"},
      {clean_curves.uk_dl, faulted_curves.uk_dl});

  const double gyration_gap =
      max_gap_pp(clean_curves.gyration, faulted_curves.gyration);
  const double entropy_gap =
      max_gap_pp(clean_curves.entropy, faulted_curves.entropy);
  const double dl_gap = max_gap_pp(clean_curves.uk_dl, faulted_curves.uk_dl);

  const auto* kpi_feed = faulted.quality.find("kpi-feed");
  const auto* obs_feed = faulted.quality.find("user-observations");

  bench::ClaimChecker claims;
  claims.check("Fig 3 gyration curve survives the degraded feed",
               "|gap| <= 5pp", gyration_gap, gyration_gap <= 5.0);
  claims.check("Fig 3 entropy curve survives the degraded feed",
               "|gap| <= 5pp", entropy_gap, entropy_gap <= 5.0);
  claims.check("Fig 8 UK DL curve survives the degraded feed",
               "|gap| <= 5pp", dl_gap, dl_gap <= 5.0);
  claims.check_text(
      "quality report books the KPI loss", "completeness < 100%",
      kpi_feed ? bench::pct(100.0 * kpi_feed->completeness()) : "missing",
      kpi_feed != nullptr && kpi_feed->completeness() < 1.0);
  claims.check_text(
      "quality report books the observation loss", "completeness < 100%",
      obs_feed ? bench::pct(100.0 * obs_feed->completeness()) : "missing",
      obs_feed != nullptr && obs_feed->completeness() < 1.0);
  claims.check_text("clean run keeps an empty quality report", "empty",
                    clean.quality.empty() ? "empty" : "non-empty",
                    clean.quality.empty());
  claims.summary();
  return 0;
}
