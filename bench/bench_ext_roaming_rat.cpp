// Extension bench: the populations and facts the paper filters or asserts
// but does not plot.
//
//  * Inbound roamers: Section 2.3 drops them from the mobility pipeline.
//    Here we track them — their near-disappearance during the relocation
//    window is the international-travel-ban signature.
//  * RAT time share: Section 2.4 states users spend ~75% of connected time
//    on 4G and justifies the 4G-only KPI scope with it. The simulator's
//    attachment model is configured to that share; this bench closes the
//    loop by measuring it from the generated attachment decisions.
#include <iostream>

#include "bench_util.h"

using namespace cellscope;

int main() {
  auto config = bench::figure_scenario(/*with_kpis=*/true);
  config.collect_signaling = false;
  std::cout << "Extension: roamer presence & RAT share (simulating "
            << config.num_users << " subscribers, seed " << config.seed
            << ")\n";
  const sim::Dataset data = sim::run_scenario(config);

  print_banner(std::cout, "Inbound roamers active per day (weekly mean)");
  TextTable roamers({"week", "active roamers", "vs wk9 %"});
  const double baseline = data.roamers_active.week_mean(9);
  for (int w = 9; w <= 19; ++w) {
    const double mean = data.roamers_active.week_mean(w);
    roamers.row().cell(w).cell(mean, 0).cell(
        stats::delta_percent(mean, baseline), 1);
  }
  roamers.print(std::cout);

  print_banner(std::cout, "RAT time share (Section 2.4)");
  std::cout << "  configured 4G share:  " << config.lte_time_share << "\n"
            << "  measured 4G share:    " << data.measured_lte_time_share
            << "  (over the KPI window; sites without legacy RATs serve\n"
               "   their users on 4G regardless, so measured > configured)\n";

  bench::ClaimChecker claims;
  const double wk15 = stats::delta_percent(
      data.roamers_active.week_mean(15), baseline);
  claims.check("inbound roamers collapse after the travel restrictions",
               "most left (flights home)", wk15, wk15 < -50.0);
  const double wk11 = stats::delta_percent(
      data.roamers_active.week_mean(11), baseline);
  claims.check("roamer population still near baseline pre-restrictions",
               "stable before week 12", wk11, wk11 > -15.0);
  claims.check("users spend ~75% of connected time on 4G",
               "75% (Section 2.4)", 100.0 * data.measured_lte_time_share,
               data.measured_lte_time_share > 0.72 &&
                   data.measured_lte_time_share < 0.92);
  claims.summary();
  return 0;
}
