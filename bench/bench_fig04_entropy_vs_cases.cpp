// Figure 4: entropy variation vs cumulative SARS-CoV-2 infections.
//
// Scatter of daily national entropy change against the cumulative
// lab-confirmed case count (23 Feb - 4 May). The paper's point: mobility
// does NOT track case counts — the entropy decrease begins when the
// pandemic is declared (~1,000 cases) and is complete long before the case
// curve has grown, i.e. announcements and orders drove behaviour, not
// perceived risk from rising numbers.
#include <cmath>
#include <iostream>

#include "analysis/correlation.h"
#include "bench_util.h"

using namespace cellscope;

int main() {
  auto data = bench::run_figure_scenario(
      /*with_kpis=*/false, "Figure 4: entropy variation vs cumulative cases");

  // Paper window: February 23rd until May 4th (weeks 9-18).
  const SimDay from = week_start_day(9);
  const SimDay to = week_start_day(19) - 1;
  const auto scatter = analysis::entropy_cases_scatter(
      data.entropy_national.group(0), data.entropy_baseline(),
      data.policy->epidemic(), from, to);

  print_banner(std::cout, "Scatter (one point per day)");
  TextTable table({"day", "cumulative cases", "entropy delta %", "weekend"});
  for (const auto& p : scatter)
    table.row()
        .cell(describe_day(p.day))
        .cell(static_cast<long long>(p.cumulative_cases))
        .cell(p.entropy_delta_pct)
        .cell(p.weekend ? "*" : "");
  table.print(std::cout);

  const double r = analysis::scatter_correlation(scatter);

  // Structural evidence that announcements, not case counts, drove the
  // decline: how much of the total entropy drop had already happened by the
  // time the case curve reached 5% of its end-of-window value?
  const double final_cases = scatter.back().cumulative_cases;
  double trough = 0.0;
  for (const auto& p : scatter) trough = std::min(trough, p.entropy_delta_pct);
  double drop_at_5pct = 0.0;
  for (const auto& p : scatter) {
    if (p.cumulative_cases <= 0.05 * final_cases)
      drop_at_5pct = std::min(drop_at_5pct, p.entropy_delta_pct);
  }
  const double early_share =
      trough < 0.0 ? 100.0 * drop_at_5pct / trough : 0.0;

  // Entropy level when the pandemic was declared (~1,000 cases, the red
  // vertical line in Fig 4) — the decline starts only after this point.
  double delta_at_declaration = 0.0;
  for (const auto& p : scatter)
    if (p.day == timeline::kPandemicDeclared) delta_at_declaration = p.entropy_delta_pct;

  std::cout << "\nPearson r(cases, entropy delta) = " << r << "\n"
            << "cases at pandemic declaration: "
            << data.policy->epidemic().cumulative_cases(
                   timeline::kPandemicDeclared)
            << "\n";

  bench::ClaimChecker claims;
  claims.check(
      "share of the total entropy drop already realized while cases < 5% of "
      "final count (mobility responds to orders, not to case growth)",
      ">= 80%", early_share, early_share >= 80.0);
  claims.check("entropy still near baseline when the pandemic is declared",
               "decrease starts only after declaration", delta_at_declaration,
               delta_at_declaration > -12.0);
  claims.check_text(
      "no proportional relationship between case count and mobility "
      "(flat entropy across a 100x case increase after week 13)",
      "no correlation", "r = " + std::to_string(r),
      // Entropy is at its floor while cases grow from ~2% to 100% of the
      // final count, so the rank relationship is a step, not a line.
      std::abs(r) < 0.95);
  claims.summary();
  return 0;
}
