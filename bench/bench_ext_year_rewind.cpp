// Extension bench: "rewound the traffic load by one year" (Section 1).
//
// The paper remarks that the lockdown's -20..-25% traffic decrease returned
// the MNO's load to March-2019 levels, "when the MNO had less customers and
// applications were less bandwidth hungry". The authors had 2019 telemetry;
// we substitute a 2019-like scenario — the same UK with a year's less
// subscriber growth (~-7%) and a year's less per-user demand growth (~-15%)
// — and compare its baseline (week 9) network load against the 2020
// lockdown weeks.
#include <iostream>

#include "analysis/network_metrics.h"
#include "bench_util.h"

using namespace cellscope;

namespace {
// Year-over-year growth assumptions (documented substitution: typical
// European MNO figures for 2019-2020 — mid-single-digit subscriber growth,
// double-digit per-user data growth).
constexpr double kSubscriberGrowth = 0.07;
constexpr double kPerUserDemandGrowth = 0.15;
}  // namespace

int main() {
  auto config_2020 = bench::figure_scenario(/*with_kpis=*/true);
  config_2020.collect_signaling = false;

  auto config_2019 = config_2020;
  config_2019.num_users = static_cast<std::uint32_t>(
      config_2020.num_users / (1.0 + kSubscriberGrowth));
  config_2019.demand.away_dl_mb_per_hour /= (1.0 + kPerUserDemandGrowth);

  std::cout << "Extension: does the lockdown rewind traffic to 2019?\n"
            << "  2020 scenario: " << config_2020.num_users
            << " subscribers\n  2019 scenario: " << config_2019.num_users
            << " subscribers, demand /= " << (1.0 + kPerUserDemandGrowth)
            << "\nsimulating both...\n";

  const sim::Dataset data_2020 = sim::run_scenario(config_2020);
  const sim::Dataset data_2019 = sim::run_scenario(config_2019);

  // Compare the NETWORK TOTAL daily DL volume (sum across cells): absolute
  // load on the infrastructure, which is what "rewound" refers to.
  const auto total_dl = [](const sim::Dataset& data, int week) {
    double sum = 0.0;
    int days = 0;
    SimDay current = -1;
    double day_sum = 0.0;
    for (const auto& record : data.kpis.records()) {
      if (iso_week(record.day) != week) continue;
      if (record.day != current) {
        if (current >= 0) {
          sum += day_sum;
          ++days;
        }
        current = record.day;
        day_sum = 0.0;
      }
      day_sum += record.dl_volume_mb;
    }
    if (current >= 0) {
      sum += day_sum;
      ++days;
    }
    return days ? sum / days : 0.0;
  };

  const double baseline_2019 = total_dl(data_2019, 9);
  const double baseline_2020 = total_dl(data_2020, 9);

  print_banner(std::cout, "Network-total DL volume per day (sum of cells)");
  TextTable table({"week", "2020 (MB/day)", "vs 2020 wk9 %", "vs 2019 wk9 %"});
  for (int w = 9; w <= 19; ++w) {
    const double v = total_dl(data_2020, w);
    table.row()
        .cell(w)
        .cell(v, 0)
        .cell(stats::delta_percent(v, baseline_2020), 1)
        .cell(stats::delta_percent(v, baseline_2019), 1);
  }
  table.print(std::cout);
  std::cout << "  2019-scenario week-9 baseline: " << baseline_2019
            << " MB/day (" << stats::delta_percent(baseline_2019, baseline_2020)
            << "% vs the 2020 baseline)\n";

  // Lockdown-average 2020 load vs the 2019 baseline.
  double lockdown = 0.0;
  int n = 0;
  for (int w = 14; w <= 19; ++w) {
    lockdown += total_dl(data_2020, w);
    ++n;
  }
  lockdown /= std::max(1, n);
  const double vs_2019 = stats::delta_percent(lockdown, baseline_2019);

  bench::ClaimChecker claims;
  claims.check("2019 baseline sits below the 2020 baseline",
               "fewer customers, leaner apps",
               stats::delta_percent(baseline_2019, baseline_2020),
               baseline_2019 < baseline_2020);
  claims.check(
      "lockdown-era 2020 load lands near the 2019 baseline (\"rewound the "
      "traffic load by one year\")",
      "similar to March 2019", vs_2019, std::abs(vs_2019) < 15.0);
  claims.summary();
  return 0;
}
