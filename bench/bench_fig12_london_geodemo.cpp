// Figure 12: network performance per geodemographic cluster inside London.
//
// Only three OAC clusters map to Inner London (Cosmopolitans, Ethnicity
// Central, Multicultural Metropolitans). Weekly medians of per-cell daily
// median KPIs, delta-% vs week 9 within London.
//
// Paper shape: Cosmopolitan areas (matching EC/WC) fall sharpest — more
// than -50% UL and DL volume by week 13; Multicultural Metropolitans
// instead GAIN mobile traffic (~+40% UL) on the back of ~+20% more active
// users; all clusters share the same downward user-throughput trend.
#include <iostream>

#include "analysis/network_metrics.h"
#include "bench_util.h"
#include "geo/oac.h"

using namespace cellscope;

int main() {
  auto data = bench::run_figure_scenario(
      /*with_kpis=*/true, "Figure 12: London geodemographic clusters");

  const auto inner = data.geography->county_by_name("Inner London");
  const auto grouping = analysis::group_by_cluster(
      *data.geography, *data.topology, inner.value());

  // Only the three London clusters are populated; find them.
  std::vector<std::size_t> populated;
  {
    std::vector<bool> seen(grouping.group_count(), false);
    for (const auto cell_id : data.topology->lte_cells()) {
      const auto g = grouping.group_of[cell_id.value()];
      if (g >= 0) seen[static_cast<std::size_t>(g)] = true;
    }
    for (std::size_t g = 0; g < seen.size(); ++g)
      if (seen[g]) populated.push_back(g);
  }
  std::cout << "clusters mapping to Inner London:";
  for (const auto g : populated) std::cout << " [" << grouping.names[g] << "]";
  std::cout << "\n";

  const auto panel = [&](telemetry::KpiMetric metric, const std::string& title) {
    analysis::KpiGroupSeries series{data.kpis, grouping, metric};
    std::vector<std::string> names;
    std::vector<std::vector<WeekPoint>> lines;
    for (const auto g : populated) {
      names.push_back(grouping.names[g]);
      lines.push_back(series.weekly_delta(g, 9, 9, 19));
    }
    bench::print_week_table(std::cout, "Fig 12: " + title + " (delta-% vs wk 9)",
                            names, lines);
    return lines;
  };

  const auto dl = panel(telemetry::KpiMetric::kDlVolume, "Downlink Data Volume");
  const auto ul = panel(telemetry::KpiMetric::kUlVolume, "Uplink Data Volume");
  const auto active = panel(telemetry::KpiMetric::kActiveDlUsers,
                            "Downlink Active Users");
  const auto tput = panel(telemetry::KpiMetric::kUserDlThroughput,
                          "User Downlink Throughput");

  const auto local_index = [&](geo::OacCluster cluster) -> int {
    for (std::size_t i = 0; i < populated.size(); ++i)
      if (populated[i] == static_cast<std::size_t>(cluster))
        return static_cast<int>(i);
    return -1;
  };
  const int cosmo = local_index(geo::OacCluster::kCosmopolitans);
  const int eth = local_index(geo::OacCluster::kEthnicityCentral);
  const int multi = local_index(geo::OacCluster::kMulticulturalMetropolitans);

  bench::ClaimChecker claims;
  claims.check_text("exactly three clusters map to Inner London",
                    "Cosmopolitans / Ethnicity Central / Multicultural",
                    std::to_string(populated.size()),
                    populated.size() == 3 && cosmo >= 0 && eth >= 0 &&
                        multi >= 0);
  if (cosmo >= 0 && eth >= 0 && multi >= 0) {
    const double cosmo_dl = bench::week_value(dl[cosmo], 13);
    const double cosmo_ul = bench::week_value(ul[cosmo], 13);
    claims.check("Cosmopolitans DL falls >50% by week 13", "-50%+", cosmo_dl,
                 cosmo_dl < -40.0);
    claims.check("Cosmopolitans UL falls >50% by week 13", "-50%+", cosmo_ul,
                 cosmo_ul < -40.0);
    const double multi_ul = bench::mean_over_weeks(ul[multi], 13, 19);
    claims.check("Multicultural Metropolitans UL volume grows instead",
                 "~+40%", multi_ul, multi_ul > 5.0);
    const double multi_users = bench::week_value(active[multi], 13);
    claims.check("Multicultural Metropolitans active users increase (wk 13)",
                 ">+20%", multi_users, multi_users > 0.0);
    const double cosmo_vs_eth = bench::mean_over_weeks(dl[cosmo], 13, 19) -
                                bench::mean_over_weeks(dl[eth], 13, 19);
    claims.check("Cosmopolitans fall harder than Ethnicity Central",
                 "sharpest decrease", cosmo_vs_eth, cosmo_vs_eth < 0.0);
    // All clusters share the same throughput trend (all decline mildly).
    bool same_trend = true;
    for (std::size_t i = 0; i < populated.size(); ++i) {
      const double t = bench::mean_over_weeks(tput[i], 13, 19);
      if (t > 2.0 || t < -25.0) same_trend = false;
    }
    claims.check_text("all clusters follow the same user-throughput trend",
                      "consistent with UK-wide", same_trend ? "yes" : "no",
                      same_trend);
  }
  claims.summary();
  return 0;
}
