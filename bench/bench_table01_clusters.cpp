// Table 1: the eight 2011 OAC geodemographic clusters.
//
// Prints the cluster names and definitions exactly as the paper's Table 1,
// plus the behavioural traits the synthetic models derive from them and the
// district/population composition the generated UK realizes per cluster.
#include <iostream>

#include "bench_util.h"
#include "geo/oac.h"
#include "geo/uk_model.h"

using namespace cellscope;

int main() {
  print_banner(std::cout, "Table 1: Geodemographic clusters (2011 OAC)");
  TextTable table({"Name", "Definition"});
  for (const auto cluster : geo::all_oac_clusters())
    table.row()
        .cell(std::string{geo::oac_name(cluster)})
        .cell(std::string{geo::oac_definition(cluster)});
  table.print(std::cout);

  print_banner(std::cout, "Synthetic-model traits per cluster");
  TextTable traits({"Name", "range x", "variety x", "visitors/resident",
                    "seasonal %", "WFH-capable %"});
  for (const auto cluster : geo::all_oac_clusters()) {
    const auto& t = geo::oac_traits(cluster);
    traits.row()
        .cell(std::string{geo::oac_name(cluster)})
        .cell(t.range_factor, 2)
        .cell(t.variety_factor, 2)
        .cell(t.visitor_ratio, 2)
        .cell(100.0 * t.seasonal_fraction, 1)
        .cell(100.0 * t.wfh_capable, 1);
  }
  traits.print(std::cout);

  const auto geography = geo::UkGeography::build();
  std::array<int, geo::kOacClusterCount> districts{};
  std::array<std::int64_t, geo::kOacClusterCount> residents{};
  for (const auto& d : geography.districts()) {
    ++districts[static_cast<int>(d.cluster)];
    residents[static_cast<int>(d.cluster)] += d.residents;
  }
  print_banner(std::cout, "Realized composition of the synthetic UK");
  TextTable comp({"Name", "postcode districts", "census residents"});
  for (const auto cluster : geo::all_oac_clusters()) {
    comp.row()
        .cell(std::string{geo::oac_name(cluster)})
        .cell(static_cast<long long>(districts[static_cast<int>(cluster)]))
        .cell(static_cast<long long>(residents[static_cast<int>(cluster)]));
  }
  comp.print(std::cout);

  bench::ClaimChecker claims;
  // Section 4.4: ~45% of Inner London postcode areas are Cosmopolitans,
  // ~50% Ethnicity Central.
  const auto inner = geography.county_by_name("Inner London");
  int inner_total = 0, inner_cosmo = 0, inner_eth = 0;
  for (const auto& d : geography.districts()) {
    if (!inner || d.county != *inner) continue;
    ++inner_total;
    if (d.cluster == geo::OacCluster::kCosmopolitans) ++inner_cosmo;
    if (d.cluster == geo::OacCluster::kEthnicityCentral) ++inner_eth;
  }
  const double cosmo_pct = 100.0 * inner_cosmo / std::max(1, inner_total);
  const double eth_pct = 100.0 * inner_eth / std::max(1, inner_total);
  claims.check("Inner London Cosmopolitans share of postcode districts",
               "~45%", cosmo_pct, cosmo_pct > 35 && cosmo_pct < 55);
  claims.check("Inner London Ethnicity Central share", "~50%", eth_pct,
               eth_pct > 40 && eth_pct < 60);
  claims.summary();
  return 0;
}
