// Extension bench: seed and thread-count robustness.
//
// Every figure bench runs one seed. This bench runs the scenario under
// several seeds and reports the spread of the headline numbers, verifying
// that the reproduction's conclusions are properties of the model, not of
// one lucky random stream. It also re-runs the first seed across worker
// counts and demands BITWISE-equal headlines — the engine's determinism
// contract (sim/pool.h), checked at figure scale.
#include <bit>
#include <iostream>

#include "analysis/network_metrics.h"
#include "bench_util.h"

using namespace cellscope;

namespace {

struct Headlines {
  double gyration_trough = 0.0;
  double voice_peak = 0.0;
  double dl_trough = 0.0;

  [[nodiscard]] bool bitwise_equal(const Headlines& other) const {
    return std::bit_cast<std::uint64_t>(gyration_trough) ==
               std::bit_cast<std::uint64_t>(other.gyration_trough) &&
           std::bit_cast<std::uint64_t>(voice_peak) ==
               std::bit_cast<std::uint64_t>(other.voice_peak) &&
           std::bit_cast<std::uint64_t>(dl_trough) ==
               std::bit_cast<std::uint64_t>(other.dl_trough);
  }
};

Headlines measure(sim::ScenarioConfig config, std::uint64_t seed,
                  int worker_threads) {
  config.seed = seed;
  config.worker_threads = worker_threads;
  config.collect_signaling = false;
  const sim::Dataset data = sim::run_scenario(config);
  Headlines h;
  const double g_base = data.gyration_baseline();
  for (int w = 13; w <= 16; ++w)
    h.gyration_trough = std::min(
        h.gyration_trough,
        stats::delta_percent(data.gyration_national.week_baseline(0, w),
                             g_base));
  const auto grouping =
      analysis::group_by_region(*data.geography, *data.topology);
  analysis::KpiGroupSeries dl{data.kpis, grouping,
                              telemetry::KpiMetric::kDlVolume};
  for (const auto& point : dl.weekly_delta(0, 9, 13, 19))
    h.dl_trough = std::min(h.dl_trough, point.value);
  analysis::KpiGroupSeries voice{data.kpis, grouping,
                                 telemetry::KpiMetric::kVoiceVolume};
  for (const auto& point : voice.weekly_delta(0, 9, 11, 13))
    h.voice_peak = std::max(h.voice_peak, point.value);
  return h;
}

}  // namespace

int main() {
  auto config = bench::figure_scenario(/*with_kpis=*/true);
  // Moderate scale so the seed sweep stays affordable.
  config.num_users = std::min<std::uint32_t>(config.num_users, 20'000);
  const std::vector<std::uint64_t> seeds = {42, 7, 1234, 99, 2020};
  std::cout << "Extension: seed stability (" << config.num_users
            << " subscribers x " << seeds.size() << " seeds)\n";

  // Thread-count invariance at figure scale: the first seed, serial vs a
  // small pool — the headline doubles must match to the last bit.
  std::cout << "  seed " << seeds.front()
            << " thread-invariance check (1 vs 4 workers)...\n";
  const Headlines serial = measure(config, seeds.front(), 1);
  const Headlines pooled = measure(config, seeds.front(), 4);
  const bool thread_invariant = serial.bitwise_equal(pooled);

  stats::Running gyration, voice, dl;
  TextTable table({"seed", "gyration trough %", "voice peak %",
                   "UK DL trough %"});
  for (const auto seed : seeds) {
    std::cout << "  seed " << seed << "...\n";
    const Headlines h = seed == seeds.front()
                            ? pooled
                            : measure(config, seed, config.worker_threads);
    table.row()
        .cell(static_cast<long long>(seed))
        .cell(h.gyration_trough)
        .cell(h.voice_peak)
        .cell(h.dl_trough);
    gyration.add(h.gyration_trough);
    voice.add(h.voice_peak);
    dl.add(h.dl_trough);
  }
  print_banner(std::cout, "Headline numbers across seeds");
  table.print(std::cout);
  std::cout << "  spread (max - min): gyration "
            << gyration.max() - gyration.min() << " pp, voice "
            << voice.max() - voice.min() << " pp, DL "
            << dl.max() - dl.min() << " pp\n";

  bench::ClaimChecker claims;
  claims.check_text("headlines are thread-count invariant",
                    "1 and 4 workers bitwise equal",
                    thread_invariant ? "bitwise equal" : "DIVERGED",
                    thread_invariant);
  claims.check_text(
      "gyration trough is deep for every seed", "always < -55%",
      bench::pct(gyration.max()), gyration.max() < -55.0);
  claims.check_text("voice peak is a surge for every seed", "always > +90%",
                    bench::pct(voice.min()), voice.min() > 90.0);
  claims.check_text("DL trough is a clear decrease for every seed",
                    "always < -15%", bench::pct(dl.max()), dl.max() < -15.0);
  claims.check_text("seed-to-seed spread is small relative to the effects",
                    "stable conclusions",
                    "gyration +/-" + bench::pct(gyration.stddev()),
                    gyration.stddev() < 5.0 && dl.stddev() < 5.0);
  claims.summary();
  return 0;
}
