// Figure 11: network performance inside Inner London, per postal district.
//
// Weekly medians of the per-cell daily median KPIs for each of the London
// postal areas (EC, WC, N, E, SE, SW, W, NW), delta-% vs week 9.
//
// Paper shape: the central districts EC and WC collapse — DL and UL traffic
// down 70-80% between weeks 14 and 19 (seasonal residents, business and
// commerce gone), with matching drops in users and cell utilization; the
// N district detaches from the rest, holding stable DL volume with MORE
// downlink active users (+10..23% in weeks 10-14) — hotspots move from the
// centre to the residential north.
#include <iostream>

#include "analysis/network_metrics.h"
#include "bench_util.h"

using namespace cellscope;

int main() {
  auto data = bench::run_figure_scenario(
      /*with_kpis=*/true, "Figure 11: Inner London postal districts");

  const auto grouping =
      analysis::group_by_london_postal_area(*data.geography, *data.topology);

  const auto panel = [&](telemetry::KpiMetric metric, const std::string& title) {
    analysis::KpiGroupSeries series{data.kpis, grouping, metric};
    std::vector<std::vector<WeekPoint>> lines;
    for (std::size_t g = 0; g < grouping.group_count(); ++g)
      lines.push_back(series.weekly_delta(g, 9, 9, 19));
    bench::print_week_table(std::cout, "Fig 11: " + title + " (delta-% vs wk 9)",
                            grouping.names, lines);
    return lines;
  };

  const auto dl = panel(telemetry::KpiMetric::kDlVolume, "Downlink Data Volume");
  const auto ul = panel(telemetry::KpiMetric::kUlVolume, "Uplink Data Volume");
  const auto active = panel(telemetry::KpiMetric::kActiveDlUsers,
                            "Downlink Active Users");
  const auto total = panel(telemetry::KpiMetric::kConnectedUsers,
                           "Total Number of Users");
  const auto load = panel(telemetry::KpiMetric::kTtiUtilization,
                          "Cell Resource Utilization");

  const auto group_index = [&](const std::string& name) -> std::size_t {
    for (std::size_t g = 0; g < grouping.names.size(); ++g)
      if (grouping.names[g] == name) return g;
    return 0;
  };
  const std::size_t ec = group_index("EC");
  const std::size_t wc = group_index("WC");
  const std::size_t north = group_index("N");

  bench::ClaimChecker claims;
  const double ec_dl = bench::mean_over_weeks(dl[ec], 14, 19);
  const double wc_dl = bench::mean_over_weeks(dl[wc], 14, 19);
  const double ec_ul = bench::mean_over_weeks(ul[ec], 14, 19);
  const double wc_ul = bench::mean_over_weeks(ul[wc], 14, 19);
  claims.check("EC downlink collapse, weeks 14-19", "> 70% decrease", ec_dl,
               ec_dl < -55.0);
  claims.check("WC downlink collapse, weeks 14-19", "> 80% decrease", wc_dl,
               wc_dl < -55.0);
  claims.check("EC uplink collapse, weeks 14-19", "> 70% decrease", ec_ul,
               ec_ul < -50.0);
  claims.check("WC uplink collapse, weeks 14-19", "> 80% decrease", wc_ul,
               wc_ul < -50.0);

  // EC/WC fall much harder than the other districts.
  double other_dl = 0.0;
  int n = 0;
  for (std::size_t g = 0; g < dl.size(); ++g) {
    if (g == ec || g == wc) continue;
    other_dl += bench::mean_over_weeks(dl[g], 14, 19);
    ++n;
  }
  other_dl /= std::max(1, n);
  claims.check("central districts (EC/WC) differ from the rest",
               "rest decreases far less",
               0.5 * (ec_dl + wc_dl) - other_dl,
               0.5 * (ec_dl + wc_dl) < other_dl - 20.0);

  // The N district detaches: most stable DL volume, users holding up.
  const double n_dl = bench::mean_over_weeks(dl[north], 10, 14);
  claims.check("N district DL volume keeps stable (weeks 10-14)",
               "stable unlike other postcodes", n_dl, n_dl > -18.0);
  // The paper reports +10..23% absolute; our relocation model moves people
  // out of London rather than within it, so the shape claim is the
  // detachment of N from the other districts' active-user trend.
  const double n_users = bench::mean_over_weeks(active[north], 10, 14);
  double other_users = 0.0;
  int n_other = 0;
  for (std::size_t g = 0; g < active.size(); ++g) {
    if (g == north) continue;
    other_users += bench::mean_over_weeks(active[g], 10, 14);
    ++n_other;
  }
  other_users /= std::max(1, n_other);
  claims.check("N district downlink users hold up, detached from the rest "
               "(wks 10-14)",
               "+10..+23% while others fall", n_users - other_users,
               n_users > other_users + 6.0);
  const double n_rank =
      n_dl - 0.5 * (ec_dl + wc_dl);  // N vs central contrast
  claims.check("hotspots move from the centre (EC/WC) to the north (N)",
               "N detaches upward", n_rank, n_rank > 30.0);
  (void)total;
  (void)load;
  claims.summary();
  return 0;
}
