// Figure 9: 4G conversational voice (QCI 1) in the UK.
//
// Weekly medians of the per-cell daily medians, delta-% vs week 9, for:
// voice traffic volume, simultaneous voice users, uplink packet loss and
// downlink packet loss.
//
// Paper shape: voice volume spikes ~+140% around week 12 ("seven years of
// growth in a few days") with a matching spike in simultaneous users; the
// DL packet loss more than doubles in weeks 10-12 because the surge
// exceeded the inter-MNO interconnect capacity, then falls below normal
// once operators expand it; UL loss (radio-limited) decreases throughout.
#include <iostream>

#include "analysis/network_metrics.h"
#include "bench_util.h"

using namespace cellscope;

int main() {
  auto data = bench::run_figure_scenario(
      /*with_kpis=*/true, "Figure 9: 4G voice traffic (QCI 1)");

  const auto grouping =
      analysis::group_by_region(*data.geography, *data.topology);
  constexpr std::size_t kUk = 0;

  const auto line = [&](telemetry::KpiMetric metric) {
    return analysis::KpiGroupSeries{data.kpis, grouping, metric}.weekly_delta(
        kUk, 9, 9, 19);
  };
  const auto volume = line(telemetry::KpiMetric::kVoiceVolume);
  const auto simultaneous = line(telemetry::KpiMetric::kSimultaneousVoiceUsers);
  const auto ul_loss = line(telemetry::KpiMetric::kVoiceUlLoss);
  const auto dl_loss = line(telemetry::KpiMetric::kVoiceDlLoss);

  bench::print_week_table(
      std::cout, "Voice KPIs, UK (delta-% vs wk 9)",
      {"Traffic Volume", "Simultaneous Users", "UL Packet Loss",
       "DL Packet Loss"},
      {volume, simultaneous, ul_loss, dl_loss});

  print_banner(std::cout, "Interconnect diagnostics (busy hour per day)");
  TextTable trunks({"day", "offered offnet min", "trunk loss %"});
  for (SimDay d = week_start_day(9); d <= data.offnet_busy_hour_minutes.last_day();
       d += 7) {
    trunks.row()
        .cell(describe_day(d))
        .cell(data.offnet_busy_hour_minutes.value(d), 0)
        .cell(data.interconnect_busy_hour_loss_pct.value(d), 3);
  }
  trunks.print(std::cout);

  bench::ClaimChecker claims;
  const double spike = bench::week_value(volume, 12);
  claims.check("voice volume spike in week 12", "+140%", spike,
               spike > 90.0 && spike < 220.0);
  claims.check("voice volume stays elevated through lockdown", "> +50%",
               bench::mean_over_weeks(volume, 13, 19),
               bench::mean_over_weeks(volume, 13, 19) > 50.0);
  const double users_spike = bench::week_value(simultaneous, 12);
  claims.check("simultaneous voice users spike with the volume", "spike",
               users_spike, users_spike > 50.0);

  double dl_peak = 0.0;
  for (int w = 10; w <= 12; ++w)
    dl_peak = std::max(dl_peak, bench::week_value(dl_loss, w));
  claims.check("DL voice packet loss more than doubles in weeks 10-12",
               ">+100%", dl_peak, dl_peak > 100.0);
  const double dl_after = bench::mean_over_weeks(dl_loss, 14, 19);
  claims.check("DL loss reverts below normal after the capacity expansion",
               "below week-9 values", dl_after, dl_after < 0.0);
  const double ul_during = bench::mean_over_weeks(ul_loss, 13, 19);
  claims.check("UL voice packet loss decreases during the pandemic",
               "decrease", ul_during, ul_during < 0.0);
  claims.summary();
  return 0;
}
