// Figure 10: network performance per geodemographic cluster (2011 OAC),
// plus the Section 4.4 correlation between total connected users and DL
// volume per cluster.
//
// Paper shape: most clusters track the national trend; "Rural residents"
// DL volume stays largely stable after lockdown; "Cosmopolitans" total
// connected users fall up to -50% with a dramatic DL volume drop.
// Correlations (users vs DL volume): Cosmopolitans +0.973, Ethnicity
// Central +0.816, Rural residents +0.299, Suburbanites -0.466.
#include <iostream>

#include "analysis/correlation.h"
#include "analysis/network_metrics.h"
#include "bench_util.h"
#include "geo/oac.h"

using namespace cellscope;

int main() {
  auto data = bench::run_figure_scenario(
      /*with_kpis=*/true, "Figure 10: per-cluster network performance");

  const auto grouping =
      analysis::group_by_cluster(*data.geography, *data.topology);

  const auto panel = [&](telemetry::KpiMetric metric, const std::string& title) {
    analysis::KpiGroupSeries series{data.kpis, grouping, metric};
    std::vector<std::vector<WeekPoint>> lines;
    for (std::size_t g = 0; g < grouping.group_count(); ++g)
      lines.push_back(series.weekly_delta(g, 9, 9, 19));
    bench::print_week_table(std::cout, "Fig 10: " + title + " (delta-% vs wk 9)",
                            grouping.names, lines);
    return lines;
  };

  const auto dl = panel(telemetry::KpiMetric::kDlVolume, "Downlink Data Volume");
  const auto ul = panel(telemetry::KpiMetric::kUlVolume, "Uplink Data Volume");

  // "Total number of users connected to the network" is a cluster TOTAL
  // (Section 4.4), not a per-cell median.
  analysis::KpiGroupSeries users_series{
      data.kpis, grouping, telemetry::KpiMetric::kConnectedUsers,
      analysis::CellReduction::kSum};
  analysis::KpiGroupSeries dl_total_series{
      data.kpis, grouping, telemetry::KpiMetric::kDlVolume,
      analysis::CellReduction::kSum};
  std::vector<std::vector<WeekPoint>> connected;
  for (std::size_t g = 0; g < grouping.group_count(); ++g)
    connected.push_back(users_series.weekly_delta(g, 9, 9, 19));
  bench::print_week_table(std::cout,
                          "Fig 10: Total Connected Users (delta-% vs wk 9)",
                          grouping.names, connected);
  print_banner(std::cout,
               "Correlation: total users vs DL volume (Section 4.4)");
  TextTable corr_table({"cluster", "pearson r"});
  std::array<double, geo::kOacClusterCount> corr{};
  for (const auto cluster : geo::all_oac_clusters()) {
    const auto g = static_cast<std::size_t>(cluster);
    corr[g] = analysis::series_correlation(users_series.group(g),
                                           dl_total_series.group(g));
    corr_table.row().cell(grouping.names[g]).cell(corr[g], 3);
  }
  corr_table.print(std::cout);

  const auto idx = [](geo::OacCluster c) { return static_cast<std::size_t>(c); };
  bench::ClaimChecker claims;

  const double rural_dl =
      bench::mean_over_weeks(dl[idx(geo::OacCluster::kRuralResidents)], 13, 19);
  claims.check("Rural residents DL volume largely stable after lockdown",
               "stable", rural_dl, rural_dl > -15.0);
  const double cosmo_dl =
      bench::min_over_weeks(dl[idx(geo::OacCluster::kCosmopolitans)], 13, 19);
  claims.check("Cosmopolitans DL volume decreases dramatically after wk 13",
               "sharp decrease", cosmo_dl, cosmo_dl < -35.0);
  const double cosmo_users = bench::min_over_weeks(
      connected[idx(geo::OacCluster::kCosmopolitans)], 13, 19);
  claims.check("Cosmopolitans total connected users drop", "up to -50%",
               cosmo_users, cosmo_users < -25.0);
  claims.check("Cosmopolitans users-vs-volume correlation is high", "+0.973",
               100.0 * corr[idx(geo::OacCluster::kCosmopolitans)],
               corr[idx(geo::OacCluster::kCosmopolitans)] > 0.75);
  claims.check("Ethnicity Central users-vs-volume correlation is high",
               "+0.816", 100.0 * corr[idx(geo::OacCluster::kEthnicityCentral)],
               corr[idx(geo::OacCluster::kEthnicityCentral)] > 0.60);
  claims.check("Rural residents correlation is low", "+0.299",
               100.0 * corr[idx(geo::OacCluster::kRuralResidents)],
               corr[idx(geo::OacCluster::kRuralResidents)] <
                   corr[idx(geo::OacCluster::kCosmopolitans)] - 0.2);
  claims.check("Suburbanites correlation is the lowest (volume decoupled "
               "from users)", "-0.466",
               100.0 * corr[idx(geo::OacCluster::kSuburbanites)],
               corr[idx(geo::OacCluster::kSuburbanites)] <
                   corr[idx(geo::OacCluster::kEthnicityCentral)]);
  (void)ul;
  claims.summary();
  return 0;
}
