// Shared helpers for the figure-reproduction benches.
//
// Every bench_figXX binary regenerates one table/figure of the paper from a
// fresh simulation of the default scenario and prints (a) the figure's rows
// and (b) "paper vs measured" claim lines that EXPERIMENTS.md tracks.
// Scale can be overridden without recompiling via environment variables:
//   CELLSCOPE_BENCH_USERS    subscriber count (default: scenario default)
//   CELLSCOPE_BENCH_SEED     scenario seed    (default 42)
//   CELLSCOPE_BENCH_THREADS  simulator worker threads (default 1 = serial)
//   CELLSCOPE_BENCH_FAULTS   fault-injection spec, e.g. "loss=0.05,dup=0.01"
//                            (see sim::parse_fault_spec; default: no faults)
#pragma once

#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/timeseries.h"
#include "sim/simulator.h"

namespace cellscope::bench {

inline sim::ScenarioConfig figure_scenario(bool with_kpis) {
  sim::ScenarioConfig config = sim::default_scenario();
  if (const char* users = std::getenv("CELLSCOPE_BENCH_USERS"))
    config.num_users = static_cast<std::uint32_t>(std::strtoul(users, nullptr, 10));
  if (const char* seed = std::getenv("CELLSCOPE_BENCH_SEED"))
    config.seed = std::strtoull(seed, nullptr, 10);
  if (const char* threads = std::getenv("CELLSCOPE_BENCH_THREADS"))
    config.worker_threads = std::atoi(threads);
  if (const char* faults = std::getenv("CELLSCOPE_BENCH_FAULTS")) {
    try {
      config.faults = sim::parse_fault_spec(faults);
    } catch (const std::invalid_argument& error) {
      std::cerr << "CELLSCOPE_BENCH_FAULTS: " << error.what() << "\n";
      std::exit(2);
    }
  }
  config.collect_kpis = with_kpis;
  config.collect_signaling = with_kpis;
  return config;
}

inline sim::Dataset run_figure_scenario(bool with_kpis,
                                        const std::string& banner) {
  const auto config = figure_scenario(with_kpis);
  std::cout << banner << "\n(simulating " << config.num_users
            << " subscribers, seed " << config.seed << ", weeks "
            << config.first_week << "-" << config.last_week
            << (config.worker_threads > 1
                    ? ", " + std::to_string(config.worker_threads) + " threads"
                    : std::string{})
            << ")\n";
  // Fault banner only on faulted runs so clean bench output is unchanged.
  if (config.faults.any())
    std::cout << "(degraded feeds: obs_loss=" << config.faults.observation_loss_rate
              << " kpi_loss=" << config.faults.kpi_record_loss_rate
              << " dup=" << config.faults.kpi_record_duplication_rate
              << " sig_outages/wk=" << config.faults.signaling_outages_per_week
              << " kpi_outages/wk=" << config.faults.kpi_outages_per_week
              << " cell_daily=" << config.faults.cell_outage_daily_prob
              << ")\n";
  return sim::run_scenario(config);
}

// Renders several weekly series as one table: a week column plus one column
// per named series. All series must cover the same weeks.
inline void print_week_table(std::ostream& os, const std::string& title,
                             const std::vector<std::string>& names,
                             const std::vector<std::vector<WeekPoint>>& series,
                             int precision = 1) {
  print_banner(os, title);
  std::vector<std::string> headers{"week"};
  headers.insert(headers.end(), names.begin(), names.end());
  TextTable table{headers};
  if (series.empty()) return;
  for (std::size_t i = 0; i < series.front().size(); ++i) {
    table.row().cell(series.front()[i].week);
    for (const auto& s : series)
      if (i < s.size()) table.cell(s[i].value, precision);
  }
  table.print(os);
}

// The weekly value for one week from a series (0 when absent).
inline double week_value(const std::vector<WeekPoint>& series, int week) {
  for (const auto& p : series)
    if (p.week == week) return p.value;
  return 0.0;
}

// Minimum value across a week range.
inline double min_over_weeks(const std::vector<WeekPoint>& series,
                             int from_week, int to_week) {
  double best = 0.0;
  bool any = false;
  for (const auto& p : series) {
    if (p.week < from_week || p.week > to_week) continue;
    if (!any || p.value < best) best = p.value;
    any = true;
  }
  return best;
}

// Mean value across a week range.
inline double mean_over_weeks(const std::vector<WeekPoint>& series,
                              int from_week, int to_week) {
  double sum = 0.0;
  int n = 0;
  for (const auto& p : series) {
    if (p.week < from_week || p.week > to_week) continue;
    sum += p.value;
    ++n;
  }
  return n ? sum / n : 0.0;
}

inline std::string pct(double value, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, value);
  return buf;
}

// Tracks overall claim health so the binary's exit code reflects shape
// fidelity (0 even on mismatch — benches report, tests enforce).
class ClaimChecker {
 public:
  void check(const std::string& claim, const std::string& paper,
             double measured, bool ok) {
    print_claim(std::cout, claim, paper, pct(measured), ok);
    if (!ok) ++failures_;
  }
  void check_text(const std::string& claim, const std::string& paper,
                  const std::string& measured, bool ok) {
    print_claim(std::cout, claim, paper, measured, ok);
    if (!ok) ++failures_;
  }
  [[nodiscard]] int failures() const { return failures_; }
  void summary() const {
    std::cout << (failures_ == 0 ? "\nAll shape checks passed.\n"
                                 : "\nWARNING: " + std::to_string(failures_) +
                                       " shape check(s) off target.\n");
  }

 private:
  int failures_ = 0;
};

}  // namespace cellscope::bench
