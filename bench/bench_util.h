// Shared helpers for the figure-reproduction benches.
//
// Every bench_figXX binary regenerates one table/figure of the paper from a
// fresh simulation of the default scenario and prints (a) the figure's rows
// and (b) "paper vs measured" claim lines that EXPERIMENTS.md tracks.
// Scale can be overridden without recompiling via environment variables:
//   CELLSCOPE_BENCH_USERS    subscriber count (default: scenario default)
//   CELLSCOPE_BENCH_SEED     scenario seed    (default 42)
//   CELLSCOPE_BENCH_THREADS  simulator worker threads (default 1 = serial)
//   CELLSCOPE_BENCH_FAULTS   fault-injection spec, e.g. "loss=0.05,dup=0.01"
//                            (see sim::parse_fault_spec; default: no faults)
//   CELLSCOPE_OBS_DIR        when set, enables the observability runtime
//                            and writes <slug>.trace.json (Chrome trace),
//                            <slug>.phases.csv, <slug>.manifest.json and the
//                            run-health timeline <slug>.timeline.{csv,json}
//                            into that directory (see docs/OBSERVABILITY.md).
//                            An uncreatable or unwritable directory prints
//                            the reason and exits 2.
//   CELLSCOPE_STORE_DIR      when set, simulate once / replay many: the
//                            run's dataset is cached as a cellstore under
//                            <dir>/<config-digest>/ and later runs of the
//                            same scenario replay it bitwise-identically
//                            instead of re-simulating (see docs/STORAGE.md)
//   CELLSCOPE_AUDIT          "1" runs the conservation audit (docs/AUDIT.md):
//                            in-process during simulation, post-hoc over a
//                            replayed store, plus the store-reconcile law
//                            when CELLSCOPE_STORE_DIR is in play. The report
//                            prints after the figures; any violation exits 3
//                            (after writing <slug>.audit.{json,csv} when
//                            CELLSCOPE_OBS_DIR is set). "0"/unset: off.
//   CELLSCOPE_CRASH_AT_DAY   crash injection (docs/RECOVERY.md): SIGKILL the
//                            process right after the n-th day's checkpoint
//                            is published. Requires CELLSCOPE_STORE_DIR —
//                            the point is to leave a resumable store behind.
// Malformed numeric overrides exit with status 2 and a one-line error.
//
// Crash-safe execution (docs/RECOVERY.md): every bench installs SIGINT /
// SIGTERM handlers that request a cooperative interrupt; the simulator
// unwinds at the next day boundary with its checkpoint flushed, the bench
// still writes the obs manifest + quality ledger for the partial run, and
// exits 4 (interrupted — resumable) as opposed to 5 (a day failed after the
// supervisor exhausted its retries — also resumable, rerun to retry).
#pragma once

#include <cctype>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/atomic_file.h"
#include "common/table.h"
#include "common/timeseries.h"
#include "obs/manifest.h"
#include "obs/runtime.h"
#include "sim/dataset_audit.h"
#include "sim/interrupt.h"
#include "sim/simulator.h"
#include "sim/supervisor.h"
#include "store/dataset_io.h"

namespace cellscope::bench {

// Full-string non-negative integer parse for environment overrides. Exits 2
// with a one-line error on anything else — empty strings, signs, trailing
// junk ("40k"), overflow — matching the CELLSCOPE_BENCH_FAULTS behaviour.
inline unsigned long long parse_env_count(const char* var, const char* text) {
  unsigned long long value = 0;
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, value);
  if (text == end || ec != std::errc{} || ptr != end) {
    std::cerr << var << ": malformed value '" << text
              << "' (expected a non-negative integer)\n";
    std::exit(2);
  }
  return value;
}

inline sim::ScenarioConfig figure_scenario(bool with_kpis) {
  sim::ScenarioConfig config = sim::default_scenario();
  if (const char* users = std::getenv("CELLSCOPE_BENCH_USERS")) {
    const auto value = parse_env_count("CELLSCOPE_BENCH_USERS", users);
    if (value == 0 || value > 0xffffffffULL) {
      std::cerr << "CELLSCOPE_BENCH_USERS: value '" << users
                << "' out of range\n";
      std::exit(2);
    }
    config.num_users = static_cast<std::uint32_t>(value);
  }
  if (const char* seed = std::getenv("CELLSCOPE_BENCH_SEED"))
    config.seed = parse_env_count("CELLSCOPE_BENCH_SEED", seed);
  if (const char* threads = std::getenv("CELLSCOPE_BENCH_THREADS")) {
    const auto value = parse_env_count("CELLSCOPE_BENCH_THREADS", threads);
    if (value < 1 || value > 256) {
      std::cerr << "CELLSCOPE_BENCH_THREADS: value '" << threads
                << "' out of range [1, 256]\n";
      std::exit(2);
    }
    config.worker_threads = static_cast<int>(value);
  }
  if (const char* faults = std::getenv("CELLSCOPE_BENCH_FAULTS")) {
    try {
      config.faults = sim::parse_fault_spec(faults);
    } catch (const std::invalid_argument& error) {
      std::cerr << "CELLSCOPE_BENCH_FAULTS: " << error.what() << "\n";
      std::exit(2);
    }
  }
  if (const char* audit = std::getenv("CELLSCOPE_AUDIT")) {
    if (std::strcmp(audit, "1") == 0) {
      config.audit = true;
    } else if (std::strcmp(audit, "0") != 0 && audit[0] != '\0') {
      std::cerr << "CELLSCOPE_AUDIT: malformed value '" << audit
                << "' (expected 0 or 1)\n";
      std::exit(2);
    }
  }
  config.collect_kpis = with_kpis;
  config.collect_signaling = with_kpis;
  return config;
}

// Filename slug for a bench banner: "Figure 3: national mobility" ->
// "figure-3-national-mobility".
inline std::string slugify(const std::string& text) {
  std::string slug;
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '-') {
      slug += '-';
    }
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug.empty() ? std::string("bench") : slug;
}

// Resolves and validates CELLSCOPE_OBS_DIR up front. An uncreatable or
// unwritable directory is a configuration error under the hardened env-var
// contract: print the reason and exit 2, never degrade silently.
inline std::string checked_obs_dir() {
  try {
    return obs::ensure_obs_dir(obs::obs_dir_from_env());
  } catch (const std::runtime_error& error) {
    std::cerr << "CELLSCOPE_OBS_DIR: " << error.what() << "\n";
    std::exit(2);
  }
}

// Standard observability epilogue: prints the phase-timing summary and
// writes the Chrome trace, per-phase CSV, run manifest and run-health
// timeline into CELLSCOPE_OBS_DIR. Only called when the runtime is enabled.
// Every file publishes atomically (tmp + fsync + rename) so a crash
// mid-epilogue never leaves a torn manifest; `interrupted` marks a
// SIGINT/SIGTERM run and `day_failed` a supervisor-exhausted one — both
// manifests describe a resumable partial dataset.
inline void write_obs_outputs(const std::string& slug,
                              const sim::ScenarioConfig& config,
                              const sim::Dataset& data,
                              double wall_seconds, bool interrupted = false,
                              bool day_failed = false) {
  const std::string dir = checked_obs_dir();
  obs::Tracer& tracer = obs::tracer();

  const auto days =
      static_cast<double>(config.last_day() - config.first_day() + 1);
  const double user_days = static_cast<double>(config.num_users) * days;

  obs::RunManifest manifest;
  manifest.name = slug;
  manifest.git_describe = obs::build_describe();
  manifest.config_digest = sim::config_digest(config);
  manifest.seed = config.seed;
  manifest.users = config.num_users;
  manifest.worker_threads = config.worker_threads;
  manifest.first_week = config.first_week;
  manifest.last_week = config.last_week;
  manifest.wall_seconds = wall_seconds;
  manifest.user_days_per_sec =
      wall_seconds > 0.0 ? user_days / wall_seconds : 0.0;
  manifest.peak_rss_kb = obs::peak_rss_kb();
  manifest.phases = tracer.phase_totals();
  // Publish the resource gauge before snapshotting so interrupted and
  // day-failed manifests carry it too (the simulator only sets it on the
  // clean path, which these runs never reach).
  obs::metrics().set_gauge("process.peak_rss_kb",
                           static_cast<double>(obs::peak_rss_kb()));
  manifest.metrics = obs::metrics().snapshot();
  if (config.audit) {
    manifest.audit_enabled = true;
    manifest.audit_checks = data.audit_report.checks_evaluated();
    manifest.audit_violations = data.audit_report.violations().size();
    for (const auto& law : data.audit_report.laws()) {
      manifest.audit_laws.push_back(
          {law.law, law.checks, law.violations});
    }
  }
  for (const auto& feed : data.quality.feeds()) {
    obs::RunManifest::FeedSummary summary;
    summary.name = feed.name;
    summary.expected = feed.expected_records;
    summary.observed = feed.observed_records;
    summary.quarantined = feed.quarantined_records;
    summary.duplicates = feed.duplicate_records;
    summary.completeness = feed.completeness();
    manifest.feeds.push_back(std::move(summary));
  }
  manifest.interrupted = interrupted;
  manifest.day_failed = day_failed;
  manifest.resumed = data.recovery.resumed;
  manifest.resumed_from_day = data.recovery.resumed
                                  ? static_cast<int>(data.recovery.resumed_from_day)
                                  : -1;
  manifest.supervisor_retries = data.recovery.supervisor_retries;
  manifest.supervisor_failures = data.recovery.supervisor_failures;
  manifest.supervisor_stalls = data.recovery.supervisor_stalls;

  // Run-health timeline summary (docs/OBSERVABILITY.md): the per-day RSS
  // series behind the perf gate's memory-slope check.
  obs::Timeline& timeline = obs::timeline();
  const auto timeline_samples = timeline.samples();
  if (!timeline_samples.empty()) {
    manifest.timeline.samples = timeline_samples.size();
    manifest.timeline.steady_rss_kb = obs::steady_rss_kb(timeline_samples);
    manifest.timeline.rss_slope_kb_per_day =
        obs::rss_slope_kb_per_day(timeline_samples);
    manifest.timeline.rows_per_sec = timeline_samples.back().rows_per_sec;
    manifest.timeline.users_per_sec = timeline_samples.back().users_per_sec;
  }

  const std::string base = dir + "/" + slug;
  const auto publish = [](const std::string& path, const auto& write) {
    std::ostringstream out;
    write(out);
    write_file_atomic(path, out.str());
  };
  publish(base + ".trace.json",
          [&](std::ostream& out) { tracer.write_chrome_trace(out); });
  publish(base + ".phases.csv",
          [&](std::ostream& out) { tracer.write_phase_csv(out); });
  publish(base + ".manifest.json",
          [&](std::ostream& out) { obs::write_manifest_json(out, manifest); });
  if (!timeline_samples.empty()) {
    publish(base + ".timeline.csv",
            [&](std::ostream& out) { timeline.write_csv(out); });
    publish(base + ".timeline.json",
            [&](std::ostream& out) { timeline.write_json(out); });
  }
  if (config.audit) {
    // Machine-readable audit report next to the manifest (CI uploads the
    // JSON as an artifact).
    publish(base + ".audit.json",
            [&](std::ostream& out) { data.audit_report.write_json(out); });
    publish(base + ".audit.csv",
            [&](std::ostream& out) { data.audit_report.write_csv(out); });
  }

  print_banner(std::cout, "Observability: phase timing");
  TextTable table({"phase", "count", "total_ms", "mean_ms"});
  for (const auto& phase : manifest.phases)
    table.row()
        .cell(phase.name)
        .cell(static_cast<long long>(phase.count))
        .cell(phase.total_ms, 1)
        .cell(phase.mean_ms(), 2);
  table.print(std::cout);
  std::cout << "wall " << wall_seconds << " s, "
            << manifest.user_days_per_sec << " user-days/s; outputs in "
            << dir << "/ (" << slug << ".{trace.json,phases.csv,manifest.json})\n";
}

// Simulate once, replay many: with CELLSCOPE_STORE_DIR set, look for a
// cellstore written by a previous run of the *same* scenario (keyed by the
// config digest, which covers every model parameter and the fault plan but
// not the thread count) and replay it instead of simulating. A cache miss,
// digest mismatch or degraded/corrupt store falls back to simulating — and
// writes the store for next time. Replay is bitwise-identical to the
// simulation it replaces (test_store_replay), so cached benches print the
// exact same figures.
inline sim::Dataset load_or_run(const sim::ScenarioConfig& config) {
  store::StoreRunOptions options;
  if (const char* crash = std::getenv("CELLSCOPE_CRASH_AT_DAY")) {
    const auto value = parse_env_count("CELLSCOPE_CRASH_AT_DAY", crash);
    if (value > 0x7fffffffULL) {
      std::cerr << "CELLSCOPE_CRASH_AT_DAY: value '" << crash
                << "' out of range\n";
      std::exit(2);
    }
    options.kill_after_days = static_cast<int>(value);
  }
  const char* root = std::getenv("CELLSCOPE_STORE_DIR");
  if (root == nullptr || root[0] == '\0') {
    if (options.kill_after_days > 0) {
      // Crash injection without a store would just lose the run: the whole
      // point is dying with a resumable checkpoint behind.
      std::cerr << "CELLSCOPE_CRASH_AT_DAY requires CELLSCOPE_STORE_DIR\n";
      std::exit(2);
    }
    return sim::run_scenario(config);
  }
  const std::string dir =
      std::string(root) + "/" + sim::config_digest(config);
  auto outcome = store::read_dataset(dir, config);
  if (outcome.complete()) {
    std::cout << "(replayed cellstore " << dir << ": " << outcome.rows_read
              << " rows, " << outcome.bytes_read
              << " bytes, no simulation)\n";
    return std::move(*outcome.dataset);
  }
  if (outcome.status == store::ReadOutcome::Status::kDegraded)
    std::cout << "(cellstore " << dir << " degraded — " << outcome.error
              << "; re-simulating)\n";
  return store::simulate_to_store(config, dir, options);
}

inline sim::Dataset run_figure_scenario(bool with_kpis,
                                        const std::string& banner) {
  const auto config = figure_scenario(with_kpis);
  std::cout << banner << "\n(simulating " << config.num_users
            << " subscribers, seed " << config.seed << ", weeks "
            << config.first_week << "-" << config.last_week
            << (config.worker_threads > 1
                    ? ", " + std::to_string(config.worker_threads) + " threads"
                    : std::string{})
            << ")\n";
  // Fault banner only on faulted runs so clean bench output is unchanged.
  if (config.faults.any())
    std::cout << "(degraded feeds: obs_loss=" << config.faults.observation_loss_rate
              << " kpi_loss=" << config.faults.kpi_record_loss_rate
              << " dup=" << config.faults.kpi_record_duplication_rate
              << " sig_outages/wk=" << config.faults.signaling_outages_per_week
              << " kpi_outages/wk=" << config.faults.kpi_outages_per_week
              << " cell_daily=" << config.faults.cell_outage_daily_prob
              << ")\n";
  // Observability is opt-in via CELLSCOPE_OBS_DIR; with it unset the run is
  // untouched and no files are written. A set-but-unusable dir fails fast
  // (exit 2) instead of surfacing hours later in the epilogue.
  const bool obs_on = obs::enable_from_env();
  if (obs_on) checked_obs_dir();
  // Cooperative interrupts: ^C / SIGTERM request a stop at the next day
  // boundary, after that day's checkpoint is flushed (docs/RECOVERY.md).
  sim::reset_interrupt();
  std::signal(SIGINT, [](int) { sim::request_interrupt(); });
  std::signal(SIGTERM, [](int) { sim::request_interrupt(); });
  const auto start = std::chrono::steady_clock::now();
  sim::Dataset data;
  try {
    data = load_or_run(config);
  } catch (const sim::RunInterrupted& stop) {
    const double wall_seconds = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
    std::cout << "\n(interrupted after day " << stop.last_completed_day
              << "; checkpoint flushed — rerun with the same "
                 "CELLSCOPE_STORE_DIR to resume)\n";
    if (stop.partial != nullptr) {
      for (const auto& feed : stop.partial->quality.feeds())
        std::cout << "  feed " << feed.name << ": " << feed.observed_records
                  << "/" << feed.expected_records << " records ("
                  << feed.completeness() * 100.0 << "% complete)\n";
      if (obs_on)
        write_obs_outputs(slugify(banner), config, *stop.partial,
                          wall_seconds, /*interrupted=*/true);
    }
    std::exit(4);
  } catch (const sim::DayFailed& failed) {
    const double wall_seconds = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
    std::cerr << "day " << failed.day
              << " failed after exhausting supervisor retries: "
              << failed.what()
              << "\n(previous day's checkpoint is intact — rerun with the "
                 "same CELLSCOPE_STORE_DIR to retry from there)\n";
    // The partial run still gets its accounting: manifest (peak RSS +
    // metrics snapshot + timeline) flagged day_failed, like exit 4 does
    // for interrupts.
    if (obs_on && failed.partial != nullptr)
      write_obs_outputs(slugify(banner), config, *failed.partial,
                        wall_seconds, /*interrupted=*/false,
                        /*day_failed=*/true);
    std::exit(5);
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (data.recovery.resumed)
    std::cout << "(resumed from checkpoint: days through "
              << data.recovery.resumed_from_day
              << " restored, simulation continued from day "
              << data.recovery.resumed_from_day + 1 << ")\n";
  if (config.audit) {
    // A simulated run audited itself in-process (checks > 0); a replayed
    // store arrives unaudited, so run the full post-hoc pass over it here.
    if (data.audit_report.checks_evaluated() == 0)
      data.audit_report = sim::audit_dataset(data);
    // When a cellstore is in play, reconcile its physical accounting too
    // (the store was either just written or just replayed).
    if (const char* root = std::getenv("CELLSCOPE_STORE_DIR");
        root != nullptr && root[0] != '\0') {
      const std::string dir =
          std::string(root) + "/" + sim::config_digest(config);
      data.audit_report.merge(store::audit_store(dir));
    }
  }
  if (obs_on) write_obs_outputs(slugify(banner), config, data, wall_seconds);
  if (config.audit) {
    std::cout << "\n";
    data.audit_report.print(std::cout);
    if (!data.audit_report.clean()) {
      std::cerr << "conservation audit FAILED: "
                << data.audit_report.violations().size()
                << " violation(s)\n";
      std::exit(3);
    }
  }
  return data;
}

// Renders several weekly series as one table: a week column plus one column
// per named series. All series must cover the same weeks.
inline void print_week_table(std::ostream& os, const std::string& title,
                             const std::vector<std::string>& names,
                             const std::vector<std::vector<WeekPoint>>& series,
                             int precision = 1) {
  print_banner(os, title);
  std::vector<std::string> headers{"week"};
  headers.insert(headers.end(), names.begin(), names.end());
  TextTable table{headers};
  if (series.empty()) return;
  for (std::size_t i = 0; i < series.front().size(); ++i) {
    table.row().cell(series.front()[i].week);
    for (const auto& s : series)
      if (i < s.size()) table.cell(s[i].value, precision);
  }
  table.print(os);
}

// The weekly value for one week from a series (0 when absent).
inline double week_value(const std::vector<WeekPoint>& series, int week) {
  for (const auto& p : series)
    if (p.week == week) return p.value;
  return 0.0;
}

// Minimum value across a week range.
inline double min_over_weeks(const std::vector<WeekPoint>& series,
                             int from_week, int to_week) {
  double best = 0.0;
  bool any = false;
  for (const auto& p : series) {
    if (p.week < from_week || p.week > to_week) continue;
    if (!any || p.value < best) best = p.value;
    any = true;
  }
  return best;
}

// Mean value across a week range.
inline double mean_over_weeks(const std::vector<WeekPoint>& series,
                              int from_week, int to_week) {
  double sum = 0.0;
  int n = 0;
  for (const auto& p : series) {
    if (p.week < from_week || p.week > to_week) continue;
    sum += p.value;
    ++n;
  }
  return n ? sum / n : 0.0;
}

inline std::string pct(double value, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, value);
  return buf;
}

// Tracks overall claim health so the binary's exit code reflects shape
// fidelity (0 even on mismatch — benches report, tests enforce).
class ClaimChecker {
 public:
  void check(const std::string& claim, const std::string& paper,
             double measured, bool ok) {
    print_claim(std::cout, claim, paper, pct(measured), ok);
    if (!ok) ++failures_;
  }
  void check_text(const std::string& claim, const std::string& paper,
                  const std::string& measured, bool ok) {
    print_claim(std::cout, claim, paper, measured, ok);
    if (!ok) ++failures_;
  }
  [[nodiscard]] int failures() const { return failures_; }
  void summary() const {
    std::cout << (failures_ == 0 ? "\nAll shape checks passed.\n"
                                 : "\nWARNING: " + std::to_string(failures_) +
                                       " shape check(s) off target.\n");
  }

 private:
  int failures_ = 0;
};

}  // namespace cellscope::bench
