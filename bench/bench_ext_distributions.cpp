// Extension bench: the distribution statements behind the median lines.
//
// The paper's figures plot medians but its prose makes three distributional
// claims this bench turns into numbers:
//  * Section 3.2/3.3: mobility-metric "distributions have little variance
//    in all regions, and all percentiles are close to the median, following
//    similar trends";
//  * Section 4.1: per-cell KPI distributions "do not significantly change
//    across weeks", with one exception —
//  * the 90th percentile of active DL users per cell, which "slightly
//    reduces during the lockdown phase".
#include <iostream>

#include "bench_util.h"

using namespace cellscope;

int main() {
  const auto data = bench::run_figure_scenario(
      /*with_kpis=*/true, "Extension: distribution bands behind the medians");

  // ------------------------------------------------ mobility bands (Fig 3)
  print_banner(std::cout,
               "National gyration distribution per week (km, band means)");
  TextTable bands({"week", "p10", "p25", "median", "p75", "p90",
                   "IQR/median"});
  using Band = analysis::DistributionSeries::Band;
  const auto& gyration = data.gyration_distribution;
  for (int w = 9; w <= 19; ++w) {
    bands.row()
        .cell(w)
        .cell(gyration.week_band(w, Band::kP10), 2)
        .cell(gyration.week_band(w, Band::kP25), 2)
        .cell(gyration.week_band(w, Band::kMedian), 2)
        .cell(gyration.week_band(w, Band::kP75), 2)
        .cell(gyration.week_band(w, Band::kP90), 2)
        .cell(gyration.week_iqr_ratio(w), 2);
  }
  bands.print(std::cout);

  // All percentiles follow the median's trend: correlate the weekly p75
  // series with the weekly median series.
  std::vector<double> medians, p75s, p25s;
  for (int w = 9; w <= 19; ++w) {
    medians.push_back(gyration.week_band(w, Band::kMedian));
    p75s.push_back(gyration.week_band(w, Band::kP75));
    p25s.push_back(gyration.week_band(w, Band::kP25));
  }
  const double corr_p75 = stats::pearson(medians, p75s);

  // ----------------------------------------- per-cell KPI bands (Sec 4.1)
  print_banner(std::cout,
               "Active DL users per cell: distribution across cells");
  TextTable users({"week", "median", "p90", "p90 delta-% vs wk9"});
  const auto week_stats = [&](int week) {
    stats::SampleBuffer values;
    for (const auto& record : data.kpis.records())
      if (iso_week(record.day) == week) values.add(record.active_dl_users);
    return values.summarize();
  };
  const auto wk9 = week_stats(9);
  double p90_lockdown_mean = 0.0;
  int lockdown_weeks = 0;
  for (int w = 9; w <= 19; ++w) {
    const auto s = week_stats(w);
    users.row()
        .cell(w)
        .cell(s.median, 3)
        .cell(s.p90, 3)
        .cell(stats::delta_percent(s.p90, wk9.p90), 1);
    if (w >= 13) {
      p90_lockdown_mean += s.p90;
      ++lockdown_weeks;
    }
  }
  users.print(std::cout);
  p90_lockdown_mean /= std::max(1, lockdown_weeks);

  bench::ClaimChecker claims;
  // "Little variance": the IQR/median band stays in a modest, stable range
  // before and during the lockdown.
  const double ratio_before = gyration.week_iqr_ratio(9);
  const double ratio_during = gyration.week_iqr_ratio(15);
  claims.check_text(
      "gyration percentile band stays close to the median before and "
      "during the lockdown",
      "little variance", bench::pct(100.0 * ratio_before) + " -> " +
                             bench::pct(100.0 * ratio_during),
      ratio_before > 0.0 && ratio_during < 6.0);
  claims.check("all percentiles follow the median's trend",
               "similar trends (corr ~1)", 100.0 * corr_p75,
               corr_p75 > 0.95);
  claims.check(
      "90th percentile of active DL users per cell shrinks under lockdown",
      "slightly reduces (Section 4.1)",
      stats::delta_percent(p90_lockdown_mean, wk9.p90),
      p90_lockdown_mean < wk9.p90);
  claims.summary();
  return 0;
}
