// Extension bench: per-4-hour-bin mobility.
//
// Section 2.3 computes the mobility metrics "over six disjoint 4-hour bins
// of the day" as well as over the whole day, but the paper only plots the
// 24h series. This extension regenerates the binned view and shows WHERE in
// the day the lockdown removed mobility: commute and daytime bins collapse,
// the deep-night bin is nearly inert (people always slept at home), and the
// evening-leisure bin loses the most entropy.
#include <iostream>

#include "bench_util.h"

using namespace cellscope;

namespace {
const char* kBinLabels[kFourHourBinsPerDay] = {
    "00-04", "04-08", "08-12", "12-16", "16-20", "20-24"};
}

int main() {
  auto config = bench::figure_scenario(/*with_kpis=*/false);
  config.collect_binned_mobility = true;
  std::cout << "Extension: per-4-hour-bin mobility (simulating "
            << config.num_users << " subscribers, seed " << config.seed
            << ")\n";
  const sim::Dataset data = sim::run_scenario(config);

  // Per-bin weekly series, each against its own week-9 baseline (bins have
  // very different absolute levels: nights are near zero).
  std::vector<std::string> names;
  std::vector<std::vector<WeekPoint>> gyration, entropy;
  std::vector<double> gyration_baseline(kFourHourBinsPerDay);
  for (int bin = 0; bin < kFourHourBinsPerDay; ++bin) {
    const auto g = static_cast<std::size_t>(bin);
    names.emplace_back(kBinLabels[bin]);
    gyration_baseline[g] = data.gyration_by_bin.week_baseline(g, 9);
    gyration.push_back(
        data.gyration_by_bin.weekly_delta(g, gyration_baseline[g], 9, 19));
    entropy.push_back(data.entropy_by_bin.weekly_delta(
        g, data.entropy_by_bin.week_baseline(g, 9), 9, 19));
  }
  bench::print_week_table(std::cout,
                          "Gyration per 4h bin, % vs own week-9 baseline",
                          names, gyration);
  bench::print_week_table(std::cout,
                          "Entropy per 4h bin, % vs own week-9 baseline",
                          names, entropy);

  std::cout << "\nabsolute week-9 gyration per bin (km):";
  for (int bin = 0; bin < kFourHourBinsPerDay; ++bin)
    std::cout << "  " << kBinLabels[bin] << "="
              << gyration_baseline[static_cast<std::size_t>(bin)];
  std::cout << "\n";

  bench::ClaimChecker claims;
  const auto lockdown = [&](const std::vector<WeekPoint>& series) {
    return bench::mean_over_weeks(series, 13, 16);
  };
  // Daytime and commute bins collapse hardest.
  const double commute = lockdown(gyration[2]);   // 08-12
  const double daytime = lockdown(gyration[3]);   // 12-16
  const double night = lockdown(gyration[0]);     // 00-04
  claims.check("commute-bin (08-12) gyration collapses under lockdown",
               "daytime mobility gone", commute, commute < -55.0);
  claims.check("midday-bin (12-16) gyration collapses", "daytime gone",
               daytime, daytime < -55.0);
  claims.check("deep-night bin (00-04) moves the least",
               "people always slept at home", night,
               night > std::min(commute, daytime) + 10.0);
  // The 24h metric sits between the extremes.
  const double whole_day = stats::delta_percent(
      data.gyration_national.week_baseline(0, 14), data.gyration_baseline());
  claims.check_text("24h metric is bounded by the bin extremes",
                    "consistency", bench::pct(whole_day),
                    whole_day < night + 5.0 &&
                        whole_day > std::min(commute, daytime) - 25.0);
  claims.summary();
  return 0;
}
