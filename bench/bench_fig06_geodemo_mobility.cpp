// Figure 6: mobility per geodemographic cluster — gyration (6a) and
// entropy (6b), compared to the national average in week 9.
//
// Paper shape: Rural Residents cover wider areas than the national average
// pre-pandemic; dense urban clusters (Cosmopolitans, Ethnicity Central)
// cover smaller areas but with higher entropy; every cluster transitions in
// week 12 and drops steeply from week 13 (gyration down by more than 50%);
// Ethnicity Central reduces gyration the most but entropy the least.
#include <iostream>

#include "bench_util.h"
#include "geo/oac.h"

using namespace cellscope;

int main() {
  auto data = bench::run_figure_scenario(
      /*with_kpis=*/false,
      "Figure 6: geodemographic-cluster mobility vs national week 9");

  const double g_base = data.gyration_baseline();
  const double e_base = data.entropy_baseline();

  std::vector<std::string> names;
  std::vector<std::vector<WeekPoint>> gyration, entropy;
  for (const auto cluster : geo::all_oac_clusters()) {
    names.emplace_back(geo::oac_name(cluster));
    const auto g = static_cast<std::size_t>(cluster);
    gyration.push_back(data.gyration_by_cluster.weekly_delta(g, g_base, 9, 19));
    entropy.push_back(data.entropy_by_cluster.weekly_delta(g, e_base, 9, 19));
  }
  bench::print_week_table(std::cout,
                          "Fig 6a: gyration, % vs national week-9 average",
                          names, gyration);
  bench::print_week_table(std::cout,
                          "Fig 6b: entropy, % vs national week-9 average",
                          names, entropy);

  const auto idx = [](geo::OacCluster c) { return static_cast<std::size_t>(c); };
  const auto pre = [&](const std::vector<WeekPoint>& s) {
    return bench::mean_over_weeks(s, 9, 11);
  };

  bench::ClaimChecker claims;
  claims.check("Rural Residents gyration above the national average "
               "pre-pandemic", "higher than nation",
               pre(gyration[idx(geo::OacCluster::kRuralResidents)]),
               pre(gyration[idx(geo::OacCluster::kRuralResidents)]) > 10.0);
  claims.check("Cosmopolitans cover smaller areas pre-pandemic",
               "below national gyration",
               pre(gyration[idx(geo::OacCluster::kCosmopolitans)]),
               pre(gyration[idx(geo::OacCluster::kCosmopolitans)]) < -5.0);
  claims.check("Cosmopolitans entropy above national pre-pandemic",
               "higher entropy",
               pre(entropy[idx(geo::OacCluster::kCosmopolitans)]),
               pre(entropy[idx(geo::OacCluster::kCosmopolitans)]) > 5.0);
  claims.check("Ethnicity Central entropy above national pre-pandemic",
               "higher entropy",
               pre(entropy[idx(geo::OacCluster::kEthnicityCentral)]),
               pre(entropy[idx(geo::OacCluster::kEthnicityCentral)]) > 5.0);

  // All clusters: transition in week 12, steep drop from week 13
  // (relative to the cluster's own pre-pandemic level).
  for (const auto cluster : geo::all_oac_clusters()) {
    const auto& g = gyration[idx(cluster)];
    const double before = pre(g);
    const double w12 = bench::week_value(g, 12);
    const double w13 = bench::week_value(g, 13);
    const double rel13 = (w13 - before) / (100.0 + before) * 100.0;
    claims.check(std::string{geo::oac_name(cluster)} +
                     ": transition in wk12, steep drop from wk13",
                 "drop > 40% of own level", rel13,
                 w12 < before - 3.0 && rel13 < -40.0);
  }

  // Ethnicity Central: largest gyration reduction, smallest entropy
  // reduction (relative to its own baseline).
  const auto own_drop = [&](const std::vector<WeekPoint>& s) {
    const double before = pre(s);
    const double during = bench::mean_over_weeks(s, 13, 16);
    // Percentage-point drop normalized by the cluster's own pre level
    // (all series share the national baseline).
    return (during - before) / (100.0 + before) * 100.0;
  };
  const double eth_g_drop =
      own_drop(gyration[idx(geo::OacCluster::kEthnicityCentral)]);
  const double rural_g_drop =
      own_drop(gyration[idx(geo::OacCluster::kRuralResidents)]);
  const double eth_e_drop =
      own_drop(entropy[idx(geo::OacCluster::kEthnicityCentral)]);
  claims.check("Ethnicity Central cuts gyration more than Rural Residents",
               "highest reduction of all groups", eth_g_drop,
               eth_g_drop < rural_g_drop);
  claims.check("...but cuts entropy less than it cuts gyration",
               "smallest entropy reduction", eth_e_drop,
               eth_e_drop > eth_g_drop);
  claims.summary();
  return 0;
}
