// Figure 8: MNO performance characterization, all data traffic (QCI 1..8).
//
// Six panels — downlink data volume, uplink data volume, downlink active
// users, user downlink throughput, cell resource utilization (TTI), total
// connected users — each as weekly medians of the per-cell daily median,
// delta-% vs week 9, for "UK - all regions" plus the five high-density
// counties of Section 4.3.
//
// Paper shape (UK line): DL +8% in wk10 then down to -24% (wk17); UL within
// a few % of baseline; active DL users down to -28.6% (wk19); user DL
// throughput down at most ~10% (application-limited); radio load -15.1%
// (wk16). Regional intensity: Inner London's DL drop (-41%) far exceeds
// Outer London's (-15%); Inner London UL -22% in wk14 vs Outer London +17%.
#include <iostream>

#include "analysis/network_metrics.h"
#include "bench_util.h"

using namespace cellscope;

int main() {
  auto data = bench::run_figure_scenario(
      /*with_kpis=*/true, "Figure 8: network performance (all bearers)");

  const auto grouping =
      analysis::group_by_region(*data.geography, *data.topology);

  const auto panel = [&](telemetry::KpiMetric metric, const std::string& title) {
    analysis::KpiGroupSeries series{data.kpis, grouping, metric};
    std::vector<std::vector<WeekPoint>> lines;
    for (std::size_t g = 0; g < grouping.group_count(); ++g)
      lines.push_back(series.weekly_delta(g, 9, 9, 19));
    bench::print_week_table(std::cout, "Fig 8: " + title + " (delta-% vs wk 9)",
                            grouping.names, lines);
    return lines;
  };

  const auto dl = panel(telemetry::KpiMetric::kDlVolume, "Downlink Data Volume");
  const auto ul = panel(telemetry::KpiMetric::kUlVolume, "Uplink Data Volume");
  const auto users = panel(telemetry::KpiMetric::kActiveDlUsers,
                           "Downlink Active Users");
  const auto tput = panel(telemetry::KpiMetric::kUserDlThroughput,
                          "User Downlink Throughput");
  const auto load = panel(telemetry::KpiMetric::kTtiUtilization,
                          "Cell Resource Utilization");
  const auto connected = panel(telemetry::KpiMetric::kConnectedUsers,
                               "Total Connected Users");

  // Group indices: 0 = UK, then Outer London, Inner London, G. Manchester,
  // West Midlands, West Yorkshire (see group_by_region).
  constexpr std::size_t kUk = 0, kOuter = 1, kInner = 2;

  bench::ClaimChecker claims;
  claims.check("UK DL volume increase in week 10", "+8%",
               bench::week_value(dl[kUk], 10),
               bench::week_value(dl[kUk], 10) > 3.0);
  const double dl_trough = bench::min_over_weeks(dl[kUk], 13, 19);
  claims.check("UK DL volume trough during lockdown", "-24% (wk 17)",
               dl_trough, dl_trough < -15.0 && dl_trough > -40.0);
  const double ul_lockdown = bench::mean_over_weeks(ul[kUk], 13, 19);
  claims.check("UK UL volume roughly stable", "-7%..+1.5%", ul_lockdown,
               ul_lockdown > -12.0 && ul_lockdown < 10.0);
  const double users_trough = bench::min_over_weeks(users[kUk], 13, 19);
  claims.check("UK active DL users per cell drop", "-28.6% (wk 19)",
               users_trough, users_trough < -15.0 && users_trough > -45.0);
  const double tput_trough = bench::min_over_weeks(tput[kUk], 9, 19);
  claims.check("user DL throughput drops at most ~10% (application-limited)",
               "-10%", tput_trough, tput_trough < -4.0 && tput_trough > -18.0);
  const double load_trough = bench::min_over_weeks(load[kUk], 13, 19);
  claims.check("radio load (TTI utilization) decrease", "-15.1% (wk 16)",
               load_trough, load_trough < -8.0 && load_trough > -30.0);

  // Regional intensity.
  const double inner_dl = bench::min_over_weeks(dl[kInner], 13, 19);
  const double outer_dl = bench::min_over_weeks(dl[kOuter], 13, 19);
  claims.check("Inner London DL drop far exceeds the national one", "-41%",
               inner_dl, inner_dl < dl_trough - 5.0);
  claims.check("Outer London shows the smallest DL decrease", "-15%",
               outer_dl, outer_dl > inner_dl + 10.0);
  const double inner_ul = bench::week_value(ul[kInner], 14);
  const double outer_ul = bench::week_value(ul[kOuter], 14);
  claims.check("Inner London UL falls in week 14 while Outer London rises",
               "-22% vs +17%", inner_ul - outer_ul,
               inner_ul < outer_ul - 10.0);
  const double inner_users = bench::min_over_weeks(users[kInner], 13, 19);
  claims.check("Inner London active-user decrease is the deepest", "-40% wk15",
               inner_users, inner_users < users_trough - 5.0);
  (void)connected;
  claims.summary();
  return 0;
}
