// Extension bench: the control plane as a pandemic sensor.
//
// The paper derives mobility from signaling but never plots the signaling
// itself. This extension does: handovers and Tracking Area Updates are
// physical-mobility proxies and collapse with the lockdown; dedicated
// QCI-1 bearer setups are call attempts and surge with the voice wave
// (Fig 9's cause, seen from the MME); attach failure rates stay flat —
// the core was never the bottleneck.
#include <iostream>

#include "analysis/signaling_series.h"
#include "bench_util.h"

using namespace cellscope;

int main() {
  const auto data = bench::run_figure_scenario(
      /*with_kpis=*/true, "Extension: control-plane intensity vs week 9");

  using Type = traffic::SignalingEventType;
  const auto weekly = [&](Type type) {
    return analysis::signaling_weekly_delta(data.signaling, type, 9, 9, 19);
  };
  const auto handovers = weekly(Type::kHandover);
  const auto taus = weekly(Type::kTrackingAreaUpdate);
  const auto bearers = weekly(Type::kDedicatedBearerSetup);
  const auto service = weekly(Type::kServiceRequest);

  bench::print_week_table(
      std::cout, "Signaling events, delta-% vs week 9",
      {"Handover", "Tracking Area Update", "QCI-1 bearer setup",
       "Service request"},
      {handovers, taus, bearers, service});

  print_banner(std::cout, "Attach failure rate per week");
  const auto failures = analysis::signaling_failure_series(
      data.signaling, Type::kAttach);
  TextTable failure_table({"week", "failure %"});
  for (int w = 9; w <= 19; ++w)
    failure_table.row().cell(w).cell(failures.week_mean(w), 3);
  failure_table.print(std::cout);

  bench::ClaimChecker claims;
  const double handover_trough = bench::min_over_weeks(handovers, 13, 19);
  claims.check("handovers collapse with mobility", "tracks the -50%+ drop",
               handover_trough, handover_trough < -30.0);
  const double tau_trough = bench::min_over_weeks(taus, 13, 19);
  claims.check("Tracking Area Updates collapse too", "same mechanism",
               tau_trough, tau_trough < -30.0);
  const double bearer_peak =
      std::max(bench::week_value(bearers, 12), bench::week_value(bearers, 13));
  claims.check("QCI-1 bearer setups surge with the voice wave",
               "call attempts up ~x2 around wk 12", bearer_peak,
               bearer_peak > 40.0);
  const double failure_drift =
      failures.week_mean(15) - failures.week_mean(9);
  claims.check_text("attach failure rate stays flat (core never stressed)",
                    "flat", bench::pct(failure_drift, 3),
                    std::abs(failure_drift) < 0.2);
  claims.summary();
  return 0;
}
