// Ablation bench for the design choices DESIGN.md Section 5 calls out:
//   1. top-K tower truncation (K = 5 / 10 / 20 / unlimited) on the mobility
//      metrics (the paper uses K = 20);
//   2. daily median vs daily mean reduction of the hourly per-cell KPIs
//      (the paper reports the median);
//   3. 24h window vs per-4-hour-bin mobility metrics (both are defined by
//      Section 2.3).
// Each ablation reruns the relevant slice of the pipeline on the same
// simulated dataset, so the comparison isolates the methodological knob.
#include <iostream>

#include "analysis/mobility_metrics.h"
#include "analysis/network_metrics.h"
#include "bench_util.h"

using namespace cellscope;

int main() {
  auto config = bench::figure_scenario(/*with_kpis=*/true);
  config.collect_signaling = false;
  std::cout << "Ablations over one simulated dataset ("
            << config.num_users << " subscribers, seed " << config.seed
            << ")\n";

  // Shared dataset with the paper's reductions.
  const sim::Dataset median_data = sim::run_scenario(config);

  // ------------------------------------------------------------------ (2)
  // Median vs mean daily KPI reduction: rerun with the mean, compare the
  // UK-wide DL trough.
  auto mean_config = config;
  mean_config.kpi_reduction = telemetry::DailyReduction::kMean;
  const sim::Dataset mean_data = sim::run_scenario(mean_config);

  const auto grouping =
      analysis::group_by_region(*median_data.geography, *median_data.topology);
  const auto trough = [&](const sim::Dataset& data) {
    analysis::KpiGroupSeries dl{data.kpis, grouping,
                                telemetry::KpiMetric::kDlVolume};
    return bench::min_over_weeks(dl.weekly_delta(0, 9, 13, 19), 13, 19);
  };
  const double median_trough = trough(median_data);
  const double mean_trough = trough(mean_data);

  print_banner(std::cout, "Ablation 2: daily median vs mean KPI reduction");
  TextTable reduction({"daily reduction", "UK DL volume trough %"});
  reduction.row().cell("median (paper)").cell(median_trough);
  reduction.row().cell("mean (ablation)").cell(mean_trough);
  reduction.print(std::cout);
  std::cout << "  Both reductions agree on the direction, but the mean\n"
               "  weights the busy daytime hours - exactly the hours the\n"
               "  lockdown empties - so it roughly doubles the apparent\n"
               "  drop. The paper's median tracks the typical hour and is\n"
               "  the conservative choice.\n";

  // ------------------------------------------------------------------ (1)
  // Top-K truncation: rebuild per-user-day metrics from synthetic heavy
  // days (many towers) and compare K settings. Typical simulated days have
  // <= 8 towers, so we synthesize 30-tower days to expose the knob.
  print_banner(std::cout, "Ablation 1: top-K tower truncation");
  Rng rng{9};
  TextTable topk({"K", "mean entropy", "mean gyration km", "towers kept"});
  for (const int k : {5, 10, 20, 0}) {
    stats::Running entropy, gyration, towers;
    for (int round = 0; round < 2000; ++round) {
      telemetry::UserDayObservation obs;
      obs.user = UserId{1};
      obs.day = 30;
      const LatLon origin{51.5 + rng.uniform(-0.5, 0.5),
                          -0.1 + rng.uniform(-0.5, 0.5)};
      const int n = 6 + static_cast<int>(rng.uniform_index(25));
      for (int t = 0; t < n; ++t) {
        telemetry::TowerStay stay;
        stay.site = SiteId{static_cast<std::uint32_t>(t)};
        stay.location = offset_km(origin, rng.uniform(-15.0, 15.0),
                                  rng.uniform(-15.0, 15.0));
        // Zipf-ish dwell: most time on few towers, like real users.
        stay.hours = static_cast<float>(12.0 / (1.0 + t));
        obs.stays.push_back(stay);
      }
      analysis::MobilityMetricOptions options;
      options.top_k = k;
      const auto metrics = analysis::compute_day_metrics(obs, options);
      if (!metrics) continue;
      entropy.add(metrics->entropy);
      gyration.add(metrics->gyration_km);
      towers.add(metrics->towers_visited);
    }
    topk.row()
        .cell(k == 0 ? "unlimited" : std::to_string(k))
        .cell(entropy.mean(), 3)
        .cell(gyration.mean(), 2)
        .cell(towers.mean(), 1);
  }
  topk.print(std::cout);
  std::cout << "  Dwell is Zipf-concentrated, so K=20 retains almost the\n"
               "  whole dwell mass: the paper's truncation is effectively\n"
               "  lossless while bounding per-user state.\n";

  // ------------------------------------------------------------------ (3)
  // 24h window vs 4-hour bins on the simulated lockdown contrast: compare
  // the relative drop of the whole-day metric against the daytime bin
  // (12:00-16:00) and the night bin (00:00-04:00).
  print_banner(std::cout, "Ablation 3: 24h window vs 4-hour bins");
  std::cout << "  (Section 2.3 computes both; the figures use the 24h\n"
               "   window. The bins localize WHERE the mobility loss\n"
               "   happens in the day: daytime bins collapse, the night\n"
               "   bin barely moves - people always slept at home.)\n";
  std::cout << "  See test_mobility_metrics.cc::FourHourBinRestriction for\n"
               "  the unit-level verification of the bin machinery.\n";

  bench::ClaimChecker claims;
  claims.check_text(
      "median and mean reductions agree on the direction; the mean "
      "(busy-hour weighted) shows a deeper drop",
      "same sign, mean deeper",
      bench::pct(median_trough) + " vs " + bench::pct(mean_trough),
      median_trough < -10.0 && mean_trough < median_trough);
  claims.summary();
  return 0;
}
