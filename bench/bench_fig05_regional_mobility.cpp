// Figure 5: regional mobility — gyration (5a) and entropy (5b) per region,
// compared to the NATIONAL average during week 9.
//
// Paper shape: London (Inner and Outer) sits ~20% below the national
// gyration baseline but ~20% above the national entropy baseline (smaller
// areas, more erratic visitation); every region drops sharply in weeks
// 13-14; London and West Yorkshire relax in weeks 18-19 while Greater
// Manchester and the West Midlands stay low.
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"

using namespace cellscope;

namespace {
constexpr std::array<geo::Region, 5> kRegions = {
    geo::Region::kInnerLondon, geo::Region::kOuterLondon,
    geo::Region::kGreaterManchester, geo::Region::kWestMidlands,
    geo::Region::kWestYorkshire};
}

int main() {
  auto data = bench::run_figure_scenario(
      /*with_kpis=*/false, "Figure 5: regional mobility vs national week 9");

  const double g_base = data.gyration_baseline();
  const double e_base = data.entropy_baseline();

  std::vector<std::string> names;
  std::vector<std::vector<WeekPoint>> gyration, entropy;
  for (const auto region : kRegions) {
    names.emplace_back(geo::region_name(region));
    const auto g = static_cast<std::size_t>(region);
    gyration.push_back(data.gyration_by_region.weekly_delta(g, g_base, 9, 19));
    entropy.push_back(data.entropy_by_region.weekly_delta(g, e_base, 9, 19));
  }
  bench::print_week_table(std::cout,
                          "Fig 5a: gyration, % vs national week-9 average",
                          names, gyration);
  bench::print_week_table(std::cout,
                          "Fig 5b: entropy, % vs national week-9 average",
                          names, entropy);

  bench::ClaimChecker claims;
  const auto pre = [&](const std::vector<WeekPoint>& s) {
    return bench::mean_over_weeks(s, 9, 11);
  };
  const double london_g =
      0.5 * (pre(gyration[0]) + pre(gyration[1]));
  claims.check("London gyration reference below national average",
               "~-20%", london_g, london_g < -5.0);
  const double london_e = 0.5 * (pre(entropy[0]) + pre(entropy[1]));
  claims.check("London entropy reference above national average", "~+20%",
               london_e, london_e > 5.0);

  for (std::size_t i = 0; i < kRegions.size(); ++i) {
    const double trough = bench::min_over_weeks(gyration[i], 13, 14);
    claims.check("sharp weeks-13/14 gyration drop in " + names[i],
                 "steep decrease", trough, trough < -40.0);
  }

  // Regional relaxation: weeks 18-19 vs weeks 15-17.
  const auto relax = [&](std::size_t i) {
    return bench::mean_over_weeks(gyration[i], 18, 19) -
           bench::mean_over_weeks(gyration[i], 15, 17);
  };
  const double relax_london = 0.5 * (relax(0) + relax(1));
  const double relax_wyork = relax(4);
  const double relax_gm = relax(2);
  const double relax_wm = relax(3);
  claims.check("mobility relaxes in London in weeks 18-19", "increase",
               relax_london, relax_london > 2.0);
  claims.check("mobility relaxes in West Yorkshire in weeks 18-19",
               "increase", relax_wyork, relax_wyork > 2.0);
  claims.check("Greater Manchester stays low in weeks 18-19",
               "consistently low", relax_gm, relax_gm < relax_london);
  claims.check("West Midlands stays low in weeks 18-19", "consistently low",
               relax_wm, relax_wm < relax_london);
  claims.summary();
  return 0;
}
