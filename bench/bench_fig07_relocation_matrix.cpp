// Figure 7: mobility matrix of Inner London residents across counties.
//
// For each county (rows), the daily % change in the number of Inner London
// residents present there vs the week-9 median. Paper shape: a sustained
// ~-10% in the Inner London row from week 13 (temporary relocation); a trip
// spike to coastal counties (East Sussex) on 21-22 March just before the
// stay-at-home order; elevated presence in Hampshire during lockdown and a
// further weekend uptick there by the end of April.
#include <algorithm>
#include <iostream>

#include "bench_util.h"

using namespace cellscope;

int main() {
  auto data = bench::run_figure_scenario(
      /*with_kpis=*/false, "Figure 7: Inner London mobility matrix");
  if (!data.london_matrix) {
    std::cerr << "no Inner London in the geography?\n";
    return 1;
  }
  std::cout << "tracked Inner London residents: "
            << data.london_residents_tracked << "\n";

  const auto rows = data.london_matrix->rows(/*baseline_week=*/9,
                                             /*top_n=*/10);

  // Weekly summary table (daily matrix is printed for weeks 12-13 below).
  print_banner(std::cout, "Weekly mean of daily delta-% per county");
  std::vector<std::string> headers{"county", "baseline"};
  for (int w = 9; w <= 19; ++w) headers.push_back("wk" + std::to_string(w));
  TextTable table{headers};
  for (const auto& row : rows) {
    table.row().cell(data.geography->county(row.county).name).cell(row.baseline, 0);
    for (int w = 9; w <= 19; ++w) {
      double sum = 0.0;
      int n = 0;
      for (const auto& p : row.delta_pct)
        if (iso_week(p.day) == w) {
          sum += p.value;
          ++n;
        }
      table.cell(n ? sum / n : 0.0, 1);
    }
  }
  table.print(std::cout);

  print_banner(std::cout, "Daily detail around the lockdown (weeks 12-13)");
  TextTable daily({"day", "Inner London", "East Sussex", "Hampshire", "Kent"});
  const auto row_of = [&](std::string_view name) -> const auto* {
    for (const auto& row : rows)
      if (data.geography->county(row.county).name == name) return &row;
    return static_cast<const std::remove_reference_t<decltype(rows[0])>*>(nullptr);
  };
  const auto* il = row_of("Inner London");
  const auto* es = row_of("East Sussex");
  const auto* ha = row_of("Hampshire");
  const auto* ke = row_of("Kent");
  const auto day_value = [](const auto* row, SimDay d) {
    if (!row) return 0.0;
    for (const auto& p : row->delta_pct)
      if (p.day == d) return p.value;
    return 0.0;
  };
  for (SimDay d = week_start_day(12); d < week_start_day(14); ++d) {
    daily.row()
        .cell(describe_day(d))
        .cell(day_value(il, d))
        .cell(day_value(es, d))
        .cell(day_value(ha, d))
        .cell(day_value(ke, d));
  }
  daily.print(std::cout);

  bench::ClaimChecker claims;
  // Sustained Inner London decrease from week 13.
  double il_lockdown = 0.0;
  int n = 0;
  if (il) {
    for (const auto& p : il->delta_pct)
      if (iso_week(p.day) >= 13) {
        il_lockdown += p.value;
        ++n;
      }
  }
  il_lockdown = n ? il_lockdown / n : 0.0;
  claims.check("sustained decrease of Inner London residents present in "
               "Inner London from week 13",
               "-10%", il_lockdown, il_lockdown < -5.0 && il_lockdown > -20.0);

  // Pre-lockdown rush: 21-22 March spike in coastal counties.
  const SimDay sat = timeline::kLockdownOrder - 2;
  const SimDay sun = timeline::kLockdownOrder - 1;
  const double es_rush =
      std::max(day_value(es, sat), day_value(es, sun));
  claims.check("trip spike from Inner London to East Sussex on 21-22 March",
               "large variation just before the order", es_rush,
               es_rush > 40.0);

  // Hampshire hosts relocated Londoners during lockdown.
  double ha_lockdown = 0.0;
  n = 0;
  if (ha) {
    for (const auto& p : ha->delta_pct)
      if (iso_week(p.day) >= 13 && iso_week(p.day) <= 17) {
        ha_lockdown += p.value;
        ++n;
      }
  }
  ha_lockdown = n ? ha_lockdown / n : 0.0;
  claims.check("more Inner London residents present in Hampshire during "
               "lockdown (relocation)",
               "increase", ha_lockdown, ha_lockdown > 10.0);

  // Weekend-trip pattern to other counties disappears after week 12.
  // Relocated residents sit in the receiving county all week, so the
  // signature of day-trips is the weekend-minus-weekday differential: large
  // before, gone under lockdown.
  const auto mean_of = [&](const auto* row, int from_week, int to_week,
                           bool weekends) {
    if (!row) return 0.0;
    double sum = 0.0;
    int count = 0;
    for (const auto& p : row->delta_pct) {
      const int w = iso_week(p.day);
      if (w < from_week || w > to_week || is_weekend(p.day) != weekends)
        continue;
      sum += p.value;
      ++count;
    }
    return count ? sum / count : 0.0;
  };
  const double ke_diff_before =
      mean_of(ke, 9, 11, true) - mean_of(ke, 9, 11, false);
  const double ke_diff_during =
      mean_of(ke, 13, 17, true) - mean_of(ke, 13, 17, false);
  claims.check("weekend day-trip pattern to Kent disappears under lockdown",
               "pattern disappears", ke_diff_during - ke_diff_before,
               ke_diff_during < 0.5 * ke_diff_before &&
                   ke_diff_before > 5.0);
  claims.summary();
  return 0;
}
