// perfgate: the machine-readable perf-regression gate (docs/OBSERVABILITY.md).
//
// Runs a fixed panel of figure benches plus the bench_perf_kernels
// microbenchmarks, aggregates their run manifests, run-health timelines and
// google-benchmark reports into one BENCH_cellscope.json trajectory
// (schema "cellscope-bench-trajectory/1"), and diffs it against the
// checked-in baseline under the baseline's own per-metric tolerances.
//
// Usage (run from the repo root):
//   build/tools/perfgate [options]
//     --bin-dir DIR     bench binaries           (default: build/bench)
//     --baseline PATH   trajectory baseline      (default: BENCH_cellscope.json,
//                       falling back to ../BENCH_cellscope.json)
//     --work-dir DIR    scratch obs output       (default: obs-perfgate)
//     --out PATH        where the current trajectory is written
//                       (default: <work-dir>/BENCH_cellscope.current.json)
//
// Environment:
//   CELLSCOPE_PERFGATE_UPDATE=1   regenerate the baseline at --baseline
//                                 (slope cap recomputed from this run) and
//                                 exit 0 without comparing
//   CELLSCOPE_BENCH_USERS/SEED/THREADS   respected if already set; the gate
//                                 otherwise pins users=4000 seed=42 threads=2
//
// Exit codes: 0 within tolerance (or baseline updated), 1 regression,
// 2 usage/environment error. CI runs this in the perf-gate job and uploads
// the trajectory + timelines as artifacts.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/atomic_file.h"
#include "common/json_read.h"
#include "obs/benchgate.h"
#include "obs/runtime.h"

namespace {

namespace fs = std::filesystem;
using cellscope::common::JsonValue;
using cellscope::common::json_parse_file;

struct Options {
  std::string bin_dir = "build/bench";
  std::string baseline;
  std::string work_dir = "obs-perfgate";
  std::string out;
};

[[noreturn]] void usage_error(const std::string& what) {
  std::cerr << "perfgate: " << what << "\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--bin-dir") opt.bin_dir = value();
    else if (arg == "--baseline") opt.baseline = value();
    else if (arg == "--work-dir") opt.work_dir = value();
    else if (arg == "--out") opt.out = value();
    else usage_error("unknown argument '" + arg + "'");
  }
  if (opt.baseline.empty()) {
    opt.baseline = fs::exists("BENCH_cellscope.json")
                       ? "BENCH_cellscope.json"
                       : (fs::exists("../BENCH_cellscope.json")
                              ? "../BENCH_cellscope.json"
                              : "BENCH_cellscope.json");
  }
  if (opt.out.empty())
    opt.out = opt.work_dir + "/BENCH_cellscope.current.json";
  return opt;
}

// The gate panel: one mobility-only bench, one KPI/network bench, one voice
// bench — together they exercise the simulator, scheduler, store sink and
// analysis paths the paper's figures depend on.
const std::vector<std::string> kFigureBenches = {
    "bench_fig03_national_mobility",
    "bench_fig08_network_performance",
    "bench_fig09_voice_traffic",
};

// Deterministic gate scale, unless the caller pinned their own.
void pin_bench_env() {
  setenv("CELLSCOPE_BENCH_USERS", "4000", /*overwrite=*/0);
  setenv("CELLSCOPE_BENCH_SEED", "42", /*overwrite=*/0);
  setenv("CELLSCOPE_BENCH_THREADS", "2", /*overwrite=*/0);
  // Nothing else may leak into the measured runs.
  unsetenv("CELLSCOPE_BENCH_FAULTS");
  unsetenv("CELLSCOPE_STORE_DIR");
  unsetenv("CELLSCOPE_AUDIT");
  unsetenv("CELLSCOPE_CRASH_AT_DAY");
}

int run_command(const std::string& command) {
  std::cout << "  $ " << command << std::endl;
  const int status = std::system(command.c_str());
  if (status < 0) return -1;
  return status;
}

// Finds the single *.manifest.json a bench wrote into its obs subdir.
std::string find_manifest(const std::string& dir) {
  std::string found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 14 &&
        name.compare(name.size() - 14, 14, ".manifest.json") == 0) {
      if (!found.empty()) return {};  // ambiguous
      found = entry.path().string();
    }
  }
  return found;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const bool update_mode = [] {
    const char* update = std::getenv("CELLSCOPE_PERFGATE_UPDATE");
    return update != nullptr && std::string(update) == "1";
  }();

  pin_bench_env();

  std::string work_dir;
  try {
    work_dir = cellscope::obs::ensure_obs_dir(opt.work_dir);
  } catch (const std::runtime_error& error) {
    std::cerr << "perfgate: " << error.what() << "\n";
    return 2;
  }

  cellscope::obs::Trajectory current;
  current.git_describe = cellscope::obs::build_describe();

  // --- Figure benches: one obs subdir each, manifest -> BenchRecord. ---
  for (const auto& bench : kFigureBenches) {
    const std::string binary = opt.bin_dir + "/" + bench;
    if (!fs::exists(binary)) {
      std::cerr << "perfgate: bench binary '" << binary
                << "' not found (build first; see --bin-dir)\n";
      return 2;
    }
    const std::string obs_dir = work_dir + "/" + bench;
    std::error_code ec;
    fs::remove_all(obs_dir, ec);  // stale manifests must not leak in
    setenv("CELLSCOPE_OBS_DIR", obs_dir.c_str(), /*overwrite=*/1);
    const std::string log = work_dir + "/" + bench + ".log";
    const int status =
        run_command("'" + binary + "' > '" + log + "' 2>&1");
    if (status != 0) {
      std::cerr << "perfgate: " << bench << " exited with status " << status
                << " (log: " << log << ")\n";
      return 2;
    }
    const std::string manifest_path = find_manifest(obs_dir);
    if (manifest_path.empty()) {
      std::cerr << "perfgate: no run manifest under " << obs_dir << "\n";
      return 2;
    }
    try {
      current.benches.push_back(
          cellscope::obs::bench_from_manifest(json_parse_file(manifest_path)));
    } catch (const std::runtime_error& error) {
      std::cerr << "perfgate: " << manifest_path << ": " << error.what()
                << "\n";
      return 2;
    }
  }

  // --- Kernel microbenchmarks: google-benchmark JSON -> KernelRecords. ---
  {
    const std::string binary = opt.bin_dir + "/bench_perf_kernels";
    if (!fs::exists(binary)) {
      std::cerr << "perfgate: '" << binary << "' not found\n";
      return 2;
    }
    const std::string obs_dir = work_dir + "/kernels";
    std::error_code ec;
    fs::remove_all(obs_dir, ec);
    setenv("CELLSCOPE_OBS_DIR", obs_dir.c_str(), /*overwrite=*/1);
    const std::string log = work_dir + "/bench_perf_kernels.log";
    const int status =
        run_command("'" + binary + "' > '" + log + "' 2>&1");
    if (status != 0) {
      std::cerr << "perfgate: bench_perf_kernels exited with status "
                << status << " (log: " << log << ")\n";
      return 2;
    }
    try {
      current.kernels = cellscope::obs::kernels_from_benchmark_json(
          json_parse_file(obs_dir + "/perf_kernels.json"));
    } catch (const std::runtime_error& error) {
      std::cerr << "perfgate: perf_kernels.json: " << error.what() << "\n";
      return 2;
    }
  }
  if (current.kernels.empty()) {
    std::cerr << "perfgate: no kernel records parsed\n";
    return 2;
  }

  if (update_mode) {
    // Recompute the absolute slope cap from what this machine actually
    // observed: headroom of 2x over the worst bench, floored at 512 kB/day
    // so measurement noise on a flat run cannot arm a hair-trigger. The
    // cap stays an order of magnitude below a real per-day leak at scale.
    double worst_slope = 0.0;
    for (const auto& b : current.benches)
      worst_slope = std::max(worst_slope, b.rss_slope_kb_per_day);
    current.tolerances.rss_slope_max_kb_per_day =
        std::max(512.0, 2.0 * worst_slope);
    std::ostringstream out;
    cellscope::obs::write_trajectory_json(out, current);
    cellscope::write_file_atomic(opt.baseline, out.str());
    std::cout << "perfgate: baseline updated at " << opt.baseline << " ("
              << current.benches.size() << " benches, "
              << current.kernels.size() << " kernels, slope cap "
              << current.tolerances.rss_slope_max_kb_per_day
              << " kB/day)\n";
    return 0;
  }

  cellscope::obs::Trajectory baseline;
  try {
    baseline = cellscope::obs::parse_trajectory(json_parse_file(opt.baseline));
  } catch (const std::runtime_error& error) {
    std::cerr << "perfgate: baseline " << opt.baseline << ": "
              << error.what()
              << "\n(run with CELLSCOPE_PERFGATE_UPDATE=1 to generate it)\n";
    return 2;
  }

  // Publish the current trajectory next to the logs (CI uploads it), with
  // the baseline's tolerances so a later promote-to-baseline keeps them.
  current.tolerances = baseline.tolerances;
  {
    std::ostringstream out;
    cellscope::obs::write_trajectory_json(out, current);
    cellscope::write_file_atomic(opt.out, out.str());
  }

  const auto findings =
      cellscope::obs::compare_trajectories(baseline, current);
  int regressions = 0;
  for (const auto& finding : findings) {
    if (finding.regression) {
      ++regressions;
      std::cout << "REGRESSION: " << finding.detail << "\n";
    } else {
      std::cout << "note: " << finding.detail << "\n";
    }
  }
  std::cout << "perfgate: " << current.benches.size() << " benches, "
            << current.kernels.size() << " kernels vs baseline "
            << opt.baseline << " (" << baseline.git_describe << "): "
            << regressions << " regression(s)\n";
  if (regressions > 0) {
    std::cout << "(intentional change? rerun with "
                 "CELLSCOPE_PERFGATE_UPDATE=1 and commit the new "
                 "baseline)\n";
    return 1;
  }
  std::cout << "perfgate: OK — within tolerance; current trajectory at "
            << opt.out << "\n";
  return 0;
}
