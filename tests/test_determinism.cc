// The determinism contract, enforced.
//
// ScenarioConfig::worker_threads is documented as a pure runtime knob: the
// chunked worker pool (sim/pool.h) reduces per-chunk buffers in chunk-index
// order, so a run's Dataset must be BIT-identical — not merely close —
// whatever the thread count. This suite runs the same scenario at 1, 2, 3
// and 8 workers and compares every Dataset field at the bit level, float
// fields included, clean and under measurement-plane faults. Any reduction
// reordered by a future change fails here first.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/runtime.h"
#include "obs/timeline.h"
#include "sim/checkpoint.h"
#include "sim/dataset_audit.h"
#include "sim/simulator.h"
#include "support/dataset_compare.h"

namespace cellscope::sim {
namespace {

using testsupport::expect_datasets_identical;

// Small scale, small chunks: many chunks per day and (at 8 workers) more
// workers than chunks in flight, so the reorder window actually reorders.
ScenarioConfig matrix_config() {
  ScenarioConfig config = default_scenario();
  config.num_users = 2'500;
  config.seed = 987;
  config.user_chunk = 128;
  config.collect_binned_mobility = true;
  return config;
}

class ThreadMatrix : public ::testing::TestWithParam<int> {
 protected:
  // The single-worker run is the reference; computed once for the suite.
  static const Dataset& reference() {
    static const Dataset* serial = [] {
      auto config = matrix_config();
      config.worker_threads = 1;
      return new Dataset(run_scenario(config));
    }();
    return *serial;
  }
};

TEST_P(ThreadMatrix, DatasetBitIdenticalToSerial) {
  auto config = matrix_config();
  config.worker_threads = GetParam();
  const Dataset parallel = run_scenario(config);
  expect_datasets_identical(reference(), parallel);
}

INSTANTIATE_TEST_SUITE_P(Workers, ThreadMatrix, ::testing::Values(2, 3, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

// The same contract must hold when the measurement plane is degraded: the
// fault plan keys off (user, day, cell, hour) — never off which worker
// handled the record — so the quality ledger is part of the stable output.
TEST(ThreadMatrixFaulted, QualityLedgerAndDatasetBitIdentical) {
  ScenarioConfig config = default_scenario();
  config.num_users = 1'500;
  config.seed = 4242;
  config.user_chunk = 96;
  config.faults.signaling_outages_per_week = 1.0;
  config.faults.signaling_outage_mean_hours = 6.0;
  config.faults.observation_loss_rate = 0.02;
  config.faults.kpi_record_loss_rate = 0.01;
  config.faults.kpi_record_duplication_rate = 0.005;
  config.faults.cell_outage_daily_prob = 0.01;

  config.worker_threads = 1;
  const Dataset serial = run_scenario(config);
  config.worker_threads = 3;
  const Dataset parallel = run_scenario(config);
  ASSERT_FALSE(serial.quality.empty());
  expect_datasets_identical(serial, parallel);
}

// The digest draws the line the engine promises: the thread count is not
// scenario identity, the chunk grid is.
TEST(DeterminismContract, DigestExcludesThreadsIncludesChunk) {
  auto a = matrix_config();
  auto b = matrix_config();
  b.worker_threads = 32;
  EXPECT_EQ(config_digest(a), config_digest(b));
  b.user_chunk = a.user_chunk * 2;
  EXPECT_NE(config_digest(a), config_digest(b));
}

// The conservation audit is passive bookkeeping: an audited run must
// produce the same Dataset, bit for bit, as an unaudited one — observing
// the run cannot change it. The audit flag, like worker_threads, stays out
// of the config digest for the same reason.
TEST(DeterminismContract, AuditedRunBitIdenticalToUnaudited) {
  auto config = matrix_config();
  config.worker_threads = 2;
  const Dataset plain = run_scenario(config);
  config.audit = true;
  const Dataset audited = run_scenario(config);
  EXPECT_GT(audited.audit_report.checks_evaluated(), 0u);
  EXPECT_TRUE(audited.audit_report.clean());
  expect_datasets_identical(plain, audited);
  EXPECT_EQ(config_digest(plain.config), config_digest(audited.config));
}

// The run-health timeline reads clocks, /proc and registry counters —
// never RNG streams or model state — so a sampled run must produce the
// same Dataset, bit for bit, as an unsampled one at every worker count.
// 1 worker (serial), 8 (contended) and 32 (far more workers than chunks
// in flight) all compare against one unsampled serial reference.
TEST(DeterminismContract, TimelineSampledRunBitIdenticalToUnsampled) {
  ScenarioConfig config = default_scenario();
  config.num_users = 1'500;
  config.seed = 31337;
  config.user_chunk = 128;

  obs::set_enabled(false);
  obs::reset();
  config.worker_threads = 1;
  const Dataset plain = run_scenario(config);
  const auto n_days = static_cast<std::uint64_t>(config.last_day() -
                                                 config.first_day() + 1);

  for (const int workers : {1, 8, 32}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    config.worker_threads = workers;
    obs::reset();
    obs::set_enabled(true);
    const Dataset sampled = run_scenario(config);
    obs::set_enabled(false);
    // The timeline really sampled: one day-boundary sample per simulated
    // day, with a live RSS reading and the registry-backed gauges wired in.
    EXPECT_GE(obs::timeline().sample_count(), n_days);
    const auto samples = obs::timeline().samples();
    ASSERT_FALSE(samples.empty());
    EXPECT_GT(samples.back().rss_kb, 0);
    EXPECT_GT(samples.back().users_per_sec, 0.0);
    obs::reset();
    // ...and perturbed nothing.
    expect_datasets_identical(plain, sampled);
  }
}

TEST(DeterminismContract, RejectsBadChunkSize) {
  auto config = matrix_config();
  config.user_chunk = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.user_chunk = (1u << 20) + 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

// ------------------------------------------------- checkpoint/resume
//
// The resume contract (sim/checkpoint.h): a run restored from any day's
// checkpoint must finish with a Dataset BIT-identical to the uninterrupted
// run, at any worker count on either side of the interruption. An
// in-memory sink records every day's blob from one full run; each test
// primes a fresh sink with one of those blobs and lets a second run
// fast-forward from it.
class MemoryCheckpoint final : public CheckpointSink {
 public:
  [[nodiscard]] std::span<const std::uint8_t> resume_payload()
      const override {
    return {resume_payload_.data(), resume_payload_.size()};
  }
  [[nodiscard]] SimDay resume_day() const override { return resume_day_; }
  void on_day_complete(SimDay day,
                       const std::vector<std::uint8_t>& state) override {
    saved_.emplace_back(day, state);
  }

  void prime(SimDay day, std::vector<std::uint8_t> payload) {
    resume_day_ = day;
    resume_payload_ = std::move(payload);
  }
  [[nodiscard]] const std::vector<
      std::pair<SimDay, std::vector<std::uint8_t>>>&
  saved() const {
    return saved_;
  }

 private:
  SimDay resume_day_ = -1;
  std::vector<std::uint8_t> resume_payload_;
  std::vector<std::pair<SimDay, std::vector<std::uint8_t>>> saved_;
};

// The serial reference run, with every day's checkpoint blob recorded;
// computed once for the whole resume suite.
struct RecordedRun {
  Dataset dataset;
  MemoryCheckpoint checkpoints;
};
const RecordedRun& recorded_reference() {
  static const RecordedRun* run = [] {
    auto* r = new RecordedRun;
    auto config = matrix_config();
    config.worker_threads = 1;
    Simulator simulator{config};
    r->dataset = simulator.run(nullptr, &r->checkpoints);
    return r;
  }();
  return *run;
}

Dataset resume_from(const MemoryCheckpoint& recorder, std::size_t index,
                    int workers, bool audit = false) {
  MemoryCheckpoint source;
  source.prime(recorder.saved()[index].first, recorder.saved()[index].second);
  auto config = matrix_config();
  config.worker_threads = workers;
  config.audit = audit;
  Simulator simulator{config};
  return simulator.run(nullptr, &source);
}

class ResumeMatrix : public ::testing::TestWithParam<int> {};

TEST_P(ResumeMatrix, ResumedRunBitIdenticalToUninterrupted) {
  const RecordedRun& full = recorded_reference();
  ASSERT_GT(full.checkpoints.saved().size(), 3u);
  EXPECT_FALSE(full.dataset.recovery.resumed);
  const std::size_t mid = full.checkpoints.saved().size() / 2;
  const Dataset resumed =
      resume_from(full.checkpoints, mid, GetParam());
  EXPECT_TRUE(resumed.recovery.resumed);
  EXPECT_EQ(resumed.recovery.resumed_from_day,
            full.checkpoints.saved()[mid].first);
  expect_datasets_identical(full.dataset, resumed);
}

INSTANTIATE_TEST_SUITE_P(Workers, ResumeMatrix, ::testing::Values(1, 2, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

// The extreme restore points: the very first day (home detection barely
// begun, nothing calibrated) and the second-to-last (every calibration
// finalized, one day left to simulate).
TEST(CheckpointResume, BoundaryDaysResumeBitIdentical) {
  const RecordedRun& full = recorded_reference();
  const auto& saved = full.checkpoints.saved();
  ASSERT_GT(saved.size(), 3u);
  for (const std::size_t index : {std::size_t{0}, saved.size() - 2}) {
    SCOPED_TRACE("resumed after day " +
                 std::to_string(saved[index].first));
    const Dataset resumed = resume_from(full.checkpoints, index, 2);
    expect_datasets_identical(full.dataset, resumed);
  }
}

// A resumed run re-checkpoints the days it simulates; those blobs must be
// byte-identical to the full run's blobs for the same days — otherwise a
// second crash after a resume would restore drifted state.
TEST(CheckpointResume, ResumedCheckpointsByteIdenticalToFullRuns) {
  const RecordedRun& full = recorded_reference();
  const auto& saved = full.checkpoints.saved();
  ASSERT_GT(saved.size(), 3u);
  const std::size_t mid = saved.size() / 2;
  MemoryCheckpoint source;
  source.prime(saved[mid].first, saved[mid].second);
  auto config = matrix_config();
  config.worker_threads = 2;
  Simulator simulator{config};
  (void)simulator.run(nullptr, &source);
  ASSERT_EQ(source.saved().size(), saved.size() - mid - 1);
  for (std::size_t i = 0; i < source.saved().size(); ++i) {
    EXPECT_EQ(source.saved()[i].first, saved[mid + 1 + i].first);
    EXPECT_EQ(source.saved()[i].second, saved[mid + 1 + i].second)
        << "checkpoint blob for day " << source.saved()[i].first;
  }
}

// The contract holds under measurement-plane faults too: the quality
// ledger, the fault plan's RNG stream and the degraded feeds all resume
// exactly where they stopped.
TEST(CheckpointResume, FaultedResumeBitIdenticalIncludingQualityLedger) {
  ScenarioConfig config = default_scenario();
  config.num_users = 1'500;
  config.seed = 4242;
  config.user_chunk = 96;
  config.faults.signaling_outages_per_week = 1.0;
  config.faults.signaling_outage_mean_hours = 6.0;
  config.faults.observation_loss_rate = 0.05;
  config.faults.kpi_record_loss_rate = 0.05;
  config.faults.kpi_record_duplication_rate = 0.005;
  config.worker_threads = 1;
  MemoryCheckpoint recorder;
  Simulator full_sim{config};
  const Dataset full = full_sim.run(nullptr, &recorder);
  ASSERT_FALSE(full.quality.empty());
  ASSERT_GT(recorder.saved().size(), 2u);

  const std::size_t mid = recorder.saved().size() / 2;
  MemoryCheckpoint source;
  source.prime(recorder.saved()[mid].first, recorder.saved()[mid].second);
  config.worker_threads = 3;
  Simulator resumed_sim{config};
  const Dataset resumed = resumed_sim.run(nullptr, &source);
  expect_datasets_identical(full, resumed);
}

// checkpoint-consistency (audit/laws.h) only exists for resumed runs: the
// restored ledger prefixes must reconcile with the sizes recorded at the
// fast-forward. A clean resume passes it; a fresh run never evaluates it.
TEST(CheckpointResume, ResumedRunPassesCheckpointConsistencyLaw) {
  const RecordedRun& full = recorded_reference();
  const std::size_t mid = full.checkpoints.saved().size() / 2;
  const Dataset resumed =
      resume_from(full.checkpoints, mid, 2, /*audit=*/true);
  EXPECT_GT(resumed.audit_report.checks_for("checkpoint-consistency"), 0u);
  EXPECT_TRUE(resumed.audit_report.clean());
  const audit::AuditReport fresh = audit_dataset(full.dataset);
  EXPECT_EQ(fresh.checks_for("checkpoint-consistency"), 0u);
}

}  // namespace
}  // namespace cellscope::sim
