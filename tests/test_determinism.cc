// The determinism contract, enforced.
//
// ScenarioConfig::worker_threads is documented as a pure runtime knob: the
// chunked worker pool (sim/pool.h) reduces per-chunk buffers in chunk-index
// order, so a run's Dataset must be BIT-identical — not merely close —
// whatever the thread count. This suite runs the same scenario at 1, 2, 3
// and 8 workers and compares every Dataset field at the bit level, float
// fields included, clean and under measurement-plane faults. Any reduction
// reordered by a future change fails here first.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>

#include "sim/simulator.h"

namespace cellscope::sim {
namespace {

// Bit-level double comparison: EXPECT_DOUBLE_EQ tolerates 4 ulps, which is
// exactly the slop this contract forbids.
std::uint64_t bits(double value) { return std::bit_cast<std::uint64_t>(value); }

#define EXPECT_BITS_EQ(a, b) EXPECT_EQ(bits(a), bits(b))

void expect_series_identical(const DailySeries& a, const DailySeries& b,
                             const std::string& what) {
  ASSERT_EQ(a.first_day(), b.first_day()) << what;
  ASSERT_EQ(a.last_day(), b.last_day()) << what;
  if (a.empty() || b.empty()) {
    EXPECT_EQ(a.empty(), b.empty()) << what;
    return;
  }
  for (SimDay d = a.first_day(); d <= a.last_day(); ++d) {
    ASSERT_EQ(a.has(d), b.has(d)) << what << " day " << d;
    if (!a.has(d)) continue;
    EXPECT_EQ(a.count(d), b.count(d)) << what << " day " << d;
    EXPECT_BITS_EQ(a.value(d), b.value(d)) << what << " day " << d;
  }
}

void expect_grouped_identical(const analysis::GroupedDailySeries& a,
                              const analysis::GroupedDailySeries& b,
                              const std::string& what) {
  ASSERT_EQ(a.group_count(), b.group_count()) << what;
  for (std::size_t g = 0; g < a.group_count(); ++g)
    expect_series_identical(a.group(g), b.group(g),
                            what + " group " + std::to_string(g));
}

void expect_distribution_identical(const analysis::DistributionSeries& a,
                                   const analysis::DistributionSeries& b,
                                   const std::string& what) {
  ASSERT_EQ(a.first_day(), b.first_day()) << what;
  ASSERT_EQ(a.last_day(), b.last_day()) << what;
  for (SimDay d = a.first_day(); d <= a.last_day(); ++d) {
    ASSERT_EQ(a.has(d), b.has(d)) << what << " day " << d;
    if (!a.has(d)) continue;
    const auto& sa = a.day_summary(d);
    const auto& sb = b.day_summary(d);
    EXPECT_EQ(sa.n, sb.n) << what << " day " << d;
    EXPECT_BITS_EQ(sa.mean, sb.mean) << what << " day " << d;
    EXPECT_BITS_EQ(sa.p10, sb.p10) << what << " day " << d;
    EXPECT_BITS_EQ(sa.p25, sb.p25) << what << " day " << d;
    EXPECT_BITS_EQ(sa.median, sb.median) << what << " day " << d;
    EXPECT_BITS_EQ(sa.p75, sb.p75) << what << " day " << d;
    EXPECT_BITS_EQ(sa.p90, sb.p90) << what << " day " << d;
  }
}

void expect_quality_identical(const telemetry::FeedQualityReport& a,
                              const telemetry::FeedQualityReport& b) {
  ASSERT_EQ(a.feeds().size(), b.feeds().size());
  for (std::size_t i = 0; i < a.feeds().size(); ++i) {
    const auto& fa = a.feeds()[i];
    const auto& fb = b.feeds()[i];
    EXPECT_EQ(fa.name, fb.name);
    EXPECT_EQ(fa.expected_records, fb.expected_records) << fa.name;
    EXPECT_EQ(fa.observed_records, fb.observed_records) << fa.name;
    EXPECT_EQ(fa.quarantined_records, fb.quarantined_records) << fa.name;
    EXPECT_EQ(fa.duplicate_records, fb.duplicate_records) << fa.name;
    ASSERT_EQ(fa.days.size(), fb.days.size()) << fa.name;
    auto ita = fa.days.begin();
    auto itb = fb.days.begin();
    for (; ita != fa.days.end(); ++ita, ++itb) {
      EXPECT_EQ(ita->first, itb->first) << fa.name;
      EXPECT_EQ(ita->second.expected, itb->second.expected)
          << fa.name << " day " << ita->first;
      EXPECT_EQ(ita->second.observed, itb->second.observed)
          << fa.name << " day " << ita->first;
    }
  }
}

// Every Dataset field, bit for bit. Substrate (geography/population/
// topology/policy) is built serially before the day loop from the same
// seed, so it is covered transitively: a divergent substrate would diverge
// everything below.
void expect_datasets_identical(const Dataset& a, const Dataset& b) {
  // Homes + Fig 2 validation.
  ASSERT_EQ(a.homes.size(), b.homes.size());
  for (std::size_t i = 0; i < a.homes.size(); ++i) {
    EXPECT_EQ(a.homes[i].user, b.homes[i].user) << i;
    EXPECT_EQ(a.homes[i].home_site, b.homes[i].home_site) << i;
    EXPECT_EQ(a.homes[i].home_district, b.homes[i].home_district) << i;
    EXPECT_EQ(a.homes[i].home_county, b.homes[i].home_county) << i;
    EXPECT_BITS_EQ(a.homes[i].night_hours, b.homes[i].night_hours) << i;
    EXPECT_EQ(a.homes[i].nights_observed, b.homes[i].nights_observed) << i;
  }
  ASSERT_EQ(a.home_validation.points.size(), b.home_validation.points.size());
  for (std::size_t i = 0; i < a.home_validation.points.size(); ++i) {
    EXPECT_EQ(a.home_validation.points[i].lad, b.home_validation.points[i].lad);
    EXPECT_EQ(a.home_validation.points[i].inferred_residents,
              b.home_validation.points[i].inferred_residents);
  }
  EXPECT_BITS_EQ(a.home_validation.fit.slope, b.home_validation.fit.slope);
  EXPECT_BITS_EQ(a.home_validation.fit.r_squared,
                 b.home_validation.fit.r_squared);

  // Mobility aggregates (Figs 3, 5, 6) and distribution bands.
  expect_grouped_identical(a.entropy_national, b.entropy_national, "entropy");
  expect_grouped_identical(a.gyration_national, b.gyration_national,
                           "gyration");
  expect_grouped_identical(a.entropy_by_region, b.entropy_by_region,
                           "entropy_by_region");
  expect_grouped_identical(a.gyration_by_region, b.gyration_by_region,
                           "gyration_by_region");
  expect_grouped_identical(a.entropy_by_cluster, b.entropy_by_cluster,
                           "entropy_by_cluster");
  expect_grouped_identical(a.gyration_by_cluster, b.gyration_by_cluster,
                           "gyration_by_cluster");
  expect_grouped_identical(a.entropy_by_bin, b.entropy_by_bin,
                           "entropy_by_bin");
  expect_grouped_identical(a.gyration_by_bin, b.gyration_by_bin,
                           "gyration_by_bin");
  expect_distribution_identical(a.gyration_distribution,
                                b.gyration_distribution, "gyration_dist");
  expect_distribution_identical(a.entropy_distribution, b.entropy_distribution,
                                "entropy_dist");

  // London relocation matrix (Fig 7).
  ASSERT_EQ(a.london_matrix != nullptr, b.london_matrix != nullptr);
  EXPECT_EQ(a.london_residents_tracked, b.london_residents_tracked);
  if (a.london_matrix != nullptr) {
    const SimDay first = a.config.first_day();
    const SimDay last = a.config.last_day();
    for (SimDay d = first; d <= last; ++d) {
      EXPECT_EQ(a.london_matrix->day_observations(d),
                b.london_matrix->day_observations(d))
          << d;
      for (const auto& county : a.geography->counties()) {
        EXPECT_BITS_EQ(a.london_matrix->presence(county.id, d),
                       b.london_matrix->presence(county.id, d))
            << "county " << county.id.value() << " day " << d;
      }
    }
  }

  // Network KPI rows (Fig 8..12 inputs): every field of every record.
  ASSERT_EQ(a.kpis.records().size(), b.kpis.records().size());
  for (std::size_t i = 0; i < a.kpis.records().size(); ++i) {
    const auto& ra = a.kpis.records()[i];
    const auto& rb = b.kpis.records()[i];
    ASSERT_EQ(ra.cell, rb.cell) << i;
    ASSERT_EQ(ra.day, rb.day) << i;
    for (int m = 0; m < telemetry::kKpiMetricCount; ++m) {
      EXPECT_BITS_EQ(
          telemetry::kpi_value(ra, static_cast<telemetry::KpiMetric>(m)),
          telemetry::kpi_value(rb, static_cast<telemetry::KpiMetric>(m)))
          << "record " << i << " metric "
          << telemetry::kpi_metric_name(static_cast<telemetry::KpiMetric>(m));
    }
  }

  // Signaling counters.
  ASSERT_EQ(a.signaling.days().size(), b.signaling.days().size());
  for (std::size_t i = 0; i < a.signaling.days().size(); ++i) {
    const auto& da = a.signaling.days()[i];
    const auto& db = b.signaling.days()[i];
    EXPECT_EQ(da.day, db.day);
    EXPECT_EQ(da.total, db.total) << "day " << da.day;
    EXPECT_EQ(da.failures, db.failures) << "day " << da.day;
  }

  // Quality ledger, interconnect diagnostics, scalars.
  expect_quality_identical(a.quality, b.quality);
  expect_series_identical(a.offnet_busy_hour_minutes,
                          b.offnet_busy_hour_minutes, "offnet_busy_hour");
  expect_series_identical(a.interconnect_busy_hour_loss_pct,
                          b.interconnect_busy_hour_loss_pct,
                          "interconnect_loss");
  expect_series_identical(a.roamers_active, b.roamers_active, "roamers");
  EXPECT_BITS_EQ(a.measured_lte_time_share, b.measured_lte_time_share);
  EXPECT_EQ(a.eligible_users, b.eligible_users);
}

// Small scale, small chunks: many chunks per day and (at 8 workers) more
// workers than chunks in flight, so the reorder window actually reorders.
ScenarioConfig matrix_config() {
  ScenarioConfig config = default_scenario();
  config.num_users = 2'500;
  config.seed = 987;
  config.user_chunk = 128;
  config.collect_binned_mobility = true;
  return config;
}

class ThreadMatrix : public ::testing::TestWithParam<int> {
 protected:
  // The single-worker run is the reference; computed once for the suite.
  static const Dataset& reference() {
    static const Dataset* serial = [] {
      auto config = matrix_config();
      config.worker_threads = 1;
      return new Dataset(run_scenario(config));
    }();
    return *serial;
  }
};

TEST_P(ThreadMatrix, DatasetBitIdenticalToSerial) {
  auto config = matrix_config();
  config.worker_threads = GetParam();
  const Dataset parallel = run_scenario(config);
  expect_datasets_identical(reference(), parallel);
}

INSTANTIATE_TEST_SUITE_P(Workers, ThreadMatrix, ::testing::Values(2, 3, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

// The same contract must hold when the measurement plane is degraded: the
// fault plan keys off (user, day, cell, hour) — never off which worker
// handled the record — so the quality ledger is part of the stable output.
TEST(ThreadMatrixFaulted, QualityLedgerAndDatasetBitIdentical) {
  ScenarioConfig config = default_scenario();
  config.num_users = 1'500;
  config.seed = 4242;
  config.user_chunk = 96;
  config.faults.signaling_outages_per_week = 1.0;
  config.faults.signaling_outage_mean_hours = 6.0;
  config.faults.observation_loss_rate = 0.02;
  config.faults.kpi_record_loss_rate = 0.01;
  config.faults.kpi_record_duplication_rate = 0.005;
  config.faults.cell_outage_daily_prob = 0.01;

  config.worker_threads = 1;
  const Dataset serial = run_scenario(config);
  config.worker_threads = 3;
  const Dataset parallel = run_scenario(config);
  ASSERT_FALSE(serial.quality.empty());
  expect_datasets_identical(serial, parallel);
}

// The digest draws the line the engine promises: the thread count is not
// scenario identity, the chunk grid is.
TEST(DeterminismContract, DigestExcludesThreadsIncludesChunk) {
  auto a = matrix_config();
  auto b = matrix_config();
  b.worker_threads = 32;
  EXPECT_EQ(config_digest(a), config_digest(b));
  b.user_chunk = a.user_chunk * 2;
  EXPECT_NE(config_digest(a), config_digest(b));
}

TEST(DeterminismContract, RejectsBadChunkSize) {
  auto config = matrix_config();
  config.user_chunk = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.user_chunk = (1u << 20) + 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace cellscope::sim
