// The determinism contract, enforced.
//
// ScenarioConfig::worker_threads is documented as a pure runtime knob: the
// chunked worker pool (sim/pool.h) reduces per-chunk buffers in chunk-index
// order, so a run's Dataset must be BIT-identical — not merely close —
// whatever the thread count. This suite runs the same scenario at 1, 2, 3
// and 8 workers and compares every Dataset field at the bit level, float
// fields included, clean and under measurement-plane faults. Any reduction
// reordered by a future change fails here first.
#include <gtest/gtest.h>

#include <string>

#include "sim/simulator.h"
#include "support/dataset_compare.h"

namespace cellscope::sim {
namespace {

using testsupport::expect_datasets_identical;

// Small scale, small chunks: many chunks per day and (at 8 workers) more
// workers than chunks in flight, so the reorder window actually reorders.
ScenarioConfig matrix_config() {
  ScenarioConfig config = default_scenario();
  config.num_users = 2'500;
  config.seed = 987;
  config.user_chunk = 128;
  config.collect_binned_mobility = true;
  return config;
}

class ThreadMatrix : public ::testing::TestWithParam<int> {
 protected:
  // The single-worker run is the reference; computed once for the suite.
  static const Dataset& reference() {
    static const Dataset* serial = [] {
      auto config = matrix_config();
      config.worker_threads = 1;
      return new Dataset(run_scenario(config));
    }();
    return *serial;
  }
};

TEST_P(ThreadMatrix, DatasetBitIdenticalToSerial) {
  auto config = matrix_config();
  config.worker_threads = GetParam();
  const Dataset parallel = run_scenario(config);
  expect_datasets_identical(reference(), parallel);
}

INSTANTIATE_TEST_SUITE_P(Workers, ThreadMatrix, ::testing::Values(2, 3, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

// The same contract must hold when the measurement plane is degraded: the
// fault plan keys off (user, day, cell, hour) — never off which worker
// handled the record — so the quality ledger is part of the stable output.
TEST(ThreadMatrixFaulted, QualityLedgerAndDatasetBitIdentical) {
  ScenarioConfig config = default_scenario();
  config.num_users = 1'500;
  config.seed = 4242;
  config.user_chunk = 96;
  config.faults.signaling_outages_per_week = 1.0;
  config.faults.signaling_outage_mean_hours = 6.0;
  config.faults.observation_loss_rate = 0.02;
  config.faults.kpi_record_loss_rate = 0.01;
  config.faults.kpi_record_duplication_rate = 0.005;
  config.faults.cell_outage_daily_prob = 0.01;

  config.worker_threads = 1;
  const Dataset serial = run_scenario(config);
  config.worker_threads = 3;
  const Dataset parallel = run_scenario(config);
  ASSERT_FALSE(serial.quality.empty());
  expect_datasets_identical(serial, parallel);
}

// The digest draws the line the engine promises: the thread count is not
// scenario identity, the chunk grid is.
TEST(DeterminismContract, DigestExcludesThreadsIncludesChunk) {
  auto a = matrix_config();
  auto b = matrix_config();
  b.worker_threads = 32;
  EXPECT_EQ(config_digest(a), config_digest(b));
  b.user_chunk = a.user_chunk * 2;
  EXPECT_NE(config_digest(a), config_digest(b));
}

// The conservation audit is passive bookkeeping: an audited run must
// produce the same Dataset, bit for bit, as an unaudited one — observing
// the run cannot change it. The audit flag, like worker_threads, stays out
// of the config digest for the same reason.
TEST(DeterminismContract, AuditedRunBitIdenticalToUnaudited) {
  auto config = matrix_config();
  config.worker_threads = 2;
  const Dataset plain = run_scenario(config);
  config.audit = true;
  const Dataset audited = run_scenario(config);
  EXPECT_GT(audited.audit_report.checks_evaluated(), 0u);
  EXPECT_TRUE(audited.audit_report.clean());
  expect_datasets_identical(plain, audited);
  EXPECT_EQ(config_digest(plain.config), config_digest(audited.config));
}

TEST(DeterminismContract, RejectsBadChunkSize) {
  auto config = matrix_config();
  config.user_chunk = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.user_chunk = (1u << 20) + 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace cellscope::sim
