// Scenario configuration and presets.
#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace cellscope::sim {
namespace {

TEST(Scenario, DefaultIsValid) {
  EXPECT_NO_THROW(default_scenario().validate());
  EXPECT_NO_THROW(smoke_scenario().validate());
}

TEST(Scenario, DefaultCoversThePaperWindow) {
  const auto config = default_scenario();
  EXPECT_EQ(config.first_week, 6);   // February warm-up
  EXPECT_EQ(config.last_week, 19);   // mid-May
  EXPECT_EQ(config.kpi_first_week, 9);
  EXPECT_TRUE(config.collect_kpis);
  EXPECT_NEAR(config.lte_time_share, 0.75, 1e-9);  // Section 2.4
}

TEST(Scenario, DayHelpers) {
  const auto config = default_scenario();
  EXPECT_EQ(config.first_day(), week_start_day(6));
  EXPECT_EQ(config.last_day(), week_start_day(19) + 6);
  EXPECT_EQ(config.kpi_first_day(), week_start_day(9));
  EXPECT_EQ(iso_week(config.last_day()), 19);
}

TEST(Scenario, SmokeIsSmallerThanDefault) {
  EXPECT_LT(smoke_scenario().num_users, default_scenario().num_users);
}

TEST(Scenario, ValidationRejectsBadWindows) {
  auto config = default_scenario();
  config.last_week = config.first_week - 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = default_scenario();
  config.first_week = kEpochIsoWeek - 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = default_scenario();
  config.kpi_first_week = config.last_week + 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Scenario, ValidationRejectsBadScale) {
  auto config = default_scenario();
  config.num_users = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = default_scenario();
  config.lte_time_share = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.lte_time_share = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace cellscope::sim
