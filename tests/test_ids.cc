// Strong identifier semantics.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/ids.h"

namespace cellscope {
namespace {

TEST(StrongId, DefaultConstructedIsInvalid) {
  UserId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, UserId::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  CellId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(SiteId{1}, SiteId{2});
  EXPECT_EQ(SiteId{7}, SiteId{7});
  EXPECT_NE(SiteId{7}, SiteId{8});
  EXPECT_GE(SiteId{9}, SiteId{9});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<UserId, CellId>);
  static_assert(!std::is_same_v<CountyId, RegionId>);
  static_assert(!std::is_convertible_v<UserId, CellId>);
}

TEST(StrongId, NotImplicitlyConstructibleFromInt) {
  static_assert(!std::is_convertible_v<std::uint32_t, UserId>);
  static_assert(std::is_constructible_v<UserId, std::uint32_t>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<UserId> set;
  set.insert(UserId{1});
  set.insert(UserId{2});
  set.insert(UserId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(UserId{2}));
  EXPECT_FALSE(set.contains(UserId{3}));
}

TEST(StrongId, InvalidComparesUnequalToRealIds) {
  for (std::uint32_t v : {0u, 1u, 1000000u})
    EXPECT_NE(PostcodeDistrictId{v}, PostcodeDistrictId::invalid());
}

TEST(StrongId, CopySemantics) {
  LadId a{5};
  LadId b = a;
  EXPECT_EQ(a, b);
  b = LadId{6};
  EXPECT_NE(a, b);
  EXPECT_EQ(a.value(), 5u);
}

}  // namespace
}  // namespace cellscope
