// Golden-figure regression fixtures.
//
// A small scenario is rendered into the paper's two headline figure shapes
// — Fig 3 (national mobility deltas) and Fig 8 (regional network KPI
// deltas) — serialized with full double precision (%.17g) and compared
// BYTE-exactly against the CSVs committed under tests/golden/. With the
// engine's determinism contract (bit-identical Datasets for any
// worker_threads, -ffp-contract=off pinned globally) the comparison is
// exact across build types and sanitizers; any bit drift in the models, the
// RNG stream layout or the reduction order fails this test before it can
// silently move a published figure.
//
// Regenerating (ONLY after an intentional model or reduction change, with
// the diff reviewed like source):
//
//   CELLSCOPE_UPDATE_GOLDEN=1 ./build/tests/test_golden_figures
//
// rewrites tests/golden/*.csv in the source tree; commit the result. The
// fixtures are generated on the machine that commits them — cross-machine
// libm differences would show up here as a full-file diff, not a bug.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/simulator.h"
#include "support/figure_csv.h"

namespace cellscope::sim {
namespace {

using testsupport::fig03_csv;
using testsupport::fig08_csv;
using testsupport::golden_config;

std::string golden_path(const std::string& name) {
  return std::string(CELLSCOPE_GOLDEN_DIR) + "/" + name;
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (const char* update = std::getenv("CELLSCOPE_UPDATE_GOLDEN");
      update != nullptr && update[0] != '\0' && update[0] != '0') {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden updated: " << path << " (" << actual.size()
                 << " bytes) — review and commit the diff";
  }
  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in.good())
      << "missing golden fixture " << path
      << " — generate with CELLSCOPE_UPDATE_GOLDEN=1 and commit it";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << name
      << " drifted from its golden fixture. If the change is intentional, "
         "regenerate with CELLSCOPE_UPDATE_GOLDEN=1 and commit the diff.";
}

class GoldenFigures : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new Dataset(run_scenario(golden_config()));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static const Dataset& data() { return *data_; }

 private:
  static const Dataset* data_;
};
const Dataset* GoldenFigures::data_ = nullptr;

TEST_F(GoldenFigures, Fig03NationalMobilityMatchesByteExactly) {
  check_golden("fig03_national_mobility.csv", fig03_csv(data()));
}

TEST_F(GoldenFigures, Fig08NetworkKpisMatchesByteExactly) {
  check_golden("fig08_network_kpis.csv", fig08_csv(data()));
}

}  // namespace
}  // namespace cellscope::sim
