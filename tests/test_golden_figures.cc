// Golden-figure regression fixtures.
//
// A small scenario is rendered into the paper's two headline figure shapes
// — Fig 3 (national mobility deltas) and Fig 8 (regional network KPI
// deltas) — serialized with full double precision (%.17g) and compared
// BYTE-exactly against the CSVs committed under tests/golden/. With the
// engine's determinism contract (bit-identical Datasets for any
// worker_threads, -ffp-contract=off pinned globally) the comparison is
// exact across build types and sanitizers; any bit drift in the models, the
// RNG stream layout or the reduction order fails this test before it can
// silently move a published figure.
//
// Regenerating (ONLY after an intentional model or reduction change, with
// the diff reviewed like source):
//
//   CELLSCOPE_UPDATE_GOLDEN=1 ./build/tests/test_golden_figures
//
// rewrites tests/golden/*.csv in the source tree; commit the result. The
// fixtures are generated on the machine that commits them — cross-machine
// libm differences would show up here as a full-file diff, not a bug.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/network_metrics.h"
#include "sim/simulator.h"

namespace cellscope::sim {
namespace {

// Small but non-trivial: ~17 sites, two workers, a chunk grid with several
// chunks — the golden bytes cover the parallel engine, not a toy path.
ScenarioConfig golden_config() {
  ScenarioConfig config = default_scenario();
  config.num_users = 2'000;
  config.seed = 20'200'407;
  config.user_chunk = 512;
  config.worker_threads = 2;
  config.topology.users_per_site = 120.0;
  config.collect_signaling = false;
  return config;
}

std::string fmt(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// Fig 3: per-day % change of national gyration/entropy vs the week-9 mean.
std::string fig03_csv(const Dataset& data) {
  std::ostringstream out;
  out << "day,gyration_delta_pct,entropy_delta_pct\n";
  const auto gyration =
      data.gyration_national.daily_delta(0, data.gyration_baseline());
  const auto entropy =
      data.entropy_national.daily_delta(0, data.entropy_baseline());
  EXPECT_EQ(gyration.size(), entropy.size());
  for (std::size_t i = 0; i < gyration.size() && i < entropy.size(); ++i) {
    EXPECT_EQ(gyration[i].day, entropy[i].day);
    out << gyration[i].day << ',' << fmt(gyration[i].value) << ','
        << fmt(entropy[i].value) << '\n';
  }
  return out.str();
}

// Fig 8: weekly-median % change per KPI metric and region group.
std::string fig08_csv(const Dataset& data) {
  static constexpr telemetry::KpiMetric kMetrics[] = {
      telemetry::KpiMetric::kDlVolume,
      telemetry::KpiMetric::kUlVolume,
      telemetry::KpiMetric::kActiveDlUsers,
      telemetry::KpiMetric::kTtiUtilization,
      telemetry::KpiMetric::kUserDlThroughput,
      telemetry::KpiMetric::kVoiceVolume,
  };
  const auto grouping =
      analysis::group_by_region(*data.geography, *data.topology);
  std::ostringstream out;
  out << "metric,group,week,delta_pct\n";
  for (const auto metric : kMetrics) {
    const analysis::KpiGroupSeries series{data.kpis, grouping, metric};
    for (std::size_t g = 0; g < series.group_count(); ++g) {
      for (const auto& point : series.weekly_delta(g, 9, 9, 19)) {
        out << telemetry::kpi_metric_name(metric) << ',' << grouping.names[g]
            << ',' << point.week << ',' << fmt(point.value) << '\n';
      }
    }
  }
  return out.str();
}

std::string golden_path(const std::string& name) {
  return std::string(CELLSCOPE_GOLDEN_DIR) + "/" + name;
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (const char* update = std::getenv("CELLSCOPE_UPDATE_GOLDEN");
      update != nullptr && update[0] != '\0' && update[0] != '0') {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden updated: " << path << " (" << actual.size()
                 << " bytes) — review and commit the diff";
  }
  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in.good())
      << "missing golden fixture " << path
      << " — generate with CELLSCOPE_UPDATE_GOLDEN=1 and commit it";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << name
      << " drifted from its golden fixture. If the change is intentional, "
         "regenerate with CELLSCOPE_UPDATE_GOLDEN=1 and commit the diff.";
}

class GoldenFigures : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new Dataset(run_scenario(golden_config()));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static const Dataset& data() { return *data_; }

 private:
  static const Dataset* data_;
};
const Dataset* GoldenFigures::data_ = nullptr;

TEST_F(GoldenFigures, Fig03NationalMobilityMatchesByteExactly) {
  check_golden("fig03_national_mobility.csv", fig03_csv(data()));
}

TEST_F(GoldenFigures, Fig08NetworkKpisMatchesByteExactly) {
  check_golden("fig08_network_kpis.csv", fig08_csv(data()));
}

}  // namespace
}  // namespace cellscope::sim
