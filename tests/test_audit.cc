// The conservation audit, audited.
//
// Two halves. The property half: clean runs — any seed, faults on or off,
// audited in-process or post-hoc — must produce a report with zero
// violations and nonzero checks under every registered law. The mutation
// half: for each law, corrupt exactly one accumulator the law closes over
// and prove the audit fires — under that law and ONLY that law. A check
// that cannot fail is not a check, so every law earns its place here by
// catching its own planted bug.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "audit/laws.h"
#include "audit/report.h"
#include "sim/dataset_audit.h"
#include "sim/simulator.h"
#include "store/dataset_io.h"
#include "store/format.h"

namespace cellscope::audit {
namespace {

// Every dataset-side law the in-process audit must exercise on a clean
// run (store-reconcile lives in the store layer and is tested below).
constexpr const char* kDatasetLaws[] = {
    "kpi-partition",   "kpi-aggregation",   "kpi-range",
    "voice-accounting", "quality-closure",  "signaling-balance",
    "mobility-range",
};

void expect_clean_with_all_laws(const AuditReport& report) {
  EXPECT_TRUE(report.clean());
  for (const AuditViolation& v : report.violations())
    ADD_FAILURE() << "[" << v.law << "] " << v.subject << ": " << v.detail;
  EXPECT_GT(report.checks_evaluated(), 0u);
  for (const char* law : kDatasetLaws)
    EXPECT_GT(report.checks_for(law), 0u) << law << " never ran";
}

// A single violation, and no collateral reports under any other law.
void expect_only_law_fired(const AuditReport& report, std::string_view law,
                           std::uint64_t count = 1) {
  EXPECT_EQ(report.violations_for(law), count);
  EXPECT_EQ(report.violations().size(), count)
      << "a law other than " << law << " also fired";
}

// ---------------------------------------------------------------- clean

sim::ScenarioConfig audited_smoke(std::uint64_t seed) {
  sim::ScenarioConfig config = sim::smoke_scenario();
  config.seed = seed;
  config.audit = true;
  return config;
}

TEST(AuditClean, InProcessAuditHoldsAcrossSeeds) {
  for (const std::uint64_t seed : {1u, 99u}) {
    const sim::Dataset ds = sim::run_scenario(audited_smoke(seed));
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_clean_with_all_laws(ds.audit_report);
  }
}

TEST(AuditClean, FaultedRunStillSatisfiesEveryLaw) {
  // The laws close over model-side quantities and gap-excluded telemetry,
  // so measurement-plane damage must not read as a conservation failure.
  sim::ScenarioConfig config = audited_smoke(31337);
  config.faults.signaling_outages_per_week = 1.0;
  config.faults.signaling_outage_mean_hours = 6.0;
  config.faults.observation_loss_rate = 0.05;
  config.faults.kpi_record_loss_rate = 0.02;
  config.faults.kpi_record_duplication_rate = 0.01;
  config.faults.cell_outage_daily_prob = 0.02;
  const sim::Dataset ds = sim::run_scenario(config);
  ASSERT_FALSE(ds.quality.empty());
  expect_clean_with_all_laws(ds.audit_report);
}

TEST(AuditClean, PostHocAuditMatchesInProcess) {
  // Auditing a finished Dataset must evaluate exactly the checks the
  // in-process hooks evaluated: both walk the same day runs.
  const sim::Dataset ds = sim::run_scenario(audited_smoke(7));
  const AuditReport post_hoc = sim::audit_dataset(ds);
  expect_clean_with_all_laws(post_hoc);
  for (const char* law : kDatasetLaws)
    EXPECT_EQ(post_hoc.checks_for(law), ds.audit_report.checks_for(law))
        << law;
}

TEST(AuditClean, UnauditedRunRecordsNoChecks) {
  sim::ScenarioConfig config = audited_smoke(7);
  config.audit = false;
  const sim::Dataset ds = sim::run_scenario(config);
  EXPECT_EQ(ds.audit_report.checks_evaluated(), 0u);
  EXPECT_TRUE(ds.audit_report.clean());
}

// ------------------------------------------------------ mutation matrix

// A two-region partition over three cells, for law-level mutations that
// need no simulated topology.
analysis::CellGrouping tiny_partition() {
  analysis::CellGrouping partition;
  partition.names = {"north", "south"};
  partition.group_of = {0, 0, 1};
  return partition;
}

telemetry::CellDayRecord clean_row(std::uint32_t cell, SimDay day) {
  telemetry::CellDayRecord row;
  row.cell = CellId{cell};
  row.day = day;
  row.dl_volume_mb = 100.0;
  row.ul_volume_mb = 10.0;
  row.active_dl_users = 5.0;
  row.tti_utilization = 0.5;
  row.user_dl_throughput_mbps = 20.0;
  row.active_data_seconds = 1000.0;
  row.connected_users = 40.0;
  row.voice_volume_mb = 8.0;
  row.simultaneous_voice_users = 2.0;
  row.voice_dl_loss_pct = 0.1;
  row.voice_ul_loss_pct = 0.1;
  return row;
}

MetricBounds tiny_bounds() {
  MetricBounds bounds;
  bounds.entropy_max = 3.0;
  return bounds;
}

TEST(AuditMutation, CleanRowsPassTheDayChecks) {
  AuditReport report;
  const std::vector<telemetry::CellDayRecord> rows = {
      clean_row(0, 5), clean_row(1, 5), clean_row(2, 5)};
  check_kpi_day(5, rows, tiny_partition(), tiny_bounds(), report);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.checks_for("kpi-range"), 0u);
  EXPECT_GT(report.checks_for("kpi-partition"), 0u);
}

TEST(AuditMutation, OutOfRangeTtiTripsKpiRangeOnly) {
  AuditReport report;
  std::vector<telemetry::CellDayRecord> rows = {clean_row(0, 5),
                                                clean_row(1, 5)};
  rows[1].tti_utilization = 1.5;  // a scheduler cannot use 150% of its TTIs
  check_kpi_day(5, rows, tiny_partition(), tiny_bounds(), report);
  expect_only_law_fired(report, "kpi-range");
  EXPECT_NE(report.violations()[0].detail.find("tti_utilization"),
            std::string::npos);
}

TEST(AuditMutation, NaNVolumeTripsKpiRangeOnly) {
  AuditReport report;
  std::vector<telemetry::CellDayRecord> rows = {clean_row(0, 5)};
  rows[0].dl_volume_mb = std::numeric_limits<double>::quiet_NaN();
  check_kpi_day(5, rows, tiny_partition(), tiny_bounds(), report);
  expect_only_law_fired(report, "kpi-range");
}

TEST(AuditMutation, UnpartitionedCellTripsKpiPartitionOnly) {
  AuditReport report;
  // Cell 9 exists in no region: a row the regional sums would silently
  // drop, which is exactly the loss the partition law exists to catch.
  const std::vector<telemetry::CellDayRecord> rows = {clean_row(0, 5),
                                                      clean_row(9, 5)};
  check_kpi_day(5, rows, tiny_partition(), tiny_bounds(), report);
  expect_only_law_fired(report, "kpi-partition");
}

TEST(AuditMutation, MisfiledDayTripsKpiPartitionOnly) {
  AuditReport report;
  const std::vector<telemetry::CellDayRecord> rows = {clean_row(0, 6)};
  check_kpi_day(5, rows, tiny_partition(), tiny_bounds(), report);
  expect_only_law_fired(report, "kpi-partition");
}

TEST(AuditMutation, SplitDayRunTripsKpiAggregationOnly) {
  // A day's rows split across two runs (a corrupted store ordering): the
  // analysis reduction keeps only the last run, the direct scan sees both,
  // and the cross-layer comparison must notice the disagreement.
  telemetry::KpiStore kpis;
  telemetry::CellDayRecord first = clean_row(0, 5);
  telemetry::CellDayRecord second = clean_row(1, 5);
  second.dl_volume_mb = 50.0;
  second.connected_users = 10.0;
  second.voice_volume_mb = 1.0;
  kpis.add_day({first, clean_row(2, 6), second});
  AuditReport report;
  check_kpi_aggregation(kpis, tiny_partition(), report);
  EXPECT_GT(report.violations_for("kpi-aggregation"), 0u);
  EXPECT_EQ(report.violations().size(),
            report.violations_for("kpi-aggregation"));
}

TEST(AuditMutation, CleanKpiStorePassesAggregation) {
  telemetry::KpiStore kpis;
  kpis.add_day({clean_row(0, 5), clean_row(1, 5), clean_row(2, 5)});
  kpis.add_day({clean_row(0, 6), clean_row(2, 6)});
  AuditReport report;
  check_kpi_aggregation(kpis, tiny_partition(), report);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.checks_for("kpi-aggregation"), 0u);
}

TEST(AuditMutation, UnclassifiedAttemptTripsVoiceAccountingOnly) {
  traffic::VoiceCallLedger ledger;
  // 10 attempts, 9 classified: one call vanished between the voice model
  // and the interconnect.
  ledger.record_day({5, 10, 7, 1, 1});
  AuditReport report;
  check_voice_accounting(ledger, report);
  expect_only_law_fired(report, "voice-accounting");
}

TEST(AuditMutation, OutOfOrderLedgerTripsVoiceAccountingOnly) {
  traffic::VoiceCallLedger ledger;
  ledger.record_day({6, 10, 10, 0, 0});
  ledger.record_day({5, 10, 10, 0, 0});
  AuditReport report;
  check_voice_accounting(ledger, report);
  expect_only_law_fired(report, "voice-accounting");
}

TEST(AuditMutation, CleanLedgerPassesVoiceAccounting) {
  traffic::VoiceCallLedger ledger;
  ledger.record_day({5, 10, 8, 1, 1});
  ledger.record_day({6, 4, 4, 0, 0});
  AuditReport report;
  check_voice_accounting(ledger, report);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.checks_for("voice-accounting"), 0u);
}

TEST(AuditMutation, DoctoredFeedTotalTripsQualityClosureOnly) {
  telemetry::FeedQualityReport quality;
  quality.expect("kpi", 5, 10);
  quality.observe("kpi", 5, 8);
  // Inflate the feed total without touching the per-day ledger: the
  // generated = delivered + lost closure no longer closes.
  quality.feed("kpi").observed_records += 5;
  AuditReport report;
  check_quality_closure(quality, report);
  expect_only_law_fired(report, "quality-closure");
}

TEST(AuditMutation, OverDeliveredDayTripsQualityClosureOnly) {
  telemetry::FeedQualityReport quality;
  quality.expect("signaling", 3, 4);
  quality.observe("signaling", 3, 6);  // more rows delivered than generated
  AuditReport report;
  check_quality_closure(quality, report);
  expect_only_law_fired(report, "quality-closure");
}

TEST(AuditMutation, UnbalancedEventPairTripsSignalingBalanceOnly) {
  telemetry::SignalingProbe probe;
  telemetry::DailySignalingCounts day;
  day.day = 3;
  using traffic::SignalingEventType;
  day.total[static_cast<std::size_t>(SignalingEventType::kAttach)] = 10;
  // 9 authentications for 10 attaches: one attach skipped AKA.
  day.total[static_cast<std::size_t>(SignalingEventType::kAuthentication)] =
      9;
  day.total[static_cast<std::size_t>(
      SignalingEventType::kSessionEstablishment)] = 10;
  probe.restore_day(day);
  AuditReport report;
  check_signaling_balance(probe, report);
  expect_only_law_fired(report, "signaling-balance");
}

TEST(AuditMutation, FailuresAboveTotalTripSignalingBalanceOnly) {
  telemetry::SignalingProbe probe;
  telemetry::DailySignalingCounts day;
  day.day = 3;
  using traffic::SignalingEventType;
  constexpr auto kHandover =
      static_cast<std::size_t>(SignalingEventType::kHandover);
  day.total[kHandover] = 4;
  day.failures[kHandover] = 7;
  probe.restore_day(day);
  AuditReport report;
  check_signaling_balance(probe, report);
  expect_only_law_fired(report, "signaling-balance");
}

TEST(AuditMutation, EntropyAboveLogSitesTripsMobilityRangeOnly) {
  analysis::GroupedDailySeries entropy(1, 0, 2);
  analysis::GroupedDailySeries gyration(1, 0, 2);
  entropy.add(0, 1, tiny_bounds().entropy_max + 0.5);
  gyration.add(0, 1, 4.0);
  AuditReport report;
  check_mobility_ranges(entropy, gyration, {}, {}, tiny_bounds(), report);
  expect_only_law_fired(report, "mobility-range");
}

TEST(AuditMutation, NegativeGyrationTripsMobilityRangeOnly) {
  analysis::GroupedDailySeries entropy(1, 0, 2);
  analysis::GroupedDailySeries gyration(1, 0, 2);
  entropy.add(0, 1, 1.0);
  gyration.add(0, 1, -0.5);  // a radius cannot be negative
  AuditReport report;
  check_mobility_ranges(entropy, gyration, {}, {}, tiny_bounds(), report);
  expect_only_law_fired(report, "mobility-range");
}

TEST(AuditMutation, DisorderedPercentileBandTripsMobilityRangeOnly) {
  analysis::DistributionSeries dist(0, 2);
  stats::Summary summary;
  summary.n = 10;
  summary.mean = 1.0;
  summary.p10 = 2.0;  // p10 above p25: bands out of order
  summary.p25 = 1.0;
  summary.median = 1.2;
  summary.p75 = 1.5;
  summary.p90 = 1.8;
  dist.restore_day(1, summary);
  AuditReport report;
  analysis::GroupedDailySeries none;
  check_mobility_ranges(none, none, dist, {}, tiny_bounds(), report);
  expect_only_law_fired(report, "mobility-range");
}

// --------------------------------------- checkpoint-consistency (resume)
//
// This law only runs for RESUMED runs (it is gated on Dataset::recovery in
// sim/dataset_audit.cc, and deliberately absent from kDatasetLaws above —
// a fresh run has no restore point to reconcile). The clean-path + law
// coverage over a real resumed simulation lives in test_determinism; here
// the mutation half proves each of its three checks fires.

struct ResumeLedgers {
  telemetry::KpiStore kpis;
  traffic::VoiceCallLedger voice;
  telemetry::SignalingProbe signaling;
};

// Final ledgers of a run resumed after day 5: the prefix (days <= 5) holds
// 2 KPI rows, 10 voice attempts and 1 signaling day.
ResumeLedgers resumed_ledgers() {
  ResumeLedgers ledgers;
  ledgers.kpis.add_day({clean_row(0, 5), clean_row(1, 5)});
  ledgers.kpis.add_day({clean_row(0, 6)});
  ledgers.voice.record_day({5, 10, 8, 1, 1});
  ledgers.voice.record_day({6, 4, 4, 0, 0});
  telemetry::DailySignalingCounts d5;
  d5.day = 5;
  ledgers.signaling.restore_day(d5);
  telemetry::DailySignalingCounts d6;
  d6.day = 6;
  ledgers.signaling.restore_day(d6);
  return ledgers;
}

TEST(AuditMutation, CleanResumeRecordPassesCheckpointConsistency) {
  const ResumeLedgers ledgers = resumed_ledgers();
  AuditReport report;
  check_checkpoint_consistency(5, 2, 10, 1, ledgers.kpis, ledgers.voice,
                               ledgers.signaling, report);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.checks_for("checkpoint-consistency"), 0u);
}

TEST(AuditMutation, ReplayedKpiDayTripsCheckpointConsistencyOnly) {
  // The restore recorded 1 row but the final prefix holds 2: the resumed
  // run re-simulated a checkpointed day and double-counted its rows.
  const ResumeLedgers ledgers = resumed_ledgers();
  AuditReport report;
  check_checkpoint_consistency(5, 1, 10, 1, ledgers.kpis, ledgers.voice,
                               ledgers.signaling, report);
  expect_only_law_fired(report, "checkpoint-consistency");
}

TEST(AuditMutation, LostVoiceAttemptsTripCheckpointConsistencyOnly) {
  // The restore held 14 attempts but the final prefix only sums to 10:
  // the resume dropped checkpointed voice days on the floor.
  const ResumeLedgers ledgers = resumed_ledgers();
  AuditReport report;
  check_checkpoint_consistency(5, 2, 14, 1, ledgers.kpis, ledgers.voice,
                               ledgers.signaling, report);
  expect_only_law_fired(report, "checkpoint-consistency");
}

TEST(AuditMutation, SignalingDayCountMismatchTripsCheckpointConsistencyOnly) {
  const ResumeLedgers ledgers = resumed_ledgers();
  AuditReport report;
  check_checkpoint_consistency(5, 2, 10, 2, ledgers.kpis, ledgers.voice,
                               ledgers.signaling, report);
  expect_only_law_fired(report, "checkpoint-consistency");
}

// ------------------------------------------------- store reconciliation

sim::ScenarioConfig store_config() {
  sim::ScenarioConfig config = sim::default_scenario();
  config.num_users = 600;
  config.seed = 77;
  config.user_chunk = 128;
  return config;
}

std::string fresh_store(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "cellstore_audit_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(AuditStore, PristineStoreReconciles) {
  const std::string dir = fresh_store("clean");
  (void)store::simulate_to_store(store_config(), dir);
  const AuditReport report = store::audit_store(dir);
  EXPECT_TRUE(report.clean());
  for (const AuditViolation& v : report.violations())
    ADD_FAILURE() << v.subject << ": " << v.detail;
  EXPECT_GT(report.checks_for("store-reconcile"), 0u);
}

TEST(AuditStore, FlippedFeedByteTripsStoreReconcileOnly) {
  const std::string dir = fresh_store("flip");
  (void)store::simulate_to_store(store_config(), dir);
  const std::string path = dir + "/" + store::feed_file_name("kpis");
  const auto size = std::filesystem::file_size(path);
  std::fstream file{path, std::ios::in | std::ios::out | std::ios::binary};
  ASSERT_TRUE(file.good());
  file.seekg(static_cast<std::streamoff>(size / 2));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);  // xor so the byte always changes
  file.seekp(static_cast<std::streamoff>(size / 2));
  file.write(&byte, 1);
  file.close();
  const AuditReport report = store::audit_store(dir);
  EXPECT_FALSE(report.clean());
  EXPECT_GT(report.violations_for("store-reconcile"), 0u);
  EXPECT_EQ(report.violations().size(),
            report.violations_for("store-reconcile"));
}

TEST(AuditStore, DoctoredManifestRowCountTripsStoreReconcileOnly) {
  const std::string dir = fresh_store("rows");
  (void)store::simulate_to_store(store_config(), dir);
  // Rewrite the writer's physical accounting: claim one extra row.
  const std::string manifest_path =
      dir + "/" + std::string(store::kManifestFile);
  std::ifstream in{manifest_path};
  std::ostringstream doctored;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("rows=", 0) == 0) {
      const std::uint64_t rows = std::strtoull(line.c_str() + 5, nullptr, 10);
      doctored << "rows=" << rows + 1 << "\n";
    } else {
      doctored << line << "\n";
    }
  }
  in.close();
  std::ofstream{manifest_path, std::ios::trunc} << doctored.str();
  const AuditReport report = store::audit_store(dir);
  expect_only_law_fired(report, "store-reconcile");
  EXPECT_EQ(report.violations()[0].subject, "rows");
}

TEST(AuditStore, DeletedFeedTripsStoreReconcile) {
  const std::string dir = fresh_store("deleted");
  (void)store::simulate_to_store(store_config(), dir);
  ASSERT_TRUE(
      std::filesystem::remove(dir + "/" + store::feed_file_name("voice")));
  const AuditReport report = store::audit_store(dir);
  EXPECT_GT(report.violations_for("store-reconcile"), 0u);
}

TEST(AuditStore, MissingManifestIsAViolationNotACrash) {
  const AuditReport report = store::audit_store(fresh_store("void"));
  expect_only_law_fired(report, "store-reconcile");
}

// ------------------------------------------------------- report plumbing

TEST(AuditReportTest, CountsAndMergeAccumulate) {
  AuditReport a;
  a.add_checks("kpi-range", 3);
  a.add_violation({"kpi-range", "cell 1", 1.0, 2.0, "bad"});
  AuditReport b;
  b.add_checks("kpi-range", 2);
  b.add_checks("voice-accounting");
  a.merge(b);
  EXPECT_EQ(a.checks_evaluated(), 6u);
  EXPECT_EQ(a.checks_for("kpi-range"), 5u);
  EXPECT_EQ(a.violations_for("kpi-range"), 1u);
  EXPECT_EQ(a.checks_for("voice-accounting"), 1u);
  EXPECT_FALSE(a.clean());
  ASSERT_EQ(a.laws().size(), 2u);
  EXPECT_EQ(a.laws()[0].law, "kpi-range");  // registration order
}

TEST(AuditReportTest, JsonAndCsvCarryTheViolation) {
  AuditReport report;
  report.add_checks("voice-accounting", 4);
  report.add_violation({"voice-accounting", "day 12", 10.0, 9.0,
                        "attempts != completed + blocked + dropped"});
  std::ostringstream json;
  report.write_json(json);
  EXPECT_NE(json.str().find("\"schema\": \"cellscope-audit-report/1\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"clean\": false"), std::string::npos);
  EXPECT_NE(json.str().find("\"subject\": \"day 12\""), std::string::npos);
  std::ostringstream csv;
  report.write_csv(csv);
  EXPECT_NE(csv.str().find("law,subject,expected,actual,detail"),
            std::string::npos);
  EXPECT_NE(csv.str().find("\"voice-accounting\",\"day 12\",10,9"),
            std::string::npos);
}

TEST(AuditReportTest, PrintSummarizesPerLaw) {
  AuditReport report;
  report.add_checks("mobility-range", 2);
  std::ostringstream out;
  report.print(out);
  EXPECT_NE(out.str().find("2 checks, 0 violation(s)"), std::string::npos);
}

}  // namespace
}  // namespace cellscope::audit
