// The store replay contract, enforced.
//
// simulate-once / replay-many only works if a replayed Dataset is the
// same object as the live one — not approximately, but bit for bit on
// every field, for clean and fault-injected scenarios, at any
// worker_threads. This suite writes datasets through both the streaming
// sink and the materialized path, reads them back, and runs the same
// bit-level comparison the thread-matrix determinism suite uses. It then
// closes the loop on the golden fixtures: figures rendered from a
// replayed dataset must be byte-identical to the committed CSVs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/simulator.h"
#include "store/dataset_io.h"
#include "store/format.h"
#include "support/dataset_compare.h"
#include "support/figure_csv.h"

namespace cellscope::store {
namespace {

using sim::testsupport::expect_datasets_identical;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "cellstore_replay_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Small scale, small chunks, binned mobility on: the same shape the
// thread-matrix suite uses, so every Dataset container is exercised.
sim::ScenarioConfig replay_config() {
  sim::ScenarioConfig config = sim::default_scenario();
  config.num_users = 2'000;
  config.seed = 555;
  config.user_chunk = 128;
  config.collect_binned_mobility = true;
  return config;
}

// Measurement-plane faults on: the quality ledger and the fault-shaped
// KPI stream must survive the round trip too.
sim::ScenarioConfig faulted_config() {
  sim::ScenarioConfig config = sim::default_scenario();
  config.num_users = 1'500;
  config.seed = 4242;
  config.user_chunk = 96;
  config.faults.signaling_outages_per_week = 1.0;
  config.faults.signaling_outage_mean_hours = 6.0;
  config.faults.observation_loss_rate = 0.02;
  config.faults.kpi_record_loss_rate = 0.01;
  config.faults.kpi_record_duplication_rate = 0.005;
  config.faults.cell_outage_daily_prob = 0.01;
  return config;
}

class CleanThreads : public ::testing::TestWithParam<int> {};

TEST_P(CleanThreads, RoundTripIsBitIdentical) {
  sim::ScenarioConfig config = replay_config();
  config.worker_threads = GetParam();
  const std::string dir =
      fresh_dir("clean_t" + std::to_string(GetParam()));
  const sim::Dataset live = simulate_to_store(config, dir);

  const ReadOutcome outcome = read_dataset(dir, config);
  ASSERT_EQ(outcome.status, ReadOutcome::Status::kOk) << outcome.error;
  ASSERT_TRUE(outcome.dataset.has_value());
  EXPECT_TRUE(outcome.complete());
  EXPECT_EQ(outcome.shards_quarantined, 0u);
  EXPECT_GT(outcome.rows_read, 0u);
  EXPECT_GT(outcome.bytes_read, 0u);
  expect_datasets_identical(live, *outcome.dataset);
}

INSTANTIATE_TEST_SUITE_P(Workers, CleanThreads, ::testing::Values(1, 3),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(StoreReplay, FaultedRoundTripIsBitIdentical) {
  sim::ScenarioConfig config = faulted_config();
  config.worker_threads = 3;
  const std::string dir = fresh_dir("faulted");
  const sim::Dataset live = simulate_to_store(config, dir);
  ASSERT_FALSE(live.quality.empty());

  const ReadOutcome outcome = read_dataset(dir, config);
  ASSERT_EQ(outcome.status, ReadOutcome::Status::kOk) << outcome.error;
  ASSERT_TRUE(outcome.dataset.has_value());
  expect_datasets_identical(live, *outcome.dataset);
}

// The streaming sink (shards flushed while the simulation runs) and the
// materialized write (whole dataset at finish) must produce the same
// store — same bytes on disk, same dataset back.
TEST(StoreReplay, StreamedAndMaterializedWritesAreByteIdentical) {
  const sim::ScenarioConfig config = replay_config();
  const std::string streamed_dir = fresh_dir("streamed");
  const std::string materialized_dir = fresh_dir("materialized");

  const sim::Dataset live = simulate_to_store(config, streamed_dir);
  write_dataset(live, materialized_dir);

  for (const auto& feed : dataset_feeds()) {
    const std::string name = feed_file_name(feed);
    EXPECT_EQ(slurp(streamed_dir + "/" + name),
              slurp(materialized_dir + "/" + name))
        << name;
  }
  const ReadOutcome outcome = read_dataset(materialized_dir, config);
  ASSERT_EQ(outcome.status, ReadOutcome::Status::kOk) << outcome.error;
  expect_datasets_identical(live, *outcome.dataset);
}

TEST(StoreReplay, DigestMismatchRefusesToLoad) {
  const sim::ScenarioConfig config = replay_config();
  const std::string dir = fresh_dir("digest");
  write_dataset(sim::run_scenario(config), dir);

  sim::ScenarioConfig other = config;
  other.seed += 1;
  const ReadOutcome outcome = read_dataset(dir, other);
  EXPECT_EQ(outcome.status, ReadOutcome::Status::kDigestMismatch);
  EXPECT_FALSE(outcome.dataset.has_value());
  EXPECT_FALSE(outcome.complete());
  EXPECT_EQ(stored_digest(dir), sim::config_digest(config));
}

TEST(StoreReplay, EmptyDirectoryReportsMissing) {
  const ReadOutcome outcome =
      read_dataset(fresh_dir("void"), replay_config());
  EXPECT_EQ(outcome.status, ReadOutcome::Status::kMissing);
  EXPECT_FALSE(outcome.dataset.has_value());
}

// The figures a replayed dataset renders must be byte-identical to the
// committed golden fixtures — replaying a cached store instead of
// re-simulating can never move a published figure.
TEST(StoreReplay, GoldenFiguresFromReplayMatchFixturesByteExactly) {
  const sim::ScenarioConfig config = sim::testsupport::golden_config();
  const std::string dir = fresh_dir("golden");
  const sim::Dataset live = simulate_to_store(config, dir);

  const ReadOutcome outcome = read_dataset(dir, config);
  ASSERT_EQ(outcome.status, ReadOutcome::Status::kOk) << outcome.error;
  const sim::Dataset& replayed = *outcome.dataset;

  const std::string fig03 = sim::testsupport::fig03_csv(replayed);
  const std::string fig08 = sim::testsupport::fig08_csv(replayed);
  EXPECT_EQ(fig03, sim::testsupport::fig03_csv(live));
  EXPECT_EQ(fig08, sim::testsupport::fig08_csv(live));
  EXPECT_EQ(fig03,
            slurp(std::string(CELLSCOPE_GOLDEN_DIR) +
                  "/fig03_national_mobility.csv"));
  EXPECT_EQ(fig08, slurp(std::string(CELLSCOPE_GOLDEN_DIR) +
                         "/fig08_network_kpis.csv"));
}

}  // namespace
}  // namespace cellscope::store
