// The chunk supervisor (sim/supervisor.h): a throwing chunk is reset and
// retried with bounded backoff and the final result is as if nothing ever
// failed; a chunk that exhausts its attempts fails the day from the CALLER
// thread after the pool drains; a chunk that completes nothing for longer
// than the stall deadline is counted by the watchdog. The simulator-level
// consequences (bit-identical datasets, resumable failed days) are enforced
// in test_determinism and test_crash_resume; this suite pins the mechanism.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/pool.h"
#include "sim/supervisor.h"

namespace cellscope::sim {
namespace {

constexpr std::size_t kItems = 64;
constexpr std::size_t kChunkSize = 8;  // 8 chunks
constexpr std::uint64_t kFullSum = kItems * (kItems - 1) / 2;

SupervisorConfig fast_config() {
  SupervisorConfig config;
  config.max_attempts = 3;
  config.backoff_base = std::chrono::milliseconds{1};
  config.stall_deadline = std::chrono::seconds{60};
  return config;
}

// A minimal chunked job: each chunk sums its index range into a slot
// buffer, reduce folds the slots into a total. Mirrors the simulator's
// work/reset/reduce discipline at toy scale.
struct SumJob {
  explicit SumJob(const WorkerPool& pool) : slots(pool.window(), 0) {}

  std::vector<std::uint64_t> slots;
  std::uint64_t total = 0;
  std::atomic<std::uint64_t> resets{0};

  WorkerPool::WorkFn work_fn() {
    return [this](std::size_t, std::size_t slot, std::size_t begin,
                  std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) slots[slot] += i;
    };
  }
  Supervisor::ResetFn reset_fn() {
    return [this](std::size_t, std::size_t slot) {
      slots[slot] = 0;
      resets.fetch_add(1);
    };
  }
  WorkerPool::ReduceFn reduce_fn() {
    return [this](std::size_t, std::size_t slot) {
      total += slots[slot];
      slots[slot] = 0;
    };
  }
};

TEST(SupervisorTest, CleanRunTouchesNothing) {
  WorkerPool pool{2};
  Supervisor supervisor{pool, fast_config()};
  SumJob job{pool};
  supervisor.run(7, kItems, kChunkSize, job.work_fn(), job.reset_fn(),
                 job.reduce_fn());
  EXPECT_EQ(job.total, kFullSum);
  EXPECT_EQ(supervisor.stats().retries, 0u);
  EXPECT_EQ(supervisor.stats().failures, 0u);
  EXPECT_EQ(job.resets.load(), 0u);
}

TEST(SupervisorTest, ThrowingChunkIsResetRetriedAndHeals) {
  WorkerPool pool{2};
  Supervisor supervisor{pool, fast_config()};
  SumJob job{pool};
  std::atomic<int> attempts_on_3{0};
  const auto inner = job.work_fn();
  const WorkerPool::WorkFn flaky = [&](std::size_t chunk, std::size_t slot,
                                       std::size_t begin, std::size_t end,
                                       std::size_t worker) {
    if (chunk == 3 && attempts_on_3.fetch_add(1) == 0) {
      job.slots[slot] = 999'999;  // dirty the buffer, then die mid-chunk
      throw std::runtime_error{"flaky chunk"};
    }
    inner(chunk, slot, begin, end, worker);
  };
  supervisor.run(7, kItems, kChunkSize, flaky, job.reset_fn(),
                 job.reduce_fn());
  // The retry healed the failure AND the dirty partial state: the total is
  // exactly the clean run's.
  EXPECT_EQ(job.total, kFullSum);
  EXPECT_EQ(attempts_on_3.load(), 2);
  EXPECT_EQ(supervisor.stats().retries, 1u);
  EXPECT_EQ(supervisor.stats().failures, 0u);
  EXPECT_GE(job.resets.load(), 1u);
}

TEST(SupervisorTest, ExhaustedChunkFailsTheDayFromCallerThread) {
  WorkerPool pool{2};
  Supervisor supervisor{pool, fast_config()};
  SumJob job{pool};
  std::atomic<int> attempts_on_5{0};
  const auto inner = job.work_fn();
  const WorkerPool::WorkFn doomed = [&](std::size_t chunk, std::size_t slot,
                                        std::size_t begin, std::size_t end,
                                        std::size_t worker) {
    if (chunk == 5) {
      attempts_on_5.fetch_add(1);
      throw std::runtime_error{"hard failure"};
    }
    inner(chunk, slot, begin, end, worker);
  };
  SimDay failed_day = -1;
  try {
    supervisor.run(42, kItems, kChunkSize, doomed, job.reset_fn(),
                   job.reduce_fn());
    FAIL() << "DayFailed not thrown";
  } catch (const DayFailed& failure) {
    failed_day = failure.day;
  }
  EXPECT_EQ(failed_day, 42);
  EXPECT_EQ(attempts_on_5.load(), fast_config().max_attempts);
  EXPECT_EQ(supervisor.stats().failures, 1u);
  EXPECT_EQ(supervisor.stats().retries,
            static_cast<std::uint64_t>(fast_config().max_attempts - 1));
  // Every OTHER chunk still ran and reduced — the pool drained before the
  // throw — and the failed chunk folded as a no-op (its buffer was reset).
  const std::uint64_t chunk5_sum =
      (5 * kChunkSize + 5 * kChunkSize + kChunkSize - 1) * kChunkSize / 2;
  EXPECT_EQ(job.total, kFullSum - chunk5_sum);
}

TEST(SupervisorTest, RepeatedRunsAccumulateStats) {
  WorkerPool pool{2};
  Supervisor supervisor{pool, fast_config()};
  for (int day = 0; day < 3; ++day) {
    SumJob job{pool};
    std::atomic<int> first{0};
    const auto inner = job.work_fn();
    const WorkerPool::WorkFn flaky = [&](std::size_t chunk, std::size_t slot,
                                         std::size_t begin, std::size_t end,
                                         std::size_t worker) {
      if (chunk == 0 && first.fetch_add(1) == 0)
        throw std::runtime_error{"once per day"};
      inner(chunk, slot, begin, end, worker);
    };
    supervisor.run(day, kItems, kChunkSize, flaky, job.reset_fn(),
                   job.reduce_fn());
    EXPECT_EQ(job.total, kFullSum);
  }
  EXPECT_EQ(supervisor.stats().retries, 3u);
  EXPECT_EQ(supervisor.stats().failures, 0u);
}

TEST(SupervisorTest, WatchdogCountsAStalledChunk) {
  WorkerPool pool{2};
  SupervisorConfig config = fast_config();
  config.stall_deadline = std::chrono::seconds{1};
  Supervisor supervisor{pool, config};
  SumJob job{pool};
  std::atomic<bool> stalled_once{false};
  const auto inner = job.work_fn();
  const WorkerPool::WorkFn slow = [&](std::size_t chunk, std::size_t slot,
                                      std::size_t begin, std::size_t end,
                                      std::size_t worker) {
    if (chunk == 2 && !stalled_once.exchange(true))
      std::this_thread::sleep_for(std::chrono::milliseconds{1600});
    inner(chunk, slot, begin, end, worker);
  };
  supervisor.run(3, kItems, kChunkSize, slow, job.reset_fn(),
                 job.reduce_fn());
  // Detection only: the run still completes with the right answer, the
  // stall is on the record for the operator (docs/RECOVERY.md).
  EXPECT_EQ(job.total, kFullSum);
  EXPECT_GE(supervisor.stats().stalls, 1u);
  EXPECT_EQ(supervisor.stats().failures, 0u);
}

TEST(SupervisorTest, SerialPoolIsSupervisedToo) {
  WorkerPool pool{1};
  Supervisor supervisor{pool, fast_config()};
  SumJob job{pool};
  std::atomic<int> attempts{0};
  const auto inner = job.work_fn();
  const WorkerPool::WorkFn flaky = [&](std::size_t chunk, std::size_t slot,
                                       std::size_t begin, std::size_t end,
                                       std::size_t worker) {
    if (chunk == 1 && attempts.fetch_add(1) == 0)
      throw std::runtime_error{"flaky serial chunk"};
    inner(chunk, slot, begin, end, worker);
  };
  supervisor.run(9, kItems, kChunkSize, flaky, job.reset_fn(),
                 job.reduce_fn());
  EXPECT_EQ(job.total, kFullSum);
  EXPECT_EQ(supervisor.stats().retries, 1u);
}

}  // namespace
}  // namespace cellscope::sim
