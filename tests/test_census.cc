// Census views used by the Fig 2 validation.
#include <gtest/gtest.h>

#include "geo/census.h"

namespace cellscope::geo {
namespace {

TEST(Census, ByLadCoversAllLads) {
  const auto geography = UkGeography::build();
  const auto rows = census_by_lad(geography);
  ASSERT_EQ(rows.size(), geography.lads().size());
  std::int64_t total = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].lad.value(), i);
    EXPECT_EQ(rows[i].name, geography.lad(rows[i].lad).name);
    EXPECT_EQ(rows[i].census_population,
              geography.lad(rows[i].lad).census_population);
    total += rows[i].census_population;
  }
  EXPECT_EQ(total, geography.census_total());
}

TEST(Census, ExpectedMarketShare) {
  const auto geography = UkGeography::build();
  const auto total = geography.census_total();
  EXPECT_DOUBLE_EQ(expected_market_share(geography, total), 1.0);
  EXPECT_NEAR(expected_market_share(geography, total / 4), 0.25, 1e-6);
  EXPECT_DOUBLE_EQ(expected_market_share(geography, 0), 0.0);
}

}  // namespace
}  // namespace cellscope::geo
