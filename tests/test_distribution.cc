// Per-day distribution bands.
#include <gtest/gtest.h>

#include "analysis/distribution.h"

namespace cellscope::analysis {
namespace {

TEST(DistributionSeries, SealComputesSummary) {
  DistributionSeries series{0, 6};
  for (int i = 1; i <= 100; ++i) series.add(3, double(i));
  EXPECT_FALSE(series.has(3));  // not sealed yet
  series.seal_day(3);
  ASSERT_TRUE(series.has(3));
  const auto& s = series.day_summary(3);
  EXPECT_EQ(s.n, 100u);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_LT(s.p10, s.p90);
}

TEST(DistributionSeries, AddAfterSealThrows) {
  DistributionSeries series{0, 6};
  series.add(0, 1.0);
  series.seal_day(0);
  EXPECT_THROW(series.add(0, 2.0), std::logic_error);
  // Sealing twice is a no-op.
  EXPECT_NO_THROW(series.seal_day(0));
}

TEST(DistributionSeries, EmptySealedDayHasNoData) {
  DistributionSeries series{0, 6};
  series.seal_day(2);
  EXPECT_FALSE(series.has(2));
  EXPECT_FALSE(series.has(100));  // out of range
}

TEST(DistributionSeries, WeekBandsAverageDailySummaries) {
  // Week 6 = days 0..6; two populations with different medians.
  DistributionSeries series{0, 13};
  for (SimDay d = 0; d < 7; ++d) {
    for (int i = 0; i < 50; ++i)
      series.add(d, d < 3 ? 10.0 : 20.0);  // 3 days at 10, 4 at 20
    series.seal_day(d);
  }
  using Band = DistributionSeries::Band;
  EXPECT_NEAR(series.week_band(6, Band::kMedian),
              (3 * 10.0 + 4 * 20.0) / 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(series.week_band(7, Band::kMedian), 0.0);  // no data
}

TEST(DistributionSeries, IqrRatio) {
  DistributionSeries series{0, 6};
  for (SimDay d = 0; d < 7; ++d) {
    for (int i = 1; i <= 101; ++i) series.add(d, double(i));
    series.seal_day(d);
  }
  // Uniform 1..101: median 51, p25 = 26, p75 = 76 -> IQR/median = 50/51.
  EXPECT_NEAR(series.week_iqr_ratio(6), 50.0 / 51.0, 1e-9);
}

TEST(DistributionSeries, ZeroMedianGivesZeroRatio) {
  DistributionSeries series{0, 6};
  for (SimDay d = 0; d < 7; ++d) {
    series.add(d, 0.0);
    series.seal_day(d);
  }
  EXPECT_DOUBLE_EQ(series.week_iqr_ratio(6), 0.0);
}

TEST(DistributionSeries, BadRangeThrows) {
  EXPECT_THROW((DistributionSeries{5, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace cellscope::analysis
