// Passive signaling probe aggregation.
#include <gtest/gtest.h>

#include "telemetry/probes.h"

namespace cellscope::telemetry {
namespace {

traffic::SignalingEvent make_event(SimDay day,
                                   traffic::SignalingEventType type,
                                   bool success = true) {
  traffic::SignalingEvent event;
  event.user = UserId{1};
  event.hour = first_hour(day) + 10;
  event.type = type;
  event.success = success;
  return event;
}

TEST(SignalingProbe, CountsPerDayAndType) {
  SignalingProbe probe;
  probe.on_event(make_event(5, traffic::SignalingEventType::kAttach));
  probe.on_event(make_event(5, traffic::SignalingEventType::kAttach, false));
  probe.on_event(make_event(5, traffic::SignalingEventType::kHandover));
  probe.on_event(make_event(6, traffic::SignalingEventType::kAttach));
  ASSERT_EQ(probe.days().size(), 2u);
  const auto* day5 = probe.day(5);
  ASSERT_NE(day5, nullptr);
  EXPECT_EQ(day5->total[static_cast<int>(
                traffic::SignalingEventType::kAttach)],
            2u);
  EXPECT_EQ(day5->failures[static_cast<int>(
                traffic::SignalingEventType::kAttach)],
            1u);
  EXPECT_EQ(day5->total_events(), 3u);
  EXPECT_DOUBLE_EQ(
      day5->failure_rate(traffic::SignalingEventType::kAttach), 0.5);
  EXPECT_DOUBLE_EQ(
      day5->failure_rate(traffic::SignalingEventType::kDetach), 0.0);
}

TEST(SignalingProbe, UnknownDayReturnsNull) {
  SignalingProbe probe;
  probe.on_event(make_event(5, traffic::SignalingEventType::kAttach));
  EXPECT_EQ(probe.day(7), nullptr);
}

TEST(SignalingProbe, DaysAppearChronologically) {
  SignalingProbe probe;
  for (SimDay d = 0; d < 10; ++d)
    probe.on_event(make_event(d, traffic::SignalingEventType::kServiceRequest));
  ASSERT_EQ(probe.days().size(), 10u);
  for (SimDay d = 0; d < 10; ++d) EXPECT_EQ(probe.days()[d].day, d);
}

TEST(SignalingProbe, EmptyCountsAreZero) {
  DailySignalingCounts counts;
  EXPECT_EQ(counts.total_events(), 0u);
  EXPECT_DOUBLE_EQ(
      counts.failure_rate(traffic::SignalingEventType::kAttach), 0.0);
}

}  // namespace
}  // namespace cellscope::telemetry
