// Per-user data demand: WiFi offload contexts, activity factors, throttling.
#include <gtest/gtest.h>

#include "traffic/demand.h"

namespace cellscope::traffic {
namespace {

population::Subscriber smartphone_user(geo::OacCluster cluster =
                                           geo::OacCluster::kUrbanites) {
  population::Subscriber user;
  user.id = UserId{1};
  user.native = true;
  user.smartphone = true;
  user.home_cluster = cluster;
  return user;
}

// Average demand over many draws (the model is noisy by design).
double mean_dl(const DemandModel& model, const population::Subscriber& user,
               WifiContext context, SimDay day, int hour, double activity = 1.0) {
  Rng rng{99};
  double total = 0.0;
  constexpr int kN = 3000;
  for (int i = 0; i < kN; ++i)
    total += model.sample_hour(user, context, day, hour, rng, activity).dl_mb;
  return total / kN;
}

TEST(Demand, WifiContextMapping) {
  EXPECT_EQ(wifi_context(mobility::PlaceKind::kHome), WifiContext::kHomeWifi);
  EXPECT_EQ(wifi_context(mobility::PlaceKind::kRefuge),
            WifiContext::kHomeWifi);
  EXPECT_EQ(wifi_context(mobility::PlaceKind::kWork), WifiContext::kWorkWifi);
  EXPECT_EQ(wifi_context(mobility::PlaceKind::kErrand), WifiContext::kNoWifi);
  EXPECT_EQ(wifi_context(mobility::PlaceKind::kLeisure),
            WifiContext::kNoWifi);
  EXPECT_EQ(wifi_context(mobility::PlaceKind::kGetaway),
            WifiContext::kNoWifi);
}

TEST(Demand, OffloadOrdering) {
  mobility::PolicyTimeline policy;
  DemandModel model{policy};
  const auto user = smartphone_user();
  const double home = mean_dl(model, user, WifiContext::kHomeWifi, 10, 20);
  const double work = mean_dl(model, user, WifiContext::kWorkWifi, 10, 20);
  const double away = mean_dl(model, user, WifiContext::kNoWifi, 10, 20);
  EXPECT_LT(home, work);
  EXPECT_LT(work, away);
  EXPECT_GT(home, 0.0);
}

TEST(Demand, HomeResidueMultiplierByCluster) {
  EXPECT_GT(DemandModel::home_residue_multiplier(
                geo::OacCluster::kMulticulturalMetropolitans),
            2.0);
  EXPECT_GT(DemandModel::home_residue_multiplier(
                geo::OacCluster::kEthnicityCentral),
            2.0);
  EXPECT_LE(DemandModel::home_residue_multiplier(
                geo::OacCluster::kCosmopolitans),
            1.0);
  EXPECT_DOUBLE_EQ(DemandModel::home_residue_multiplier(
                       geo::OacCluster::kSuburbanites),
                   1.0);
}

TEST(Demand, MobileRelianceShowsUpAtHome) {
  mobility::PolicyTimeline policy;
  DemandModel model{policy};
  const auto fibre = smartphone_user(geo::OacCluster::kSuburbanites);
  const auto mobile_reliant =
      smartphone_user(geo::OacCluster::kMulticulturalMetropolitans);
  const double fibre_home =
      mean_dl(model, fibre, WifiContext::kHomeWifi, 10, 20);
  const double reliant_home =
      mean_dl(model, mobile_reliant, WifiContext::kHomeWifi, 10, 20);
  EXPECT_GT(reliant_home, 2.0 * fibre_home);
  // Away from home the cluster makes no difference.
  const double fibre_away = mean_dl(model, fibre, WifiContext::kNoWifi, 10, 20);
  const double reliant_away =
      mean_dl(model, mobile_reliant, WifiContext::kNoWifi, 10, 20);
  EXPECT_NEAR(reliant_away / fibre_away, 1.0, 0.1);
}

TEST(Demand, ActivityFactorScalesVolume) {
  mobility::PolicyTimeline policy;
  DemandModel model{policy};
  const auto user = smartphone_user();
  const double full = mean_dl(model, user, WifiContext::kNoWifi, 10, 20, 1.0);
  const double half = mean_dl(model, user, WifiContext::kNoWifi, 10, 20, 0.5);
  EXPECT_NEAR(half / full, 0.5, 0.07);
}

TEST(Demand, ActivityFactorsRespondToRestrictions) {
  mobility::PolicyTimeline policy;
  DemandModel model{policy};
  const SimDay open_day = 10;
  const SimDay closed_day = timeline::kVenueClosures + 5;
  for (const auto kind : {mobility::PlaceKind::kErrand,
                          mobility::PlaceKind::kLeisure,
                          mobility::PlaceKind::kGetaway}) {
    EXPECT_LT(model.activity_factor(kind, closed_day),
              model.activity_factor(kind, open_day));
  }
  EXPECT_DOUBLE_EQ(model.activity_factor(mobility::PlaceKind::kHome, open_day),
                   1.0);
}

TEST(Demand, DiurnalShape) {
  mobility::PolicyTimeline policy;
  DemandModel model{policy};
  const auto user = smartphone_user();
  const double evening = mean_dl(model, user, WifiContext::kNoWifi, 10, 20);
  const double night = mean_dl(model, user, WifiContext::kNoWifi, 10, 3);
  EXPECT_GT(evening, 3.0 * night);
}

TEST(Demand, ActiveSecondsConsistentWithVolumeAndRate) {
  mobility::PolicyTimeline policy;
  DemandModel model{policy};
  const auto user = smartphone_user();
  Rng rng{5};
  for (int i = 0; i < 200; ++i) {
    const auto d = model.sample_hour(user, WifiContext::kNoWifi, 10, 19, rng);
    ASSERT_GT(d.app_dl_rate_mbps, 0.0);
    EXPECT_LE(d.active_dl_seconds, 3600.0);
    if (d.active_dl_seconds < 3600.0) {
      EXPECT_NEAR(d.active_dl_seconds, d.dl_mb * 8.0 / d.app_dl_rate_mbps,
                  1e-6);
    }
  }
}

TEST(Demand, ThrottlingLowersAppRate) {
  mobility::PolicyTimeline policy;
  DemandModel model{policy};
  const auto user = smartphone_user();
  Rng rng{6};
  const auto before = model.sample_hour(user, WifiContext::kNoWifi,
                                        timeline::kVenueClosures - 10, 19, rng);
  const auto after = model.sample_hour(user, WifiContext::kNoWifi,
                                       timeline::kVenueClosures + 10, 19, rng);
  EXPECT_LT(after.app_dl_rate_mbps, before.app_dl_rate_mbps);
}

TEST(Demand, M2mIsATinySymmetricTrickle) {
  mobility::PolicyTimeline policy;
  DemandModel model{policy};
  population::Subscriber meter;
  meter.smartphone = false;
  meter.native = true;
  Rng rng{7};
  const auto d = model.sample_hour(meter, WifiContext::kNoWifi, 10, 12, rng);
  EXPECT_LT(d.dl_mb, 0.1);
  EXPECT_GT(d.ul_mb, d.dl_mb);  // telemetry is UL-leaning
  EXPECT_LT(d.active_dl_seconds, 10.0);
}

TEST(Demand, UplinkIsAFractionOfDownlink) {
  mobility::PolicyTimeline policy;
  DemandModel model{policy};
  const auto user = smartphone_user();
  Rng rng{8};
  double dl = 0.0, ul = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const auto d = model.sample_hour(user, WifiContext::kNoWifi, 10, 19, rng);
    dl += d.dl_mb;
    ul += d.ul_mb;
  }
  EXPECT_GT(ul / dl, 0.03);
  EXPECT_LT(ul / dl, 0.30);
}

TEST(Demand, NewsBumpInWeekTen) {
  mobility::PolicyTimeline policy;
  DemandModel model{policy};
  const auto user = smartphone_user();
  const double wk9 = mean_dl(model, user, WifiContext::kNoWifi,
                             week_start_day(9) + 1, 19);
  const double wk10 = mean_dl(model, user, WifiContext::kNoWifi,
                              week_start_day(10) + 1, 19);
  EXPECT_GT(wk10, wk9 * 1.02);
}

}  // namespace
}  // namespace cellscope::traffic
