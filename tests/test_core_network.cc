// Signaling generation: the control-plane event stream of Section 2.2.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "traffic/core_network.h"

namespace cellscope::traffic {
namespace {

class RecordingSink final : public SignalingSink {
 public:
  void on_event(const SignalingEvent& event) override {
    events.push_back(event);
  }
  [[nodiscard]] int count(SignalingEventType type) const {
    int n = 0;
    for (const auto& e : events) n += e.type == type;
    return n;
  }
  std::vector<SignalingEvent> events;
};

population::Subscriber native_user() {
  population::Subscriber user;
  user.id = UserId{7};
  user.tac = Tac{35'000'001};
  user.native = true;
  user.smartphone = true;
  return user;
}

std::vector<CellStay> simple_day() {
  return {{CellId{1}, 0, 9}, {CellId{2}, 9, 17}, {CellId{1}, 17, 24}};
}

TEST(Signaling, EmptyStaysProduceNoEvents) {
  SignalingGenerator generator;
  RecordingSink sink;
  Rng rng{1};
  generator.generate_day(native_user(), {}, 10, 3, 1, rng, sink);
  EXPECT_TRUE(sink.events.empty());
}

TEST(Signaling, MorningAttachSequence) {
  SignalingGenerator generator;
  RecordingSink sink;
  Rng rng{2};
  const auto stays = simple_day();
  generator.generate_day(native_user(), stays, 10, 0, 0, rng, sink);
  ASSERT_GE(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[0].type, SignalingEventType::kAttach);
  EXPECT_EQ(sink.events[1].type, SignalingEventType::kAuthentication);
  EXPECT_EQ(sink.events[2].type, SignalingEventType::kSessionEstablishment);
  EXPECT_EQ(sink.events[0].cell, CellId{1});
}

TEST(Signaling, MobilityEventsOnEveryCellChange) {
  SignalingGenerator generator;
  RecordingSink sink;
  Rng rng{3};
  generator.generate_day(native_user(), simple_day(), 10, 0, 0, rng, sink);
  // Two cell changes -> two TAU-or-handover events.
  EXPECT_EQ(sink.count(SignalingEventType::kTrackingAreaUpdate) +
                sink.count(SignalingEventType::kHandover),
            2);
}

TEST(Signaling, NoMobilityEventsForStaticDay) {
  SignalingGenerator generator;
  RecordingSink sink;
  Rng rng{4};
  const std::vector<CellStay> home_all_day = {{CellId{5}, 0, 24}};
  generator.generate_day(native_user(), home_all_day, 10, 0, 0, rng, sink);
  EXPECT_EQ(sink.count(SignalingEventType::kTrackingAreaUpdate), 0);
  EXPECT_EQ(sink.count(SignalingEventType::kHandover), 0);
}

TEST(Signaling, ServiceRequestsMatchActiveHours) {
  SignalingGenerator generator;
  RecordingSink sink;
  Rng rng{5};
  generator.generate_day(native_user(), simple_day(), 10, 7, 0, rng, sink);
  EXPECT_EQ(sink.count(SignalingEventType::kServiceRequest), 7);
  EXPECT_EQ(sink.count(SignalingEventType::kEcmIdleTransition), 7);
}

TEST(Signaling, VoiceCallsRideDedicatedBearers) {
  SignalingGenerator generator;
  RecordingSink sink;
  Rng rng{6};
  generator.generate_day(native_user(), simple_day(), 10, 0, 4, rng, sink);
  EXPECT_EQ(sink.count(SignalingEventType::kDedicatedBearerSetup), 4);
  EXPECT_EQ(sink.count(SignalingEventType::kDedicatedBearerRelease), 4);
}

TEST(Signaling, EventsCarrySubscriberIdentity) {
  SignalingGenerator generator;
  RecordingSink sink;
  Rng rng{7};
  const auto user = native_user();
  generator.generate_day(user, simple_day(), 10, 2, 1, rng, sink);
  for (const auto& event : sink.events) {
    EXPECT_EQ(event.user, user.id);
    EXPECT_EQ(event.tac, user.tac);
    EXPECT_EQ(event.mcc, 234);  // O2 UK home PLMN
    EXPECT_EQ(event.mnc, 10);
  }
}

TEST(Signaling, RoamersCarryForeignPlmn) {
  SignalingGenerator generator;
  RecordingSink sink;
  Rng rng{8};
  auto roamer = native_user();
  roamer.native = false;
  generator.generate_day(roamer, simple_day(), 10, 0, 0, rng, sink);
  ASSERT_FALSE(sink.events.empty());
  EXPECT_NE(sink.events[0].mcc, 234);
}

TEST(Signaling, EventHoursFallWithinTheDay) {
  SignalingGenerator generator;
  RecordingSink sink;
  Rng rng{9};
  const SimDay day = 33;
  generator.generate_day(native_user(), simple_day(), day, 5, 3, rng, sink);
  for (const auto& event : sink.events) {
    EXPECT_GE(event.hour, first_hour(day));
    EXPECT_LT(event.hour, first_hour(day + 1));
  }
}

TEST(Signaling, AttachFailuresAtConfiguredRate) {
  SignalingParams params;
  params.attach_failure_rate = 0.2;
  SignalingGenerator generator{params};
  RecordingSink sink;
  Rng rng{10};
  for (int i = 0; i < 2000; ++i)
    generator.generate_day(native_user(), simple_day(), 10, 0, 0, rng, sink);
  int failures = 0, attaches = 0;
  for (const auto& e : sink.events) {
    if (e.type != SignalingEventType::kAttach) continue;
    ++attaches;
    failures += !e.success;
  }
  ASSERT_EQ(attaches, 2000);
  EXPECT_NEAR(double(failures) / attaches, 0.2, 0.03);
}

TEST(Signaling, DetachProbability) {
  SignalingGenerator generator;
  RecordingSink sink;
  Rng rng{11};
  for (int i = 0; i < 3000; ++i)
    generator.generate_day(native_user(), simple_day(), 10, 0, 0, rng, sink);
  EXPECT_NEAR(double(sink.count(SignalingEventType::kDetach)) / 3000, 0.10,
              0.02);
}

TEST(Signaling, EventNamesAreDistinct) {
  std::set<std::string_view> names;
  for (int i = 0; i < kSignalingEventTypeCount; ++i)
    names.insert(signaling_event_name(static_cast<SignalingEventType>(i)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kSignalingEventTypeCount));
}

}  // namespace
}  // namespace cellscope::traffic
