// Deterministic fault injection: plan determinism, stream independence,
// spec parsing, and the end-to-end degraded-feed contract.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/faults.h"
#include "sim/simulator.h"

namespace cellscope::sim {
namespace {

FaultConfig busy_faults() {
  FaultConfig config;
  config.signaling_outages_per_week = 1.0;
  config.signaling_outage_mean_hours = 6.0;
  config.kpi_outages_per_week = 1.5;
  config.kpi_outage_mean_hours = 4.0;
  config.cell_outage_daily_prob = 0.01;
  config.observation_loss_rate = 0.05;
  config.kpi_record_loss_rate = 0.05;
  config.kpi_record_duplication_rate = 0.02;
  return config;
}

TEST(FaultConfig_, AnyIsFalseOnlyWhenEveryKnobIsZero) {
  EXPECT_FALSE(FaultConfig{}.any());
  FaultConfig config;
  config.observation_loss_rate = 0.01;
  EXPECT_TRUE(config.any());
  // Mean durations alone don't enable anything.
  FaultConfig durations_only;
  durations_only.signaling_outage_mean_hours = 48.0;
  durations_only.cell_outage_mean_days = 9.0;
  EXPECT_FALSE(durations_only.any());
}

TEST(FaultConfig_, ValidateRejectsBadKnobs) {
  FaultConfig config;
  config.observation_loss_rate = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = FaultConfig{};
  config.kpi_record_loss_rate = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = FaultConfig{};
  config.signaling_outages_per_week = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_NO_THROW(busy_faults().validate());
}

TEST(ParseFaultSpec, ParsesKnownKeys) {
  const auto config = parse_fault_spec(
      "loss=0.05,dup=0.01,sig_outages=2,sig_hours=3.5,kpi_outages=1,"
      "kpi_hours=8,cell_daily=0.004,cell_days=3");
  EXPECT_DOUBLE_EQ(config.observation_loss_rate, 0.05);
  EXPECT_DOUBLE_EQ(config.kpi_record_loss_rate, 0.05);
  EXPECT_DOUBLE_EQ(config.kpi_record_duplication_rate, 0.01);
  EXPECT_DOUBLE_EQ(config.signaling_outages_per_week, 2.0);
  EXPECT_DOUBLE_EQ(config.signaling_outage_mean_hours, 3.5);
  EXPECT_DOUBLE_EQ(config.kpi_outages_per_week, 1.0);
  EXPECT_DOUBLE_EQ(config.kpi_outage_mean_hours, 8.0);
  EXPECT_DOUBLE_EQ(config.cell_outage_daily_prob, 0.004);
  EXPECT_DOUBLE_EQ(config.cell_outage_mean_days, 3.0);
}

TEST(ParseFaultSpec, SpecificLossKeysOverrideIndependently) {
  const auto config = parse_fault_spec("obs_loss=0.1,kpi_loss=0.2");
  EXPECT_DOUBLE_EQ(config.observation_loss_rate, 0.1);
  EXPECT_DOUBLE_EQ(config.kpi_record_loss_rate, 0.2);
}

TEST(ParseFaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_fault_spec("bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("loss"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("loss=abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("loss=2"), std::invalid_argument);
  EXPECT_TRUE(parse_fault_spec("").any() == false);
}

TEST(FaultPlan_, ZeroConfigBuildsDisabledPlan) {
  const auto plan = FaultPlan::build(FaultConfig{}, 42, 0, 97, 100);
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.signaling_windows().empty());
  EXPECT_FALSE(plan.signaling_down(10, 3));
  EXPECT_FALSE(plan.kpi_feed_down(10, 3));
  EXPECT_FALSE(plan.cell_out(CellId{5}, 10));
  EXPECT_FALSE(plan.drop_observation(7, 10));
  EXPECT_FALSE(plan.drop_kpi_record(7, 10));
  EXPECT_FALSE(plan.duplicate_kpi_record(7, 10));
}

TEST(FaultPlan_, SameSeedSameConfigYieldsIdenticalPlans) {
  const auto config = busy_faults();
  const auto a = FaultPlan::build(config, 42, 0, 97, 200);
  const auto b = FaultPlan::build(config, 42, 0, 97, 200);
  ASSERT_EQ(a.signaling_windows().size(), b.signaling_windows().size());
  for (std::size_t i = 0; i < a.signaling_windows().size(); ++i) {
    EXPECT_EQ(a.signaling_windows()[i].start, b.signaling_windows()[i].start);
    EXPECT_EQ(a.signaling_windows()[i].end, b.signaling_windows()[i].end);
  }
  ASSERT_EQ(a.kpi_windows().size(), b.kpi_windows().size());
  EXPECT_EQ(a.cell_outage_cell_days(), b.cell_outage_cell_days());
  for (SimDay d = 0; d <= 97; ++d) {
    for (std::uint32_t id = 0; id < 50; ++id) {
      EXPECT_EQ(a.drop_observation(id, d), b.drop_observation(id, d));
      EXPECT_EQ(a.drop_kpi_record(id, d), b.drop_kpi_record(id, d));
      EXPECT_EQ(a.duplicate_kpi_record(id, d), b.duplicate_kpi_record(id, d));
    }
  }
}

TEST(FaultPlan_, DifferentSeedsYieldDifferentRealizations) {
  const auto config = busy_faults();
  const auto a = FaultPlan::build(config, 42, 0, 97, 200);
  const auto b = FaultPlan::build(config, 43, 0, 97, 200);
  int differences = 0;
  for (SimDay d = 0; d <= 97; ++d)
    for (std::uint32_t id = 0; id < 50; ++id)
      if (a.drop_observation(id, d) != b.drop_observation(id, d))
        ++differences;
  EXPECT_GT(differences, 0);
}

TEST(FaultPlan_, FaultFamiliesDrawIndependentStreams) {
  // Toggling one module's knobs must not perturb another module's plan:
  // the experiments stay comparable as fault dimensions are swept.
  auto base = busy_faults();
  auto kpi_heavy = base;
  kpi_heavy.kpi_outages_per_week = 5.0;
  kpi_heavy.kpi_record_loss_rate = 0.5;
  kpi_heavy.kpi_record_duplication_rate = 0.3;
  kpi_heavy.cell_outage_daily_prob = 0.2;

  const auto a = FaultPlan::build(base, 42, 0, 97, 200);
  const auto b = FaultPlan::build(kpi_heavy, 42, 0, 97, 200);

  // Signaling windows and observation-loss decisions are untouched.
  ASSERT_EQ(a.signaling_windows().size(), b.signaling_windows().size());
  for (std::size_t i = 0; i < a.signaling_windows().size(); ++i) {
    EXPECT_EQ(a.signaling_windows()[i].start, b.signaling_windows()[i].start);
    EXPECT_EQ(a.signaling_windows()[i].end, b.signaling_windows()[i].end);
  }
  for (SimDay d = 0; d <= 97; ++d)
    for (std::uint32_t id = 0; id < 50; ++id)
      EXPECT_EQ(a.drop_observation(id, d), b.drop_observation(id, d));
}

TEST(FaultPlan_, WindowsMatchTheHourBitmap) {
  auto config = busy_faults();
  const auto plan = FaultPlan::build(config, 7, 0, 97, 0);
  for (const auto& window : plan.signaling_windows()) {
    for (SimHour h = window.start; h < window.end; ++h) {
      EXPECT_TRUE(plan.signaling_down(
          static_cast<SimDay>(h / kHoursPerDay),
          static_cast<int>(h % kHoursPerDay)))
          << h;
    }
  }
  // Total down-hours across days equals the bitmap population.
  int down_hours = 0;
  for (SimDay d = 0; d <= 97; ++d) down_hours += plan.signaling_down_hours(d);
  int window_hours = 0;
  for (const auto& w : plan.signaling_windows())
    for (SimHour h = w.start; h < w.end; ++h)
      if (!plan.signaling_down(static_cast<SimDay>(h / kHoursPerDay),
                               static_cast<int>(h % kHoursPerDay)))
        ADD_FAILURE();
      else
        ++window_hours;
  // Windows may overlap, so bitmap hours <= summed window hours.
  EXPECT_LE(down_hours, window_hours);
  EXPECT_GT(down_hours, 0);
}

TEST(FaultPlan_, RecordDecisionsApproximateTheConfiguredRate) {
  FaultConfig config;
  config.kpi_record_loss_rate = 0.10;
  const auto plan = FaultPlan::build(config, 42, 0, 97, 0);
  int dropped = 0;
  const int trials = 20'000;
  for (int k = 0; k < trials; ++k)
    if (plan.drop_kpi_record(static_cast<std::uint32_t>(k % 250),
                             static_cast<SimDay>(k / 250)))
      ++dropped;
  const double rate = static_cast<double>(dropped) / trials;
  EXPECT_NEAR(rate, 0.10, 0.01);
}

// --- End-to-end: the simulator under injected faults. ---

ScenarioConfig small_config() {
  ScenarioConfig config = smoke_scenario();
  config.num_users = 1'500;
  config.last_week = 11;  // keep the windowed runs fast
  config.seed = 99;
  return config;
}

TEST(SimulatorFaults, CleanRunKeepsQualityReportEmpty) {
  const auto data = run_scenario(small_config());
  EXPECT_TRUE(data.quality.empty());
}

TEST(SimulatorFaults, FaultedRunBooksLossesInTheQualityReport) {
  auto config = small_config();
  config.faults = uniform_loss_faults(0.10);
  const auto data = run_scenario(config);

  ASSERT_FALSE(data.quality.empty());
  const auto* obs = data.quality.find("user-observations");
  ASSERT_NE(obs, nullptr);
  EXPECT_GT(obs->expected_records, 0u);
  EXPECT_LT(obs->observed_records, obs->expected_records);
  EXPECT_NEAR(obs->completeness(), 0.90, 0.03);

  const auto* kpi = data.quality.find("kpi-feed");
  ASSERT_NE(kpi, nullptr);
  EXPECT_GT(kpi->expected_records, 0u);
  EXPECT_LT(kpi->observed_records, kpi->expected_records);
  EXPECT_NEAR(kpi->completeness(), 0.90, 0.05);

  const auto* events = data.quality.find("signaling-events");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->expected_records, 0u);
}

TEST(SimulatorFaults, KpiOnlyFaultsLeaveMobilityIdenticalToClean) {
  // Module isolation end-to-end: faults confined to the KPI feed must not
  // move a single mobility sample — the signaling-derived series are
  // bit-identical to the clean run.
  auto clean_config = small_config();
  auto faulted_config = small_config();
  faulted_config.faults.kpi_record_loss_rate = 0.2;
  faulted_config.faults.kpi_record_duplication_rate = 0.1;

  const auto clean = run_scenario(clean_config);
  const auto faulted = run_scenario(faulted_config);

  const auto& clean_gyration = clean.gyration_national.group(0);
  const auto& faulted_gyration = faulted.gyration_national.group(0);
  for (SimDay d = clean_gyration.first_day(); d <= clean_gyration.last_day();
       ++d) {
    ASSERT_EQ(clean_gyration.has(d), faulted_gyration.has(d)) << d;
    if (!clean_gyration.has(d)) continue;
    EXPECT_EQ(clean_gyration.value(d), faulted_gyration.value(d)) << d;
    EXPECT_EQ(clean_gyration.count(d), faulted_gyration.count(d)) << d;
  }
  // And the KPI feed did lose rows.
  EXPECT_LT(faulted.kpis.records().size(), clean.kpis.records().size());
  const auto* kpi = faulted.quality.find("kpi-feed");
  ASSERT_NE(kpi, nullptr);
  EXPECT_GT(kpi->duplicate_records, 0u);
}

TEST(SimulatorFaults, ObservationLossThinsMobilitySampleCounts) {
  auto clean_config = small_config();
  auto faulted_config = small_config();
  faulted_config.faults.observation_loss_rate = 0.25;

  const auto clean = run_scenario(clean_config);
  const auto faulted = run_scenario(faulted_config);

  const auto& clean_gyration = clean.gyration_national.group(0);
  const auto& faulted_gyration = faulted.gyration_national.group(0);
  std::uint64_t clean_samples = 0;
  std::uint64_t faulted_samples = 0;
  for (SimDay d = clean_gyration.first_day(); d <= clean_gyration.last_day();
       ++d) {
    clean_samples += clean_gyration.count(d);
    faulted_samples += faulted_gyration.count(d);
  }
  // ~25% of user-day records vanish; the survivors are an unbiased sample.
  const double kept =
      static_cast<double>(faulted_samples) / static_cast<double>(clean_samples);
  EXPECT_NEAR(kept, 0.75, 0.03);
  // KPI feed is untouched by observation loss.
  EXPECT_EQ(faulted.kpis.records().size(), clean.kpis.records().size());
}

}  // namespace
}  // namespace cellscope::sim
