// Temporary relocation decisions.
#include <gtest/gtest.h>

#include "mobility/relocation.h"
#include "population/generator.h"

namespace cellscope::mobility {
namespace {

class RelocationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    geography_ = new geo::UkGeography(geo::UkGeography::build());
    catalog_ = new population::DeviceCatalog(
        population::DeviceCatalog::build(1));
    population::PopulationGenerator generator{*geography_, *catalog_};
    population::PopulationConfig config;
    config.num_users = 6'000;
    config.seed = 41;
    population_ = new population::Population(generator.generate(config));
    policy_ = new PolicyTimeline();
    builder_ = new PlacesBuilder(*geography_);
    model_ = new RelocationModel(*geography_, *policy_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete builder_;
    delete policy_;
    delete population_;
    delete catalog_;
    delete geography_;
  }

  // Runs the full relocation window for user i; returns the final state.
  static UserState run_window(std::size_t i, UserPlaces& places) {
    UserState state;
    Rng root{91};
    for (SimDay day = timeline::kWorkFromHomeAdvice;
         day <= timeline::kLockdownOrder; ++day) {
      Rng rng = root.fork("r", i * 100 + static_cast<std::size_t>(day));
      (void)model_->maybe_decide(population_->subscribers[i], places, state,
                                 day, rng);
    }
    return state;
  }

  static const geo::UkGeography* geography_;
  static const population::DeviceCatalog* catalog_;
  static const population::Population* population_;
  static const PolicyTimeline* policy_;
  static const PlacesBuilder* builder_;
  static const RelocationModel* model_;
};
const geo::UkGeography* RelocationTest::geography_ = nullptr;
const population::DeviceCatalog* RelocationTest::catalog_ = nullptr;
const population::Population* RelocationTest::population_ = nullptr;
const PolicyTimeline* RelocationTest::policy_ = nullptr;
const PlacesBuilder* RelocationTest::builder_ = nullptr;
const RelocationModel* RelocationTest::model_ = nullptr;

TEST_F(RelocationTest, NoDecisionOutsideTheWindow) {
  const auto& user = population_->subscribers[0];
  Rng rng{1};
  auto places = builder_->build(user, rng);
  UserState state;
  EXPECT_EQ(model_->maybe_decide(user, places, state, 5, rng),
            RelocationOutcome::kStay);
  EXPECT_FALSE(state.relocation_decided);
  EXPECT_EQ(model_->maybe_decide(user, places, state,
                                 timeline::kLockdownOrder + 5, rng),
            RelocationOutcome::kStay);
  EXPECT_FALSE(state.relocation_decided);
}

TEST_F(RelocationTest, EveryUserDecidesExactlyOnceInTheWindow) {
  Rng root{2};
  for (std::size_t i = 0; i < 300; ++i) {
    const auto& user = population_->subscribers[i];
    Rng prng = root.fork("p", i);
    auto places = builder_->build(user, prng);
    UserState state;
    int decisions = 0;
    for (SimDay day = timeline::kWorkFromHomeAdvice;
         day <= timeline::kLockdownOrder; ++day) {
      const bool was_decided = state.relocation_decided;
      Rng rng = root.fork("r", i * 100 + static_cast<std::size_t>(day));
      (void)model_->maybe_decide(user, places, state, day, rng);
      if (!was_decided && state.relocation_decided) ++decisions;
    }
    EXPECT_EQ(decisions, 1) << i;
  }
}

TEST_F(RelocationTest, AggregateOutcomeRatesMatchParameters) {
  Rng root{3};
  int seasonal_total = 0, seasonal_gone = 0;
  int second_home_total = 0, second_home_relocated = 0;
  int student_total = 0, student_relocated = 0;
  for (std::size_t i = 0; i < population_->subscribers.size(); ++i) {
    const auto& user = population_->subscribers[i];
    if (!user.native) continue;
    Rng prng = root.fork("p", i);
    auto places = builder_->build(user, prng);
    const UserState state = run_window(i, places);
    if (user.archetype == population::Archetype::kSeasonalResident) {
      ++seasonal_total;
      seasonal_gone += state.departed || state.relocated;
    } else if (user.second_home) {
      ++second_home_total;
      second_home_relocated += state.relocated;
    }
    if (user.archetype == population::Archetype::kStudent) {
      ++student_total;
      student_relocated += state.relocated;
    }
  }
  const auto& params = model_->params();
  ASSERT_GT(seasonal_total, 50);
  EXPECT_NEAR(double(seasonal_gone) / seasonal_total,
              params.seasonal_leave + params.seasonal_relocate, 0.08);
  ASSERT_GT(second_home_total, 50);
  EXPECT_NEAR(double(second_home_relocated) / second_home_total,
              params.second_home_relocate, 0.10);
  ASSERT_GT(student_total, 100);
  EXPECT_NEAR(double(student_relocated) / student_total,
              params.student_relocate, 0.08);
}

TEST_F(RelocationTest, RoamersLeaveMoreOftenThanNativeSeasonals) {
  Rng root{4};
  int roamer_total = 0, roamer_left = 0;
  for (std::size_t i = 0; i < population_->subscribers.size(); ++i) {
    const auto& user = population_->subscribers[i];
    if (user.native) continue;
    Rng prng = root.fork("p", i);
    auto places = builder_->build(user, prng);
    const UserState state = run_window(i, places);
    ++roamer_total;
    roamer_left += state.departed;
  }
  ASSERT_GT(roamer_total, 100);
  EXPECT_NEAR(double(roamer_left) / roamer_total,
              model_->params().roamer_leave, 0.08);
}

TEST_F(RelocationTest, RelocatedUsersGetARefugeInAnotherCounty) {
  Rng root{5};
  int relocated = 0;
  for (std::size_t i = 0; i < population_->subscribers.size() && relocated < 60;
       ++i) {
    const auto& user = population_->subscribers[i];
    Rng prng = root.fork("p", i);
    auto places = builder_->build(user, prng);
    const UserState state = run_window(i, places);
    if (!state.relocated) continue;
    ++relocated;
    ASSERT_TRUE(places.has_refuge());
    EXPECT_NE(places.places[places.refuge_index].county, user.home_county);
  }
  EXPECT_GT(relocated, 20);
}

TEST_F(RelocationTest, DecisionDayIsStablePerUser) {
  // The decision day depends only on the user id, so replays are idempotent.
  const auto& user = population_->subscribers[7];
  Rng prng{6};
  auto places_a = builder_->build(user, prng);
  auto places_b = places_a;
  UserState state_a, state_b;
  Rng root{7};
  for (SimDay day = timeline::kWorkFromHomeAdvice;
       day <= timeline::kLockdownOrder; ++day) {
    Rng rng_a = root.fork("r", static_cast<std::uint64_t>(day));
    Rng rng_b = root.fork("r", static_cast<std::uint64_t>(day));
    (void)model_->maybe_decide(user, places_a, state_a, day, rng_a);
    (void)model_->maybe_decide(user, places_b, state_b, day, rng_b);
  }
  EXPECT_EQ(state_a.relocated, state_b.relocated);
  EXPECT_EQ(state_a.departed, state_b.departed);
}

}  // namespace
}  // namespace cellscope::mobility
