// Conversational voice model.
#include <gtest/gtest.h>

#include "traffic/voice.h"

namespace cellscope::traffic {
namespace {

population::Subscriber adult() {
  population::Subscriber user;
  user.native = true;
  user.smartphone = true;
  user.archetype = population::Archetype::kOfficeWorker;
  return user;
}

double mean_minutes(const VoiceModel& model,
                    const population::Subscriber& user, SimDay day,
                    int hour, int n = 20000) {
  Rng rng{11};
  double total = 0.0;
  for (int i = 0; i < n; ++i)
    total += model.sample_hour(user, day, hour, rng).minutes;
  return total / n;
}

TEST(Voice, M2mNeverCalls) {
  mobility::PolicyTimeline policy;
  VoiceModel model{policy};
  population::Subscriber meter;
  meter.smartphone = false;
  Rng rng{1};
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(model.sample_hour(meter, 10, 10, rng).minutes, 0.0);
}

TEST(Voice, BaselineDailyMinutesMatchParameter) {
  mobility::PolicyTimeline policy;
  VoiceModel model{policy};
  const auto user = adult();
  // Sum the hourly means across a baseline day: should recover
  // daily_minutes within sampling tolerance.
  double daily = 0.0;
  for (int h = 0; h < 24; ++h)
    daily += mean_minutes(model, user, 10, h, 4000);
  EXPECT_NEAR(daily, model.params().daily_minutes, 1.5);
}

TEST(Voice, PolicyMultiplierLiftsMinutes) {
  mobility::PolicyTimeline policy;
  VoiceModel model{policy};
  const auto user = adult();
  const double baseline = mean_minutes(model, user, week_start_day(9), 10);
  const double spike = mean_minutes(model, user, week_start_day(12), 10);
  EXPECT_NEAR(spike / baseline,
              policy.voice_demand_multiplier(week_start_day(12)), 0.25);
}

TEST(Voice, DiurnalShape) {
  EXPECT_GT(VoiceModel::diurnal_weight(10), VoiceModel::diurnal_weight(3));
  EXPECT_GT(VoiceModel::diurnal_weight(18), 1.0);
  EXPECT_LT(VoiceModel::diurnal_weight(2), 0.1);
  double total = 0.0;
  for (int h = 0; h < 24; ++h) total += VoiceModel::diurnal_weight(h);
  EXPECT_NEAR(total / 24.0, 1.0, 0.05);
}

TEST(Voice, RetireesCallMoreThanStudents) {
  mobility::PolicyTimeline policy;
  VoiceModel model{policy};
  auto retiree = adult();
  retiree.archetype = population::Archetype::kRetiree;
  auto student = adult();
  student.archetype = population::Archetype::kStudent;
  EXPECT_GT(mean_minutes(model, retiree, 10, 10),
            mean_minutes(model, student, 10, 10) * 1.5);
}

TEST(Voice, VolumesAreSymmetricAndProportionalToMinutes) {
  mobility::PolicyTimeline policy;
  VoiceModel model{policy};
  const auto user = adult();
  Rng rng{2};
  for (int i = 0; i < 2000; ++i) {
    const auto v = model.sample_hour(user, 40, 11, rng);
    if (v.minutes <= 0.0) {
      EXPECT_DOUBLE_EQ(v.dl_mb, 0.0);
      continue;
    }
    EXPECT_DOUBLE_EQ(v.dl_mb, v.ul_mb);
    EXPECT_NEAR(v.dl_mb, v.minutes * model.params().mb_per_minute, 1e-9);
    EXPECT_NEAR(v.in_call_seconds, v.minutes * 60.0, 1e-9);
    EXPECT_DOUBLE_EQ(v.offnet_fraction, model.params().offnet_fraction);
  }
}

TEST(Voice, MinutesAreCappedAtTheHour) {
  mobility::PolicyTimeline policy;
  VoiceParams params;
  params.daily_minutes = 5'000.0;  // absurd appetite
  VoiceModel model{policy, params};
  const auto user = adult();
  Rng rng{3};
  for (int i = 0; i < 200; ++i)
    EXPECT_LE(model.sample_hour(user, 50, 11, rng).minutes, 60.0);
}

TEST(Voice, CallArrivalsAreBursty) {
  // Many hours have zero minutes; a few have long conversations.
  mobility::PolicyTimeline policy;
  VoiceModel model{policy};
  const auto user = adult();
  Rng rng{4};
  int zero_hours = 0, long_hours = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto v = model.sample_hour(user, 10, 11, rng);
    zero_hours += v.minutes == 0.0;
    long_hours += v.minutes > 5.0;
  }
  EXPECT_GT(zero_hours, 2500);
  EXPECT_GT(long_hours, 10);
}

}  // namespace
}  // namespace cellscope::traffic
