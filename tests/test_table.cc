// Text-table rendering used by the bench output.
#include <gtest/gtest.h>

#include <sstream>

#include "common/table.h"

namespace cellscope {
namespace {

TEST(TextTable, RejectsZeroColumns) {
  EXPECT_THROW(TextTable{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.row().cell("alpha").cell(1.5);
  table.row().cell("b").cell(22.25, 2);
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("22.25"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, NumericFormatting) {
  TextTable table({"v"});
  table.row().cell(3.14159, 3);
  table.row().cell(static_cast<long long>(-7));
  table.row().cell(static_cast<std::size_t>(12));
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("3.142"), std::string::npos);
  EXPECT_NE(os.str().find("-7"), std::string::npos);
  EXPECT_NE(os.str().find("12"), std::string::npos);
}

TEST(TextTable, TooManyCellsThrows) {
  TextTable table({"only"});
  table.row().cell("one");
  EXPECT_THROW(table.cell("two"), std::logic_error);
}

TEST(TextTable, CellWithoutRowStartsOne) {
  TextTable table({"a", "b"});
  table.cell("x").cell("y");
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(TextTable, CsvOutput) {
  TextTable table({"week", "delta"});
  table.row().cell(9).cell(-25.4);
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "week,delta\n9,-25.4\n");
}

TEST(TextTable, ShortRowsRenderPadded) {
  TextTable table({"a", "b", "c"});
  table.row().cell("only-a");
  std::ostringstream os;
  table.print(os);  // must not crash or throw
  EXPECT_NE(os.str().find("only-a"), std::string::npos);
}

TEST(Banner, Format) {
  std::ostringstream os;
  print_banner(os, "Figure 3");
  EXPECT_EQ(os.str(), "\n== Figure 3 ==\n");
}

TEST(Claim, OkAndMismatchMarkers) {
  std::ostringstream ok, bad;
  print_claim(ok, "drop", "-50%", "-52%", true);
  print_claim(bad, "drop", "-50%", "+5%", false);
  EXPECT_NE(ok.str().find("[SHAPE-OK]"), std::string::npos);
  EXPECT_NE(bad.str().find("[MISMATCH]"), std::string::npos);
  EXPECT_NE(ok.str().find("paper: -50%"), std::string::npos);
  EXPECT_NE(ok.str().find("measured: -52%"), std::string::npos);
}

}  // namespace
}  // namespace cellscope
