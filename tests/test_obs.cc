// Observability subsystem: span nesting/ordering, histogram percentiles,
// shard merging, manifest/trace serialization, the disabled-is-free
// contract and the "tracing never perturbs results" determinism guarantee.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/runtime.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace cellscope::obs {
namespace {

// Each test drives the process-wide runtime; start and end clean so tests
// compose in any order.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

TEST_F(ObsTest, SpanNestingAndOrdering) {
  set_enabled(true);
  {
    auto outer = tracer().span("outer", "test");
    {
      auto inner = tracer().span("inner", "test", 42);
      auto innermost = tracer().span("innermost", "test");
    }
    auto sibling = tracer().span("sibling", "test");
  }
  const auto records = tracer().records();
  ASSERT_EQ(records.size(), 4u);
  // Close order: children before parents.
  EXPECT_EQ(records[0].name, "innermost");
  EXPECT_EQ(records[1].name, "inner");
  EXPECT_EQ(records[2].name, "sibling");
  EXPECT_EQ(records[3].name, "outer");
  // Depth reflects the live-span stack at open time.
  EXPECT_EQ(records[3].depth, 0u);
  EXPECT_EQ(records[1].depth, 1u);
  EXPECT_EQ(records[0].depth, 2u);
  EXPECT_EQ(records[2].depth, 1u);
  // The numeric tag survives; untagged spans carry -1.
  EXPECT_EQ(records[1].arg, 42);
  EXPECT_EQ(records[0].arg, -1);
  // Containment: the parent starts no later and runs no shorter.
  EXPECT_LE(records[3].start_us, records[1].start_us);
  EXPECT_GE(records[3].start_us + records[3].duration_us,
            records[1].start_us + records[1].duration_us);
}

TEST_F(ObsTest, PhaseTotalsAggregateTopLevelMainLaneOnly) {
  set_enabled(true);
  {
    auto a1 = tracer().span("phase-a", "test");
    auto nested = tracer().span("nested", "test");
  }
  { auto a2 = tracer().span("phase-a", "test"); }
  { auto b = tracer().span("phase-b", "test"); }
  { auto w = tracer().span("worker-span", "worker", -1, /*lane=*/3); }

  const auto totals = tracer().phase_totals();
  ASSERT_EQ(totals.size(), 2u);  // nested + worker lanes excluded
  EXPECT_EQ(totals[0].name, "phase-a");
  EXPECT_EQ(totals[0].count, 2u);
  EXPECT_EQ(totals[1].name, "phase-b");
  EXPECT_EQ(totals[1].count, 1u);

  // The CSV aggregation covers everything.
  const auto all = tracer().all_totals();
  EXPECT_EQ(all.size(), 4u);
}

TEST_F(ObsTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(enabled());
  {
    auto span = tracer().span("ghost", "test");
    auto nested = tracer().span("ghost-child", "test");
  }
  EXPECT_TRUE(tracer().records().empty());
  EXPECT_TRUE(tracer().phase_totals().empty());
  EXPECT_TRUE(metrics().empty());
}

TEST_F(ObsTest, HistogramPercentilesAreExactNearestRank) {
  Histogram hist;
  EXPECT_EQ(hist.percentile(50.0), 0.0);  // empty
  for (int i = 100; i >= 1; --i) hist.record(static_cast<double>(i));
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_DOUBLE_EQ(hist.min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.max(), 100.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 50.5);
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(hist.percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(hist.percentile(95.0), 95.0);
  EXPECT_DOUBLE_EQ(hist.percentile(100.0), 100.0);
  // Single sample: every percentile is that sample.
  Histogram one;
  one.record(7.5);
  EXPECT_DOUBLE_EQ(one.percentile(1.0), 7.5);
  EXPECT_DOUBLE_EQ(one.percentile(99.0), 7.5);
}

// Nearest-rank edges under heavy duplication: a distribution that is 90%
// one value must put every percentile through p90 on that value, and the
// extremes (p=0, p=100) on the true min/max — no interpolation invents
// values that were never recorded.
TEST_F(ObsTest, HistogramPercentileEdgesWithDuplicateHeavyData) {
  Histogram hist;
  for (int i = 0; i < 90; ++i) hist.record(5.0);
  for (int i = 0; i < 9; ++i) hist.record(100.0);
  hist.record(1.0);
  ASSERT_EQ(hist.count(), 100u);
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), 1.0);    // exact min
  EXPECT_DOUBLE_EQ(hist.percentile(1.0), 1.0);    // rank 1 is the outlier
  EXPECT_DOUBLE_EQ(hist.percentile(2.0), 5.0);    // into the duplicate mass
  EXPECT_DOUBLE_EQ(hist.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(hist.percentile(91.0), 5.0);   // last rank of the mass
  EXPECT_DOUBLE_EQ(hist.percentile(92.0), 100.0);
  EXPECT_DOUBLE_EQ(hist.percentile(100.0), 100.0);  // exact max
  // All-identical samples: every percentile is the value.
  Histogram flat;
  for (int i = 0; i < 17; ++i) flat.record(3.25);
  EXPECT_DOUBLE_EQ(flat.percentile(0.0), 3.25);
  EXPECT_DOUBLE_EQ(flat.percentile(50.0), 3.25);
  EXPECT_DOUBLE_EQ(flat.percentile(100.0), 3.25);
}

TEST_F(ObsTest, CountersMergeFromConcurrentShards) {
  auto& registry = metrics();
  const MetricId a = registry.counter("test.a");
  const MetricId b = registry.counter("test.b");
  ASSERT_TRUE(a.valid());
  ASSERT_NE(a.index, b.index);
  // Re-registering a name returns the same handle.
  EXPECT_EQ(registry.counter("test.a").index, a.index);

  MetricsShard shard1, shard2;
  std::thread t1([&] {
    for (int i = 0; i < 1000; ++i) shard1.add(a);
    shard1.add(b, 5);
  });
  std::thread t2([&] {
    for (int i = 0; i < 500; ++i) shard2.add(a, 2);
  });
  t1.join();
  t2.join();
  registry.merge(shard1);
  registry.merge(shard2);
  EXPECT_EQ(registry.counter_value("test.a"), 2000u);
  EXPECT_EQ(registry.counter_value("test.b"), 5u);
  // Merge clears the shard: a second merge adds nothing.
  registry.merge(shard1);
  EXPECT_EQ(registry.counter_value("test.a"), 2000u);
  // Invalid ids are ignored.
  MetricsShard shard3;
  shard3.add(MetricId{}, 99);
  registry.merge(shard3);
  EXPECT_EQ(registry.counter_value("test.a"), 2000u);
}

TEST_F(ObsTest, RegistrySnapshotCoversAllKinds) {
  auto& registry = metrics();
  registry.add("snap.counter", 3);
  registry.set_gauge("snap.gauge", 1.5);
  registry.set_gauge("snap.gauge", 2.5);  // overwrite, not append
  auto& hist = registry.histogram("snap.hist");
  hist.record(10.0);
  hist.record(20.0);

  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "snap.counter");
  EXPECT_EQ(snapshot[0].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_EQ(snapshot[0].count, 3u);
  EXPECT_EQ(snapshot[1].name, "snap.gauge");
  EXPECT_DOUBLE_EQ(snapshot[1].value, 2.5);
  EXPECT_EQ(snapshot[2].name, "snap.hist");
  EXPECT_EQ(snapshot[2].count, 2u);
  EXPECT_DOUBLE_EQ(snapshot[2].p50, 10.0);
}

TEST_F(ObsTest, ChromeTraceIsWellFormed) {
  set_enabled(true);
  {
    auto day = tracer().span("day", "sim", 7);
    auto worker = tracer().span("day.users.shard", "worker", 7, 2);
  }
  std::ostringstream out;
  tracer().write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"day\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"day\":7}"), std::string::npos);
  // Balanced braces/brackets (cheap structural validity check).
  int braces = 0, brackets = 0;
  for (const char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  std::ostringstream csv;
  tracer().write_phase_csv(csv);
  EXPECT_NE(csv.str().find("phase,category,count,total_ms,mean_ms"),
            std::string::npos);
  EXPECT_NE(csv.str().find("day.users.shard,worker,1,"), std::string::npos);
}

// Phase and category names flow into phases.csv verbatim only when they
// are plain; a name carrying a comma, quote or newline must come out as
// one RFC-4180 quoted field, not shear the row apart.
TEST_F(ObsTest, PhaseCsvEscapesHostileNames) {
  set_enabled(true);
  { auto s = tracer().span("import,\"kpi\" feed", "ana\nlysis"); }
  { auto plain = tracer().span("day", "sim"); }
  std::ostringstream csv;
  tracer().write_phase_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("\"import,\"\"kpi\"\" feed\",\"ana\nlysis\",1,"),
            std::string::npos);
  // Plain names stay unquoted.
  EXPECT_NE(text.find("day,sim,1,"), std::string::npos);
}

// The worker-lane gauge the timeline samples: lane > 0 spans count while
// open, main-lane spans never do, and moved-from spans do not double-count.
TEST_F(ObsTest, OpenWorkerSpansTracksWorkerLanesOnly) {
  set_enabled(true);
  EXPECT_EQ(tracer().open_worker_spans(), 0u);
  {
    auto main_lane = tracer().span("serial", "sim");
    EXPECT_EQ(tracer().open_worker_spans(), 0u);
    auto w1 = tracer().span("shard", "worker", -1, /*lane=*/1);
    auto w2 = tracer().span("shard", "worker", -1, /*lane=*/2);
    EXPECT_EQ(tracer().open_worker_spans(), 2u);
    Span moved = std::move(w1);  // ownership transfer, not a new open
    EXPECT_EQ(tracer().open_worker_spans(), 2u);
    moved.close();
    moved.close();  // idempotent
    EXPECT_EQ(tracer().open_worker_spans(), 1u);
  }
  EXPECT_EQ(tracer().open_worker_spans(), 0u);
}

TEST_F(ObsTest, ManifestRoundTrip) {
  RunManifest manifest;
  manifest.name = "test-run";
  manifest.git_describe = "v1.0-3-gabc";
  manifest.config_digest = "00ff00ff00ff00ff";
  manifest.seed = 42;
  manifest.users = 40000;
  manifest.worker_threads = 4;
  manifest.first_week = 6;
  manifest.last_week = 19;
  manifest.wall_seconds = 12.5;
  manifest.user_days_per_sec = 313600.0;
  manifest.peak_rss_kb = 123456;
  PhaseTotal phase;
  phase.name = "day";
  phase.category = "sim";
  phase.count = 98;
  phase.total_ms = 11000.0;
  manifest.phases.push_back(phase);
  MetricSnapshot metric;
  metric.name = "sim.observations";
  metric.kind = MetricSnapshot::Kind::kCounter;
  metric.count = 3920000;
  manifest.metrics.push_back(metric);
  RunManifest::FeedSummary feed;
  feed.name = "kpi-feed";
  feed.expected = 100;
  feed.observed = 95;
  feed.completeness = 0.95;
  manifest.feeds.push_back(feed);

  std::ostringstream out;
  write_manifest_json(out, manifest);
  const std::string json = out.str();

  // Structural validity + every field surviving the trip.
  int braces = 0, brackets = 0;
  for (const char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"schema\": \"cellscope-run-manifest/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test-run\""), std::string::npos);
  EXPECT_NE(json.find("\"git_describe\": \"v1.0-3-gabc\""), std::string::npos);
  EXPECT_NE(json.find("\"config_digest\": \"00ff00ff00ff00ff\""),
            std::string::npos);
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"users\": 40000"), std::string::npos);
  EXPECT_NE(json.find("\"worker_threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\": 12.5"), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_kb\": 123456"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"day\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 98"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"sim.observations\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3920000"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"kpi-feed\""), std::string::npos);
  EXPECT_NE(json.find("\"observed\": 95"), std::string::npos);
  EXPECT_NE(json.find("\"completeness\": 0.95"), std::string::npos);
}

TEST_F(ObsTest, ManifestEscapesStrings) {
  RunManifest manifest;
  manifest.name = "quote\"back\\slash\nnewline";
  std::ostringstream out;
  write_manifest_json(out, manifest);
  EXPECT_NE(out.str().find("quote\\\"back\\\\slash\\nnewline"),
            std::string::npos);
}

TEST_F(ObsTest, EnsureObsDirIsSelfIgnoring) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   "cellscope-obs-test" / "nested";
  std::filesystem::remove_all(dir.parent_path());
  const std::string created = ensure_obs_dir(dir.string());
  EXPECT_TRUE(std::filesystem::is_directory(created));
  std::ifstream gitignore(dir / ".gitignore");
  std::string contents;
  std::getline(gitignore, contents);
  EXPECT_EQ(contents, "*");
  // Idempotent.
  EXPECT_EQ(ensure_obs_dir(dir.string()), dir.string());
  std::filesystem::remove_all(dir.parent_path());
}

TEST_F(ObsTest, ConfigDigestIdentifiesScenarios) {
  const auto base = sim::smoke_scenario();
  auto same = base;
  same.worker_threads = 8;  // runtime choice: digest unchanged
  auto other = base;
  other.seed = base.seed + 1;
  EXPECT_EQ(sim::config_digest(base).size(), 16u);
  EXPECT_EQ(sim::config_digest(base), sim::config_digest(same));
  EXPECT_NE(sim::config_digest(base), sim::config_digest(other));
}

// The acceptance contract: enabling observability must not perturb the
// simulation. Same seed, 4 worker threads, traced vs untraced — the
// Dataset contents must match bit for bit.
TEST_F(ObsTest, TracedRunMatchesUntracedBitForBit) {
  auto config = sim::default_scenario();
  config.num_users = 1'500;
  config.seed = 77;
  config.worker_threads = 4;

  ASSERT_FALSE(enabled());
  const sim::Dataset plain = sim::run_scenario(config);

  set_enabled(true);
  const sim::Dataset traced = sim::run_scenario(config);
  set_enabled(false);

  // Tracing actually happened...
  EXPECT_FALSE(tracer().records().empty());
  EXPECT_GT(metrics().counter_value("sim.user_days"), 0u);
  EXPECT_GT(metrics().counter_value("sim.observations"), 0u);
  EXPECT_GT(metrics().counter_value("scheduler.cells_scheduled"), 0u);

  // ...and changed nothing. Mobility series: bitwise identical.
  for (SimDay d = config.first_day(); d <= config.last_day(); ++d) {
    EXPECT_EQ(plain.gyration_national.group(0).value_or(d, -1.0),
              traced.gyration_national.group(0).value_or(d, -1.0))
        << d;
    EXPECT_EQ(plain.entropy_national.group(0).value_or(d, -1.0),
              traced.entropy_national.group(0).value_or(d, -1.0))
        << d;
  }
  ASSERT_EQ(plain.homes.size(), traced.homes.size());
  for (std::size_t i = 0; i < plain.homes.size(); ++i) {
    EXPECT_EQ(plain.homes[i].user, traced.homes[i].user);
    EXPECT_EQ(plain.homes[i].home_district, traced.homes[i].home_district);
  }
  // KPI rows: same thread count on both sides, so bitwise identical too.
  ASSERT_EQ(plain.kpis.records().size(), traced.kpis.records().size());
  for (std::size_t i = 0; i < plain.kpis.records().size(); ++i) {
    const auto& a = plain.kpis.records()[i];
    const auto& b = traced.kpis.records()[i];
    ASSERT_EQ(a.cell, b.cell);
    ASSERT_EQ(a.day, b.day);
    ASSERT_EQ(a.dl_volume_mb, b.dl_volume_mb);
    ASSERT_EQ(a.tti_utilization, b.tti_utilization);
    ASSERT_EQ(a.voice_dl_loss_pct, b.voice_dl_loss_pct);
  }
  // Signaling counters identical.
  ASSERT_EQ(plain.signaling.days().size(), traced.signaling.days().size());
  for (std::size_t d = 0; d < plain.signaling.days().size(); ++d)
    EXPECT_EQ(plain.signaling.days()[d].total_events(),
              traced.signaling.days()[d].total_events());

  // The traced run produced sensible accounting: per-day spans cover the
  // simulated window and metrics line up with the dataset.
  std::uint64_t day_spans = 0;
  for (const auto& t : tracer().phase_totals())
    if (t.name == "day") day_spans = t.count;
  const auto n_days = static_cast<std::uint64_t>(config.last_day() -
                                                 config.first_day() + 1);
  EXPECT_EQ(day_spans, n_days);
  // user-days covers the whole simulated population (natives + inbound
  // roamers), one entry per user per day.
  EXPECT_EQ(metrics().counter_value("sim.user_days"),
            traced.population->subscribers.size() * n_days);
  EXPECT_EQ(metrics().counter_value("probe.signaling_events"),
            traced.signaling.events_ingested());
}

}  // namespace
}  // namespace cellscope::obs
