// Important-places construction.
#include <gtest/gtest.h>

#include "common/geodesy.h"
#include "mobility/place.h"
#include "population/generator.h"

namespace cellscope::mobility {
namespace {

class PlaceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    geography_ = new geo::UkGeography(geo::UkGeography::build());
    catalog_ = new population::DeviceCatalog(
        population::DeviceCatalog::build(1));
    population::PopulationGenerator generator{*geography_, *catalog_};
    population::PopulationConfig config;
    config.num_users = 3'000;
    config.seed = 21;
    population_ =
        new population::Population(generator.generate(config));
    builder_ = new PlacesBuilder(*geography_);
  }
  static void TearDownTestSuite() {
    delete builder_;
    delete population_;
    delete catalog_;
    delete geography_;
  }

  static const geo::UkGeography& geo() { return *geography_; }
  static const population::Population& pop() { return *population_; }
  static const PlacesBuilder& builder() { return *builder_; }

 private:
  static const geo::UkGeography* geography_;
  static const population::DeviceCatalog* catalog_;
  static const population::Population* population_;
  static const PlacesBuilder* builder_;
};
const geo::UkGeography* PlaceTest::geography_ = nullptr;
const population::DeviceCatalog* PlaceTest::catalog_ = nullptr;
const population::Population* PlaceTest::population_ = nullptr;
const PlacesBuilder* PlaceTest::builder_ = nullptr;

TEST_F(PlaceTest, HomeIsAlwaysIndexZero) {
  Rng root{5};
  for (std::size_t i = 0; i < 200; ++i) {
    Rng rng = root.fork("places", i);
    const auto places = builder().build(pop().subscribers[i], rng);
    ASSERT_FALSE(places.places.empty());
    EXPECT_EQ(places.places[UserPlaces::kHomeIndex].kind, PlaceKind::kHome);
    EXPECT_EQ(places.places[0].district, pop().subscribers[i].home_district);
  }
}

TEST_F(PlaceTest, PlaceCountWithinPaperBounds) {
  // People have 3-8 important places ([17, 20] via Section 2.3); our model
  // adds the rarely-visited getaway/refuge, so allow up to 10.
  Rng root{6};
  for (std::size_t i = 0; i < 500; ++i) {
    Rng rng = root.fork("places", i);
    const auto places = builder().build(pop().subscribers[i], rng);
    EXPECT_GE(places.size(), 3u);
    EXPECT_LE(places.size(), 10u);
  }
}

TEST_F(PlaceTest, WorkPlaceMatchesSubscriber) {
  Rng root{7};
  for (std::size_t i = 0; i < 500; ++i) {
    const auto& user = pop().subscribers[i];
    Rng rng = root.fork("places", i);
    const auto places = builder().build(user, rng);
    EXPECT_EQ(places.has_work(), user.work_district.valid());
    if (places.has_work()) {
      EXPECT_EQ(places.places[places.work_index].kind, PlaceKind::kWork);
      EXPECT_EQ(places.places[places.work_index].district,
                user.work_district);
    }
  }
}

TEST_F(PlaceTest, TwoErrandPlacesNearHome) {
  Rng root{8};
  for (std::size_t i = 0; i < 300; ++i) {
    const auto& user = pop().subscribers[i];
    Rng rng = root.fork("places", i);
    const auto places = builder().build(user, rng);
    EXPECT_EQ(places.errand_indices.size(), 2u);
    const auto& home = geo().district(user.home_district);
    for (const auto idx : places.errand_indices) {
      EXPECT_EQ(places.places[idx].kind, PlaceKind::kErrand);
      // Errands stay within the "local" or (for rural) extended reach.
      EXPECT_LE(distance_km(home.center, places.places[idx].location), 45.0);
    }
  }
}

TEST_F(PlaceTest, LeisureCountScalesWithVariety) {
  Rng root{9};
  double cosmo_total = 0.0, suburb_total = 0.0;
  int cosmo_n = 0, suburb_n = 0;
  for (std::size_t i = 0; i < pop().subscribers.size(); ++i) {
    const auto& user = pop().subscribers[i];
    Rng rng = root.fork("places", i);
    const auto places = builder().build(user, rng);
    EXPECT_GE(places.leisure_indices.size(), 1u);
    EXPECT_LE(places.leisure_indices.size(), 4u);
    if (user.home_cluster == geo::OacCluster::kCosmopolitans) {
      cosmo_total += places.leisure_indices.size();
      ++cosmo_n;
    } else if (user.home_cluster == geo::OacCluster::kSuburbanites) {
      suburb_total += places.leisure_indices.size();
      ++suburb_n;
    }
  }
  ASSERT_GT(cosmo_n, 20);
  ASSERT_GT(suburb_n, 20);
  EXPECT_GT(cosmo_total / cosmo_n, suburb_total / suburb_n);
}

TEST_F(PlaceTest, GetawayInGetawayCounty) {
  Rng root{10};
  int getaways = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    const auto& user = pop().subscribers[i];
    if (!user.native) continue;
    Rng rng = root.fork("places", i);
    const auto places = builder().build(user, rng);
    if (!places.has_getaway()) continue;
    ++getaways;
    const auto& place = places.places[places.getaway_index];
    EXPECT_EQ(place.kind, PlaceKind::kGetaway);
    EXPECT_GT(geo().county(place.county).getaway_attraction, 0.0);
  }
  EXPECT_GT(getaways, 400);
}

TEST_F(PlaceTest, SecondHomeOwnersGetRefugeInTheirCounty) {
  Rng root{11};
  int refuges = 0;
  for (std::size_t i = 0; i < pop().subscribers.size(); ++i) {
    const auto& user = pop().subscribers[i];
    Rng rng = root.fork("places", i);
    const auto places = builder().build(user, rng);
    if (user.second_home && places.has_getaway()) {
      ASSERT_TRUE(places.has_refuge());
      EXPECT_EQ(places.places[places.refuge_index].county,
                user.second_home_county);
      ++refuges;
    }
    if (!user.second_home) {
      EXPECT_FALSE(places.has_refuge());
    }
  }
  EXPECT_GT(refuges, 10);
}

TEST_F(PlaceTest, DeterministicGivenSameRngStream) {
  const auto& user = pop().subscribers[42];
  Rng a = Rng{123}.fork("p", 42);
  Rng b = Rng{123}.fork("p", 42);
  const auto pa = builder().build(user, a);
  const auto pb = builder().build(user, b);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa.places[i].district, pb.places[i].district);
    EXPECT_EQ(pa.places[i].location, pb.places[i].location);
  }
}

TEST_F(PlaceTest, PlaceGeographyConsistent) {
  Rng root{12};
  for (std::size_t i = 0; i < 300; ++i) {
    Rng rng = root.fork("places", i);
    const auto places = builder().build(pop().subscribers[i], rng);
    for (const auto& place : places.places) {
      const auto& district = geo().district(place.district);
      EXPECT_EQ(place.county, district.county);
      // Sampled inside the district disc.
      EXPECT_LE(distance_km(district.center, place.location),
                district.radius_km + 0.01);
    }
  }
}

TEST(SamplePointIn, StaysWithinDisc) {
  const auto geography = geo::UkGeography::build();
  const auto& district = geography.districts().front();
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    const LatLon p = PlacesBuilder::sample_point_in(district, rng);
    EXPECT_LE(distance_km(district.center, p), district.radius_km + 0.01);
  }
}

}  // namespace
}  // namespace cellscope::mobility
