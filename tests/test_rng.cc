// Deterministic RNG: stream independence, ranges, distribution sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace cellscope {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, NamedForksAreIndependentOfParentConsumption) {
  Rng parent{7};
  const Rng fork_before = parent.fork("stream");
  (void)parent.next();
  (void)parent.next();
  Rng fork_after = parent.fork("stream");
  Rng fork_copy = fork_before;
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(fork_copy.next(), fork_after.next());
}

TEST(Rng, DifferentStreamNamesDiverge) {
  Rng parent{7};
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("beta");
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, IndexedForksDiverge) {
  Rng parent{7};
  Rng a = parent.fork("user", 1);
  Rng b = parent.fork("user", 2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{99};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{5};
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng{11};
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[rng.uniform_index(7)];
  for (const int c : counts) EXPECT_GT(c, 700);  // each ~1000
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{12};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng{13};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng{14};
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(double(hits) / kN, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng{15};
  stats::Running acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalShifted) {
  Rng rng{16};
  stats::Running acc;
  for (int i = 0; i < 30000; ++i) acc.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, LognormalMeanMatchesFormula) {
  // E[X] = exp(mu + sigma^2/2).
  Rng rng{17};
  const double mu = -0.5, sigma = 1.0;
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.lognormal(mu, sigma);
  EXPECT_NEAR(sum / kN, std::exp(mu + sigma * sigma / 2.0), 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng{18};
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.exponential(3.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng{19};
  stats::Running acc;
  for (int i = 0; i < 20000; ++i)
    acc.add(static_cast<double>(rng.poisson(mean)));
  EXPECT_NEAR(acc.mean(), mean, std::max(0.05, 0.05 * mean));
  EXPECT_NEAR(acc.variance(), mean, std::max(0.2, 0.1 * mean));
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, PoissonMeanTest,
                         ::testing::Values(0.1, 0.5, 2.0, 10.0, 100.0));

TEST(Rng, PoissonZeroMean) {
  Rng rng{20};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ZipfRankZeroMostLikely) {
  Rng rng{21};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[1], counts[9]);
}

TEST(Rng, CategoricalProportions) {
  Rng rng{22};
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(double(counts[0]) / kN, 0.1, 0.01);
  EXPECT_NEAR(double(counts[1]) / kN, 0.3, 0.01);
  EXPECT_NEAR(double(counts[3]) / kN, 0.6, 0.01);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng rng{23};
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW((void)rng.categorical(weights), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{24};
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(DiscreteSampler, MatchesCategorical) {
  const std::vector<double> weights = {2.0, 0.0, 1.0, 7.0};
  DiscreteSampler sampler{weights};
  Rng rng{25};
  std::vector<int> counts(4, 0);
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[sampler.sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(double(counts[0]) / kN, 0.2, 0.01);
  EXPECT_NEAR(double(counts[3]) / kN, 0.7, 0.01);
}

TEST(DiscreteSampler, RejectsNegativeAndZeroTotal) {
  const std::vector<double> negative = {1.0, -2.0};
  EXPECT_THROW(DiscreteSampler{negative}, std::invalid_argument);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(DiscreteSampler{zeros}, std::invalid_argument);
}

TEST(DiscreteSampler, EmptyIsAllowedButUnsampleable) {
  DiscreteSampler sampler;
  EXPECT_TRUE(sampler.empty());
  EXPECT_EQ(sampler.size(), 0u);
}

TEST(RngHash, Fnv1aStable) {
  // Stream naming must be stable across builds: pin a few digests.
  EXPECT_EQ(fnv1a("population"), fnv1a("population"));
  EXPECT_NE(fnv1a("population"), fnv1a("populatioN"));
  EXPECT_NE(fnv1a(""), fnv1a(" "));
}

}  // namespace
}  // namespace cellscope
